#include <gtest/gtest.h>

#include "android/device.hpp"
#include "android/dumpsys.hpp"
#include "android/location.hpp"
#include "android/location_manager.hpp"
#include "android/permissions.hpp"
#include "util/expect.hpp"

namespace locpriv::android {
namespace {

const geo::LatLon kDeskPosition{39.9042, 116.4074};

AndroidManifest manifest_with(std::vector<Permission> permissions,
                              const std::string& package = "com.example.app") {
  AndroidManifest manifest;
  manifest.package_name = package;
  manifest.uses_permissions = std::move(permissions);
  return manifest;
}

TEST(Permissions, NamesAndParsing) {
  EXPECT_EQ(permission_name(Permission::kAccessFineLocation),
            "android.permission.ACCESS_FINE_LOCATION");
  Permission p;
  EXPECT_TRUE(parse_permission("android.permission.ACCESS_COARSE_LOCATION", p));
  EXPECT_EQ(p, Permission::kAccessCoarseLocation);
  EXPECT_FALSE(parse_permission("android.permission.CAMERA", p));
}

TEST(Permissions, SetSemantics) {
  PermissionSet set;
  EXPECT_FALSE(set.any_location());
  set.grant(Permission::kAccessCoarseLocation);
  set.grant(Permission::kAccessCoarseLocation);  // Idempotent.
  EXPECT_EQ(set.permissions().size(), 1u);
  EXPECT_TRUE(set.any_location());
  EXPECT_FALSE(set.fine_location());
  set.grant(Permission::kAccessFineLocation);
  EXPECT_TRUE(set.fine_location());
}

TEST(Permissions, ManifestGranularityClaims) {
  EXPECT_EQ(manifest_with({Permission::kAccessFineLocation}).declared_granularity(),
            "Fine");
  EXPECT_EQ(manifest_with({Permission::kAccessCoarseLocation}).declared_granularity(),
            "Coarse");
  EXPECT_EQ(manifest_with({Permission::kAccessFineLocation,
                           Permission::kAccessCoarseLocation})
                .declared_granularity(),
            "Fine & Coarse");
  EXPECT_EQ(manifest_with({}).declared_granularity(), "None");
  EXPECT_FALSE(manifest_with({}).declares_location());
  EXPECT_TRUE(manifest_with({Permission::kAccessFineLocation}).declares_location());
}

TEST(Location, ProviderNamesRoundTrip) {
  for (const auto provider :
       {LocationProvider::kGps, LocationProvider::kNetwork, LocationProvider::kPassive,
        LocationProvider::kFused}) {
    LocationProvider parsed;
    ASSERT_TRUE(parse_provider(provider_name(provider), parsed));
    EXPECT_EQ(parsed, provider);
  }
  LocationProvider parsed;
  EXPECT_FALSE(parse_provider("bluetooth", parsed));
}

TEST(Location, ProviderYieldsFineClassification) {
  EXPECT_TRUE(provider_yields_fine(LocationProvider::kGps, Granularity::kCoarse));
  EXPECT_TRUE(provider_yields_fine(LocationProvider::kFused, Granularity::kFine));
  EXPECT_FALSE(provider_yields_fine(LocationProvider::kFused, Granularity::kCoarse));
  EXPECT_FALSE(provider_yields_fine(LocationProvider::kNetwork, Granularity::kFine));
  EXPECT_FALSE(provider_yields_fine(LocationProvider::kPassive, Granularity::kFine));
}

TEST(Location, ComboLabelsMatchTableOne) {
  EXPECT_EQ(provider_combo_label({LocationProvider::kGps}), "gps");
  EXPECT_EQ(provider_combo_label({LocationProvider::kNetwork, LocationProvider::kGps}),
            "gps network");
  EXPECT_EQ(provider_combo_label({LocationProvider::kNetwork, LocationProvider::kFused}),
            "fused network");
  EXPECT_EQ(provider_combo_label({LocationProvider::kGps, LocationProvider::kNetwork,
                                  LocationProvider::kPassive}),
            "gps network passive");
}

TEST(LocationManager, GpsRequiresFinePermission) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet coarse_only({Permission::kAccessCoarseLocation});
  EXPECT_THROW(manager.request_updates("pkg", LocationProvider::kGps, 10,
                                       Granularity::kFine, coarse_only, 0),
               SecurityException);
  const PermissionSet none;
  EXPECT_THROW(manager.request_updates("pkg", LocationProvider::kNetwork, 10,
                                       Granularity::kCoarse, none, 0),
               SecurityException);
  EXPECT_THROW(manager.request_updates("pkg", LocationProvider::kFused, 10,
                                       Granularity::kFine, coarse_only, 0),
               SecurityException);
  // Coarse fused is fine with a coarse permission.
  EXPECT_NO_THROW(manager.request_updates("pkg", LocationProvider::kFused, 10,
                                          Granularity::kCoarse, coarse_only, 0));
}

TEST(LocationManager, ReRegisterReplaces) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet fine({Permission::kAccessFineLocation});
  manager.request_updates("pkg", LocationProvider::kGps, 10, Granularity::kFine, fine, 0);
  manager.request_updates("pkg", LocationProvider::kGps, 60, Granularity::kFine, fine, 5);
  ASSERT_EQ(manager.active_requests().size(), 1u);
  EXPECT_EQ(manager.active_requests()[0].interval_s, 60);
}

TEST(LocationManager, DeliversAtRequestedInterval) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet fine({Permission::kAccessFineLocation});
  manager.request_updates("pkg", LocationProvider::kGps, 10, Granularity::kFine, fine, 0);
  for (std::int64_t t = 1; t <= 35; ++t) manager.tick(t, kDeskPosition);
  // Deliveries at t=1 (first), 11, 21, 31.
  EXPECT_EQ(manager.delivery_log().size(), 4u);
  EXPECT_TRUE(manager.has_last_known());
  EXPECT_EQ(manager.last_known().provider, LocationProvider::kGps);
}

TEST(LocationManager, PassivePiggybacksOnActiveDeliveries) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet fine({Permission::kAccessFineLocation});
  const PermissionSet coarse({Permission::kAccessCoarseLocation});
  manager.request_updates("active", LocationProvider::kGps, 5, Granularity::kFine, fine,
                          0);
  manager.request_updates("lurker", LocationProvider::kPassive, 1, Granularity::kCoarse,
                          coarse, 0);
  for (std::int64_t t = 1; t <= 11; ++t) manager.tick(t, kDeskPosition);
  std::size_t active_count = 0;
  std::size_t passive_count = 0;
  for (const auto& delivery : manager.delivery_log()) {
    if (delivery.package == "active") ++active_count;
    if (delivery.package == "lurker") {
      ++passive_count;
      EXPECT_EQ(delivery.location.provider, LocationProvider::kPassive);
    }
  }
  EXPECT_EQ(active_count, 3u);   // t = 1, 6, 11.
  EXPECT_EQ(passive_count, 3u);  // Piggybacked on each.
}

TEST(LocationManager, PassiveAloneGetsNothing) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet coarse({Permission::kAccessCoarseLocation});
  manager.request_updates("lurker", LocationProvider::kPassive, 1, Granularity::kCoarse,
                          coarse, 0);
  for (std::int64_t t = 1; t <= 60; ++t) manager.tick(t, kDeskPosition);
  EXPECT_TRUE(manager.delivery_log().empty());
}

TEST(LocationManager, RemoveUpdatesStopsDeliveries) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet fine({Permission::kAccessFineLocation});
  manager.request_updates("pkg", LocationProvider::kGps, 5, Granularity::kFine, fine, 0);
  manager.tick(1, kDeskPosition);
  manager.remove_updates("pkg", LocationProvider::kGps);
  for (std::int64_t t = 2; t <= 30; ++t) manager.tick(t, kDeskPosition);
  EXPECT_EQ(manager.delivery_log().size(), 1u);
  EXPECT_TRUE(manager.active_requests().empty());
}

TEST(LocationManager, AccuracyReflectsProvider) {
  LocationManager manager((stats::Rng(1)));
  const PermissionSet both({Permission::kAccessFineLocation,
                            Permission::kAccessCoarseLocation});
  manager.request_updates("a", LocationProvider::kGps, 5, Granularity::kFine, both, 0);
  manager.request_updates("b", LocationProvider::kNetwork, 5, Granularity::kCoarse, both,
                          0);
  manager.tick(1, kDeskPosition);
  double gps_accuracy = 0.0;
  double network_accuracy = 0.0;
  for (const auto& delivery : manager.delivery_log()) {
    if (delivery.package == "a") gps_accuracy = delivery.location.accuracy_m;
    if (delivery.package == "b") network_accuracy = delivery.location.accuracy_m;
  }
  EXPECT_LT(gps_accuracy, 15.0);
  EXPECT_GT(network_accuracy, 300.0);
}

AppBehavior background_gps_behavior(std::int64_t interval = 10) {
  AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {LocationProvider::kGps};
  behavior.request_interval_s = interval;
  return behavior;
}

TEST(Device, LifecycleBasics) {
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}),
                 background_gps_behavior());
  EXPECT_TRUE(device.is_installed("com.example.app"));
  EXPECT_EQ(device.app("com.example.app").state, AppState::kNotRunning);
  device.launch("com.example.app");
  EXPECT_EQ(device.app("com.example.app").state, AppState::kForeground);
  EXPECT_TRUE(device.app("com.example.app").location_active);
  device.move_to_background("com.example.app");
  EXPECT_EQ(device.app("com.example.app").state, AppState::kBackground);
  EXPECT_TRUE(device.app("com.example.app").location_active);  // Keeps listening.
  device.close("com.example.app");
  EXPECT_EQ(device.app("com.example.app").state, AppState::kNotRunning);
  EXPECT_FALSE(device.app("com.example.app").location_active);
  device.uninstall("com.example.app");
  EXPECT_FALSE(device.is_installed("com.example.app"));
}

TEST(Device, DuplicateInstallRejected) {
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}),
                 background_gps_behavior());
  EXPECT_THROW(device.install(manifest_with({Permission::kAccessFineLocation}),
                              background_gps_behavior()),
               util::ContractViolation);
}

TEST(Device, ForegroundOnlyAppLosesListenersInBackground) {
  AppBehavior behavior = background_gps_behavior();
  behavior.continues_in_background = false;
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}), behavior);
  device.launch("com.example.app");
  EXPECT_FALSE(device.location_manager().active_requests().empty());
  device.move_to_background("com.example.app");
  EXPECT_TRUE(device.location_manager().active_requests().empty());
}

TEST(Device, NonAutoStartAppWaitsForTrigger) {
  AppBehavior behavior = background_gps_behavior();
  behavior.auto_start_on_launch = false;
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}), behavior);
  device.launch("com.example.app");
  EXPECT_TRUE(device.location_manager().active_requests().empty());
  device.trigger_location_use("com.example.app");
  EXPECT_FALSE(device.location_manager().active_requests().empty());
}

TEST(Device, OverPrivilegedAppNeverRegisters) {
  AppBehavior behavior;  // Declares but never uses location.
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}), behavior);
  device.launch("com.example.app");
  device.trigger_location_use("com.example.app");
  device.advance(10);
  EXPECT_TRUE(device.location_manager().active_requests().empty());
  EXPECT_TRUE(device.location_manager().delivery_log().empty());
}

TEST(Device, LaunchingSecondAppBackgroundsFirst) {
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}, "com.a"),
                 background_gps_behavior());
  device.install(manifest_with({Permission::kAccessFineLocation}, "com.b"),
                 background_gps_behavior());
  device.launch("com.a");
  device.launch("com.b");
  EXPECT_EQ(device.app("com.a").state, AppState::kBackground);
  EXPECT_EQ(device.app("com.b").state, AppState::kForeground);
}

TEST(Device, AdvanceDrivesDeliveries) {
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}),
                 background_gps_behavior(10));
  device.launch("com.example.app");
  device.advance(25);
  EXPECT_EQ(device.now_s(), 25);
  EXPECT_GE(device.location_manager().delivery_log().size(), 3u);
}

TEST(Dumpsys, ReportListsRequests) {
  DeviceSimulator device(7, kDeskPosition);
  device.install(manifest_with({Permission::kAccessFineLocation}),
                 background_gps_behavior(42));
  device.launch("com.example.app");
  device.advance(2);
  const std::string report =
      dumpsys_location_report(device.location_manager(), device.now_s());
  EXPECT_NE(report.find("Request[gps]"), std::string::npos);
  EXPECT_NE(report.find("pkg=com.example.app"), std::string::npos);
  EXPECT_NE(report.find("interval=42s"), std::string::npos);
  EXPECT_NE(report.find("Last Known Location"), std::string::npos);
}

TEST(Dumpsys, ParseRoundTrip) {
  DeviceSimulator device(7, kDeskPosition);
  AppBehavior behavior = background_gps_behavior(15);
  behavior.providers = {LocationProvider::kGps, LocationProvider::kNetwork};
  device.install(manifest_with({Permission::kAccessFineLocation,
                                Permission::kAccessCoarseLocation}),
                 behavior);
  device.launch("com.example.app");
  const std::string report =
      dumpsys_location_report(device.location_manager(), device.now_s());
  const auto requests = parse_dumpsys_location(report);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].package, "com.example.app");
  EXPECT_EQ(requests[0].interval_s, 15);
  EXPECT_EQ(requests[0].granularity, Granularity::kFine);
}

TEST(Dumpsys, EmptyManagerYieldsNoRequests) {
  LocationManager manager((stats::Rng(1)));
  const std::string report = dumpsys_location_report(manager, 0);
  EXPECT_TRUE(parse_dumpsys_location(report).empty());
  EXPECT_EQ(report.find("Active Requests"), std::string::npos);
}

TEST(Dumpsys, MalformedLinesRejected) {
  EXPECT_THROW(parse_dumpsys_location("Request[gps pkg=x interval=5s granularity=fine"),
               std::runtime_error);
  EXPECT_THROW(
      parse_dumpsys_location("Request[teleport] pkg=x interval=5s granularity=fine"),
      std::runtime_error);
  EXPECT_THROW(parse_dumpsys_location("Request[gps] pkg=x interval=5s granularity=warm"),
               std::runtime_error);
  EXPECT_THROW(parse_dumpsys_location("Request[gps] pkg=x interval=five granularity=fine"),
               std::runtime_error);
  // Unknown non-request lines are ignored.
  EXPECT_TRUE(parse_dumpsys_location("Telephony state: idle\n").empty());
}

}  // namespace
}  // namespace locpriv::android
