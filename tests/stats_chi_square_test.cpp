#include <gtest/gtest.h>

#include "stats/chi_square.hpp"
#include "stats/rng.hpp"
#include "util/expect.hpp"

namespace locpriv::stats {
namespace {

TEST(ChiSquareCdf, KnownCriticalValues) {
  // Classic table entries: P(X <= x) = 0.95.
  EXPECT_NEAR(chi_square_cdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_square_cdf(5.991, 2.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_square_cdf(11.070, 5.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_square_cdf(18.307, 10.0), 0.95, 1e-3);
  // And the 5th percentile used by the paper's lower-tail reading.
  EXPECT_NEAR(chi_square_cdf(3.940, 10.0), 0.05, 1e-3);
}

TEST(ChiSquareCdf, SurvivalComplements) {
  for (const double dof : {1.0, 4.0, 22.0}) {
    for (const double x : {0.5, 3.0, 15.0, 40.0}) {
      EXPECT_NEAR(chi_square_cdf(x, dof) + chi_square_survival(x, dof), 1.0, 1e-12);
    }
  }
}

TEST(ChiSquareCdf, MeanIsDofApproxMedian) {
  // CDF at the mean (= dof) is slightly above 0.5 for all dof.
  for (const double dof : {2.0, 8.0, 30.0}) {
    const double at_mean = chi_square_cdf(dof, dof);
    EXPECT_GT(at_mean, 0.5);
    EXPECT_LT(at_mean, 0.64);  // dof=2 peaks at 1 - e^{-1} ~ 0.632.
  }
}

class QuantileRoundTrip : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsP) {
  const auto [p, dof] = GetParam();
  const double x = chi_square_quantile(p, dof);
  EXPECT_NEAR(chi_square_cdf(x, dof), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantileRoundTrip,
    ::testing::Values(std::pair{0.05, 1.0}, std::pair{0.5, 3.0}, std::pair{0.95, 7.0},
                      std::pair{0.99, 22.0}, std::pair{0.001, 50.0},
                      std::pair{0.9999, 4.0}));

TEST(ChiSquareQuantile, Boundaries) {
  EXPECT_DOUBLE_EQ(chi_square_quantile(0.0, 5.0), 0.0);
  EXPECT_THROW(chi_square_quantile(1.0, 5.0), util::ContractViolation);
  EXPECT_THROW(chi_square_quantile(-0.1, 5.0), util::ContractViolation);
}

TEST(PearsonGoodnessOfFit, PerfectFitGivesZeroStatistic) {
  const std::vector<double> counts{10.0, 20.0, 30.0};
  const auto result = pearson_goodness_of_fit(counts, counts);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_EQ(result.bins, 3u);
  EXPECT_DOUBLE_EQ(result.dof, 2.0);
  EXPECT_NEAR(result.p_upper, 1.0, 1e-12);
  EXPECT_NEAR(result.p_lower, 0.0, 1e-12);
}

TEST(PearsonGoodnessOfFit, RescalesExpectedMass) {
  // Same proportions at different totals must fit perfectly.
  const std::vector<double> observed{1.0, 2.0, 3.0};
  const std::vector<double> expected{10.0, 20.0, 30.0};
  const auto result = pearson_goodness_of_fit(observed, expected);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
}

TEST(PearsonGoodnessOfFit, HandComputedStatistic) {
  // observed {8, 12}, expected {10, 10}: X^2 = 4/10 + 4/10 = 0.8, dof 1.
  const auto result =
      pearson_goodness_of_fit({8.0, 12.0}, {10.0, 10.0});
  EXPECT_NEAR(result.statistic, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(result.dof, 1.0);
  EXPECT_NEAR(result.p_upper, 0.3711, 2e-4);  // 1 - CDF(0.8; 1).
}

TEST(PearsonGoodnessOfFit, SkipsZeroExpectedCategories) {
  // The zero-expected category is excluded; remaining two still rescale.
  const auto result =
      pearson_goodness_of_fit({5.0, 5.0, 4.0}, {10.0, 10.0, 0.0});
  EXPECT_EQ(result.bins, 2u);
  EXPECT_DOUBLE_EQ(result.dof, 1.0);
}

TEST(PearsonGoodnessOfFit, LargeDeviationRejects) {
  const auto result =
      pearson_goodness_of_fit({100.0, 0.0, 0.0}, {34.0, 33.0, 33.0});
  EXPECT_LT(result.p_upper, 1e-6);
  EXPECT_GT(result.p_lower, 1.0 - 1e-6);
}

TEST(PearsonGoodnessOfFit, Preconditions) {
  EXPECT_THROW(pearson_goodness_of_fit({}, {}), util::ContractViolation);
  EXPECT_THROW(pearson_goodness_of_fit({1.0}, {1.0, 2.0}), util::ContractViolation);
  EXPECT_THROW(pearson_goodness_of_fit({0.0, 0.0}, {1.0, 1.0}),
               util::ContractViolation);
  EXPECT_THROW(pearson_goodness_of_fit({-1.0, 2.0}, {1.0, 1.0}),
               util::ContractViolation);
  // Fewer than two usable bins after zero-expected skipping.
  EXPECT_THROW(pearson_goodness_of_fit({1.0, 1.0}, {1.0, 0.0}),
               util::ContractViolation);
}

TEST(PearsonGoodnessOfFit, NullDistributionCalibration) {
  // Property: sampling observed counts from the expected distribution, the
  // upper-tail p-value should be < 0.05 about 5% of the time.
  Rng rng(123);
  const std::vector<double> expected{30.0, 25.0, 20.0, 15.0, 10.0};
  std::vector<double> probabilities = expected;
  int rejections = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> observed(expected.size(), 0.0);
    for (int draw = 0; draw < 200; ++draw)
      observed[rng.weighted_index(probabilities)] += 1.0;
    const auto result = pearson_goodness_of_fit(observed, expected);
    if (result.p_upper < 0.05) ++rejections;
  }
  EXPECT_NEAR(rejections / static_cast<double>(trials), 0.05, 0.02);
}

TEST(ChiSquareResult, PValueSelectsTail) {
  ChiSquareResult result;
  result.p_lower = 0.2;
  result.p_upper = 0.8;
  EXPECT_DOUBLE_EQ(result.p_value(ChiSquareTail::kLower), 0.2);
  EXPECT_DOUBLE_EQ(result.p_value(ChiSquareTail::kUpper), 0.8);
}

}  // namespace
}  // namespace locpriv::stats
