// Supervisor tests: deterministic backoff, process fault plans, the dynamic
// work-stealing loop, and the in-process retry/quarantine/shutdown state
// machine. The chaos half (suite names starting with SupervisorIsolate) forks
// real children and proves crashes, busy-hangs, and allocation bombs are
// contained per cell; those suites also run under the `chaos` ctest label
// with AddressSanitizer in CI.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/error.hpp"
#include "core/harness/run_ledger.hpp"
#include "core/harness/supervisor.hpp"
#include "core/harness/watchdog.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "sim/faults/process_plan.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

// RLIMIT_AS assertions are meaningless under AddressSanitizer: its shadow
// memory mappings blow any address-space cap before the cell allocates a
// byte, so the alloc-bomb test skips itself there.
#if defined(__SANITIZE_ADDRESS__)
#define LOCPRIV_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOCPRIV_UNDER_ASAN 1
#endif
#endif
#ifndef LOCPRIV_UNDER_ASAN
#define LOCPRIV_UNDER_ASAN 0
#endif

namespace locpriv::harness {
namespace {

namespace fs = std::filesystem;
using sim::ProcessFaultKind;
using sim::ProcessFaultPlan;

fs::path fresh_dir(const std::string& name) {
  // Per-pid: the chaos_supervisor aggregate runs these tests in a second
  // process concurrently with the ctest-discovered ones under `ctest -j`.
  const fs::path dir =
      fs::temp_directory_path() /
      ("locpriv_supervisor_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> make_cells(std::size_t count) {
  std::vector<std::string> cells;
  for (std::size_t i = 0; i < count; ++i)
    cells.push_back("cell_" + std::to_string(i));
  return cells;
}

/// The deterministic result every well-behaved test cell returns, so two
/// runs (isolated vs in-process, interrupted vs straight-through) can be
/// compared field for field.
std::vector<std::string> expected_fields(std::size_t index,
                                         const std::string& key) {
  return {key, std::to_string(index), std::to_string(index * 7)};
}

RunInfo test_info(const SupervisorOptions& options) {
  RunInfo info{"supervisor_test", 7, "unit"};
  info.mode = (options.isolate ? "isolate-w" : "inproc-w") +
              std::to_string(options.workers);
  return info;
}

/// Fast-failure knobs shared by most tests: no real backoff waits, no
/// stage-length grace periods.
SupervisorOptions quick_options(bool isolate, unsigned workers) {
  SupervisorOptions options;
  options.isolate = isolate;
  options.workers = workers;
  options.backoff_base = std::chrono::milliseconds(1);
  options.term_grace = std::chrono::milliseconds(100);
  return options;
}

// ---- deterministic backoff ---------------------------------------------

TEST(BackoffDelay, ExponentialWithDeterministicBoundedJitter) {
  SupervisorOptions options;
  options.backoff_base = std::chrono::milliseconds(100);
  options.backoff_seed = 42;

  // Attempt 1 is the first try, not a retry: no delay.
  EXPECT_EQ(backoff_delay(options, "cell", 1).count(), 0);

  for (int attempt = 2; attempt <= 6; ++attempt) {
    const auto delay = backoff_delay(options, "cell", attempt);
    const std::int64_t floor = 100LL << (attempt - 2);
    EXPECT_GE(delay.count(), floor) << "attempt " << attempt;
    EXPECT_LT(delay.count(), floor + 100) << "attempt " << attempt;
    // Pure arithmetic: the same inputs always schedule the same delay.
    EXPECT_EQ(delay, backoff_delay(options, "cell", attempt));
  }

  // Jitter depends on the seed and the cell, so concurrent retries of
  // different cells (or reruns under a different seed) do not stampede.
  SupervisorOptions reseeded = options;
  reseeded.backoff_seed = 43;
  EXPECT_NE(backoff_delay(options, "cell", 2),
            backoff_delay(reseeded, "cell", 2));
  EXPECT_NE(backoff_delay(options, "cell_a", 2),
            backoff_delay(options, "cell_b", 2));

  // Disabling the base disables the wait entirely.
  SupervisorOptions no_backoff;
  no_backoff.backoff_base = std::chrono::milliseconds(0);
  EXPECT_EQ(backoff_delay(no_backoff, "cell", 5).count(), 0);
}

// ---- process fault plans -----------------------------------------------

TEST(ProcessFaultPlanSpec, ParsesKindsAndAttemptWindows) {
  const ProcessFaultPlan plan =
      ProcessFaultPlan::parse("crash@a,hang:2@b,alloc@c");
  EXPECT_EQ(plan.faults().size(), 3u);

  ASSERT_NE(plan.fault_for("a", 1), nullptr);
  EXPECT_EQ(plan.fault_for("a", 1)->kind, ProcessFaultKind::kCrash);
  // No :attempts suffix means the fault is permanent.
  EXPECT_NE(plan.fault_for("a", 1000), nullptr);

  // hang:2 sabotages attempts 1 and 2, then the cell recovers.
  EXPECT_NE(plan.fault_for("b", 1), nullptr);
  EXPECT_NE(plan.fault_for("b", 2), nullptr);
  EXPECT_EQ(plan.fault_for("b", 3), nullptr);

  ASSERT_NE(plan.fault_for("c", 1), nullptr);
  EXPECT_EQ(plan.fault_for("c", 1)->kind, ProcessFaultKind::kAllocBomb);

  EXPECT_EQ(plan.fault_for("unlisted", 1), nullptr);
  EXPECT_TRUE(ProcessFaultPlan::parse("").empty());
  // trigger() on a clean (cell, attempt) is a no-op, not a fault.
  plan.trigger("b", 3);
  plan.trigger("unlisted", 1);
}

TEST(ProcessFaultPlanSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(ProcessFaultPlan::parse("crash"), std::runtime_error);
  EXPECT_THROW(ProcessFaultPlan::parse("crash@"), std::runtime_error);
  EXPECT_THROW(ProcessFaultPlan::parse("explode@cell"), std::runtime_error);
  EXPECT_THROW(ProcessFaultPlan::parse("hang:x@cell"), std::runtime_error);
  EXPECT_THROW(ProcessFaultPlan::parse("hang:0@cell"), std::runtime_error);
}

TEST(ProcessFaultPlanSpec, AllocBombCapRaisesBadAllocWithoutRlimit) {
  // The cap substitutes for RLIMIT_AS so the bomb is testable in-process:
  // it frees what it allocated and raises the same bad_alloc.
  ProcessFaultPlan plan;
  plan.add("bomb", {ProcessFaultKind::kAllocBomb, 1});
  EXPECT_THROW(plan.trigger("bomb", 1, std::size_t{32} << 20),
               std::bad_alloc);
}

// ---- dynamic work distribution -----------------------------------------

TEST(ParallelForDynamic, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  util::parallel_for_dynamic(
      kCount, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForDynamic, ExceptionPropagatesButOtherWorkersKeepDraining) {
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  try {
    util::parallel_for_dynamic(
        kCount,
        [&](std::size_t i) {
          if (i == 9) throw Error(ErrorCode::kDeadline, "index 9 expired");
          hits[i].fetch_add(1);
        },
        4);
    FAIL() << "the body's exception should have propagated";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadline);
    EXPECT_NE(std::string(error.what()).find("index 9"), std::string::npos);
  }
  // One failed cell does not strand the queue: every other index ran.
  for (std::size_t i = 0; i < kCount; ++i)
    if (i != 9) EXPECT_EQ(hits[i].load(), 1) << i;
}

// ---- in-process supervision --------------------------------------------

TEST(SupervisorInProcess, ComputesJournalsAndSkipsCompletedCells) {
  const SupervisorOptions options = quick_options(false, 3);
  const fs::path dir = fresh_dir("inproc_basic");
  const std::vector<std::string> cells = make_cells(12);
  RunLedger ledger(dir, test_info(options));
  // Two cells are already journaled, as after an interrupted earlier run.
  ledger.record("cell_3", expected_fields(3, "cell_3"));
  ledger.record("cell_8", expected_fields(8, "cell_8"));

  std::atomic<int> calls{0};
  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      cells,
      [&](std::size_t index, const std::string& key, int) {
        calls.fetch_add(1);
        return expected_fields(index, key);
      },
      ledger);

  EXPECT_EQ(outcome.computed, 10u);
  EXPECT_EQ(calls.load(), 10);  // Resumed cells are never recomputed.
  EXPECT_TRUE(outcome.quarantined.empty());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_NE(ledger.fields(cells[i]), nullptr) << cells[i];
    EXPECT_EQ(*ledger.fields(cells[i]), expected_fields(i, cells[i]));
  }
}

TEST(SupervisorInProcess, TransientFailureRetriesThenSucceeds) {
  const SupervisorOptions options = quick_options(false, 2);
  const fs::path dir = fresh_dir("inproc_retry");
  RunLedger ledger(dir, test_info(options));

  std::atomic<int> flaky_attempts{0};
  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      make_cells(4),
      [&](std::size_t index, const std::string& key, int attempt) {
        if (key == "cell_2") {
          flaky_attempts.fetch_add(1);
          if (attempt < 3) throw std::runtime_error("transient wobble");
        }
        return expected_fields(index, key);
      },
      ledger);

  EXPECT_EQ(outcome.computed, 4u);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(flaky_attempts.load(), 3);
  EXPECT_TRUE(ledger.completed("cell_2"));
  EXPECT_FALSE(ledger.quarantined("cell_2"));
}

TEST(SupervisorInProcess, ExhaustedRetriesQuarantineWithPerAttemptDetails) {
  SupervisorOptions options = quick_options(false, 2);
  options.max_attempts = 3;
  const fs::path dir = fresh_dir("inproc_quarantine");
  RunLedger ledger(dir, test_info(options));

  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      make_cells(5),
      [&](std::size_t index, const std::string& key, int) {
        if (key == "cell_1") throw std::runtime_error("poisoned input row");
        return expected_fields(index, key);
      },
      ledger);

  EXPECT_EQ(outcome.computed, 4u);
  ASSERT_EQ(outcome.quarantined, std::vector<std::string>{"cell_1"});
  EXPECT_TRUE(ledger.quarantined("cell_1"));
  const std::vector<std::string>* details = ledger.quarantine_details("cell_1");
  ASSERT_NE(details, nullptr);
  ASSERT_EQ(details->size(), 3u);  // One structured line per attempt.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const std::string& line = (*details)[static_cast<std::size_t>(attempt - 1)];
    EXPECT_NE(line.find("attempt " + std::to_string(attempt)),
              std::string::npos);
    EXPECT_NE(line.find("poisoned input row"), std::string::npos);
  }
  // The healthy cells landed despite the quarantine.
  for (const char* key : {"cell_0", "cell_2", "cell_3", "cell_4"})
    EXPECT_TRUE(ledger.completed(key)) << key;
}

TEST(SupervisorInProcess, HarnessErrorsAbortTheRunWithoutRetry) {
  const SupervisorOptions options = quick_options(false, 1);
  const fs::path dir = fresh_dir("inproc_harness_error");
  RunLedger ledger(dir, test_info(options));

  std::atomic<int> calls{0};
  Supervisor supervisor(options);
  try {
    supervisor.run(
        make_cells(3),
        [&](std::size_t, const std::string&, int) -> std::vector<std::string> {
          calls.fetch_add(1);
          throw Error(ErrorCode::kIo, "artifact disk vanished");
        },
        ledger);
    FAIL() << "a harness-level Error must propagate";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIo);
  }
  // kIo is a run failure, not a cell failure: exactly one attempt, no
  // retries, nothing quarantined.
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(ledger.quarantined_cells().empty());
}

TEST(SupervisorInProcess, ShutdownRequestLeavesAResumableLedger) {
  const SupervisorOptions options = quick_options(false, 2);
  const fs::path dir = fresh_dir("inproc_shutdown");
  const std::vector<std::string> cells = make_cells(10);
  const RunInfo info = test_info(options);

  std::size_t completed_at_interrupt = 0;
  {
    RunLedger ledger(dir, info);
    std::atomic<int> calls{0};
    Supervisor supervisor(options);
    try {
      supervisor.run(
          cells,
          [&](std::size_t index, const std::string& key, int) {
            // The fourth computed cell simulates the operator's ^C; cells
            // dispatched afterwards are skipped, not aborted mid-write.
            if (calls.fetch_add(1) + 1 == 4)
              Supervisor::request_shutdown(SIGINT);
            return expected_fields(index, key);
          },
          ledger);
      FAIL() << "an interrupted run must throw";
    } catch (const Error& error) {
      EXPECT_EQ(error.code(), ErrorCode::kInterrupted);
      EXPECT_EQ(exit_code(error.code()), 7);
    }
    completed_at_interrupt = ledger.completed_count();
    EXPECT_GE(completed_at_interrupt, 4u);
    EXPECT_LT(completed_at_interrupt, cells.size());
  }

  // A fresh run over the same directory finishes the job, and every cell —
  // whether journaled before or after the interrupt — carries the exact
  // fields an uninterrupted run would have produced.
  RunLedger resumed(dir, info);
  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      cells,
      [&](std::size_t index, const std::string& key, int) {
        return expected_fields(index, key);
      },
      resumed);
  EXPECT_EQ(outcome.computed, cells.size() - completed_at_interrupt);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_NE(resumed.fields(cells[i]), nullptr) << cells[i];
    EXPECT_EQ(*resumed.fields(cells[i]), expected_fields(i, cells[i]));
  }
}

// ---- isolated (forked) supervision: the chaos suite --------------------

TEST(SupervisorIsolate, CrashingCellIsQuarantinedWhileOthersComplete) {
  SupervisorOptions options = quick_options(true, 2);
  options.max_attempts = 2;
  const fs::path dir = fresh_dir("iso_crash");
  const std::vector<std::string> cells = make_cells(6);
  RunLedger ledger(dir, test_info(options));

  // cell_1 segfaults on every attempt; cell_4 segfaults once and recovers —
  // the retry loop must distinguish permanent from transient crashes.
  ProcessFaultPlan plan;
  plan.add("cell_1", {ProcessFaultKind::kCrash, std::numeric_limits<int>::max()});
  plan.add("cell_4", {ProcessFaultKind::kCrash, 1});

  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      cells,
      [&](std::size_t index, const std::string& key, int attempt) {
        plan.trigger(key, attempt);
        return expected_fields(index, key);
      },
      ledger);

  EXPECT_EQ(outcome.quarantined, std::vector<std::string>{"cell_1"});
  EXPECT_EQ(outcome.computed, 5u);
  const std::vector<std::string>* details = ledger.quarantine_details("cell_1");
  ASSERT_NE(details, nullptr);
  ASSERT_EQ(details->size(), 2u);
  for (const std::string& line : *details)
    EXPECT_NE(line.find("SIGSEGV"), std::string::npos) << line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 1) continue;
    ASSERT_NE(ledger.fields(cells[i]), nullptr) << cells[i];
    EXPECT_EQ(*ledger.fields(cells[i]), expected_fields(i, cells[i]));
  }
}

TEST(SupervisorIsolate, BusyHangIsKilledByDeadlineEscalation) {
  SupervisorOptions options = quick_options(true, 2);
  options.max_attempts = 1;
  options.cell_deadline = std::chrono::milliseconds(300);
  options.term_grace = std::chrono::milliseconds(100);
  const fs::path dir = fresh_dir("iso_hang");
  RunLedger ledger(dir, test_info(options));

  // The hang fault ignores SIGTERM and spins, so only the supervisor's
  // SIGKILL escalation can reclaim the worker slot.
  ProcessFaultPlan plan;
  plan.add("cell_0", {ProcessFaultKind::kHang, std::numeric_limits<int>::max()});

  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      make_cells(3),
      [&](std::size_t index, const std::string& key, int attempt) {
        plan.trigger(key, attempt);
        return expected_fields(index, key);
      },
      ledger);

  EXPECT_EQ(outcome.quarantined, std::vector<std::string>{"cell_0"});
  EXPECT_EQ(outcome.computed, 2u);
  const std::vector<std::string>* details = ledger.quarantine_details("cell_0");
  ASSERT_NE(details, nullptr);
  ASSERT_EQ(details->size(), 1u);
  EXPECT_NE((*details)[0].find("deadline 300ms exceeded"), std::string::npos);
  EXPECT_NE((*details)[0].find("escalated to SIGKILL"), std::string::npos);
}

TEST(SupervisorIsolate, AllocBombIsContainedByAddressSpaceRlimit) {
  if (LOCPRIV_UNDER_ASAN)
    GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
  SupervisorOptions options = quick_options(true, 2);
  options.max_attempts = 2;
  options.cell_rlimit_mb = 256;
  const fs::path dir = fresh_dir("iso_alloc");
  RunLedger ledger(dir, test_info(options));

  ProcessFaultPlan plan;
  plan.add("cell_2", {ProcessFaultKind::kAllocBomb, std::numeric_limits<int>::max()});

  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      make_cells(4),
      [&](std::size_t index, const std::string& key, int attempt) {
        plan.trigger(key, attempt);
        return expected_fields(index, key);
      },
      ledger);

  // The rlimit stops the bomb inside the child (bad_alloc -> exit 1) while
  // the siblings — and the parent — stay untouched.
  EXPECT_EQ(outcome.quarantined, std::vector<std::string>{"cell_2"});
  EXPECT_EQ(outcome.computed, 3u);
  const std::vector<std::string>* details = ledger.quarantine_details("cell_2");
  ASSERT_NE(details, nullptr);
  EXPECT_NE((*details)[0].find("bad_alloc"), std::string::npos)
      << (*details)[0];
}

TEST(SupervisorIsolate, StderrTailLandsInTheQuarantineRecord) {
  SupervisorOptions options = quick_options(true, 1);
  options.max_attempts = 1;
  const fs::path dir = fresh_dir("iso_stderr");
  RunLedger ledger(dir, test_info(options));

  Supervisor supervisor(options);
  const SupervisorOutcome outcome = supervisor.run(
      {"cell_0"},
      [&](std::size_t, const std::string&, int) -> std::vector<std::string> {
        throw std::runtime_error("wombat overflow in decoder");
      },
      ledger);

  ASSERT_EQ(outcome.quarantined, std::vector<std::string>{"cell_0"});
  const std::vector<std::string>* details = ledger.quarantine_details("cell_0");
  ASSERT_NE(details, nullptr);
  // The child exits 1 (kInternal) and its what() text, captured from the
  // stderr pipe, is flattened into the structured record.
  EXPECT_NE((*details)[0].find("exit 1"), std::string::npos) << (*details)[0];
  EXPECT_NE((*details)[0].find("wombat overflow in decoder"),
            std::string::npos)
      << (*details)[0];
}

TEST(SupervisorIsolate, WatchdogHardDeadlineKillsNonCooperativeChildren) {
  SupervisorOptions options = quick_options(true, 1);
  options.max_attempts = 1;  // No per-cell deadline: only the stage watchdog.
  const fs::path dir = fresh_dir("iso_watchdog");
  RunLedger ledger(dir, test_info(options));

  ProcessFaultPlan plan;
  plan.add("cell_0", {ProcessFaultKind::kHang, std::numeric_limits<int>::max()});

  StageOptions stage;
  stage.name = "chaos-stage";
  stage.heartbeat = std::chrono::milliseconds(0);
  stage.hard_deadline = std::chrono::milliseconds(300);
  StageWatchdog watchdog(stage);

  Supervisor supervisor(options);
  try {
    supervisor.run(
        {"cell_0"},
        [&](std::size_t index, const std::string& key, int attempt) {
          plan.trigger(key, attempt);
          return expected_fields(index, key);
        },
        ledger, &watchdog);
    FAIL() << "the stage deadline must fire over a hung child";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadline);
  }
  // The hung child was SIGKILLed before the throw; nothing is left to leak
  // and the cell stays uncomputed (resumable), not quarantined.
  EXPECT_FALSE(ledger.completed("cell_0"));
  EXPECT_FALSE(ledger.quarantined("cell_0"));
}

TEST(SupervisorIsolate, FieldsMatchAnInProcessRunDespiteATransientFault) {
  const std::vector<std::string> cells = make_cells(8);
  auto cell_fn = [](std::size_t index, const std::string& key, int attempt)
      -> std::vector<std::string> {
    // One transient failure under isolation only exercises the retry path;
    // the recorded fields must still be what a clean run produces.
    if (key == "cell_5" && attempt == 1)
      throw std::runtime_error("first-attempt wobble");
    return expected_fields(index, key);
  };

  const SupervisorOptions iso_options = quick_options(true, 3);
  const fs::path iso_dir = fresh_dir("iso_identity");
  RunLedger iso_ledger(iso_dir, test_info(iso_options));
  Supervisor(iso_options).run(cells, cell_fn, iso_ledger);

  const SupervisorOptions inproc_options = quick_options(false, 1);
  const fs::path inproc_dir = fresh_dir("inproc_identity");
  RunLedger inproc_ledger(inproc_dir, test_info(inproc_options));
  Supervisor(inproc_options).run(cells, cell_fn, inproc_ledger);

  for (const std::string& cell : cells) {
    ASSERT_NE(iso_ledger.fields(cell), nullptr) << cell;
    ASSERT_NE(inproc_ledger.fields(cell), nullptr) << cell;
    EXPECT_EQ(*iso_ledger.fields(cell), *inproc_ledger.fields(cell)) << cell;
  }
}

TEST(SupervisorIsolate, ShutdownRequestTerminatesChildrenAndStaysResumable) {
  const SupervisorOptions options = quick_options(true, 2);
  const fs::path dir = fresh_dir("iso_shutdown");
  const std::vector<std::string> cells = make_cells(8);
  const RunInfo info = test_info(options);

  auto slow_fn = [](std::size_t index, const std::string& key, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return expected_fields(index, key);
  };

  {
    RunLedger ledger(dir, info);
    Supervisor supervisor(options);
    // The dispatch loop polls the shutdown flag; flip it from a sibling
    // thread mid-run, exactly as the SIGINT handler would.
    std::thread interrupter([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      Supervisor::request_shutdown(SIGTERM);
    });
    try {
      supervisor.run(cells, slow_fn, ledger);
      interrupter.join();
      FAIL() << "an interrupted isolated run must throw";
    } catch (const Error& error) {
      interrupter.join();
      EXPECT_EQ(error.code(), ErrorCode::kInterrupted);
    }
    // In-flight children were terminated and reaped: some cells computed,
    // some not, none half-written.
    EXPECT_LT(ledger.completed_count(), cells.size());
    EXPECT_TRUE(ledger.quarantined_cells().empty());
  }

  RunLedger resumed(dir, info);
  const SupervisorOutcome outcome =
      Supervisor(options).run(cells, slow_fn, resumed);
  EXPECT_TRUE(outcome.quarantined.empty());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_NE(resumed.fields(cells[i]), nullptr) << cells[i];
    EXPECT_EQ(*resumed.fields(cells[i]), expected_fields(i, cells[i]));
  }
}

// Fork-safety regression for the locprivd respawn path. Every shard spawn —
// including a *respawn* after a crash, which races against whatever the
// service process is logging at that moment — must hold the logging sink
// mutex across fork(2) (LogForkGuard): a child forked while another thread
// was mid-emission would inherit the mutex locked and deadlock. The test
// hammers the logger from a background thread while a crash-fault plan
// forces repeated respawns; if any fork ever caught the sink locked, the
// shard would hang instead of recovering and the run would blow its
// ctest-level timeout.
TEST(SupervisorIsolate, ShardRespawnUnderLoggingHammerDoesNotDeadlock) {
  mobility::DatasetConfig dataset;
  dataset.user_count = 2;
  dataset.synthesis.days = 1;
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset);

  // Hammer the sink from another thread, but into /dev/null: the point is
  // mutex contention at fork time, not log spam in the test output.
  // locpriv-lint: allow(raw-write) /dev/null sink, not an artifact.
  std::FILE* devnull = std::fopen("/dev/null", "w");
  ASSERT_NE(devnull, nullptr);
  std::FILE* previous_sink = util::set_log_sink_for_testing(devnull);
  const util::LogLevel previous_level = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);
  std::atomic<bool> stop{false};
  std::thread hammer([&stop] {
    while (!stop.load(std::memory_order_relaxed))
      LOCPRIV_LOG(kInfo, "hammer") << "logging across the fork window";
  });

  {
    service::ServiceOptions options;
    options.shards = 2;
    options.interval_s = 60;
    options.seed = 11;
    options.scale = "2u_t60";
    options.heartbeat = std::chrono::milliseconds(50);
    options.snapshot_interval = std::chrono::milliseconds(100);
    options.backoff_base = std::chrono::milliseconds(5);
    // Three sabotaged incarnations of each shard: six respawn forks, all
    // taken while the hammer thread is pounding the sink mutex.
    options.max_respawns = 5;
    options.fault_plan = ProcessFaultPlan::parse("crash:3@shard0,crash:3@shard1");
    options.fault_after_batches = 2;

    service::LocprivService daemon(
        options, analyzer, fresh_dir("respawn_logging"), false);
    service::TrafficOptions traffic;
    traffic.batch_size = 16;
    traffic.pace = std::chrono::milliseconds(1);
    service::drive_traffic(daemon, analyzer, traffic);
    const auto rows = daemon.collect_reports();
    daemon.drain();

    EXPECT_GE(daemon.stats().respawns, 6);
    EXPECT_TRUE(daemon.quarantined_shards().empty());
    EXPECT_EQ(rows.size(), analyzer.user_count());
    EXPECT_TRUE(service::parity_mismatches(analyzer, options.interval_s,
                                           traffic, rows)
                    .empty());
  }

  stop.store(true, std::memory_order_relaxed);
  hammer.join();
  util::set_log_level(previous_level);
  util::set_log_sink_for_testing(previous_sink);
  std::fclose(devnull);
}

}  // namespace
}  // namespace locpriv::harness
