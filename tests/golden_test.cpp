// Golden-format tests: exact expected text for the stable serialisation
// formats (PLT records, dumpsys reports, GeoJSON, CSV escaping). Downstream
// consumers parse these formats, so byte-level changes must be deliberate.
#include <gtest/gtest.h>

#include "android/dumpsys.hpp"
#include "android/location_manager.hpp"
#include "poi/geojson.hpp"
#include "trace/geolife.hpp"

namespace locpriv {
namespace {

TEST(Golden, PltDocument) {
  trace::Trajectory trajectory;
  trajectory.append({{39.906631, 116.385564}, 1224814199});
  const std::string expected =
      "Geolife trajectory\n"
      "WGS 84\n"
      "Altitude is in Feet\n"
      "Reserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n"
      "1\n"
      "39.906631,116.385564,0,0,39745.0902662037,2008-10-24,02:09:59\n";
  EXPECT_EQ(trace::write_plt(trajectory), expected);
}

TEST(Golden, DumpsysReport) {
  android::LocationManager manager((stats::Rng(1)));
  const android::PermissionSet fine({android::Permission::kAccessFineLocation});
  manager.request_updates("com.example.app", android::LocationProvider::kGps, 30,
                          android::Granularity::kFine, fine, 100);
  const std::string expected =
      "Location Manager state (t=123s):\n"
      "  Active Requests:\n"
      "    Request[gps] pkg=com.example.app interval=30s granularity=fine\n";
  EXPECT_EQ(android::dumpsys_location_report(manager, 123), expected);
}

TEST(Golden, DumpsysReportWithLastKnown) {
  android::LocationManager manager((stats::Rng(1)));
  const android::PermissionSet fine({android::Permission::kAccessFineLocation});
  manager.request_updates("a", android::LocationProvider::kGps, 5,
                          android::Granularity::kFine, fine, 0);
  manager.tick(1, {39.9, 116.4});
  const std::string report = android::dumpsys_location_report(manager, 1);
  // The accuracy value is rng-dependent; check the stable structure.
  EXPECT_NE(report.find("  Last Known Location: provider=gps acc="),
            std::string::npos);
  EXPECT_EQ(report.find("acc=m"), std::string::npos);
}

TEST(Golden, GeoJsonPointFeature) {
  poi::Poi place;
  place.id = 0;
  place.centroid = {39.9042, 116.4074};
  place.visits.push_back({place.centroid, 10, 700, 5});
  trace::UserTrace empty_user;
  const std::string expected =
      R"({"type":"FeatureCollection","features":[)"
      R"({"type":"Feature","properties":{"poi":0,"visits":1,"dwell_s":690},)"
      R"("geometry":{"type":"Point","coordinates":[116.407400,39.904200]}}]})";
  EXPECT_EQ(poi::to_geojson(empty_user, {place}), expected);
}

TEST(Golden, PltRoundTripPreservesExactCoordinates) {
  // 6-decimal fixed formatting must survive a full round trip bit-for-bit
  // at the printed precision.
  trace::Trajectory original;
  original.append({{-33.856784, 151.215296}, 1224814199});  // Southern hemisphere.
  original.append({{0.000001, -0.000001}, 1224814200});     // Near the origin.
  const trace::Trajectory parsed = trace::parse_plt(trace::write_plt(original));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0].position.lat_deg, -33.856784);
  EXPECT_DOUBLE_EQ(parsed[0].position.lon_deg, 151.215296);
  EXPECT_DOUBLE_EQ(parsed[1].position.lat_deg, 0.000001);
  EXPECT_EQ(parsed[0].timestamp_s, 1224814199);
}

}  // namespace
}  // namespace locpriv
