#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "geo/geodesy.hpp"
#include "market/study.hpp"
#include "trace/geolife.hpp"
#include "util/expect.hpp"

namespace locpriv::core {
namespace {

// A small analyzer shared by the tests in this file (construction runs the
// full reference-extraction pipeline).
const PrivacyAnalyzer& small_analyzer() {
  static const PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig dataset;
    dataset.user_count = 30;
    dataset.synthesis.days = 8;
    return PrivacyAnalyzer::from_synthetic(experiment_analyzer_config(), dataset);
  }();
  return analyzer;
}

TEST(PrivacyAnalyzer, BuildsReferencesForEveryUser) {
  const PrivacyAnalyzer& analyzer = small_analyzer();
  ASSERT_EQ(analyzer.user_count(), 30u);
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    const UserReference& reference = analyzer.reference(u);
    EXPECT_FALSE(reference.points.empty());
    EXPECT_GE(reference.pois.size(), 3u) << "user " << u;
    EXPECT_FALSE(reference.visits.empty());
    EXPECT_FALSE(reference.movements.empty());
    // A movement histogram always has at least as many keys as transitions
    // between distinct regions exist; visits keys equal distinct regions.
    EXPECT_GE(reference.movements.key_count(), reference.visits.key_count() - 1);
  }
  EXPECT_THROW(analyzer.reference(analyzer.user_count()), util::ContractViolation);
}

TEST(PrivacyAnalyzer, RejectsEmptyInput) {
  EXPECT_THROW(PrivacyAnalyzer(experiment_analyzer_config(), {}),
               util::ContractViolation);
}

TEST(PrivacyAnalyzer, FullRateExposureRecoversEverything) {
  const ExposureReport report = small_analyzer().evaluate_exposure(0, 1);
  EXPECT_DOUBLE_EQ(report.poi_total.fraction(), 1.0);
  EXPECT_DOUBLE_EQ(report.poi_sensitive.fraction(), 1.0);
  EXPECT_TRUE(report.hisbin_visits);
  EXPECT_TRUE(report.hisbin_movements);
  EXPECT_TRUE(report.breach_detected());
  EXPECT_DOUBLE_EQ(report.anonymity_movements, 0.0);  // Uniquely identified.
}

TEST(PrivacyAnalyzer, VerySlowPollingLeaksLittle) {
  const ExposureReport report = small_analyzer().evaluate_exposure(0, 7200);
  EXPECT_LT(report.poi_total.fraction(), 0.5);
  EXPECT_LT(report.collected_fixes, 200u);
}

class ExposureMonotoneTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ExposureMonotoneTest, SlowerPollingNeverCollectsMoreFixes) {
  const std::int64_t interval = GetParam();
  const ExposureReport fast = small_analyzer().evaluate_exposure(1, interval);
  const ExposureReport slow = small_analyzer().evaluate_exposure(1, interval * 4);
  EXPECT_LE(slow.collected_fixes, fast.collected_fixes);
  EXPECT_LE(slow.poi_total.recovered_count, fast.poi_total.recovered_count + 1);
}

INSTANTIATE_TEST_SUITE_P(Ladder, ExposureMonotoneTest,
                         ::testing::Values(1, 10, 60, 600));

TEST(PrivacyAnalyzer, IdentificationFasterWithMovementPattern) {
  // The paper's Figure 4(d) claim: the movement pattern identifies strictly
  // faster for (many) more users than the visit pattern does.
  const PrivacyAnalyzer& analyzer = small_analyzer();
  int p2_strictly_faster = 0;
  int p1_strictly_faster = 0;
  int p2_detected = 0;
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    const auto p1 = analyzer.earliest_identification(u, privacy::Pattern::kVisits, 1);
    const auto p2 =
        analyzer.earliest_identification(u, privacy::Pattern::kMovements, 1);
    if (p2.detected) ++p2_detected;
    if (!p1.detected || !p2.detected) continue;
    if (p2.fraction < p1.fraction) ++p2_strictly_faster;
    if (p1.fraction < p2.fraction) ++p1_strictly_faster;
  }
  EXPECT_GE(p2_detected * 10, static_cast<int>(analyzer.user_count()) * 9);
  EXPECT_GT(p2_strictly_faster, p1_strictly_faster);
}

TEST(PrivacyAnalyzer, SelfDetectionEventuallyFires) {
  const auto outcome =
      small_analyzer().earliest_detection(2, privacy::Pattern::kVisits, 1);
  EXPECT_TRUE(outcome.detected);
  EXPECT_LE(outcome.fraction, 1.0);
  EXPECT_GE(outcome.fraction, 0.02);
}

TEST(PrivacyAnalyzer, SparserPollingRecoversFewerTruePois) {
  // Raw extracted counts can fragment at low rates (phantom clusters), so
  // the meaningful monotone quantity is how many *reference* PoIs the
  // collected set recovers.
  const auto full = small_analyzer().evaluate_exposure(3, 1);
  const auto sparse = small_analyzer().evaluate_exposure(3, 3600);
  EXPECT_GT(small_analyzer().collected_pois(3, 1).size(), 0u);
  EXPECT_LE(sparse.poi_total.recovered_count, full.poi_total.recovered_count);
  EXPECT_LT(sparse.poi_total.fraction(), 1.0);
}

TEST(PrivacyAnalyzer, WorksOnGeolifeFormatRoundTrip) {
  // End-to-end: synthesise, write in Geolife layout, read back, analyse.
  mobility::DatasetConfig dataset;
  dataset.user_count = 3;
  dataset.synthesis.days = 4;
  const auto synthetic = mobility::generate_dataset(dataset);

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "locpriv_core_geolife";
  std::filesystem::remove_all(root);
  trace::write_geolife_dataset(root, synthetic.users);
  auto loaded = trace::read_geolife_dataset(root);
  std::filesystem::remove_all(root);

  ASSERT_EQ(loaded.size(), 3u);
  const PrivacyAnalyzer analyzer(experiment_analyzer_config(), std::move(loaded));
  EXPECT_EQ(analyzer.user_count(), 3u);
  const ExposureReport report = analyzer.evaluate_exposure(0, 1);
  EXPECT_TRUE(report.breach_detected());
}

TEST(Experiment, LadderAndConfigs) {
  const auto ladder = access_interval_ladder();
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front(), 1);
  EXPECT_EQ(ladder.back(), 7200);
  for (std::size_t i = 1; i < ladder.size(); ++i) EXPECT_GT(ladder[i], ladder[i - 1]);

  const auto config = experiment_analyzer_config();
  EXPECT_DOUBLE_EQ(config.extraction.radius_m, 50.0);
  EXPECT_EQ(config.extraction.min_visit_s, 600);
  EXPECT_DOUBLE_EQ(config.match.alpha, 0.05);

  const auto dataset = experiment_dataset_config();
  EXPECT_EQ(dataset.seed, kDatasetSeed);
  EXPECT_GT(dataset.user_count, 0);
}

// Full-pipeline integration test at reduced scale: market study feeds an
// interval, the mobility corpus feeds traces, and the privacy pipeline
// quantifies what that app family learns.
TEST(Integration, MarketIntervalToPrivacyExposure) {
  using namespace locpriv::market;
  CatalogConfig catalog_config;
  const Catalog catalog = generate_catalog(catalog_config);
  const MarketReport market = run_market_study(catalog, 7);
  ASSERT_FALSE(market.background_intervals.empty());

  // Median background app interval.
  auto intervals = market.background_intervals;
  std::sort(intervals.begin(), intervals.end());
  const std::int64_t median = intervals[intervals.size() / 2];
  EXPECT_LE(median, 60);  // Most background apps poll fast (Figure 1).

  const ExposureReport fast = small_analyzer().evaluate_exposure(0, median);
  const ExposureReport slow = small_analyzer().evaluate_exposure(0, 7200);
  EXPECT_GE(fast.poi_total.fraction(), slow.poi_total.fraction());
  EXPECT_TRUE(fast.breach_detected());
}

}  // namespace
}  // namespace locpriv::core
