// GeoTree property test: every radius and k-NN query over randomized corpora
// must agree exactly with a brute-force linear-scan oracle — including
// corpora hugging the antimeridian and the poles, where the disc cover's
// longitude wrap and full-band degeneration are easiest to get wrong. The
// suite runs >= 1000 query/oracle comparisons per seed sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/geodesy.hpp"
#include "geo/geotree.hpp"
#include "geo/latlon.hpp"
#include "stats/rng.hpp"

namespace locpriv::geo {
namespace {

struct Corpus {
  const char* name;
  double lat_center;
  double lon_center;
  double lat_spread;
  double lon_spread;
};

// Mid-latitude city, antimeridian straddle, both pole caps, and a sparse
// worldwide scatter. Longitudes are wrapped into [-180, 180] so straddling
// corpora really produce points on both sides of the seam.
constexpr Corpus kCorpora[] = {
    {"city", 39.9, 116.4, 0.3, 0.3},
    {"antimeridian", -36.8, 180.0, 2.0, 1.5},
    {"north-pole", 89.2, 0.0, 0.9, 180.0},
    {"south-pole", -89.2, 90.0, 0.9, 180.0},
    {"global", 0.0, 0.0, 60.0, 170.0},
};

double wrap_lon(double lon_deg) {
  while (lon_deg > 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return lon_deg;
}

std::vector<LatLon> make_points(const Corpus& corpus, std::size_t n, stats::Rng& rng) {
  std::vector<LatLon> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lat = std::clamp(
        corpus.lat_center + rng.uniform(-corpus.lat_spread, corpus.lat_spread), -90.0,
        90.0);
    const double lon =
        wrap_lon(corpus.lon_center + rng.uniform(-corpus.lon_spread, corpus.lon_spread));
    points.push_back({lat, lon});
    // A sprinkle of exact duplicates exercises the (distance, index) ties.
    if (i % 37 == 0 && !points.empty())
      points.push_back(points[rng.next_below(points.size())]);
  }
  return points;
}

// locpriv-lint note: the scans below are the oracle this test exists for.
std::vector<GeoTree::Hit> oracle_radius(const std::vector<LatLon>& points,
                                        const LatLon& center, double radius_m,
                                        GeoTree::Metric metric) {
  std::vector<GeoTree::Hit> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = metric == GeoTree::Metric::kHaversine
                         ? haversine_m(center, points[i])
                         : equirectangular_m(center, points[i]);
    if (d <= radius_m) hits.push_back({static_cast<std::uint32_t>(i), d});
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.distance_m != b.distance_m ? a.distance_m < b.distance_m
                                        : a.index < b.index;
  });
  return hits;
}

class GeoTreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeoTreeSweep, RadiusAndKnnMatchOracleEverywhere) {
  stats::Rng rng(GetParam());
  std::size_t comparisons = 0;
  for (const Corpus& corpus : kCorpora) {
    const auto points = make_points(corpus, 400, rng);
    const GeoTree tree(points);
    ASSERT_EQ(tree.size(), points.size());
    for (int q = 0; q < 25; ++q) {
      // Queries both inside the corpus cloud and offset beyond its edge, so
      // empty results and boundary-straddling discs are both exercised.
      const LatLon center{
          std::clamp(corpus.lat_center +
                         rng.uniform(-1.5 * corpus.lat_spread, 1.5 * corpus.lat_spread),
                     -90.0, 90.0),
          wrap_lon(corpus.lon_center +
                   rng.uniform(-1.5 * corpus.lon_spread, 1.5 * corpus.lon_spread))};
      // Radii from sub-cell to corpus-spanning (log-uniform).
      const double radius_m = 50.0 * std::pow(10.0, rng.uniform(0.0, 4.0));
      for (auto metric :
           {GeoTree::Metric::kHaversine, GeoTree::Metric::kEquirectangular}) {
        const auto expected = oracle_radius(points, center, radius_m, metric);
        ASSERT_EQ(tree.query_radius(center, radius_m, metric), expected)
            << corpus.name << " radius=" << radius_m << " center=("
            << center.lat_deg << "," << center.lon_deg << ")";
        ASSERT_EQ(tree.any_within(center, radius_m, metric), !expected.empty())
            << corpus.name;
        ++comparisons;
      }
      const auto k = static_cast<std::size_t>(rng.uniform_int(1, 50));
      auto expected = oracle_radius(points, center, 2.1e7, GeoTree::Metric::kHaversine);
      expected.resize(std::min(k, expected.size()));
      ASSERT_EQ(tree.query_knn(center, k), expected)
          << corpus.name << " k=" << k << " center=(" << center.lat_deg << ","
          << center.lon_deg << ")";
      ++comparisons;
    }
  }
  // 5 corpora x 25 queries x (2 metrics + knn) = 375 comparisons per seed;
  // the 3-seed sweep gives 1125 total.
  EXPECT_GE(comparisons, 375u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoTreeSweep, ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace locpriv::geo
