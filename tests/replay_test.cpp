// Trace replay through the framework, and its agreement with the
// analytical decimate() model used by the §IV experiments.
#include <gtest/gtest.h>

#include "android/replay.hpp"
#include "geo/geodesy.hpp"
#include "mobility/synthesis.hpp"
#include "trace/sampling.hpp"
#include "util/expect.hpp"

namespace locpriv::android {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

AndroidManifest spy_manifest() {
  AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {Permission::kAccessFineLocation};
  return manifest;
}

AppBehavior spy_behavior(std::int64_t interval_s) {
  AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {LocationProvider::kGps};
  behavior.request_interval_s = interval_s;
  return behavior;
}

std::vector<trace::TracePoint> straight_walk(std::int64_t t0, int fixes,
                                             std::int64_t step_s) {
  std::vector<trace::TracePoint> points;
  for (int i = 0; i < fixes; ++i)
    points.push_back(
        {geo::destination(kAnchor, 90.0, i * 5.0), t0 + i * step_s});
  return points;
}

TEST(Replay, DeliversAtRequestedIntervalWhileMoving) {
  DeviceSimulator device(1, kAnchor);
  const auto points = straight_walk(1000, 200, 2);  // 400 s of walking.
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(20));
  device.launch("com.spy");
  device.move_to_background("com.spy");

  const std::size_t ticks = replay_trace(device, points, /*sync_clock=*/false);
  EXPECT_EQ(ticks, 399u);
  const auto fixes = collected_fixes(device.location_manager(), "com.spy");
  // ~400 s / 20 s = ~20 fixes, spaced >= 20 s.
  EXPECT_GE(fixes.size(), 19u);
  EXPECT_LE(fixes.size(), 21u);
  for (std::size_t i = 1; i < fixes.size(); ++i)
    EXPECT_GE(fixes[i].timestamp_s - fixes[i - 1].timestamp_s, 20);
}

TEST(Replay, CollectedPositionsTrackTheTrace) {
  DeviceSimulator device(1, kAnchor);
  const auto points = straight_walk(5000, 300, 3);
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(10));
  device.launch("com.spy");
  const std::size_t ticks = replay_trace(device, points, /*sync_clock=*/false);
  (void)ticks;
  for (const auto& fix : collected_fixes(device.location_manager(), "com.spy")) {
    // Find the trace position at (or just before) the delivery time.
    const trace::TracePoint* last = &points.front();
    for (const auto& point : points) {
      if (point.timestamp_s > fix.timestamp_s) break;
      last = &point;
    }
    EXPECT_LT(geo::haversine_m(fix.position, last->position), 10.0);
  }
}

TEST(Replay, HoldsPositionAcrossRecordingGaps) {
  DeviceSimulator device(1, kAnchor);
  // Two short legs separated by a 2,000 s silence.
  auto points = straight_walk(1000, 20, 2);
  const geo::LatLon hold_position = points.back().position;
  const auto second_leg = straight_walk(5000, 20, 2);
  points.insert(points.end(), second_leg.begin(), second_leg.end());

  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(100));
  device.launch("com.spy");
  replay_trace(device, points, /*sync_clock=*/false);

  // Deliveries inside the gap report the held (last) position.
  bool saw_gap_fix = false;
  for (const auto& fix : collected_fixes(device.location_manager(), "com.spy")) {
    if (fix.timestamp_s > 1040 && fix.timestamp_s < 5000) {
      saw_gap_fix = true;
      EXPECT_LT(geo::haversine_m(fix.position, hold_position), 1.0);
    }
  }
  EXPECT_TRUE(saw_gap_fix);
}

TEST(Replay, SyncClockVariantLaunchAfterSync) {
  DeviceSimulator device(1, kAnchor);
  const auto points = straight_walk(123456, 50, 2);
  // sync_clock = true path: no apps yet, replay syncs, nothing delivered.
  EXPECT_GT(replay_trace(device, points), 0u);
  EXPECT_EQ(device.now_s(), points.back().timestamp_s);
  EXPECT_TRUE(device.location_manager().delivery_log().empty());
}

TEST(Replay, EmptyTraceIsNoop) {
  DeviceSimulator device(1, kAnchor);
  EXPECT_EQ(replay_trace(device, {}), 0u);
}

TEST(Replay, JumpToRequiresQuietFramework) {
  DeviceSimulator device(1, kAnchor);
  device.install(spy_manifest(), spy_behavior(10));
  device.launch("com.spy");
  EXPECT_THROW(device.jump_to(999), util::ContractViolation);
}

TEST(Replay, AgreesWithDecimateModelOnRealTrace) {
  // The central coherence property: framework sampling of a replayed trace
  // collects, within each recorded span, essentially what decimate()
  // predicts. (The framework also reports held positions during recording
  // gaps; those extra fixes sit at the last stay and only reinforce it.)
  stats::Rng rng(77);
  mobility::CityConfig city_config;
  const mobility::CityModel city(city_config, rng);
  const int home = city.pois_of_category(mobility::PoiCategory::kHome).front();
  const auto profile = mobility::build_user_profile(city, "replay", home,
                                                    mobility::ProfileConfig{}, rng);
  mobility::SynthesisConfig synthesis;
  synthesis.days = 2;
  const auto user = mobility::simulate_user(city, profile, synthesis, rng);
  const auto points = user.trace.flattened();

  constexpr std::int64_t kInterval = 60;
  DeviceSimulator device(1, points.front().position);
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(kInterval));
  device.launch("com.spy");
  replay_trace(device, points, /*sync_clock=*/false);
  const auto framework = collected_fixes(device.location_manager(), "com.spy");
  const auto analytical = trace::decimate(points, kInterval);

  // Keep only framework fixes that fall within 2 s of a recorded fix (the
  // rest are gap-hold fixes by construction).
  std::size_t in_span = 0;
  std::size_t matched = 0;
  std::size_t trace_index = 0;
  for (const auto& fix : framework) {
    while (trace_index + 1 < points.size() &&
           points[trace_index + 1].timestamp_s <= fix.timestamp_s)
      ++trace_index;
    if (fix.timestamp_s - points[trace_index].timestamp_s > 2) continue;
    ++in_span;
    if (geo::haversine_m(fix.position, points[trace_index].position) < 10.0)
      ++matched;
  }
  ASSERT_GT(in_span, 50u);
  EXPECT_EQ(matched, in_span);  // Every in-span fix tracks the trace.
  // The framework samples continuously (gap-hold included), so it never
  // collects fewer fixes than the analytical model, and its total is the
  // replay duration over the interval (first delivery at sync + 1).
  EXPECT_GE(framework.size(), analytical.size());
  const auto duration = points.back().timestamp_s - points.front().timestamp_s;
  EXPECT_NEAR(static_cast<double>(framework.size()),
              static_cast<double>(duration) / static_cast<double>(kInterval), 3.0);
}

}  // namespace
}  // namespace locpriv::android
