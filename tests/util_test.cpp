#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace locpriv::util {
namespace {

TEST(Expect, ThrowsContractViolationWithContext) {
  try {
    LOCPRIV_EXPECT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Expect, PassesOnTrueCondition) {
  EXPECT_NO_THROW(LOCPRIV_EXPECT(2 + 2 == 4));
  EXPECT_NO_THROW(LOCPRIV_ENSURE(true));
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n y z \n"), "y z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("android.permission.X", "android."));
  EXPECT_FALSE(starts_with("an", "android."));
  EXPECT_TRUE(ends_with("file.plt", ".plt"));
  EXPECT_FALSE(ends_with("plt", ".plt"));
}

TEST(Strings, ToLowerJoin) {
  EXPECT_EQ(to_lower("Fine & COARSE"), "fine & coarse");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseDoubleStrict) {
  double v = -1;
  EXPECT_TRUE(parse_double("39.906631", v));
  EXPECT_DOUBLE_EQ(v, 39.906631);
  EXPECT_TRUE(parse_double("  -5.5 ", v));
  EXPECT_DOUBLE_EQ(v, -5.5);
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("12abc", v));
  EXPECT_FALSE(parse_double("abc", v));
}

TEST(Strings, ParseInt64Strict) {
  long long v = -1;
  EXPECT_TRUE(parse_int64("7200", v));
  EXPECT_EQ(v, 7200);
  EXPECT_TRUE(parse_int64("-3", v));
  EXPECT_EQ(v, -3);
  EXPECT_FALSE(parse_int64("3.5", v));
  EXPECT_FALSE(parse_int64("", v));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.578, 1), "57.8%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Csv, ParseSimpleWithHeader) {
  const auto doc = parse_csv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(Csv, ParseQuotedFields) {
  const auto doc = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\nplain,2\n", false);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(Csv, QuotedFieldsContainingNewlines) {
  // A quoted field may span lines (both LF and CRLF); the record does not
  // end until the closing quote's terminator.
  const auto doc =
      parse_csv("\"line1\nline2\",after\r\n\"crlf\r\ninside\",2\nplain,3\n",
                /*has_header=*/false);
  ASSERT_EQ(doc.rows.size(), 3u);
  ASSERT_EQ(doc.rows[0].size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
  EXPECT_EQ(doc.rows[0][1], "after");
  EXPECT_EQ(doc.rows[1][0], "crlf\r\ninside");
  EXPECT_EQ(doc.rows[1][1], "2");
  EXPECT_EQ(doc.rows[2][0], "plain");
}

TEST(Csv, HandlesCrlfAndTrailingNewlines) {
  const auto doc = parse_csv("1,2\r\n3,4\r\n\r\n", false);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "1");
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(Csv, EscapeRoundTrip) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  // Escaped output parses back to the original.
  const std::string field = "tricky,\"field\"\nline2";
  const auto doc = parse_csv(csv_escape(field) + "\n", false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], field);
}

TEST(Csv, WriterEscapes) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"a", "b,c"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n");
}

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable table({"name", "n"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name  | n     |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 12345 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(ConsoleTable, RejectsMismatchedRow) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(Logging, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must not crash and must be cheap no-ops below the threshold.
  LOCPRIV_LOG(kDebug, "test") << "suppressed " << 42;
  LOCPRIV_LOG(kInfo, "test") << "suppressed";
  set_log_level(before);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace locpriv::util
