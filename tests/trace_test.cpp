#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "geo/geodesy.hpp"
#include "stats/rng.hpp"
#include "trace/geolife.hpp"
#include "trace/sampling.hpp"
#include "trace/trace_stats.hpp"
#include "trace/trajectory.hpp"
#include "util/expect.hpp"

namespace locpriv::trace {
namespace {

TracePoint point_at(std::int64_t t, double lat = 39.9, double lon = 116.4) {
  return {{lat, lon}, t};
}

TEST(Trajectory, AppendEnforcesTimeOrder) {
  Trajectory trajectory;
  trajectory.append(point_at(10));
  trajectory.append(point_at(10));  // Equal timestamps allowed.
  trajectory.append(point_at(11));
  EXPECT_EQ(trajectory.size(), 3u);
  EXPECT_THROW(trajectory.append(point_at(5)), util::ContractViolation);
}

TEST(Trajectory, ConstructorValidatesOrder) {
  EXPECT_THROW(Trajectory({point_at(5), point_at(3)}), util::ContractViolation);
  EXPECT_NO_THROW(Trajectory({point_at(1), point_at(2)}));
}

TEST(Trajectory, DurationAndLength) {
  Trajectory trajectory;
  EXPECT_EQ(trajectory.duration_s(), 0);
  trajectory.append(point_at(100, 39.9, 116.4));
  trajectory.append(point_at(200, 39.9, 116.41));
  EXPECT_EQ(trajectory.duration_s(), 100);
  EXPECT_NEAR(trajectory.length_m(),
              geo::haversine_m({39.9, 116.4}, {39.9, 116.41}), 1e-9);
}

TEST(Trajectory, SplitOnGaps) {
  Trajectory trajectory({point_at(0), point_at(5), point_at(100), point_at(104),
                         point_at(300)});
  const auto segments = trajectory.split_on_gaps(30);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].size(), 2u);
  EXPECT_EQ(segments[1].size(), 2u);
  EXPECT_EQ(segments[2].size(), 1u);
  EXPECT_THROW(trajectory.split_on_gaps(0), util::ContractViolation);
}

TEST(UserTrace, FlattenAndCount) {
  UserTrace user;
  user.user_id = "007";
  user.trajectories.push_back(Trajectory({point_at(0), point_at(10)}));
  user.trajectories.push_back(Trajectory({point_at(20), point_at(30)}));
  EXPECT_EQ(user.total_points(), 4u);
  const auto flat = user.flattened();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat.front().timestamp_s, 0);
  EXPECT_EQ(flat.back().timestamp_s, 30);
}

TEST(Geolife, TimestampConversionsRoundTrip) {
  // 2008-10-24 02:09:59 UTC from the Geolife user guide example.
  const std::int64_t unix_s = plt_days_to_unix_s(39745.0902662037);
  EXPECT_NEAR(static_cast<double>(unix_s), 1224814199.0, 1.0);
  EXPECT_NEAR(unix_s_to_plt_days(unix_s), 39745.0902662037, 1e-7);
}

TEST(Geolife, ParsesCanonicalPlt) {
  const std::string text =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n2\n"
      "39.906631,116.385564,0,492,39745.0902662037,2008-10-24,02:09:59\n"
      "39.906554,116.385625,0,492,39745.0903240741,2008-10-24,02:10:04\n";
  const Trajectory trajectory = parse_plt(text);
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_NEAR(trajectory[0].position.lat_deg, 39.906631, 1e-9);
  EXPECT_NEAR(trajectory[0].position.lon_deg, 116.385564, 1e-9);
  EXPECT_EQ(trajectory[1].timestamp_s - trajectory[0].timestamp_s, 5);
}

TEST(Geolife, RejectsMalformedRecords) {
  const std::string header =
      "h1\nh2\nh3\nh4\nh5\nh6\n";
  EXPECT_THROW(parse_plt(header + "not,enough\n"), std::runtime_error);
  EXPECT_THROW(parse_plt(header + "abc,116.4,0,0,39745.0\n"), std::runtime_error);
  EXPECT_THROW(parse_plt(header + "95.0,116.4,0,0,39745.0\n"), std::runtime_error);
  EXPECT_THROW(parse_plt(header + "39.9,200.0,0,0,39745.0\n"), std::runtime_error);
  EXPECT_THROW(parse_plt(header + "39.9,116.4,0,0,xyz\n"), std::runtime_error);
}

TEST(Geolife, WriteParseRoundTrip) {
  Trajectory original;
  original.append({{39.906631, 116.385564}, 1224814199});
  original.append({{39.984702, 116.318417}, 1224814210});
  const Trajectory parsed = parse_plt(write_plt(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed[i].position.lat_deg, original[i].position.lat_deg, 1e-6);
    EXPECT_NEAR(parsed[i].position.lon_deg, original[i].position.lon_deg, 1e-6);
    EXPECT_EQ(parsed[i].timestamp_s, original[i].timestamp_s);
  }
}

TEST(Geolife, DatasetRoundTripThroughFilesystem) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "locpriv_geolife_test";
  std::filesystem::remove_all(root);

  std::vector<UserTrace> users(2);
  users[0].user_id = "000";
  users[0].trajectories.push_back(
      Trajectory({{{39.90, 116.40}, 1224814000}, {{39.91, 116.41}, 1224814060}}));
  users[0].trajectories.push_back(
      Trajectory({{{39.92, 116.42}, 1224900000}, {{39.93, 116.43}, 1224900060}}));
  users[1].user_id = "001";
  users[1].trajectories.push_back(
      Trajectory({{{40.00, 116.30}, 1224814000}}));

  write_geolife_dataset(root, users);
  const auto loaded = read_geolife_dataset(root);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].user_id, "000");
  EXPECT_EQ(loaded[0].trajectories.size(), 2u);
  EXPECT_EQ(loaded[1].trajectories.size(), 1u);
  EXPECT_EQ(loaded[0].total_points(), 4u);
  EXPECT_NEAR(loaded[0].trajectories[0][0].position.lat_deg, 39.90, 1e-6);

  std::filesystem::remove_all(root);
}

TEST(Geolife, ReadMissingRootThrows) {
  EXPECT_THROW(read_geolife_dataset("/nonexistent/geolife/root"),
               std::runtime_error);
}

TEST(Decimate, KeepsFirstThenRespectsInterval) {
  std::vector<TracePoint> points;
  for (std::int64_t t = 0; t <= 100; ++t) points.push_back(point_at(t));
  const auto sampled = decimate(points, 10);
  ASSERT_EQ(sampled.size(), 11u);
  for (std::size_t i = 1; i < sampled.size(); ++i)
    EXPECT_GE(sampled[i].timestamp_s - sampled[i - 1].timestamp_s, 10);
  EXPECT_EQ(sampled.front().timestamp_s, 0);
}

TEST(Decimate, IntervalOneKeepsOneHertzTrace) {
  std::vector<TracePoint> points;
  for (std::int64_t t = 0; t < 50; ++t) points.push_back(point_at(t));
  EXPECT_EQ(decimate(points, 1).size(), 50u);
}

TEST(Decimate, SparseInputPassesThrough) {
  // If the trace is already sparser than the interval, every fix is kept.
  std::vector<TracePoint> points{point_at(0), point_at(500), point_at(1200)};
  EXPECT_EQ(decimate(points, 100).size(), 3u);
}

TEST(Decimate, EmptyAndPreconditions) {
  EXPECT_TRUE(decimate({}, 10).empty());
  std::vector<TracePoint> points{point_at(0)};
  EXPECT_THROW(decimate(points, 0), util::ContractViolation);
}

class DecimateIntervalTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DecimateIntervalTest, CountShrinksMonotonically) {
  // Property: a longer interval never yields more fixes.
  std::vector<TracePoint> points;
  stats::Rng rng(99);
  std::int64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform_int(1, 5);
    points.push_back(point_at(t));
  }
  const std::int64_t interval = GetParam();
  const auto coarse = decimate(points, interval);
  const auto fine = decimate(points, std::max<std::int64_t>(1, interval / 2));
  EXPECT_LE(coarse.size(), fine.size());
  // And the decimated trace is a subsequence: strictly increasing times.
  for (std::size_t i = 1; i < coarse.size(); ++i)
    EXPECT_GT(coarse[i].timestamp_s, coarse[i - 1].timestamp_s);
}

INSTANTIATE_TEST_SUITE_P(Ladder, DecimateIntervalTest,
                         ::testing::Values(2, 10, 60, 600, 3600, 7200));

TEST(TakePrefixFraction, BoundaryBehaviour) {
  std::vector<TracePoint> points;
  for (std::int64_t t = 0; t < 10; ++t) points.push_back(point_at(t));
  EXPECT_TRUE(take_prefix_fraction(points, 0.0).empty());
  EXPECT_EQ(take_prefix_fraction(points, 1.0).size(), 10u);
  EXPECT_EQ(take_prefix_fraction(points, 0.35).size(), 4u);  // Rounded.
  EXPECT_THROW(take_prefix_fraction(points, 1.5), util::ContractViolation);
}

TEST(FromRandomOffset, SuffixOfOriginal) {
  std::vector<TracePoint> points;
  for (std::int64_t t = 0; t < 100; ++t) points.push_back(point_at(t));
  stats::Rng rng(4);
  const auto suffix = from_random_offset(points, rng);
  ASSERT_FALSE(suffix.empty());
  EXPECT_EQ(suffix.back().timestamp_s, 99);
  EXPECT_EQ(suffix.front().timestamp_s,
            static_cast<std::int64_t>(100 - suffix.size()));
}

TEST(AddGaussianNoise, PerturbsWithinExpectedScale) {
  std::vector<TracePoint> points(200, point_at(0));
  stats::Rng rng(8);
  const auto noisy = add_gaussian_noise(points, 5.0, rng);
  double total = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    const double d = geo::haversine_m(points[i].position, noisy[i].position);
    total += d;
    EXPECT_LT(d, 50.0);  // ~10 sigma.
    EXPECT_EQ(noisy[i].timestamp_s, points[i].timestamp_s);
  }
  // Mean Rayleigh distance = sigma * sqrt(pi/2) ~ 6.27 m.
  EXPECT_NEAR(total / 200.0, 6.27, 1.5);
  // Zero sigma is the identity.
  const auto clean = add_gaussian_noise(points, 0.0, rng);
  EXPECT_EQ(clean[0].position, points[0].position);
}

TEST(DropRandom, RateZeroAndOne) {
  std::vector<TracePoint> points(100, point_at(0));
  stats::Rng rng(3);
  EXPECT_EQ(drop_random(points, 0.0, rng).size(), 100u);
  EXPECT_TRUE(drop_random(points, 1.0, rng).empty());
  const auto half = drop_random(points, 0.5, rng);
  EXPECT_GT(half.size(), 25u);
  EXPECT_LT(half.size(), 75u);
}

TEST(DatasetStats, ComputesAggregates) {
  UserTrace user;
  user.user_id = "x";
  Trajectory trajectory;
  for (std::int64_t t = 0; t < 100; t += 2)
    trajectory.append({{39.9 + 1e-5 * static_cast<double>(t), 116.4}, t});
  user.trajectories.push_back(std::move(trajectory));
  const auto stats = compute_dataset_stats({user});
  EXPECT_EQ(stats.user_count, 1u);
  EXPECT_EQ(stats.trajectory_count, 1u);
  EXPECT_EQ(stats.point_count, 50u);
  EXPECT_DOUBLE_EQ(stats.high_frequency_fraction, 1.0);  // All 2 s gaps.
  EXPECT_DOUBLE_EQ(stats.median_interval_s, 2.0);
  EXPECT_GT(stats.total_length_km, 0.0);
}

}  // namespace
}  // namespace locpriv::trace
