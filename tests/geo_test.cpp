#include <gtest/gtest.h>

#include <cmath>

#include "geo/geodesy.hpp"
#include "geo/latlon.hpp"
#include "geo/projection.hpp"
#include "util/expect.hpp"

namespace locpriv::geo {
namespace {

// Beijing city center, the synthetic city's anchor.
const LatLon kBeijing{39.9042, 116.4074};

TEST(Geodesy, DegRadRoundTrip) {
  EXPECT_NEAR(deg_to_rad(180.0), std::acos(-1.0), 1e-12);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(73.25)), 73.25, 1e-12);
}

TEST(Geodesy, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_m(kBeijing, kBeijing), 0.0);
}

TEST(Geodesy, HaversineKnownDistance) {
  // Beijing <-> Shanghai is ~1,067 km.
  const LatLon shanghai{31.2304, 121.4737};
  EXPECT_NEAR(haversine_m(kBeijing, shanghai), 1.067e6, 8e3);
}

TEST(Geodesy, HaversineOneDegreeLatitude) {
  const LatLon north{kBeijing.lat_deg + 1.0, kBeijing.lon_deg};
  EXPECT_NEAR(haversine_m(kBeijing, north), 111195.0, 100.0);
}

TEST(Geodesy, EquirectangularMatchesHaversineAtPoiScale) {
  // Within a few hundred meters the fast approximation must agree to << 1 m
  // (it is used inside the stay-point inner loop with 50 m thresholds).
  const LatLon near = destination(kBeijing, 37.0, 320.0);
  const double exact = haversine_m(kBeijing, near);
  const double approx = equirectangular_m(kBeijing, near);
  EXPECT_NEAR(approx, exact, 0.05);
}

TEST(Geodesy, SymmetricDistances) {
  const LatLon other{40.1, 116.9};
  EXPECT_DOUBLE_EQ(haversine_m(kBeijing, other), haversine_m(other, kBeijing));
  EXPECT_NEAR(equirectangular_m(kBeijing, other), equirectangular_m(other, kBeijing),
              1e-9);
}

TEST(Geodesy, BearingCardinalDirections) {
  EXPECT_NEAR(bearing_deg(kBeijing, {kBeijing.lat_deg + 0.1, kBeijing.lon_deg}), 0.0,
              0.1);
  EXPECT_NEAR(bearing_deg(kBeijing, {kBeijing.lat_deg, kBeijing.lon_deg + 0.1}), 90.0,
              0.1);
  EXPECT_NEAR(bearing_deg(kBeijing, {kBeijing.lat_deg - 0.1, kBeijing.lon_deg}), 180.0,
              0.1);
  EXPECT_NEAR(bearing_deg(kBeijing, {kBeijing.lat_deg, kBeijing.lon_deg - 0.1}), 270.0,
              0.1);
}

class DestinationRoundTrip
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DestinationRoundTrip, DistanceAndBearingRecovered) {
  const auto [bearing, distance] = GetParam();
  const LatLon target = destination(kBeijing, bearing, distance);
  EXPECT_NEAR(haversine_m(kBeijing, target), distance, distance * 1e-9 + 1e-6);
  if (distance > 1.0) {
    EXPECT_NEAR(bearing_deg(kBeijing, target), bearing, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DestinationRoundTrip,
    ::testing::Values(std::pair{0.0, 500.0}, std::pair{45.0, 1234.5},
                      std::pair{90.0, 50.0}, std::pair{137.0, 10000.0},
                      std::pair{225.0, 3.0}, std::pair{359.0, 800.0}));

TEST(Geodesy, CentroidOfSymmetricPoints) {
  const std::vector<LatLon> points{{39.9, 116.4}, {40.1, 116.6}};
  const LatLon c = centroid(points);
  EXPECT_NEAR(c.lat_deg, 40.0, 1e-12);
  EXPECT_NEAR(c.lon_deg, 116.5, 1e-12);
  EXPECT_THROW(centroid({}), util::ContractViolation);
}

TEST(Geodesy, PolylineLength) {
  const LatLon a = kBeijing;
  const LatLon b = destination(a, 90.0, 1000.0);
  const LatLon c = destination(b, 0.0, 500.0);
  EXPECT_NEAR(polyline_length_m({a, b, c}), 1500.0, 0.01);
  EXPECT_DOUBLE_EQ(polyline_length_m({a}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length_m({}), 0.0);
}

TEST(GeoBounds, ExtendContainsCenter) {
  GeoBounds bounds;
  EXPECT_TRUE(bounds.empty());
  bounds.extend({39.9, 116.4});
  bounds.extend({40.1, 116.8});
  EXPECT_FALSE(bounds.empty());
  EXPECT_TRUE(bounds.contains({40.0, 116.6}));
  EXPECT_FALSE(bounds.contains({41.0, 116.6}));
  EXPECT_NEAR(bounds.center().lat_deg, 40.0, 1e-12);
  EXPECT_NEAR(bounds.center().lon_deg, 116.6, 1e-12);
}

TEST(LocalProjection, RoundTripsNearOrigin) {
  const LocalProjection projection(kBeijing);
  for (const auto& offset : {EastNorth{0.0, 0.0}, EastNorth{150.0, -90.0},
                             EastNorth{-12000.0, 8000.0}}) {
    const LatLon geo = projection.to_geo(offset);
    const EastNorth back = projection.to_plane(geo);
    EXPECT_NEAR(back.east_m, offset.east_m, 1e-6);
    EXPECT_NEAR(back.north_m, offset.north_m, 1e-6);
  }
}

TEST(LocalProjection, AgreesWithHaversine) {
  const LocalProjection projection(kBeijing);
  const LatLon p = projection.to_geo({3000.0, 4000.0});
  EXPECT_NEAR(haversine_m(kBeijing, p), 5000.0, 5.0);
}

TEST(SnapToGrid, SnapsToCellCenters) {
  const LocalProjection projection(kBeijing);
  // A point 130 m east, 270 m north snaps to the (100..200, 200..300) cell
  // center = (150, 250) with 100 m cells.
  const LatLon p = projection.to_geo({130.0, 270.0});
  const LatLon snapped = snap_to_grid(p, 100.0, projection);
  const EastNorth plane = projection.to_plane(snapped);
  EXPECT_NEAR(plane.east_m, 150.0, 1e-6);
  EXPECT_NEAR(plane.north_m, 250.0, 1e-6);
}

TEST(SnapToGrid, IdempotentAndBounded) {
  const LocalProjection projection(kBeijing);
  const LatLon p = projection.to_geo({-437.0, 12.5});
  const LatLon once = snap_to_grid(p, 250.0, projection);
  const LatLon twice = snap_to_grid(once, 250.0, projection);
  EXPECT_NEAR(once.lat_deg, twice.lat_deg, 1e-12);
  EXPECT_NEAR(once.lon_deg, twice.lon_deg, 1e-12);
  // Snapping moves a point at most half the cell diagonal.
  EXPECT_LE(haversine_m(p, once), 250.0 * std::sqrt(2.0) / 2.0 + 0.01);
  EXPECT_THROW(snap_to_grid(p, 0.0, projection), util::ContractViolation);
}

}  // namespace
}  // namespace locpriv::geo
