#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "trace/filter.hpp"
#include "util/expect.hpp"

namespace locpriv::trace {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

TracePoint fix(std::int64_t t, double distance_m = 0.0, double bearing = 90.0) {
  return {distance_m == 0.0 ? kAnchor : geo::destination(kAnchor, bearing, distance_m),
          t};
}

TEST(SpeedFilter, KeepsPlausibleMovement) {
  // Walking pace: 1.4 m/s.
  std::vector<TracePoint> points;
  for (int i = 0; i < 20; ++i) points.push_back(fix(i * 3, i * 4.2));
  EXPECT_EQ(filter_by_speed(points, 70.0).size(), points.size());
}

TEST(SpeedFilter, DropsTeleportOutlier) {
  std::vector<TracePoint> points{fix(0, 0.0), fix(3, 4.0), fix(6, 5000.0),
                                 fix(9, 12.0)};
  const auto kept = filter_by_speed(points, 70.0);
  ASSERT_EQ(kept.size(), 3u);
  // The teleport is gone; the fix after it chains to the last good fix.
  EXPECT_EQ(kept[2].timestamp_s, 9);
}

TEST(SpeedFilter, ConsecutiveOutliersAllDropped) {
  std::vector<TracePoint> points{fix(0), fix(1, 9000.0), fix(2, 9100.0), fix(3, 2.0)};
  const auto kept = filter_by_speed(points, 70.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[1].timestamp_s, 3);
}

TEST(SpeedFilter, ZeroDtUsesDistanceGuard) {
  // Same timestamp, 50 m apart: plausible GPS noise, kept.
  std::vector<TracePoint> near{fix(5), {geo::destination(kAnchor, 0.0, 50.0), 5}};
  EXPECT_EQ(filter_by_speed(near, 70.0).size(), 2u);
  // Same timestamp, 5 km apart: dropped.
  std::vector<TracePoint> far{fix(5), {geo::destination(kAnchor, 0.0, 5000.0), 5}};
  EXPECT_EQ(filter_by_speed(far, 70.0).size(), 1u);
}

TEST(SpeedFilter, Preconditions) {
  EXPECT_THROW(filter_by_speed({}, 0.0), util::ContractViolation);
  EXPECT_TRUE(filter_by_speed({}, 70.0).empty());
}

TEST(DedupeTimestamps, KeepsFirstOfEachRun) {
  std::vector<TracePoint> points{fix(1), fix(1, 10.0), fix(2), fix(2, 5.0), fix(3)};
  const auto kept = dedupe_timestamps(points);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].position, kAnchor);  // First of the t=1 run.
}

TEST(CleanTrace, ReportsCounts) {
  std::vector<TracePoint> points{fix(0), fix(0, 1.0), fix(3, 4.0), fix(6, 9000.0),
                                 fix(9, 10.0)};
  const CleaningReport report = clean_trace(points);
  EXPECT_EQ(report.input_fixes, 5u);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(report.speed_outliers, 1u);
  EXPECT_EQ(report.cleaned.size(), 3u);
}

TEST(CleanTrace, CleanInputPassesThrough) {
  std::vector<TracePoint> points;
  for (int i = 0; i < 10; ++i) points.push_back(fix(i * 5, i * 10.0));
  const CleaningReport report = clean_trace(points);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.speed_outliers, 0u);
  EXPECT_EQ(report.cleaned.size(), 10u);
}

}  // namespace
}  // namespace locpriv::trace
