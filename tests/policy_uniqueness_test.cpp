#include <gtest/gtest.h>

#include "android/device.hpp"
#include "geo/geodesy.hpp"
#include "lppm/policy.hpp"
#include "privacy/uniqueness.hpp"
#include "util/expect.hpp"

namespace locpriv {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

// ----------------------------------------------------------- guardian ---

TEST(GuardianPolicy, DefaultRulesRealForegroundCoarseBackground) {
  const lppm::GuardianPolicy policy(kAnchor, 1000.0);
  const geo::LatLon somewhere = geo::destination(kAnchor, 45.0, 3333.0);
  EXPECT_EQ(policy.decide("any.app", /*backgrounded=*/false, somewhere),
            lppm::ReleaseDecision::kReal);
  EXPECT_EQ(policy.decide("any.app", /*backgrounded=*/true, somewhere),
            lppm::ReleaseDecision::kCoarse);
}

TEST(GuardianPolicy, ApplyCoarsensAndFixes) {
  lppm::GuardianPolicy policy(kAnchor, 1000.0);
  const geo::LatLon truth = geo::destination(kAnchor, 45.0, 3333.0);

  geo::LatLon coarse = truth;
  ASSERT_TRUE(policy.apply("app", true, coarse));
  EXPECT_GT(geo::haversine_m(coarse, truth), 1.0);       // Moved to a cell center...
  EXPECT_LT(geo::haversine_m(coarse, truth), 710.0);     // ...within half a diagonal.

  lppm::GuardianRules fixed_rules;
  fixed_rules.background = lppm::ReleaseDecision::kFixed;
  policy.set_app_rules("app", fixed_rules);
  geo::LatLon fixed = truth;
  ASSERT_TRUE(policy.apply("app", true, fixed));
  EXPECT_LT(geo::haversine_m(fixed, kAnchor), 0.5);
}

TEST(GuardianPolicy, ProtectedPlaceBlocksEveryone) {
  lppm::GuardianPolicy policy(kAnchor, 1000.0);
  lppm::GuardianRules trusted;
  trusted.foreground = lppm::ReleaseDecision::kReal;
  trusted.background = lppm::ReleaseDecision::kReal;
  policy.set_app_rules("trusted.app", trusted);
  policy.protect_place(kAnchor, 150.0);

  geo::LatLon at_home = geo::destination(kAnchor, 10.0, 50.0);
  EXPECT_EQ(policy.decide("trusted.app", false, at_home),
            lppm::ReleaseDecision::kBlock);
  EXPECT_FALSE(policy.apply("trusted.app", false, at_home));
  geo::LatLon away = geo::destination(kAnchor, 10.0, 5000.0);
  EXPECT_TRUE(policy.apply("trusted.app", true, away));
}

TEST(GuardianPolicy, Preconditions) {
  EXPECT_THROW(lppm::GuardianPolicy(kAnchor, 0.0), util::ContractViolation);
  lppm::GuardianPolicy policy(kAnchor);
  EXPECT_THROW(policy.protect_place(kAnchor, 0.0), util::ContractViolation);
  EXPECT_THROW(policy.set_app_rules("", lppm::GuardianRules{}),
               util::ContractViolation);
  EXPECT_THROW(policy.make_position_hook(nullptr), util::ContractViolation);
}

// ----------------------------------------------- release hook on device --

android::AndroidManifest spy_manifest() {
  android::AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  return manifest;
}

android::AppBehavior spy_behavior(std::int64_t interval) {
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {android::LocationProvider::kGps};
  behavior.request_interval_s = interval;
  return behavior;
}

TEST(ReleaseHook, GuardianCoarsensBackgroundDeliveriesOnDevice) {
  android::DeviceSimulator device(1, geo::destination(kAnchor, 45.0, 3333.0));
  lppm::GuardianPolicy policy(kAnchor, 1000.0);
  device.location_manager().set_release_hook(
      [&](const std::string& package, android::Location& fix) {
        const bool backgrounded =
            device.app(package).state == android::AppState::kBackground;
        return policy.apply(package, backgrounded, fix.position);
      });

  device.install(spy_manifest(), spy_behavior(5));
  device.launch("com.spy");
  device.advance(6);  // Foreground: true fixes.
  const auto& log = device.location_manager().delivery_log();
  ASSERT_FALSE(log.empty());
  EXPECT_LT(geo::haversine_m(log.back().location.position, device.position()), 1.0);

  device.move_to_background("com.spy");
  device.advance(10);  // Background: coarsened fixes.
  EXPECT_GT(geo::haversine_m(log.back().location.position, device.position()), 1.0);
}

TEST(ReleaseHook, BlockSuppressesDeliveryButConsumesRequest) {
  android::DeviceSimulator device(1, kAnchor);
  device.location_manager().set_release_hook(
      [](const std::string&, android::Location&) { return false; });
  device.install(spy_manifest(), spy_behavior(5));
  device.launch("com.spy");
  device.advance(30);
  EXPECT_TRUE(device.location_manager().delivery_log().empty());
  // Re-enabling releases resumes delivery at the request's cadence.
  device.location_manager().set_release_hook(nullptr);
  device.advance(10);
  EXPECT_FALSE(device.location_manager().delivery_log().empty());
}

// ----------------------------------------------------------- unicity ----

TEST(Unicity, QuantizeBucketsSpaceAndTime) {
  const privacy::RegionGrid grid(kAnchor, 250.0);
  std::vector<trace::TracePoint> points{
      {kAnchor, 0},
      {geo::destination(kAnchor, 10.0, 5.0), 1800},  // Same cell, same hour.
      {kAnchor, 3700},                               // Next hour bucket.
      {geo::destination(kAnchor, 90.0, 2000.0), 0},  // Different cell.
  };
  const auto quantized = privacy::quantize_trace(points, grid, 1);
  EXPECT_EQ(quantized.size(), 3u);
  EXPECT_THROW(privacy::quantize_trace(points, grid, 0), util::ContractViolation);
}

TEST(Unicity, DisjointUsersAreUniqueAtOnePoint) {
  // Three users in disjoint cells: one point identifies anyone.
  std::vector<std::set<privacy::StPoint>> corpus;
  for (int u = 0; u < 3; ++u) {
    std::set<privacy::StPoint> points;
    for (int t = 0; t < 6; ++t) points.emplace(1000 + u, t);
    corpus.push_back(std::move(points));
  }
  stats::Rng rng(1);
  const auto result = privacy::unicity(corpus, 3, 5, rng);
  for (const double fraction : result.unique_fraction)
    EXPECT_DOUBLE_EQ(fraction, 1.0);
}

TEST(Unicity, IdenticalUsersAreNeverUnique) {
  std::set<privacy::StPoint> shared;
  for (int t = 0; t < 8; ++t) shared.emplace(7, t);
  const std::vector<std::set<privacy::StPoint>> corpus{shared, shared};
  stats::Rng rng(1);
  const auto result = privacy::unicity(corpus, 3, 5, rng);
  for (const double fraction : result.unique_fraction)
    EXPECT_DOUBLE_EQ(fraction, 0.0);
}

TEST(Unicity, MorePointsNeverLessUnique) {
  // Overlapping users: unicity must be monotone in p.
  std::vector<std::set<privacy::StPoint>> corpus;
  for (int u = 0; u < 6; ++u) {
    std::set<privacy::StPoint> points;
    for (int t = 0; t < 10; ++t) points.emplace(100 + (t + u) % 8, t);
    corpus.push_back(std::move(points));
  }
  stats::Rng rng(3);
  const auto result = privacy::unicity(corpus, 4, 30, rng);
  for (std::size_t p = 1; p < result.unique_fraction.size(); ++p)
    EXPECT_GE(result.unique_fraction[p] + 0.05, result.unique_fraction[p - 1]);
}

TEST(Unicity, Preconditions) {
  stats::Rng rng(1);
  EXPECT_THROW(privacy::unicity({}, 3, 5, rng), util::ContractViolation);
  const std::vector<std::set<privacy::StPoint>> corpus{{{1, 1}}};
  EXPECT_THROW(privacy::unicity(corpus, 0, 5, rng), util::ContractViolation);
  EXPECT_THROW(privacy::unicity(corpus, 1, 0, rng), util::ContractViolation);
}

}  // namespace
}  // namespace locpriv
