// Kolmogorov-Smirnov matcher tests, plus regression pins on the headline
// reproduction numbers (reduced scale) so a refactor that silently changes
// an experiment's outcome fails in CI rather than in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "privacy/matching.hpp"
#include "stats/ks_test.hpp"
#include "stats/rng.hpp"
#include "util/expect.hpp"

namespace locpriv {
namespace {

// ---------------------------------------------------------------- KS ----

TEST(KsTest, IdenticalDistributionsHaveZeroStatistic) {
  const std::vector<double> counts{10.0, 20.0, 30.0, 5.0};
  const auto result = stats::ks_two_sample(counts, counts);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KsTest, ScaledDistributionsStillMatch) {
  const std::vector<double> a{10.0, 20.0, 30.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::ks_two_sample(a, b).statistic, 0.0);
}

TEST(KsTest, DisjointMassMaximisesStatistic) {
  const std::vector<double> a{100.0, 0.0};
  const std::vector<double> b{0.0, 100.0};
  const auto result = stats::ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, SurvivalFunctionAnchors) {
  EXPECT_NEAR(stats::ks_survival(0.0), 1.0, 1e-12);
  // Classic critical value: Q(1.36) ~ 0.049.
  EXPECT_NEAR(stats::ks_survival(1.36), 0.049, 0.002);
  EXPECT_LT(stats::ks_survival(2.0), 0.001);
}

TEST(KsTest, Preconditions) {
  EXPECT_THROW(stats::ks_two_sample({1.0}, {1.0}), util::ContractViolation);
  EXPECT_THROW(stats::ks_two_sample({1.0, 2.0}, {1.0}), util::ContractViolation);
  EXPECT_THROW(stats::ks_two_sample({0.0, 0.0}, {1.0, 1.0}), util::ContractViolation);
  EXPECT_THROW(stats::ks_two_sample({-1.0, 2.0}, {1.0, 1.0}),
               util::ContractViolation);
}

TEST(KsTest, NullCalibrationRejectsAboutAlpha) {
  stats::Rng rng(321);
  const std::vector<double> weights{30.0, 25.0, 20.0, 15.0, 10.0};
  int rejections = 0;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(weights.size(), 0.0);
    std::vector<double> b(weights.size(), 0.0);
    for (int draw = 0; draw < 150; ++draw) {
      a[rng.weighted_index(weights)] += 1.0;
      b[rng.weighted_index(weights)] += 1.0;
    }
    if (stats::ks_two_sample(a, b).p_value < 0.05) ++rejections;
  }
  // KS over binned categories is conservative; expect <= ~alpha rejections.
  EXPECT_LT(rejections / static_cast<double>(trials), 0.08);
}

TEST(KsMatcher, MatchesProportionalAndRejectsDifferent) {
  privacy::PatternHistogram profile;
  profile.add(1, 40.0);
  profile.add(2, 20.0);
  profile.add(3, 10.0);
  privacy::PatternHistogram proportional;
  proportional.add(1, 8.0);
  proportional.add(2, 4.0);
  proportional.add(3, 2.0);
  privacy::PatternHistogram inverted;
  inverted.add(1, 2.0);
  inverted.add(2, 4.0);
  inverted.add(3, 44.0);

  privacy::MatchParams params;
  params.test = privacy::MatchTest::kKolmogorovSmirnov;
  const auto good = privacy::match_histograms(proportional, profile, params);
  ASSERT_TRUE(good.attempted);
  EXPECT_TRUE(good.matches);
  EXPECT_GT(good.ks.p_value, 0.05);
  const auto bad = privacy::match_histograms(inverted, profile, params);
  ASSERT_TRUE(bad.attempted);
  EXPECT_FALSE(bad.matches);
}

// ------------------------------------------------ reproduction pins -----

// A 24-user corpus shared by the pin tests (distinct from other fixtures
// to keep these self-contained).
const core::PrivacyAnalyzer& pin_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig dataset;
    dataset.user_count = 24;
    dataset.synthesis.days = 8;
    return core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(),
                                                 dataset);
  }();
  return analyzer;
}

TEST(ReproductionPins, Figure3ShapeHolds) {
  // Plateau at fast polling, collapse at 7,200 s.
  std::size_t reference = 0;
  std::size_t recovered_fast = 0;
  std::size_t recovered_slow = 0;
  for (std::size_t u = 0; u < pin_analyzer().user_count(); ++u) {
    const auto fast = pin_analyzer().evaluate_exposure(u, 10);
    const auto slow = pin_analyzer().evaluate_exposure(u, 7200);
    reference += fast.poi_total.reference_count;
    recovered_fast += fast.poi_total.recovered_count;
    recovered_slow += slow.poi_total.recovered_count;
  }
  EXPECT_GT(static_cast<double>(recovered_fast), 0.95 * static_cast<double>(reference));
  EXPECT_LT(static_cast<double>(recovered_slow), 0.15 * static_cast<double>(reference));
}

TEST(ReproductionPins, Figure4OrderingHolds) {
  // Pattern 2 identifies at least as many users as pattern 1 at 1 s, and
  // is strictly faster for more of them.
  int p1 = 0;
  int p2 = 0;
  int p2_faster = 0;
  int p1_faster = 0;
  for (std::size_t u = 0; u < pin_analyzer().user_count(); ++u) {
    const auto r1 =
        pin_analyzer().earliest_identification(u, privacy::Pattern::kVisits, 1);
    const auto r2 =
        pin_analyzer().earliest_identification(u, privacy::Pattern::kMovements, 1);
    p1 += r1.detected;
    p2 += r2.detected;
    if (r1.detected && r2.detected) {
      if (r2.fraction < r1.fraction) ++p2_faster;
      if (r1.fraction < r2.fraction) ++p1_faster;
    }
  }
  EXPECT_GE(p2, p1);
  EXPECT_GT(p2, static_cast<int>(pin_analyzer().user_count()) * 8 / 10);
  EXPECT_GT(p2_faster, p1_faster);
}

TEST(ReproductionPins, MarketHeadlineNumbersExact) {
  const auto report = market::run_market_study(
      market::generate_catalog(market::CatalogConfig{}), 7);
  EXPECT_EQ(report.declaring, 1137);
  EXPECT_EQ(report.functional, 528);
  EXPECT_EQ(report.background, 102);
  EXPECT_EQ(report.background_precise, 68);
}

}  // namespace
}  // namespace locpriv
