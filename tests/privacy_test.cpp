#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "privacy/adversary.hpp"
#include "stats/entropy.hpp"
#include "privacy/detection.hpp"
#include "privacy/matching.hpp"
#include "privacy/metrics.hpp"
#include "privacy/pattern_histogram.hpp"
#include "privacy/region.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

poi::Poi make_poi(int id, const geo::LatLon& where,
                  std::initializer_list<std::int64_t> enter_times,
                  std::int64_t dwell_s = 1200) {
  poi::Poi poi;
  poi.id = id;
  poi.centroid = where;
  for (const std::int64_t t : enter_times)
    poi.visits.push_back({where, t, t + dwell_s, 10});
  return poi;
}

TEST(RegionGrid, SameCellForNearbyPoints) {
  const RegionGrid grid(kAnchor, 250.0);
  const geo::LatLon a = kAnchor;
  const geo::LatLon b = geo::destination(kAnchor, 45.0, 20.0);
  EXPECT_EQ(grid.region_of(a), grid.region_of(b));
}

TEST(RegionGrid, DistinctCellsForDistantPoints) {
  const RegionGrid grid(kAnchor, 250.0);
  EXPECT_NE(grid.region_of(kAnchor),
            grid.region_of(geo::destination(kAnchor, 90.0, 600.0)));
}

TEST(RegionGrid, CenterRoundTrip) {
  const RegionGrid grid(kAnchor, 250.0);
  const geo::LatLon p = geo::destination(kAnchor, 200.0, 1234.0);
  const RegionId id = grid.region_of(p);
  const geo::LatLon center = grid.region_center(id);
  EXPECT_EQ(grid.region_of(center), id);
  EXPECT_LE(geo::haversine_m(p, center), 250.0);  // Within the cell diagonal/2 + eps.
}

TEST(RegionGrid, Preconditions) {
  EXPECT_THROW(RegionGrid(kAnchor, 0.0), util::ContractViolation);
}

TEST(PackTransition, RoundTrip) {
  const RegionId a = 123456;
  const RegionId b = 654321;
  RegionId from = 0;
  RegionId to = 0;
  unpack_transition(pack_transition(a, b), from, to);
  EXPECT_EQ(from, a);
  EXPECT_EQ(to, b);
  EXPECT_NE(pack_transition(a, b), pack_transition(b, a));  // Ordered pairs.
}

TEST(PatternHistogram, AddAndQuery) {
  PatternHistogram histogram;
  EXPECT_TRUE(histogram.empty());
  histogram.add(5);
  histogram.add(5, 2.0);
  histogram.add(9);
  EXPECT_EQ(histogram.key_count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.count(5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.count(404), 0.0);
  EXPECT_DOUBLE_EQ(histogram.total(), 4.0);
  EXPECT_THROW(histogram.add(1, 0.0), util::ContractViolation);
}

TEST(PatternHistogram, VisitHistogramCountsVisitsPerRegion) {
  const RegionGrid grid(kAnchor, 250.0);
  const geo::LatLon work = geo::destination(kAnchor, 90.0, 2000.0);
  const std::vector<poi::Poi> pois{make_poi(0, kAnchor, {0, 40000, 90000}),
                                   make_poi(1, work, {15000, 60000})};
  const PatternHistogram histogram = visit_histogram(pois, grid);
  EXPECT_EQ(histogram.key_count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.count(grid.region_of(kAnchor)), 3.0);
  EXPECT_DOUBLE_EQ(histogram.count(grid.region_of(work)), 2.0);
}

TEST(PatternHistogram, MovementHistogramCountsTransitions) {
  const RegionGrid grid(kAnchor, 250.0);
  const geo::LatLon work = geo::destination(kAnchor, 90.0, 2000.0);
  // Visits: home(0) work(15000) home(40000) work(60000) home(90000):
  // transitions h->w x2, w->h x2.
  const std::vector<poi::Poi> pois{make_poi(0, kAnchor, {0, 40000, 90000}),
                                   make_poi(1, work, {15000, 60000})};
  const PatternHistogram histogram = movement_histogram(pois, grid);
  const RegionId home_region = grid.region_of(kAnchor);
  const RegionId work_region = grid.region_of(work);
  EXPECT_EQ(histogram.key_count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.count(pack_transition(home_region, work_region)), 2.0);
  EXPECT_DOUBLE_EQ(histogram.count(pack_transition(work_region, home_region)), 2.0);
}

TEST(PatternHistogram, RegionSequenceCollapsesSamePlaceRevisits) {
  const RegionGrid grid(kAnchor, 250.0);
  // Two PoIs that fall in the same region: consecutive visits collapse.
  const geo::LatLon near = geo::destination(kAnchor, 0.0, 30.0);
  const std::vector<poi::Poi> pois{make_poi(0, kAnchor, {0, 50000}),
                                   make_poi(1, near, {20000})};
  const auto sequence = region_sequence(pois, grid);
  ASSERT_EQ(sequence.size(), 1u);  // All three visits in one region.
}

TEST(PatternHistogram, BuildHistogramDispatches) {
  const RegionGrid grid(kAnchor, 250.0);
  const std::vector<poi::Poi> pois{make_poi(0, kAnchor, {0, 10000})};
  EXPECT_EQ(build_histogram(Pattern::kVisits, pois, grid).total(), 2.0);
  EXPECT_TRUE(build_histogram(Pattern::kMovements, pois, grid).empty());
}

PatternHistogram histogram_from(std::initializer_list<std::pair<int, double>> items) {
  PatternHistogram histogram;
  for (const auto& [key, count] : items) histogram.add(key, count);
  return histogram;
}

TEST(Matching, IdenticalHistogramsMatch) {
  const auto profile = histogram_from({{1, 10.0}, {2, 20.0}, {3, 5.0}});
  const auto result = match_histograms(profile, profile, MatchParams{});
  ASSERT_TRUE(result.attempted);
  EXPECT_TRUE(result.matches);
  EXPECT_NEAR(result.chi.statistic, 0.0, 1e-12);
}

TEST(Matching, ProportionalSubsampleMatches) {
  const auto profile = histogram_from({{1, 40.0}, {2, 20.0}, {3, 10.0}});
  const auto observed = histogram_from({{1, 8.0}, {2, 4.0}, {3, 2.0}});
  const auto result = match_histograms(observed, profile, MatchParams{});
  ASSERT_TRUE(result.attempted);
  EXPECT_TRUE(result.matches);
}

TEST(Matching, GrosslyDifferentProportionsRejected) {
  const auto profile = histogram_from({{1, 10.0}, {2, 10.0}, {3, 10.0}});
  const auto observed = histogram_from({{1, 60.0}, {2, 1.0}, {3, 1.0}});
  const auto result = match_histograms(observed, profile, MatchParams{});
  ASSERT_TRUE(result.attempted);
  EXPECT_FALSE(result.matches);
}

TEST(Matching, BelowMinObservedTotalNotAttempted) {
  const auto profile = histogram_from({{1, 10.0}, {2, 10.0}});
  const auto observed = histogram_from({{1, 2.0}, {2, 2.0}});  // Total 4 < 5.
  const auto result = match_histograms(observed, profile, MatchParams{});
  EXPECT_FALSE(result.attempted);
  EXPECT_FALSE(result.matches);
}

TEST(Matching, DisjointKeySpacesNeverMatch) {
  const auto profile = histogram_from({{1, 10.0}, {2, 10.0}});
  const auto observed = histogram_from({{8, 10.0}, {9, 10.0}});
  const auto result = match_histograms(observed, profile, MatchParams{});
  EXPECT_FALSE(result.attempted);
  EXPECT_FALSE(result.matches);
}

TEST(Matching, PseudoCountPenalisesUnexpectedKeys) {
  const auto profile = histogram_from({{1, 30.0}, {2, 30.0}});
  // Half the observed mass in a region the profile has never seen.
  const auto observed = histogram_from({{1, 10.0}, {2, 10.0}, {99, 20.0}});
  MatchParams with_smoothing;
  with_smoothing.unseen_key_pseudo_count = 0.5;
  const auto smoothed = match_histograms(observed, profile, with_smoothing);
  ASSERT_TRUE(smoothed.attempted);
  EXPECT_FALSE(smoothed.matches);
  // Without smoothing (paper default), the unknown key is ignored and the
  // known keys still fit.
  const auto unsmoothed = match_histograms(observed, profile, MatchParams{});
  ASSERT_TRUE(unsmoothed.attempted);
  EXPECT_TRUE(unsmoothed.matches);
}

TEST(Matching, LowerTailVariantIsDegenerateOnScarceData) {
  // The paper-literal lower-tail reading fires as soon as the statistic is
  // away from zero — documenting the degeneracy motivates the default.
  const auto profile = histogram_from({{1, 30.0}, {2, 30.0}, {3, 30.0}});
  const auto observed = histogram_from({{1, 5.0}, {2, 1.0}, {3, 0.5}});
  MatchParams lower;
  lower.tail = stats::ChiSquareTail::kLower;
  const auto result = match_histograms(observed, profile, lower);
  ASSERT_TRUE(result.attempted);
  EXPECT_TRUE(result.matches);  // Statistic >> 0 => lower-tail p ~ 1 => "match".
}

TEST(Matching, EmptyProfileNotAttempted) {
  const auto observed = histogram_from({{1, 10.0}, {2, 10.0}});
  EXPECT_FALSE(match_histograms(observed, PatternHistogram{}, MatchParams{}).attempted);
}

std::vector<UserProfileHistograms> three_profiles() {
  std::vector<UserProfileHistograms> profiles(3);
  profiles[0].user_id = "a";
  profiles[0].visits = histogram_from({{1, 30.0}, {2, 15.0}, {3, 5.0}});
  profiles[0].movements = histogram_from({{101, 20.0}, {102, 10.0}});
  profiles[1].user_id = "b";
  profiles[1].visits = histogram_from({{1, 5.0}, {2, 30.0}, {4, 15.0}});
  profiles[1].movements = histogram_from({{201, 20.0}, {202, 10.0}});
  profiles[2].user_id = "c";
  profiles[2].visits = histogram_from({{7, 30.0}, {8, 20.0}});
  profiles[2].movements = histogram_from({{301, 25.0}, {302, 5.0}});
  return profiles;
}

TEST(Adversary, UniqueMatchIdentifies) {
  const Adversary adversary(three_profiles());
  // Proportional to profile a's visits only.
  const auto observed = histogram_from({{1, 12.0}, {2, 6.0}, {3, 2.0}});
  const auto result = adversary.identify(observed, Pattern::kVisits, MatchParams{});
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], 0u);
  EXPECT_DOUBLE_EQ(result.degree_of_anonymity, 0.0);
  EXPECT_DOUBLE_EQ(result.entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(result.posterior[0], 1.0);
}

TEST(Adversary, NoMatchLeavesFullAnonymity) {
  const Adversary adversary(three_profiles());
  const auto observed = histogram_from({{900, 10.0}, {901, 10.0}});
  const auto result = adversary.identify(observed, Pattern::kVisits, MatchParams{});
  EXPECT_TRUE(result.matched.empty());
  EXPECT_DOUBLE_EQ(result.degree_of_anonymity, 1.0);
  EXPECT_NEAR(result.entropy_bits, stats::max_entropy(3), 1e-12);
}

TEST(Adversary, MultipleMatchesYieldIntermediateAnonymity) {
  auto profiles = three_profiles();
  // Make b's visits identical to a's so both match.
  profiles[1].visits = profiles[0].visits;
  const Adversary adversary(std::move(profiles));
  const auto observed = histogram_from({{1, 12.0}, {2, 6.0}, {3, 2.0}});
  const auto result = adversary.identify(observed, Pattern::kVisits, MatchParams{});
  ASSERT_EQ(result.matched.size(), 2u);
  EXPECT_GT(result.degree_of_anonymity, 0.0);
  EXPECT_LT(result.degree_of_anonymity, 1.0);
  double posterior_sum = 0.0;
  for (const double p : result.posterior) posterior_sum += p;
  EXPECT_NEAR(posterior_sum, 1.0, 1e-12);
}

TEST(Adversary, WeightingVariantsBothNormalise) {
  auto profiles = three_profiles();
  profiles[1].visits = profiles[0].visits;
  const Adversary adversary(std::move(profiles));
  const auto observed = histogram_from({{1, 11.0, }, {2, 7.0}, {3, 2.0}});
  for (const auto weighting :
       {PosteriorWeighting::kChiSquare, PosteriorWeighting::kInverseChiSquare}) {
    const auto result =
        adversary.identify(observed, Pattern::kVisits, MatchParams{}, weighting);
    double sum = 0.0;
    for (const double p : result.posterior) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Adversary, EmptyProfileSetRejected) {
  EXPECT_THROW(Adversary({}), util::ContractViolation);
}

TEST(Metrics, PoiRecoveryCountsWithinRadius) {
  const geo::LatLon work = geo::destination(kAnchor, 90.0, 2000.0);
  const std::vector<poi::Poi> reference{make_poi(0, kAnchor, {0, 10000}),
                                        make_poi(1, work, {20000})};
  // Collected found home (slightly displaced) but not work.
  const std::vector<poi::Poi> collected{
      make_poi(0, geo::destination(kAnchor, 10.0, 20.0), {0})};
  const auto recovery = poi_recovery(reference, collected, 50.0);
  EXPECT_EQ(recovery.reference_count, 2u);
  EXPECT_EQ(recovery.recovered_count, 1u);
  EXPECT_DOUBLE_EQ(recovery.fraction(), 0.5);
  EXPECT_FALSE(recovery.complete());
}

TEST(Metrics, EmptyReferenceIsVacuouslyComplete) {
  const auto recovery = poi_recovery({}, {}, 50.0);
  EXPECT_DOUBLE_EQ(recovery.fraction(), 1.0);
  EXPECT_TRUE(recovery.complete());
}

TEST(Metrics, SensitiveRecoveryFiltersOnReferenceVisits) {
  const geo::LatLon rare_place = geo::destination(kAnchor, 0.0, 900.0);
  const std::vector<poi::Poi> reference{
      make_poi(0, kAnchor, {0, 1'0000, 20000, 30000, 40000}),  // 5 visits: not sensitive.
      make_poi(1, rare_place, {50000})};                       // 1 visit: sensitive.
  const std::vector<poi::Poi> collected{make_poi(0, kAnchor, {0}),
                                        make_poi(1, rare_place, {50000})};
  const auto recovery = sensitive_poi_recovery(reference, collected, 50.0, 3);
  EXPECT_EQ(recovery.reference_count, 1u);
  EXPECT_EQ(recovery.recovered_count, 1u);
  EXPECT_THROW(sensitive_poi_recovery(reference, collected, 50.0, 0),
               util::ContractViolation);
  EXPECT_THROW(poi_recovery(reference, collected, 0.0), util::ContractViolation);
}

TEST(Detection, DefaultFractionsAscending) {
  const auto fractions = DetectionConfig::make_default_fractions();
  ASSERT_EQ(fractions.size(), 50u);
  EXPECT_DOUBLE_EQ(fractions.front(), 0.02);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
  for (std::size_t i = 1; i < fractions.size(); ++i)
    EXPECT_LT(fractions[i - 1], fractions[i]);
}

}  // namespace
}  // namespace locpriv::privacy
