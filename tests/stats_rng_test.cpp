#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/rng.hpp"
#include "util/expect.hpp"

namespace locpriv::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMixKnownSequenceIsStable) {
  // Pin the first outputs so accidental algorithm changes (which would
  // silently change every experiment) fail loudly.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

TEST(Rng, Uniform01InRangeAndWellSpread) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, NextBelowIsUnbiasedAcrossSmallRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.next_below(5)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), util::ContractViolation);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(3, 2), util::ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanTracksParameter) {
  const double mean = GetParam();
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  // Poisson sd is sqrt(mean); allow 5 standard errors.
  EXPECT_NEAR(sum / n, mean, 5.0 * std::sqrt(mean / n) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 4.5, 30.0, 80.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexPreconditions) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), util::ContractViolation);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), util::ContractViolation);
  std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), util::ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  (void)parent_copy.next_u64();  // Account for the fork's draw.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace locpriv::stats
