#include <gtest/gtest.h>

#include <sstream>

#include "market/catalog.hpp"
#include "market/report_io.hpp"
#include "market/study.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

namespace locpriv {
namespace {

util::Args standard_args() {
  util::Args args;
  args.declare("--users", "12");
  args.declare("--out", "");
  args.declare_bool("--verbose");
  return args;
}

TEST(Args, DefaultsApplyWhenNotSupplied) {
  util::Args args = standard_args();
  const char* argv[] = {"prog"};
  args.parse(1, argv);
  EXPECT_EQ(args.get("--users"), "12");
  EXPECT_EQ(args.get_int("--users"), 12);
  EXPECT_FALSE(args.supplied("--users"));
  EXPECT_FALSE(args.get_bool("--verbose"));
}

TEST(Args, SpaceAndEqualsSyntax) {
  util::Args args = standard_args();
  const char* argv[] = {"prog", "--users", "30", "--out=/tmp/x", "--verbose"};
  args.parse(5, argv);
  EXPECT_EQ(args.get_int("--users"), 30);
  EXPECT_EQ(args.get("--out"), "/tmp/x");
  EXPECT_TRUE(args.get_bool("--verbose"));
  EXPECT_TRUE(args.supplied("--users"));
}

TEST(Args, PositionalCollected) {
  util::Args args = standard_args();
  const char* argv[] = {"prog", "alpha", "--users", "5", "beta"};
  args.parse(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "alpha");
  EXPECT_EQ(args.positional()[1], "beta");
}

TEST(Args, ErrorsOnMisuse) {
  util::Args args = standard_args();
  const char* unknown[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(args.parse(3, unknown), std::runtime_error);

  util::Args args2 = standard_args();
  const char* missing[] = {"prog", "--users"};
  EXPECT_THROW(args2.parse(2, missing), std::runtime_error);

  util::Args args3 = standard_args();
  const char* bool_value[] = {"prog", "--verbose=1"};
  EXPECT_THROW(args3.parse(2, bool_value), std::runtime_error);

  util::Args args4 = standard_args();
  const char* argv[] = {"prog", "--users", "abc"};
  args4.parse(3, argv);
  EXPECT_THROW(args4.get_int("--users"), std::runtime_error);
  EXPECT_THROW(args4.get("--undeclared"), std::runtime_error);
}

TEST(Args, ParseFromOffsetSkipsSubcommand) {
  util::Args args = standard_args();
  const char* argv[] = {"prog", "subcommand", "--users", "7"};
  args.parse(4, argv, 2);
  EXPECT_EQ(args.get_int("--users"), 7);
  EXPECT_TRUE(args.positional().empty());
}

TEST(ReportIo, SummaryCsvMatchesReport) {
  const auto catalog = market::generate_catalog(market::CatalogConfig{});
  const auto report = market::run_market_study(catalog, 7);
  std::ostringstream out;
  market::write_summary_csv(out, report);
  const auto doc = util::parse_csv(out.str(), /*has_header=*/true);
  ASSERT_EQ(doc.header.size(), 3u);
  ASSERT_GE(doc.rows.size(), 10u);
  // Every measured value equals its paper value for the calibrated corpus.
  for (const auto& row : doc.rows) EXPECT_EQ(row[1], row[2]) << row[0];
}

TEST(ReportIo, ObservationsCsvHasOneRowPerDeclaringApp) {
  const auto catalog = market::generate_catalog(market::CatalogConfig{});
  const auto report = market::run_market_study(catalog, 7);
  std::ostringstream out;
  market::write_observations_csv(out, report);
  const auto doc = util::parse_csv(out.str(), /*has_header=*/true);
  EXPECT_EQ(doc.rows.size(), static_cast<std::size_t>(report.declaring));
  // Background rows carry a provider combo and a positive interval.
  std::size_t background_rows = 0;
  for (const auto& row : doc.rows) {
    ASSERT_EQ(row.size(), doc.header.size());
    if (row[4] == "1") {
      ++background_rows;
      EXPECT_FALSE(row[5].empty());
      EXPECT_NE(row[6], "0");
    }
  }
  EXPECT_EQ(background_rows, 102u);
}

}  // namespace
}  // namespace locpriv
