#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "privacy/inference.hpp"
#include "trace/sampling.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};
// 2008-06-02 00:00 UTC, a Monday.
constexpr std::int64_t kMonday = 1212364800;

poi::Poi place_with_visits(int id, const geo::LatLon& where,
                           std::initializer_list<std::pair<std::int64_t, std::int64_t>>
                               intervals) {
  poi::Poi poi;
  poi.id = id;
  poi.centroid = where;
  for (const auto& [enter, exit] : intervals)
    poi.visits.push_back({where, enter, exit, 10});
  return poi;
}

TEST(SplitDwell, NightWindow) {
  // 23:00 -> 07:00: 7 h night (23-24 + 0-6), 0 workday (before 09:00).
  const auto split = split_dwell(kMonday + 23 * 3600, kMonday + 31 * 3600);
  EXPECT_DOUBLE_EQ(split.night_s, 7.0 * 3600.0);
  EXPECT_DOUBLE_EQ(split.workday_s, 0.0);
}

TEST(SplitDwell, WorkdayWindowOnWeekday) {
  // Monday 10:00 -> 16:00: all workday, no night.
  const auto split = split_dwell(kMonday + 10 * 3600, kMonday + 16 * 3600);
  EXPECT_DOUBLE_EQ(split.workday_s, 6.0 * 3600.0);
  EXPECT_DOUBLE_EQ(split.night_s, 0.0);
}

TEST(SplitDwell, WeekendDaytimeIsNotWorkday) {
  // kMonday - 1 day = Sunday.
  const std::int64_t sunday = kMonday - 86400;
  const auto split = split_dwell(sunday + 10 * 3600, sunday + 16 * 3600);
  EXPECT_DOUBLE_EQ(split.workday_s, 0.0);
}

TEST(SplitDwell, MultiDayStayAccumulates) {
  // Two full days: 2 x 8 h night.
  const auto split = split_dwell(kMonday, kMonday + 2 * 86400);
  EXPECT_DOUBLE_EQ(split.night_s, 16.0 * 3600.0);
  EXPECT_DOUBLE_EQ(split.workday_s, 18.0 * 3600.0);  // Mon + Tue working hours.
}

TEST(SplitDwell, EmptyInterval) {
  const auto split = split_dwell(kMonday, kMonday);
  EXPECT_DOUBLE_EQ(split.night_s, 0.0);
  EXPECT_DOUBLE_EQ(split.workday_s, 0.0);
  EXPECT_THROW(split_dwell(kMonday, kMonday - 1), util::ContractViolation);
}

TEST(InferHomeWork, FindsNightPlaceAndDayPlace) {
  const RegionGrid grid(kAnchor, 250.0);
  const geo::LatLon home_position = kAnchor;
  const geo::LatLon work_position = geo::destination(kAnchor, 90.0, 3000.0);
  const geo::LatLon gym_position = geo::destination(kAnchor, 0.0, 2000.0);
  std::vector<poi::Poi> pois;
  // Home: overnight stays. Work: Monday+Tuesday 9-17. Gym: one evening hour.
  pois.push_back(place_with_visits(0, home_position,
                                   {{kMonday - 8 * 3600, kMonday + 7 * 3600},
                                    {kMonday + 20 * 3600, kMonday + 31 * 3600}}));
  pois.push_back(place_with_visits(
      1, work_position,
      {{kMonday + 9 * 3600, kMonday + 17 * 3600},
       {kMonday + 86400 + 9 * 3600, kMonday + 86400 + 17 * 3600}}));
  pois.push_back(place_with_visits(2, gym_position,
                                   {{kMonday + 18 * 3600, kMonday + 19 * 3600}}));

  const HomeWorkResult result = infer_home_work(pois, grid);
  ASSERT_TRUE(result.resolved());
  EXPECT_EQ(result.home_index, 0);
  EXPECT_EQ(result.work_index, 1);
  EXPECT_EQ(result.home_region, grid.region_of(home_position));
  EXPECT_EQ(result.work_region, grid.region_of(work_position));
  EXPECT_GT(result.home_night_s, 10.0 * 3600.0);
  EXPECT_GT(result.work_workday_s, 15.0 * 3600.0);
}

TEST(InferHomeWork, UnresolvedWithoutNightDwell) {
  const RegionGrid grid(kAnchor, 250.0);
  std::vector<poi::Poi> pois;
  pois.push_back(place_with_visits(0, kAnchor,
                                   {{kMonday + 10 * 3600, kMonday + 11 * 3600}}));
  const HomeWorkResult result = infer_home_work(pois, grid);
  EXPECT_EQ(result.home_index, -1);
  EXPECT_FALSE(result.resolved());
}

TEST(PairAnonymity, CountsSharersIncludingSelf) {
  HomeWorkResult a;
  a.home_index = a.work_index = 0;
  a.home_region = 10;
  a.work_region = 20;
  HomeWorkResult b = a;              // Same pair.
  HomeWorkResult c = a;
  c.work_region = 21;                // Different work.
  HomeWorkResult d;                  // Unresolved.
  const std::vector<HomeWorkResult> population{a, b, c, d};
  EXPECT_EQ(pair_anonymity_set(population, 0), 2u);
  EXPECT_EQ(pair_anonymity_set(population, 2), 1u);
  EXPECT_THROW(pair_anonymity_set(population, 3), util::ContractViolation);
  EXPECT_THROW(pair_anonymity_set(population, 9), util::ContractViolation);
}

TEST(TimeToConfusion, SingleContinuousEpisode) {
  std::vector<trace::TracePoint> points;
  for (int i = 0; i <= 100; ++i)
    points.push_back({geo::destination(kAnchor, 90.0, i * 3.0), i * 2});
  const TrackingStats stats = time_to_confusion(points, 60, 30.0);
  EXPECT_EQ(stats.episode_count, 1u);
  EXPECT_DOUBLE_EQ(stats.max_s, 200.0);
  EXPECT_DOUBLE_EQ(stats.mean_s, 200.0);
}

TEST(TimeToConfusion, GapBreaksTracking) {
  std::vector<trace::TracePoint> points;
  for (int i = 0; i < 10; ++i) points.push_back({kAnchor, i});
  for (int i = 0; i < 10; ++i) points.push_back({kAnchor, 1000 + i});
  const TrackingStats stats = time_to_confusion(points, 60, 30.0);
  EXPECT_EQ(stats.episode_count, 2u);
  EXPECT_DOUBLE_EQ(stats.max_s, 9.0);
}

TEST(TimeToConfusion, ImplausibleSpeedBreaksTracking) {
  std::vector<trace::TracePoint> points{
      {kAnchor, 0},
      {geo::destination(kAnchor, 90.0, 10.0), 5},
      {geo::destination(kAnchor, 90.0, 50000.0), 10},  // 10 km/s jump.
  };
  const TrackingStats stats = time_to_confusion(points, 60, 30.0);
  EXPECT_EQ(stats.episode_count, 2u);
}

TEST(TimeToConfusion, EmptyAndPreconditions) {
  const TrackingStats stats = time_to_confusion({}, 60, 30.0);
  EXPECT_EQ(stats.episode_count, 0u);
  std::vector<trace::TracePoint> one{{kAnchor, 0}};
  EXPECT_THROW(time_to_confusion(one, 0, 30.0), util::ContractViolation);
  EXPECT_THROW(time_to_confusion(one, 60, 0.0), util::ContractViolation);
}

TEST(TimeToConfusion, DecimationShortensTracking) {
  // Property: the sparser the released trace, the shorter the continuous
  // tracking episodes (with a fixed linkability gap).
  std::vector<trace::TracePoint> points;
  for (int i = 0; i < 4000; ++i)
    points.push_back({geo::destination(kAnchor, 45.0, i * 2.0), i * 3});
  const TrackingStats dense = time_to_confusion(points, 120, 30.0);
  const auto sparse_points = trace::decimate(points, 300);
  const TrackingStats sparse = time_to_confusion(sparse_points, 120, 30.0);
  EXPECT_GT(dense.max_s, sparse.max_s);
}

}  // namespace
}  // namespace locpriv::privacy
