// Fault-injection subsystem: schedule determinism, availability queries,
// fused failover hysteresis, and end-to-end injector behaviour on the
// simulated framework (same seed => identical delivery log; zero-rate
// config => byte-identical to an uninstrumented run).
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "android/replay.hpp"
#include "geo/geodesy.hpp"
#include "sim/faults/failover.hpp"
#include "sim/faults/injector.hpp"
#include "sim/faults/schedule.hpp"

namespace locpriv::sim {
namespace {

using android::AndroidManifest;
using android::AppBehavior;
using android::DeviceSimulator;
using android::LocationProvider;
using android::Permission;

const geo::LatLon kAnchor{39.9042, 116.4074};

AndroidManifest spy_manifest() {
  AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {Permission::kAccessFineLocation};
  return manifest;
}

AppBehavior spy_behavior(LocationProvider provider, std::int64_t interval_s) {
  AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {provider};
  behavior.request_interval_s = interval_s;
  return behavior;
}

std::vector<trace::TracePoint> straight_walk(std::int64_t t0, int fixes,
                                             std::int64_t step_s) {
  std::vector<trace::TracePoint> points;
  for (int i = 0; i < fixes; ++i)
    points.push_back(
        {geo::destination(kAnchor, 90.0, i * 5.0), t0 + i * step_s});
  return points;
}

/// Full-precision serialisation of a delivery log, for byte-level equality.
std::string serialize_log(const android::LocationManager& manager) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const auto& delivery : manager.delivery_log())
    os << delivery.package << ' '
       << android::provider_name(delivery.location.provider) << ' '
       << delivery.location.time_s << ' ' << delivery.location.position.lat_deg
       << ' ' << delivery.location.position.lon_deg << ' '
       << delivery.location.accuracy_m << '\n';
  return os.str();
}

/// Drives a spy app along `points`; if `injector` is non-null it is installed
/// before replay. Returns the serialised delivery log.
std::string run_spy(const std::vector<trace::TracePoint>& points,
                    LocationProvider provider, std::int64_t interval_s,
                    FaultInjector* injector) {
  DeviceSimulator device(7, points.front().position);
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(provider, interval_s));
  device.launch("com.spy");
  device.move_to_background("com.spy");
  if (injector != nullptr) injector->install(device.location_manager());
  android::replay_trace(device, points, /*sync_clock=*/false);
  return serialize_log(device.location_manager());
}

TEST(NormalizeWindows, MergesSortsAndDropsDegenerate) {
  const auto merged = normalize_windows({{200, 250},
                                         {100, 150},
                                         {140, 180},   // Overlaps [100,150).
                                         {180, 200},   // Touches both sides.
                                         {300, 300},   // Empty: dropped.
                                         {400, 390}});  // Inverted: dropped.
  const std::vector<OutageWindow> expected = {{100, 250}};
  EXPECT_EQ(merged, expected);
}

TEST(FaultSchedule, SameSeedSameWindowsDifferentSeedDifferent) {
  const FaultConfig config = FaultConfig::canonical(1.0);
  const FaultSchedule a(config, 42, 0, 48 * 3600);
  const FaultSchedule b(config, 42, 0, 48 * 3600);
  EXPECT_EQ(a.gps_windows(), b.gps_windows());
  EXPECT_EQ(a.network_windows(), b.network_windows());
  ASSERT_FALSE(a.gps_windows().empty());

  const FaultSchedule c(config, 43, 0, 48 * 3600);
  EXPECT_NE(a.gps_windows(), c.gps_windows());
}

TEST(FaultSchedule, ZeroIntensityIsPerfectSubstrate) {
  const FaultSchedule schedule(FaultConfig::canonical(0.0), 42, 0, 48 * 3600);
  EXPECT_TRUE(schedule.gps_windows().empty());
  EXPECT_TRUE(schedule.network_windows().empty());
  EXPECT_TRUE(schedule.available(LocationProvider::kGps, 12345));
}

TEST(FaultSchedule, AvailabilityAndHealthyDuration) {
  const FaultSchedule schedule(FaultConfig{}, {{100, 200}}, {});
  EXPECT_TRUE(schedule.available(LocationProvider::kGps, 99));
  EXPECT_FALSE(schedule.available(LocationProvider::kGps, 100));
  EXPECT_FALSE(schedule.available(LocationProvider::kGps, 199));
  EXPECT_TRUE(schedule.available(LocationProvider::kGps, 200));

  EXPECT_EQ(schedule.available_for_s(LocationProvider::kGps, 50), 50);
  EXPECT_EQ(schedule.available_for_s(LocationProvider::kGps, 150), 0);
  EXPECT_EQ(schedule.available_for_s(LocationProvider::kGps, 260), 60);
  // Network has no windows: healthy since the horizon start.
  EXPECT_EQ(schedule.available_for_s(LocationProvider::kNetwork, 75), 75);
  // Passive and fused never fail at the schedule level.
  EXPECT_TRUE(schedule.available(LocationProvider::kPassive, 150));
  EXPECT_TRUE(schedule.available(LocationProvider::kFused, 150));
}

TEST(FusedFailover, DowngradesImmediatelyUpgradesAfterHysteresis) {
  FaultConfig config;
  config.failover_hysteresis_s = 50;
  const FaultSchedule schedule(config, {{100, 200}}, {});
  FusedFailover failover(schedule);
  for (std::int64_t t = 0; t <= 400; ++t) failover.select(t);

  const std::vector<FusedFailover::Transition> expected = {
      {100, FusedSource::kGps, FusedSource::kNetwork},   // GPS dies: instant.
      {250, FusedSource::kNetwork, FusedSource::kGps}};  // 200 + hysteresis.
  EXPECT_EQ(failover.transitions(), expected);
  EXPECT_EQ(failover.current(), FusedSource::kGps);
}

TEST(FusedFailover, ShortRecoveryBlipsDoNotFlap) {
  FaultConfig config;
  config.failover_hysteresis_s = 50;
  // Two GPS outages with a 20 s recovery between them — shorter than the
  // hysteresis, so the feed must stay on network throughout.
  const FaultSchedule schedule(config, {{100, 110}, {130, 140}}, {});
  FusedFailover failover(schedule);
  for (std::int64_t t = 0; t <= 400; ++t) failover.select(t);

  const std::vector<FusedFailover::Transition> expected = {
      {100, FusedSource::kGps, FusedSource::kNetwork},
      {190, FusedSource::kNetwork, FusedSource::kGps}};  // 140 + hysteresis.
  EXPECT_EQ(failover.transitions(), expected);
}

TEST(FusedFailover, FallsToLastKnownWhenEverythingIsOut) {
  const FaultSchedule schedule(FaultConfig{}, {{100, 300}}, {{100, 300}});
  FusedFailover failover(schedule);
  EXPECT_EQ(failover.select(50), FusedSource::kGps);
  EXPECT_EQ(failover.select(150), FusedSource::kLastKnown);
}

TEST(FaultInjector, SameSeedIdenticalDeliveryLogDifferentSeedNot) {
  const auto points = straight_walk(1000, 300, 2);  // 600 s of walking.
  const FaultConfig config = FaultConfig::canonical(0.75);
  const std::int64_t t0 = points.front().timestamp_s;
  const std::int64_t t1 = points.back().timestamp_s + 1;

  FaultInjector a(config, 42, t0, t1);
  FaultInjector b(config, 42, t0, t1);
  FaultInjector c(config, 43, t0, t1);
  const std::string log_a = run_spy(points, LocationProvider::kGps, 10, &a);
  const std::string log_b = run_spy(points, LocationProvider::kGps, 10, &b);
  const std::string log_c = run_spy(points, LocationProvider::kGps, 10, &c);

  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);  // Bit-identical replay.
  EXPECT_NE(log_a, log_c);
}

TEST(FaultInjector, ZeroRateConfigIsByteIdenticalToNoInjector) {
  const auto points = straight_walk(1000, 200, 2);
  const std::int64_t t0 = points.front().timestamp_s;
  const std::int64_t t1 = points.back().timestamp_s + 1;

  const std::string bare = run_spy(points, LocationProvider::kGps, 10, nullptr);
  FaultInjector injector(FaultConfig::canonical(0.0), 42, t0, t1);
  const std::string faulted = run_spy(points, LocationProvider::kGps, 10, &injector);

  ASSERT_FALSE(bare.empty());
  EXPECT_EQ(bare, faulted);
  EXPECT_EQ(injector.counters().withheld_outage, 0u);
  EXPECT_EQ(injector.counters().dropped_loss, 0u);
  EXPECT_GT(injector.counters().delivered, 0u);
}

TEST(FaultInjector, OutageWithholdsFixesAndRetriesAtRecovery) {
  const auto points = straight_walk(1000, 200, 2);  // [1000, 1398].
  FaultInjector injector(FaultSchedule(FaultConfig{}, {{1100, 1200}}, {}),
                         /*seed=*/42);

  DeviceSimulator device(7, points.front().position);
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(LocationProvider::kGps, 10));
  device.launch("com.spy");
  device.move_to_background("com.spy");
  injector.install(device.location_manager());
  android::replay_trace(device, points, /*sync_clock=*/false);

  bool saw_recovery_fix = false;
  for (const auto& delivery : device.location_manager().delivery_log()) {
    const std::int64_t t = delivery.location.time_s;
    EXPECT_FALSE(t >= 1100 && t < 1200) << "fix delivered inside outage at " << t;
    // kDropRetry keeps the request due, so service resumes the second the
    // provider recovers — not a full interval later.
    if (t == 1200) saw_recovery_fix = true;
  }
  EXPECT_TRUE(saw_recovery_fix);
  EXPECT_GT(injector.counters().withheld_outage, 0u);
}

TEST(FaultInjector, FusedServesStaleLastKnownWhenAllSourcesOut) {
  const auto points = straight_walk(1000, 200, 2);  // [1000, 1398].
  // Both real sources die at 1100 and never recover inside the trace.
  FaultInjector injector(
      FaultSchedule(FaultConfig{}, {{1100, 2000}}, {{1100, 2000}}),
      /*seed=*/42);

  DeviceSimulator device(7, points.front().position);
  device.jump_to(points.front().timestamp_s - 1);
  device.install(spy_manifest(), spy_behavior(LocationProvider::kFused, 10));
  device.launch("com.spy");
  device.move_to_background("com.spy");
  injector.install(device.location_manager());
  android::replay_trace(device, points, /*sync_clock=*/false);

  const auto& log = device.location_manager().delivery_log();
  ASSERT_FALSE(log.empty());
  geo::LatLon last_live{};
  bool saw_stale = false;
  for (const auto& delivery : log) {
    if (delivery.location.time_s < 1100) {
      last_live = delivery.location.position;
    } else {
      // Every fix after the blackout reports the frozen pre-outage position
      // at a fresh timestamp — the stale-fix leak the failover models.
      saw_stale = true;
      EXPECT_LT(geo::haversine_m(delivery.location.position, last_live), 0.01);
    }
  }
  EXPECT_TRUE(saw_stale);
  EXPECT_GT(injector.counters().served_last_known, 0u);
}

TEST(FaultInjector, CertainLossDropsEverythingButConsumesTheInterval) {
  const auto points = straight_walk(1000, 100, 2);
  FaultConfig config;
  config.gps.drop_probability = 1.0;
  FaultInjector injector(config, 42, points.front().timestamp_s,
                         points.back().timestamp_s + 1);
  const std::string log = run_spy(points, LocationProvider::kGps, 10, &injector);

  EXPECT_TRUE(log.empty());
  EXPECT_EQ(injector.counters().delivered, 0u);
  // kDropConsume advances the interval clock: one loss per due request, not
  // one per tick.
  EXPECT_GT(injector.counters().dropped_loss, 0u);
  EXPECT_LE(injector.counters().dropped_loss, 21u);  // ~198 s / 10 s + slack.
}

TEST(FaultInjector, DelayedFixesArriveLateAndAreCounted) {
  const auto points = straight_walk(1000, 200, 2);
  FaultConfig config;
  config.gps.delay_probability = 1.0;
  config.gps.max_delay_s = 5;
  FaultInjector injector(config, 42, points.front().timestamp_s,
                         points.back().timestamp_s + 1);
  const std::string log = run_spy(points, LocationProvider::kGps, 10, &injector);

  EXPECT_FALSE(log.empty());
  EXPECT_GT(injector.counters().delayed, 0u);
  EXPECT_EQ(injector.counters().delayed, injector.counters().delivered);
}

}  // namespace
}  // namespace locpriv::sim
