// Resilient Geolife ingestion: quarantining lenient mode, strict-mode
// errors with file context, and line-ending tolerance in parse_plt.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/geolife.hpp"

namespace locpriv::trace {
namespace {

namespace fs = std::filesystem;

/// A three-user dataset on disk; returns its root. The caller owns cleanup.
/// The directory is keyed by the running test's name: ctest -j runs each
/// TEST as its own process, and a shared path would let concurrent Ingest
/// tests remove_all each other's fixtures mid-read.
fs::path write_fixture_dataset() {
  const fs::path root =
      fs::temp_directory_path() /
      (std::string("locpriv_ingest_test_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(root);

  std::vector<UserTrace> users(3);
  users[0].user_id = "000";
  users[0].trajectories.push_back(
      Trajectory({{{39.90, 116.40}, 1224814000}, {{39.91, 116.41}, 1224814060}}));
  users[0].trajectories.push_back(
      Trajectory({{{39.92, 116.42}, 1224900000}, {{39.93, 116.43}, 1224900060}}));
  users[1].user_id = "001";
  users[1].trajectories.push_back(Trajectory({{{40.00, 116.30}, 1224814000}}));
  users[2].user_id = "002";
  users[2].trajectories.push_back(
      Trajectory({{{40.10, 116.20}, 1224814000}, {{40.11, 116.21}, 1224814030}}));
  write_geolife_dataset(root, users);
  return root;
}

void overwrite(const fs::path& path, const std::string& content) {
  // Fixture corruption on purpose: this test plants exactly the torn and
  // corrupt files the atomic writer prevents. locpriv-lint: allow(raw-write)
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << content;
}

const std::string kPltHeader = "h1\nh2\nh3\nh4\nh5\nh6\n";

TEST(Ingest, LenientQuarantinesCorruptFileAndLoadsTheRest) {
  const fs::path root = write_fixture_dataset();
  const fs::path corrupt = root / "001" / "Trajectory" / "000000.plt";
  overwrite(corrupt, kPltHeader + "garbage,record\n");
  // An empty file is not an error: it parses to zero records.
  overwrite(root / "002" / "Trajectory" / "000001.plt", "");

  IngestReport report;
  const auto users =
      read_geolife_dataset(root, ReadOptions{.lenient = true}, &report);

  // Users 000 and 002 load in full; 001's only file was quarantined.
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].user_id, "000");
  EXPECT_EQ(users[0].total_points(), 4u);
  EXPECT_EQ(users[1].user_id, "002");
  EXPECT_EQ(users[1].total_points(), 2u);

  EXPECT_EQ(report.files_scanned, 5u);
  EXPECT_EQ(report.files_loaded, 3u);
  EXPECT_EQ(report.empty_files, 1u);
  EXPECT_EQ(report.points_loaded, 6u);
  EXPECT_EQ(report.users_loaded, 2u);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.quarantined.size(), 1u);  // Exactly the corrupt file.
  EXPECT_EQ(report.quarantined[0].path, corrupt);
  EXPECT_NE(report.quarantined[0].error.find("line 7"), std::string::npos)
      << report.quarantined[0].error;

  fs::remove_all(root);
}

TEST(Ingest, StrictModeThrowsWithFileAndLineContext) {
  const fs::path root = write_fixture_dataset();
  const fs::path corrupt = root / "001" / "Trajectory" / "000000.plt";
  overwrite(corrupt, kPltHeader + "39.9,116.4,0,0,39745.0\nabc,1,2,3,4\n");

  try {
    read_geolife_dataset(root);
    FAIL() << "expected strict mode to throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(corrupt.string()), std::string::npos) << what;
    EXPECT_NE(what.find("line 8"), std::string::npos) << what;
  }
  fs::remove_all(root);
}

TEST(Ingest, StrictModeStillFillsTheReportWhenClean) {
  const fs::path root = write_fixture_dataset();
  IngestReport report;
  const auto users = read_geolife_dataset(root, ReadOptions{}, &report);
  ASSERT_EQ(users.size(), 3u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_scanned, 4u);
  EXPECT_EQ(report.files_loaded, 4u);
  EXPECT_EQ(report.points_loaded, 7u);
  EXPECT_EQ(report.users_loaded, 3u);
  fs::remove_all(root);
}

TEST(Ingest, LenientAndStrictAgreeOnCleanData) {
  const fs::path root = write_fixture_dataset();
  const auto strict = read_geolife_dataset(root);
  const auto lenient = read_geolife_dataset(root, ReadOptions{.lenient = true});
  ASSERT_EQ(strict.size(), lenient.size());
  for (std::size_t u = 0; u < strict.size(); ++u) {
    EXPECT_EQ(strict[u].user_id, lenient[u].user_id);
    EXPECT_EQ(strict[u].total_points(), lenient[u].total_points());
  }
  fs::remove_all(root);
}

TEST(ParsePlt, ToleratesCrlfLoneCrAndTrailingBlankLines) {
  const std::string record1 = "39.906631,116.385564,0,492,39745.0902662037";
  const std::string record2 = "39.906554,116.385625,0,492,39745.0903240741";
  const std::string lf =
      "h1\nh2\nh3\nh4\nh5\nh6\n" + record1 + "\n" + record2 + "\n";
  const std::string crlf = "h1\r\nh2\r\nh3\r\nh4\r\nh5\r\nh6\r\n" + record1 +
                           "\r\n" + record2 + "\r\n\r\n\r\n";
  const std::string lone_cr =
      "h1\rh2\rh3\rh4\rh5\rh6\r" + record1 + "\r" + record2 + "\r\r";

  const Trajectory baseline = parse_plt(lf);
  ASSERT_EQ(baseline.size(), 2u);
  for (const std::string& variant : {crlf, lone_cr}) {
    const Trajectory parsed = parse_plt(variant);
    ASSERT_EQ(parsed.size(), baseline.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_EQ(parsed[i].position, baseline[i].position);
      EXPECT_EQ(parsed[i].timestamp_s, baseline[i].timestamp_s);
    }
  }
}

TEST(ParsePlt, MalformedRecordStillThrowsWithLineNumber) {
  const std::string text =
      "h1\r\nh2\r\nh3\r\nh4\r\nh5\r\nh6\r\n"
      "39.9,116.4,0,0,39745.0\r\n"
      "39.9,not-a-longitude,0,0,39745.0\r\n";
  try {
    parse_plt(text);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 8"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace locpriv::trace
