// The three consumers routed through geo::GeoTree / geo::GeoCellIndex must
// stay *exactly* equivalent to their original linear scans — same counts,
// same indices, bitwise-same centroids — because the paper-reproduction
// metrics are asserted byte-identical across PRs. Each suite here pits the
// indexed path against its retained scan twin on randomized inputs, plus
// the locate() boundary regression for the timeline estimator.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "geo/latlon.hpp"
#include "poi/clustering.hpp"
#include "privacy/adversary.hpp"
#include "privacy/metrics.hpp"
#include "privacy/reconstruction.hpp"
#include "privacy/region.hpp"
#include "stats/rng.hpp"
#include "trace/trajectory.hpp"

namespace locpriv {
namespace {

// A wandering time-ordered fix stream around the Beijing anchor.
std::vector<trace::TracePoint> make_fixes(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<trace::TracePoint> fixes(n);
  geo::LatLon at{39.9, 116.4};
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    at.lat_deg = std::clamp(at.lat_deg + rng.uniform(-2e-3, 2e-3), 39.8, 40.0);
    at.lon_deg = std::clamp(at.lon_deg + rng.uniform(-2e-3, 2e-3), 116.3, 116.5);
    fixes[i] = {at, t};
    t += rng.uniform_int(1, 120);
  }
  return fixes;
}

// Stays jittered around a handful of places, chronological.
std::vector<poi::StayPoint> make_stays(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<geo::LatLon> places;
  for (int p = 0; p < 12; ++p)
    places.push_back({39.9 + rng.uniform(-0.05, 0.05), 116.4 + rng.uniform(-0.05, 0.05)});
  std::vector<poi::StayPoint> stays(n);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::LatLon& place = places[rng.next_below(places.size())];
    stays[i].centroid = {place.lat_deg + rng.uniform(-3e-4, 3e-4),
                        place.lon_deg + rng.uniform(-3e-4, 3e-4)};
    stays[i].enter_s = t;
    stays[i].exit_s = t + 700;
    stays[i].fix_count = 5;
    t += 1000;
  }
  return stays;
}

TEST(Locate, BeforeFirstBetweenAndAfterLast) {
  const std::vector<trace::TracePoint> fixes = {
      {{39.90, 116.40}, 100}, {{39.91, 116.41}, 200}, {{39.92, 116.42}, 300}};
  const privacy::PositionEstimator estimator(fixes);
  // Before the first fix the adversary has no earlier evidence: index 0.
  EXPECT_EQ(estimator.locate(50), 0u);
  EXPECT_EQ(estimator.estimate(50).lat_deg, 39.90);
  // Exactly at a fix resolves to that fix.
  EXPECT_EQ(estimator.locate(100), 0u);
  EXPECT_EQ(estimator.locate(200), 1u);
  // Between fixes: the last one at or before t.
  EXPECT_EQ(estimator.locate(150), 0u);
  EXPECT_EQ(estimator.locate(250), 1u);
  EXPECT_EQ(estimator.locate(299), 1u);
  // At and after the last fix it carries forward.
  EXPECT_EQ(estimator.locate(300), 2u);
  EXPECT_EQ(estimator.locate(100000), 2u);
  EXPECT_EQ(estimator.estimate(100000).lon_deg, 116.42);
}

TEST(Locate, DuplicateTimestampsResolveToLastOfRun) {
  const std::vector<trace::TracePoint> fixes = {
      {{1.0, 1.0}, 10}, {{2.0, 2.0}, 20}, {{3.0, 3.0}, 20}, {{4.0, 4.0}, 30}};
  const privacy::PositionEstimator estimator(fixes);
  EXPECT_EQ(estimator.locate(20), 2u);
  EXPECT_EQ(estimator.locate(25), 2u);
}

TEST(SpatialRouting, FixesNearMatchesScanTwin) {
  const auto fixes = make_fixes(800, 41);
  const privacy::PositionEstimator estimator(fixes);
  stats::Rng rng(42);
  for (int q = 0; q < 40; ++q) {
    const geo::LatLon center{39.8 + rng.uniform(0.0, 0.2), 116.3 + rng.uniform(0.0, 0.2)};
    const double radius_m = rng.uniform(50.0, 5000.0);
    EXPECT_EQ(estimator.fixes_near(center, radius_m),
              estimator.fixes_near_scan(center, radius_m))
        << "radius=" << radius_m;
  }
}

TEST(SpatialRouting, ClusteringMatchesScanTwinBitwise) {
  for (const std::uint64_t seed : {51u, 52u, 53u}) {
    const auto stays = make_stays(600, seed);
    const auto indexed = poi::cluster_stay_points(stays, 120.0);
    const auto scanned = poi::cluster_stay_points_scan(stays, 120.0);
    ASSERT_EQ(indexed.size(), scanned.size()) << "seed " << seed;
    for (std::size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i].id, scanned[i].id);
      // Bitwise equality: the refine visits candidates in the same order as
      // the scan, so the running-mean centroids accumulate identically.
      EXPECT_EQ(indexed[i].centroid.lat_deg, scanned[i].centroid.lat_deg);
      EXPECT_EQ(indexed[i].centroid.lon_deg, scanned[i].centroid.lon_deg);
      ASSERT_EQ(indexed[i].visits.size(), scanned[i].visits.size());
      for (std::size_t v = 0; v < indexed[i].visits.size(); ++v)
        EXPECT_EQ(indexed[i].visits[v].enter_s, scanned[i].visits[v].enter_s);
    }
  }
}

TEST(SpatialRouting, PoiRecoveryMatchesScanTwin) {
  const auto reference = poi::cluster_stay_points(make_stays(400, 61), 120.0);
  // The collected set comes from a different seed, so matches are partial.
  const auto collected = poi::cluster_stay_points(make_stays(150, 62), 120.0);
  for (const double radius_m : {25.0, 100.0, 400.0, 2000.0}) {
    const auto indexed = privacy::poi_recovery(reference, collected, radius_m);
    const auto scanned = privacy::poi_recovery_scan(reference, collected, radius_m);
    EXPECT_EQ(indexed.reference_count, scanned.reference_count);
    EXPECT_EQ(indexed.recovered_count, scanned.recovered_count) << "r=" << radius_m;
  }
}

TEST(SpatialRouting, RegionContainmentMatchesScanTwin) {
  stats::Rng rng(71);
  std::vector<geo::LatLon> points;
  for (int i = 0; i < 700; ++i)
    points.push_back({39.9 + rng.uniform(-0.04, 0.04), 116.4 + rng.uniform(-0.04, 0.04)});
  const geo::GeoTree tree(points);
  const privacy::RegionGrid grid({39.9, 116.4}, 250.0);
  std::size_t covered = 0;
  for (const auto& p : points) {
    const privacy::RegionId id = grid.region_of(p);
    const auto indexed = grid.points_in_region(tree, id);
    EXPECT_EQ(indexed, grid.points_in_region_scan(points, id));
    covered += indexed.size();
  }
  // Every probed region contains at least its own probe point.
  EXPECT_GE(covered, points.size());
}

TEST(SpatialRouting, RecoveredVisitsGroupEpisodes) {
  // Two visits to the same place separated by a long absence, with one
  // too-short touch in between that the dwell threshold must drop.
  const geo::LatLon place{39.9, 116.4};
  const geo::LatLon away{39.99, 116.49};
  std::vector<trace::TracePoint> fixes;
  for (int i = 0; i < 5; ++i) fixes.push_back({place, 100 + i * 60});     // dwell 240
  for (int i = 0; i < 4; ++i) fixes.push_back({away, 1000 + i * 60});
  fixes.push_back({place, 2000});                                         // dwell 0
  for (int i = 0; i < 4; ++i) fixes.push_back({away, 3000 + i * 60});
  for (int i = 0; i < 7; ++i) fixes.push_back({place, 5000 + i * 60});    // dwell 360
  const privacy::PositionEstimator estimator(fixes);

  const auto visits = estimator.recovered_visits(place, 50.0, 300, 120);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_EQ(visits[0].enter_s, 100);
  EXPECT_EQ(visits[0].exit_s, 340);
  EXPECT_EQ(visits[0].fix_count, 5u);
  EXPECT_EQ(visits[1].enter_s, 5000);
  EXPECT_EQ(visits[1].fix_count, 7u);
  // With no dwell floor the single touch shows up too.
  EXPECT_EQ(estimator.recovered_visits(place, 50.0, 300, 0).size(), 3u);

  const std::vector<poi::Poi> pois = {{0, place, {}}, {1, away, {}}};
  const auto exposure = privacy::place_exposure(estimator, pois, 50.0, 300, 120);
  ASSERT_EQ(exposure.size(), 2u);
  EXPECT_EQ(exposure[0].poi_id, 0);
  EXPECT_EQ(exposure[0].visit_count, 2u);
  EXPECT_EQ(exposure[0].total_dwell_s, 600);
  EXPECT_EQ(exposure[0].fix_count, 13u);
  // The away place has two 4-fix episodes, each dwelling 180 s.
  EXPECT_EQ(exposure[1].visit_count, 2u);
  EXPECT_EQ(exposure[1].total_dwell_s, 360);
  EXPECT_EQ(exposure[1].fix_count, 8u);
}

}  // namespace
}  // namespace locpriv
