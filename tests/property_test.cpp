// Cross-module property tests: invariants that must hold for *any* seed,
// exercised over a seed sweep. These catch the class of bug unit tests
// miss — a refactor that keeps the happy-path examples working but breaks
// an algebraic property of the pipeline.
#include <gtest/gtest.h>

#include <set>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "geo/geodesy.hpp"
#include "mobility/synthesis.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "privacy/detection.hpp"
#include "trace/sampling.hpp"

namespace locpriv {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // One simulated user per seed; small but realistic.
  static mobility::SimulatedUser make_user(std::uint64_t seed) {
    stats::Rng rng(seed);
    mobility::CityConfig city_config;
    const mobility::CityModel city(city_config, rng);
    const int home = city.pois_of_category(mobility::PoiCategory::kHome).front();
    const mobility::UserProfile profile = mobility::build_user_profile(
        city, "prop", home, mobility::ProfileConfig{}, rng);
    mobility::SynthesisConfig synthesis;
    synthesis.days = 5;
    return mobility::simulate_user(city, profile, synthesis, rng);
  }
};

TEST_P(SeedSweep, StayPointsAreChronologicalDisjointAndLongEnough) {
  const auto user = make_user(GetParam());
  const auto points = user.trace.flattened();
  const poi::ExtractionParams params;
  const auto stays = poi::extract_stay_points(points, params);
  ASSERT_FALSE(stays.empty());
  for (std::size_t i = 0; i < stays.size(); ++i) {
    EXPECT_GE(stays[i].duration_s(), params.min_visit_s);
    EXPECT_GT(stays[i].fix_count, 0u);
    EXPECT_LE(stays[i].enter_s, stays[i].exit_s);
    if (i > 0) {
      EXPECT_GE(stays[i].enter_s, stays[i - 1].exit_s);
    }
    // The stay lies within the trace's time span.
    EXPECT_GE(stays[i].enter_s, points.front().timestamp_s);
    EXPECT_LE(stays[i].exit_s, points.back().timestamp_s);
  }
}

TEST_P(SeedSweep, StayCentroidsLieInsideTraceBounds) {
  const auto user = make_user(GetParam());
  const auto points = user.trace.flattened();
  geo::GeoBounds bounds;
  for (const auto& point : points) bounds.extend(point.position);
  for (const auto& stay : poi::extract_stay_points(points, poi::ExtractionParams{}))
    EXPECT_TRUE(bounds.contains(stay.centroid));
}

TEST_P(SeedSweep, ClusteringConservesVisits) {
  const auto user = make_user(GetParam());
  const auto stays =
      poi::extract_stay_points(user.trace.flattened(), poi::ExtractionParams{});
  const auto pois = poi::cluster_stay_points(stays, 50.0);
  std::size_t total_visits = 0;
  for (const auto& poi : pois) {
    total_visits += poi.visit_count();
    // Every visit's centroid is within the merge radius of its PoI at the
    // moment of assignment; after centroid drift it stays within 2x.
    for (const auto& visit : poi.visits)
      EXPECT_LE(geo::equirectangular_m(poi.centroid, visit.centroid), 100.0);
  }
  EXPECT_EQ(total_visits, stays.size());
  // Ids are dense and ordered.
  for (std::size_t i = 0; i < pois.size(); ++i)
    EXPECT_EQ(pois[i].id, static_cast<int>(i));
}

TEST_P(SeedSweep, ExtractionRecoversGroundTruthPlacesAtFullRate) {
  const auto user = make_user(GetParam());
  const auto stays =
      poi::extract_stay_points(user.trace.flattened(), poi::ExtractionParams{});
  const auto pois = poi::cluster_stay_points(stays, 50.0);
  // Every ground-truth visit longer than twice the visiting-time threshold
  // must be represented by some extracted PoI nearby.
  std::size_t long_visits = 0;
  std::size_t recovered = 0;
  for (const auto& visit : user.ground_truth.visits) {
    if (visit.dwell_s() < 2 * 600) continue;
    ++long_visits;
    // Locate the true place position via the visit's enclosing stay.
    for (const auto& poi : pois) {
      bool matches_time = false;
      for (const auto& extracted : poi.visits) {
        if (extracted.enter_s <= visit.exit_s && visit.enter_s <= extracted.exit_s) {
          matches_time = true;
          break;
        }
      }
      if (matches_time) {
        ++recovered;
        break;
      }
    }
  }
  ASSERT_GT(long_visits, 0u);
  EXPECT_GE(recovered * 10, long_visits * 9);  // >= 90 %.
}

TEST_P(SeedSweep, DecimationIsIdempotentAndNested) {
  const auto user = make_user(GetParam());
  const auto points = user.trace.flattened();
  const auto once = trace::decimate(points, 60);
  const auto twice = trace::decimate(once, 60);
  EXPECT_EQ(once.size(), twice.size());  // Idempotent at the same interval.
  // Decimating at a multiple from the decimated stream never yields more
  // fixes than decimating the original at that multiple... and both are
  // subsequences of the original.
  const auto nested = trace::decimate(once, 600);
  for (const auto& point : nested) {
    bool found = false;
    for (const auto& original : points)
      if (original.timestamp_s == point.timestamp_s &&
          original.position == point.position) {
        found = true;
        break;
      }
    EXPECT_TRUE(found);
  }
}

TEST_P(SeedSweep, SelfMatchHoldsAtFullCollection) {
  // A user's full-rate observed histogram must always match their own
  // profile (fundamental soundness of His_bin).
  const auto user = make_user(GetParam());
  core::AnalyzerConfig config = core::experiment_analyzer_config();
  core::PrivacyAnalyzer analyzer(config, {user.trace});
  const auto report = analyzer.evaluate_exposure(0, 1);
  EXPECT_TRUE(report.hisbin_visits);
  EXPECT_TRUE(report.hisbin_movements);
  EXPECT_DOUBLE_EQ(report.poi_total.fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Posterior properties of the adversary over random corpora.
class AdversaryProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversaryProperties, PosteriorIsDistributionAndDegreeBounded) {
  mobility::DatasetConfig config;
  config.seed = GetParam();
  config.user_count = 10;
  config.synthesis.days = 4;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), config);
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    for (const auto pattern : {privacy::Pattern::kVisits, privacy::Pattern::kMovements}) {
      const auto observed = privacy::observed_histogram(
          analyzer.reference(u).points, pattern, analyzer.config().extraction,
          analyzer.grid(), 60);
      if (observed.empty()) continue;
      const auto result =
          analyzer.adversary().identify(observed, pattern, analyzer.config().match);
      double total = 0.0;
      for (const double p : result.posterior) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      if (!result.matched.empty()) {
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
      EXPECT_GE(result.degree_of_anonymity, 0.0);
      EXPECT_LE(result.degree_of_anonymity, 1.0);
      // Full-rate self observation must place the true user in the match
      // set (tested at 60 s here to also cover partial data: if matched is
      // non-empty and the true user is in it, fine; an empty set is fine).
      if (result.matched.size() == 1) {
        EXPECT_DOUBLE_EQ(result.degree_of_anonymity, 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryProperties, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace locpriv
