// Self-tests for locpriv-lint: every rule's violating fixture is flagged,
// its clean twin passes, suppressions work in both placements, a typo'd
// suppression is itself an error, and the live tree is clean (the same
// invariant the locpriv_lint_tree ctest case enforces via the binary).
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using locpriv::lint::Finding;
using locpriv::lint::lint_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LOCPRIV_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> rule_names(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& finding : findings) names.push_back(finding.rule);
  return names;
}

// Lints a fixture under a neutral library-code label (no path or main()
// exemptions unless the fixture content itself provides one).
std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_source("src/sample.cpp", read_fixture(name));
}

TEST(LocprivLint, EveryRuleFlagsItsViolationAndAcceptsItsCleanTwin) {
  const struct {
    const char* rule;
    const char* bad;
    const char* clean;
  } kCases[] = {
      {"raw-write", "raw_write_bad.cc", "raw_write_clean.cc"},
      {"nondet-rng", "nondet_rng_bad.cc", "nondet_rng_clean.cc"},
      {"unordered-serialize", "unordered_serialize_bad.cc",
       "unordered_serialize_clean.cc"},
      {"swallowed-catch", "swallowed_catch_bad.cc", "swallowed_catch_clean.cc"},
      {"exit-call", "exit_call_bad.cc", "exit_call_clean.cc"},
      {"raw-process", "raw_process_bad.cc", "raw_process_clean.cc"},
  };
  for (const auto& test_case : kCases) {
    const auto bad = lint_fixture(test_case.bad);
    ASSERT_EQ(bad.size(), 1u) << test_case.bad;
    EXPECT_EQ(bad[0].rule, test_case.rule) << test_case.bad;
    EXPECT_GT(bad[0].line, 0u) << test_case.bad;
    EXPECT_EQ(bad[0].file, "src/sample.cpp");
    EXPECT_TRUE(lint_fixture(test_case.clean).empty()) << test_case.clean;
  }
}

TEST(LocprivLint, HarnessDirectoryMayWriteRaw) {
  // The same violating content is legal under src/core/harness/ — that is
  // where the atomic-writer implementation itself lives.
  const std::string content = read_fixture("raw_write_bad.cc");
  EXPECT_EQ(lint_source("src/sample.cpp", content).size(), 1u);
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp", content).empty());
}

TEST(LocprivLint, HarnessDirectoryMayForkAndReap) {
  // Likewise for process lifecycle: the supervisor implementation is the
  // one legitimate home for fork/waitpid/kill.
  const std::string content = read_fixture("raw_process_bad.cc");
  EXPECT_EQ(lint_source("src/sample.cpp", content).size(), 1u);
  EXPECT_TRUE(lint_source("src/core/harness/supervisor.cpp", content).empty());
}

TEST(LocprivLint, ServiceDirectoryMayForkAndReap) {
  // locprivd shards users across fork(2)-managed workers, so src/service/
  // shares the raw-process waiver — but only that one: the raw-write rule
  // still applies there (snapshots must go through AtomicFileWriter).
  const std::string content = read_fixture("raw_process_service.cc");
  const auto library = lint_source("src/sample.cpp", content);
  EXPECT_EQ(library.size(), 3u);
  for (const Finding& finding : library) EXPECT_EQ(finding.rule, "raw-process");
  EXPECT_TRUE(lint_source("src/service/locprivd.cpp", content).empty());
  const auto raw_write = lint_source("src/service/snapshot.cpp",
                                     read_fixture("raw_write_bad.cc"));
  ASSERT_EQ(raw_write.size(), 1u);
  EXPECT_EQ(raw_write[0].rule, "raw-write");
}

TEST(LocprivLint, GlobalQualifiedSyscallStillFlagged) {
  // `::fork()` is the real syscall even though it is qualified; only a
  // class-qualified name (`Rng::fork`) passes as a C++ method.
  const auto global_call = lint_source("src/sample.cpp", "int f() { return ::fork(); }\n");
  ASSERT_EQ(global_call.size(), 1u);
  EXPECT_EQ(global_call[0].rule, "raw-process");
  EXPECT_TRUE(
      lint_source("src/sample.cpp", "Rng r = Rng::fork();\n").empty());
}

TEST(LocprivLint, UnboundedGrowthPatrolsOnlyLongLivedStateDirs) {
  // The rule is path-gated: member-container growth with no trim in sight
  // is flagged under the daemon and supervisor trees, ignored elsewhere
  // (transient CLI/bench buffers are not production leaks).
  const std::string bad = read_fixture("unbounded_growth_bad.cc");
  const auto service = lint_source("src/service/locprivd.cpp", bad);
  ASSERT_EQ(service.size(), 1u);
  EXPECT_EQ(service[0].rule, "unbounded-growth");
  const auto harness = lint_source("src/core/harness/sweep.cpp", bad);
  ASSERT_EQ(harness.size(), 1u);
  EXPECT_EQ(harness[0].rule, "unbounded-growth");
  EXPECT_TRUE(lint_source("src/sample.cpp", bad).empty());
  // Trimmed, local, and justified-suppressed growth all pass in place.
  EXPECT_TRUE(lint_source("src/service/locprivd.cpp",
                          read_fixture("unbounded_growth_clean.cc"))
                  .empty());
}

TEST(LocprivLint, UnorderedContainerWithoutSerializationSinkIsClean) {
  EXPECT_TRUE(lint_fixture("unordered_no_sink_clean.cc").empty());
}

TEST(LocprivLint, SuppressionWorksOnPrecedingAndSameLine) {
  EXPECT_TRUE(lint_fixture("suppressed.cc").empty());
}

TEST(LocprivLint, UnknownRuleInSuppressionIsItselfAnError) {
  // The typo'd allow() is reported AND fails to suppress, so both findings
  // surface: nothing about a misspelling quietly disables checking.
  const auto findings = lint_fixture("bad_suppression.cc");
  EXPECT_EQ(rule_names(findings),
            (std::vector<std::string>{"bad-suppression", "raw-write"}));
  EXPECT_NE(findings[0].message.find("raw-writes"), std::string::npos);
}

TEST(LocprivLint, CommentsAndStringLiteralsNeverTrigger) {
  const std::string content =
      "// std::ofstream in prose; srand(1); exit(2)\n"
      "/* std::unordered_map<int,int> feeding CsvWriter */\n"
      "const char* kDoc = \"std::rand and time(nullptr) and catch (...)\";\n"
      "const char* kRaw = R\"(std::random_device)\";\n";
  EXPECT_TRUE(lint_source("src/sample.cpp", content).empty());
}

TEST(LocprivLint, FindingsAreStablyOrderedAndFormatted) {
  const std::string content =
      "#include <cstdlib>\n"
      "void f() { std::exit(1); }\n"
      "unsigned g() { return std::rand(); }\n";
  const auto findings = lint_source("src/sample.cpp", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "exit-call");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].rule, "nondet-rng");
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(locpriv::lint::format_text(findings[0]).find("src/sample.cpp:2: [exit-call]"),
            0u);
  EXPECT_EQ(locpriv::lint::format_github(findings[0])
                .find("::error file=src/sample.cpp,line=2,title=locpriv-lint(exit-call)::"),
            0u);
}

TEST(LocprivLint, KnownRuleRegistryIsSortedAndComplete) {
  const auto& rules = locpriv::lint::rules();
  ASSERT_EQ(rules.size(), 7u);
  for (std::size_t i = 1; i < rules.size(); ++i)
    EXPECT_LT(rules[i - 1].name, rules[i].name);
  for (const auto& rule : rules)
    EXPECT_TRUE(locpriv::lint::is_known_rule(rule.name));
  EXPECT_FALSE(locpriv::lint::is_known_rule("bad-suppression"));
  EXPECT_FALSE(locpriv::lint::is_known_rule("raw-writes"));
}

TEST(LocprivLint, LiveTreeIsClean) {
  std::size_t files_scanned = 0;
  const auto findings = locpriv::lint::lint_tree(LOCPRIV_SOURCE_DIR, &files_scanned);
  // The repo has well over a hundred sources; a tiny count means the walk
  // silently missed the tree, which would make this test vacuous.
  EXPECT_GT(files_scanned, 100u);
  std::string rendered;
  for (const Finding& finding : findings)
    rendered += locpriv::lint::format_text(finding) + "\n";
  EXPECT_TRUE(findings.empty()) << rendered;
}

}  // namespace
