// Self-tests for locpriv-lint: every rule's violating fixture is flagged,
// its clean twin passes, suppressions work in both placements, a typo'd
// suppression is itself an error, and the live tree is clean (the same
// invariant the locpriv_lint_tree ctest case enforces via the binary).
//
// v2 additions: lexer edge cases (raw strings, line continuations,
// stringified macros), flow-rule fixtures (eintr-retry, fd-guard,
// blocking-under-lock, seq-narrowing), cross-file fixtures (signal-safety
// plus the verb-exhaustive mini-trees), JSON output, and a completeness
// self-test that fails when any registered rule lacks a firing fixture.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/lexer.hpp"

namespace {

using locpriv::lint::Finding;
using locpriv::lint::lint_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LOCPRIV_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> rule_names(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& finding : findings) names.push_back(finding.rule);
  return names;
}

// Lints a fixture under a neutral library-code label (no path or main()
// exemptions unless the fixture content itself provides one).
std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_source("src/sample.cpp", read_fixture(name));
}

TEST(LocprivLint, EveryRuleFlagsItsViolationAndAcceptsItsCleanTwin) {
  const struct {
    const char* rule;
    const char* bad;
    const char* clean;
  } kCases[] = {
      {"raw-write", "raw_write_bad.cc", "raw_write_clean.cc"},
      {"nondet-rng", "nondet_rng_bad.cc", "nondet_rng_clean.cc"},
      {"unordered-serialize", "unordered_serialize_bad.cc",
       "unordered_serialize_clean.cc"},
      {"swallowed-catch", "swallowed_catch_bad.cc", "swallowed_catch_clean.cc"},
      {"exit-call", "exit_call_bad.cc", "exit_call_clean.cc"},
      {"raw-process", "raw_process_bad.cc", "raw_process_clean.cc"},
      {"eintr-retry", "eintr_retry_bad.cc", "eintr_retry_clean.cc"},
      {"fd-guard", "fd_guard_bad.cc", "fd_guard_clean.cc"},
      {"signal-safety", "signal_safety_bad.cc", "signal_safety_clean.cc"},
      {"blocking-under-lock", "blocking_under_lock_bad.cc",
       "blocking_under_lock_clean.cc"},
  };
  for (const auto& test_case : kCases) {
    const auto bad = lint_fixture(test_case.bad);
    ASSERT_EQ(bad.size(), 1u) << test_case.bad;
    EXPECT_EQ(bad[0].rule, test_case.rule) << test_case.bad;
    EXPECT_GT(bad[0].line, 0u) << test_case.bad;
    EXPECT_EQ(bad[0].file, "src/sample.cpp");
    EXPECT_TRUE(lint_fixture(test_case.clean).empty()) << test_case.clean;
  }
}

TEST(LocprivLint, JustifiedSuppressionsSilenceEveryFlowRule) {
  const char* kSuppressed[] = {
      "eintr_retry_suppressed.cc",    "fd_guard_suppressed.cc",
      "signal_safety_suppressed.cc",  "blocking_under_lock_suppressed.cc",
  };
  for (const char* name : kSuppressed)
    EXPECT_TRUE(lint_fixture(name).empty()) << name;
  EXPECT_TRUE(lint_source("src/service/sample.cpp",
                          read_fixture("seq_narrowing_suppressed.cc"))
                  .empty());
  EXPECT_TRUE(lint_source("src/poi/sample.cpp",
                          read_fixture("linear_spatial_scan_suppressed.cc"))
                  .empty());
}

TEST(LocprivLint, HarnessDirectoryMayWriteRaw) {
  // The same violating content is legal under src/core/harness/ — that is
  // where the atomic-writer implementation itself lives.
  const std::string content = read_fixture("raw_write_bad.cc");
  EXPECT_EQ(lint_source("src/sample.cpp", content).size(), 1u);
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp", content).empty());
}

TEST(LocprivLint, HarnessDirectoryMayForkAndReap) {
  // Likewise for process lifecycle: the supervisor implementation is the
  // one legitimate home for fork/waitpid/kill. (The fixture's waitpid sits
  // in an EINTR retry loop, so only the raw-process rule is at stake.)
  const std::string content = read_fixture("raw_process_bad.cc");
  EXPECT_EQ(lint_source("src/sample.cpp", content).size(), 1u);
  EXPECT_TRUE(lint_source("src/core/harness/supervisor.cpp", content).empty());
}

TEST(LocprivLint, ServiceDirectoryMayForkAndReap) {
  // locprivd shards users across fork(2)-managed workers, so src/service/
  // shares the raw-process waiver — but only that one: the raw-write rule
  // still applies there (snapshots must go through AtomicFileWriter).
  const std::string content = read_fixture("raw_process_service.cc");
  const auto library = lint_source("src/sample.cpp", content);
  EXPECT_EQ(library.size(), 3u);
  for (const Finding& finding : library) EXPECT_EQ(finding.rule, "raw-process");
  EXPECT_TRUE(lint_source("src/service/locprivd.cpp", content).empty());
  const auto raw_write = lint_source("src/service/snapshot.cpp",
                                     read_fixture("raw_write_bad.cc"));
  ASSERT_EQ(raw_write.size(), 1u);
  EXPECT_EQ(raw_write[0].rule, "raw-write");
}

TEST(LocprivLint, GlobalQualifiedSyscallStillFlagged) {
  // `::fork()` is the real syscall even though it is qualified; only a
  // class-qualified name (`Rng::fork`) passes as a C++ method.
  const auto global_call = lint_source("src/sample.cpp", "int f() { return ::fork(); }\n");
  ASSERT_EQ(global_call.size(), 1u);
  EXPECT_EQ(global_call[0].rule, "raw-process");
  EXPECT_TRUE(
      lint_source("src/sample.cpp", "Rng r = Rng::fork();\n").empty());
}

TEST(LocprivLint, EintrRetryRecognisesHeaderConditionLoops) {
  // The canonical fix shape keeps the call in the while *header*; the rule
  // must see the loop's full extent, not just its brace body. (The harness
  // label keeps the raw-process rule out of the way for waitpid.)
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp",
                          "#include <cerrno>\n"
                          "void reap(int pid) {\n"
                          "  int status = 0;\n"
                          "  while (::waitpid(pid, &status, 0) < 0 && errno == "
                          "EINTR) {}\n"
                          "}\n")
                  .empty());
  // WNOHANG polls never block, so they are exempt.
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp",
                          "void poll_child(int pid) {\n"
                          "  int status = 0;\n"
                          "  ::waitpid(pid, &status, WNOHANG);\n"
                          "}\n")
                  .empty());
  // A loop that does NOT mention EINTR is not a retry loop.
  const auto findings = lint_source(
      "src/core/harness/sample.cpp",
      "void reap_all(int* pids, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    int status = 0;\n"
      "    ::waitpid(pids[i], &status, 0);\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "eintr-retry");
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LocprivLint, FdGuardTracksOwnershipTransfers) {
  // Returning the fd hands ownership to the caller.
  EXPECT_TRUE(lint_source("src/sample.cpp",
                          "int acquire(const char* p) {\n"
                          "  const int fd = ::open(p, 0);\n"
                          "  return fd;\n"
                          "}\n")
                  .empty());
  // Passing it to a non-borrower (an owning helper / guard) also counts.
  EXPECT_TRUE(lint_source("src/sample.cpp",
                          "void adopt(const char* p) {\n"
                          "  const int fd = ::open(p, 0);\n"
                          "  FdGuard guard(fd);\n"
                          "  use(guard);\n"
                          "}\n")
                  .empty());
  // Member stores (trailing underscore) are owned by the object.
  EXPECT_TRUE(lint_source("src/sample.cpp",
                          "void Ledger::open_file(const char* p) {\n"
                          "  fd_ = ::open(p, 0);\n"
                          "}\n")
                  .empty());
}

TEST(LocprivLint, SeqNarrowingPatrolsOnlyServiceDir) {
  const std::string bad = read_fixture("seq_narrowing_bad.cc");
  const auto service = lint_source("src/service/shard_child.cpp", bad);
  ASSERT_EQ(service.size(), 1u);
  EXPECT_EQ(service[0].rule, "seq-narrowing");
  EXPECT_TRUE(lint_source("src/sample.cpp", bad).empty());
  EXPECT_TRUE(lint_source("src/service/shard_child.cpp",
                          read_fixture("seq_narrowing_clean.cc"))
                  .empty());
  // A narrow declaration (not just a cast) is also flagged.
  const auto decl = lint_source(
      "src/service/wire.hpp",
      "#include <cstdint>\nstruct S { std::uint32_t submit_seq = 0; };\n");
  ASSERT_EQ(decl.size(), 1u);
  EXPECT_EQ(decl[0].rule, "seq-narrowing");
}

TEST(LocprivLint, UnboundedGrowthPatrolsOnlyLongLivedStateDirs) {
  // The rule is path-gated: member-container growth with no trim in sight
  // is flagged under the daemon and supervisor trees, ignored elsewhere
  // (transient CLI/bench buffers are not production leaks).
  const std::string bad = read_fixture("unbounded_growth_bad.cc");
  const auto service = lint_source("src/service/locprivd.cpp", bad);
  ASSERT_EQ(service.size(), 1u);
  EXPECT_EQ(service[0].rule, "unbounded-growth");
  const auto harness = lint_source("src/core/harness/sweep.cpp", bad);
  ASSERT_EQ(harness.size(), 1u);
  EXPECT_EQ(harness[0].rule, "unbounded-growth");
  EXPECT_TRUE(lint_source("src/sample.cpp", bad).empty());
  // Trimmed, local, and justified-suppressed growth all pass in place.
  EXPECT_TRUE(lint_source("src/service/locprivd.cpp",
                          read_fixture("unbounded_growth_clean.cc"))
                  .empty());
}

TEST(LocprivLint, LinearSpatialScanPatrolsOnlySpatialDirs) {
  // Distance calls inside loops are flagged only under src/poi/ and
  // src/privacy/ — the hot paths the GeoTree index serves; geo/ itself (the
  // index refine loops live there) and neutral library code are exempt.
  const std::string bad = read_fixture("linear_spatial_scan_bad.cc");
  const auto poi = lint_source("src/poi/clustering.cpp", bad);
  ASSERT_EQ(poi.size(), 1u);
  EXPECT_EQ(poi[0].rule, "linear-spatial-scan");
  const auto privacy = lint_source("src/privacy/metrics.cpp", bad);
  ASSERT_EQ(privacy.size(), 1u);
  EXPECT_EQ(privacy[0].rule, "linear-spatial-scan");
  EXPECT_TRUE(lint_source("src/sample.cpp", bad).empty());
  EXPECT_TRUE(lint_source("src/geo/geotree.cpp", bad).empty());
  EXPECT_TRUE(lint_source("src/poi/sample.cpp",
                          read_fixture("linear_spatial_scan_clean.cc"))
                  .empty());
}

TEST(LocprivLint, UncheckedIoPatrolsOnlyStorageOwningDirs) {
  // Discarded durability results are flagged only under the directories
  // that own storage (harness + service); neutral library code discards
  // freely (it does not publish artifacts directly).
  const std::string bad = read_fixture("unchecked_io_bad.cc");
  const auto harness = lint_source("src/core/harness/atomic_file.cpp", bad);
  ASSERT_EQ(harness.size(), 1u);
  EXPECT_EQ(harness[0].rule, "unchecked-io");
  const auto service = lint_source("src/service/snapshot.cpp", bad);
  ASSERT_EQ(service.size(), 1u);
  EXPECT_EQ(service[0].rule, "unchecked-io");
  EXPECT_TRUE(lint_source("src/sample.cpp", bad).empty());
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp",
                          read_fixture("unchecked_io_clean.cc"))
                  .empty());
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp",
                          read_fixture("unchecked_io_suppressed.cc"))
                  .empty());
  // The injectable FileOps layer is covered through its member spelling;
  // other receivers (std::ostream::write) conventionally discard.
  const char* member =
      "struct FileOps { int fsync(int); };\n"
      "void f(FileOps& ops, int fd) { ops.fsync(fd); }\n";
  const auto flagged = lint_source("src/core/harness/sample.cpp", member);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, "unchecked-io");
  const char* stream =
      "struct Sink { int fsync(int); };\n"
      "void f(Sink& out, int fd) { out.fsync(fd); }\n";
  EXPECT_TRUE(lint_source("src/core/harness/sample.cpp", stream).empty());
}

TEST(LocprivLint, UnorderedContainerWithoutSerializationSinkIsClean) {
  EXPECT_TRUE(lint_fixture("unordered_no_sink_clean.cc").empty());
}

TEST(LocprivLint, SuppressionWorksOnPrecedingAndSameLine) {
  EXPECT_TRUE(lint_fixture("suppressed.cc").empty());
}

TEST(LocprivLint, UnknownRuleInSuppressionIsItselfAnError) {
  // The typo'd allow() is reported AND fails to suppress, so both findings
  // surface: nothing about a misspelling quietly disables checking.
  const auto findings = lint_fixture("bad_suppression.cc");
  EXPECT_EQ(rule_names(findings),
            (std::vector<std::string>{"bad-suppression", "raw-write"}));
  EXPECT_NE(findings[0].message.find("raw-writes"), std::string::npos);
}

TEST(LocprivLint, CommentsAndStringLiteralsNeverTrigger) {
  const std::string content =
      "// std::ofstream in prose; srand(1); exit(2)\n"
      "/* std::unordered_map<int,int> feeding CsvWriter */\n"
      "const char* kDoc = \"std::rand and time(nullptr) and catch (...)\";\n"
      "const char* kRaw = R\"(std::random_device)\";\n";
  EXPECT_TRUE(lint_source("src/sample.cpp", content).empty());
}

TEST(LocprivLint, StringifiedMacrosNeverReachFlowRules) {
  // A whole preprocessor directive is one token: syscalls spelled inside a
  // macro body are not call sites, with or without line continuations.
  EXPECT_TRUE(lint_source("src/sample.cpp",
                          "#define RETRY_READ(fd, buf, n) \\\n"
                          "  ::read(fd, buf, n)\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/sample.cpp",
                          "#define OPEN_RAW(p) ::open(p, 0)\n")
                  .empty());
}

TEST(LocprivLintLexer, TokensCarryLineNumbersAcrossRawStrings) {
  const auto src = locpriv::lint::lex(
      "int a;\n"
      "const char* s = R\"(line\nline\nline)\";\n"
      "int b;\n");
  // Find the identifiers and the raw string.
  std::size_t a_line = 0, b_line = 0, raw_line = 0;
  std::string raw_text;
  for (const auto& t : src.tokens) {
    if (t.kind == locpriv::lint::TokenKind::kIdentifier && t.text == "a")
      a_line = t.line;
    if (t.kind == locpriv::lint::TokenKind::kIdentifier && t.text == "b")
      b_line = t.line;
    if (t.kind == locpriv::lint::TokenKind::kRawString) {
      raw_line = t.line;
      raw_text = t.text;
    }
  }
  EXPECT_EQ(a_line, 1u);
  EXPECT_EQ(raw_line, 2u);
  EXPECT_EQ(raw_text, "line\nline\nline");
  EXPECT_EQ(b_line, 5u);  // the raw string body spans lines 2-4
}

TEST(LocprivLintLexer, ContinuedPreprocDirectiveIsOneToken) {
  const auto src = locpriv::lint::lex(
      "#define MANY(a, b) \\\n"
      "  do_thing(a); \\\n"
      "  do_thing(b)\n"
      "int after;\n");
  std::size_t preproc_count = 0;
  std::size_t after_line = 0;
  for (const auto& t : src.tokens) {
    if (t.kind == locpriv::lint::TokenKind::kPreproc) {
      ++preproc_count;
      EXPECT_NE(t.text.find("do_thing"), std::string::npos);
    }
    if (t.kind == locpriv::lint::TokenKind::kIdentifier && t.text == "after")
      after_line = t.line;
  }
  EXPECT_EQ(preproc_count, 1u);
  EXPECT_EQ(after_line, 4u);
}

TEST(LocprivLintLexer, BlankedViewsPreserveLineStructure) {
  const std::string content = "int a; // note\nconst char* s = \"xy\";\n";
  const auto src = locpriv::lint::lex(content);
  EXPECT_EQ(std::count(src.code.begin(), src.code.end(), '\n'),
            std::count(content.begin(), content.end(), '\n'));
  EXPECT_EQ(src.code.find("note"), std::string::npos);
  EXPECT_EQ(src.code.find("xy"), std::string::npos);
  EXPECT_NE(src.comments.find("note"), std::string::npos);
}

TEST(LocprivLint, VerbExhaustiveMiniTrees) {
  const std::string base = std::string(LOCPRIV_LINT_FIXTURE_DIR);
  // Clean: every verb decoded, every ledger kind parsed, exit codes match.
  std::size_t files = 0;
  const auto clean = locpriv::lint::lint_tree(base + "/verb_tree_clean", &files);
  EXPECT_EQ(files, 5u);
  EXPECT_TRUE(clean.empty());
  // Bad: an undecoded command verb, an unparsed ledger kind, and an exit
  // code missing from the README table — deleting a handler is caught.
  const auto bad = locpriv::lint::lint_tree(base + "/verb_tree_bad");
  ASSERT_EQ(bad.size(), 3u);
  for (const Finding& finding : bad) EXPECT_EQ(finding.rule, "verb-exhaustive");
  bool verb = false, ledger = false, code = false;
  for (const Finding& finding : bad) {
    verb = verb || finding.message.find("kCmdSnapshot") != std::string::npos;
    ledger = ledger || finding.message.find("\"shed\"") != std::string::npos;
    code = code || finding.message.find("kIo") != std::string::npos;
  }
  EXPECT_TRUE(verb);
  EXPECT_TRUE(ledger);
  EXPECT_TRUE(code);
  // Suppressed: the justified allow at the declaration keeps the scan green.
  EXPECT_TRUE(locpriv::lint::lint_tree(base + "/verb_tree_suppressed").empty());
}

TEST(LocprivLint, FindingsAreStablyOrderedAndFormatted) {
  const std::string content =
      "#include <cstdlib>\n"
      "void f() { std::exit(1); }\n"
      "unsigned g() { return std::rand(); }\n";
  const auto findings = lint_source("src/sample.cpp", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "exit-call");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].rule, "nondet-rng");
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(locpriv::lint::format_text(findings[0]).find("src/sample.cpp:2: [exit-call]"),
            0u);
  EXPECT_EQ(locpriv::lint::format_github(findings[0])
                .find("::error file=src/sample.cpp,line=2,title=locpriv-lint(exit-call)::"),
            0u);
}

TEST(LocprivLint, JsonFormatsAreWellFormed) {
  const auto findings = lint_source(
      "src/sample.cpp", "#include <cstdlib>\nvoid f() { std::exit(1); }\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = locpriv::lint::format_json(findings, 1);
  EXPECT_EQ(json.find("{\"files_scanned\":1,\"findings\":["), 0u);
  EXPECT_NE(json.find("\"file\":\"src/sample.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"exit-call\""), std::string::npos);
  const std::string empty = locpriv::lint::format_json({}, 7);
  EXPECT_EQ(empty, "{\"files_scanned\":7,\"findings\":[]}");
  const std::string rules = locpriv::lint::rules_json();
  for (const auto& rule : locpriv::lint::rules())
    EXPECT_NE(rules.find("\"name\":\"" + std::string(rule.name) + "\""),
              std::string::npos);
}

TEST(LocprivLint, KnownRuleRegistryIsSortedAndComplete) {
  const auto& rules = locpriv::lint::rules();
  ASSERT_EQ(rules.size(), 15u);
  for (std::size_t i = 1; i < rules.size(); ++i)
    EXPECT_LT(rules[i - 1].name, rules[i].name);
  for (const auto& rule : rules)
    EXPECT_TRUE(locpriv::lint::is_known_rule(rule.name));
  EXPECT_FALSE(locpriv::lint::is_known_rule("bad-suppression"));
  EXPECT_FALSE(locpriv::lint::is_known_rule("raw-writes"));
}

TEST(LocprivLint, EveryRegisteredRuleHasAFiringFixture) {
  // The registry and the fixture corpus must not drift apart: a rule whose
  // `<rule>_bad` fixture is missing or silent fails this test, so adding a
  // rule forces adding its fixture.
  for (const auto& rule : locpriv::lint::rules()) {
    std::string stem(rule.name);
    std::replace(stem.begin(), stem.end(), '-', '_');
    if (rule.name == "verb-exhaustive") {
      const auto findings = locpriv::lint::lint_tree(
          std::string(LOCPRIV_LINT_FIXTURE_DIR) + "/verb_tree_bad");
      bool fired = false;
      for (const Finding& finding : findings)
        fired = fired || finding.rule == rule.name;
      EXPECT_TRUE(fired) << rule.name;
      continue;
    }
    // Path-gated rules need their patrolled directory in the label.
    const char* label = "src/sample.cpp";
    if (rule.name == "seq-narrowing" || rule.name == "unbounded-growth")
      label = "src/service/sample.cpp";
    if (rule.name == "linear-spatial-scan") label = "src/poi/sample.cpp";
    if (rule.name == "unchecked-io") label = "src/core/harness/sample.cpp";
    const auto findings =
        lint_source(label, read_fixture(stem + "_bad.cc"));
    bool fired = false;
    for (const Finding& finding : findings)
      fired = fired || finding.rule == rule.name;
    EXPECT_TRUE(fired) << rule.name << " (" << stem << "_bad.cc)";
  }
}

TEST(LocprivLint, LiveTreeIsClean) {
  std::size_t files_scanned = 0;
  const auto findings = locpriv::lint::lint_tree(LOCPRIV_SOURCE_DIR, &files_scanned);
  // The repo has well over a hundred sources; a tiny count means the walk
  // silently missed the tree, which would make this test vacuous.
  EXPECT_GT(files_scanned, 100u);
  std::string rendered;
  for (const Finding& finding : findings)
    rendered += locpriv::lint::format_text(finding) + "\n";
  EXPECT_TRUE(findings.empty()) << rendered;
}

}  // namespace
