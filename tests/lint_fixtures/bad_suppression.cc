// Fixture: a typo'd rule name in a suppression must itself be reported —
// otherwise a misspelling silently disables checking.
#include <fstream>
#include <string>

void publish(const std::string& path) {
  // locpriv-lint: allow(raw-writes)
  std::ofstream out(path);
  out << "oops";
}
