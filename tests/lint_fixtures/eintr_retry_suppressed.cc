// Justified suppression: a pacing sleep where an early EINTR wake is the
// desired behaviour (the run loop re-checks its shutdown flags sooner).
#include <poll.h>

void pace(int ms) {
  // locpriv-lint: allow(eintr-retry) early wake re-checks run-loop flags
  ::poll(nullptr, 0, ms);
}
