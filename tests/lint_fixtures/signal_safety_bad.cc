// Violation: the handler reaches note_shutdown(), which calls printf —
// allocation and stdio are not async-signal-safe.
#include <csignal>
#include <cstdio>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void note_shutdown() { std::printf("shutting down\n"); }

void on_signal(int) {
  g_stop = 1;
  note_shutdown();
}

}  // namespace

void install() { std::signal(SIGTERM, &on_signal); }
