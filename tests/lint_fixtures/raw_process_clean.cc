// Clean: C++ members and class-qualified names that merely share a POSIX
// spelling are not process-lifecycle calls.
#include "stats/rng.hpp"

locpriv::stats::Rng derive(locpriv::stats::Rng& rng, locpriv::stats::Rng* ptr) {
  locpriv::stats::Rng child = rng.fork();
  child = ptr->fork();
  return child;
}
