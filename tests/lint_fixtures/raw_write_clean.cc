// Fixture: the clean twin — the artifact goes through the atomic writer.
// Mentioning std::ofstream in this comment must not trigger the rule.
#include <string>

#include "core/harness/atomic_file.hpp"

void publish_report(const std::string& path, const std::string& body) {
  locpriv::harness::write_file_atomic(path, body);
}
