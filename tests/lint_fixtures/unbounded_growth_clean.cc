// Clean twins for unbounded-growth: a push with its trim in sight, a plain
// local buffer, and a deliberate growth carrying a justified suppression.
#include <deque>
#include <string>
#include <vector>

class BoundedLog {
 public:
  void note(const std::string& line) {
    history_.push_back(line);
    while (history_.size() > 64) history_.pop_front();
  }

 private:
  std::deque<std::string> history_;
};

std::vector<std::string> collect() {
  std::vector<std::string> lines;  // Local scratch: dies with the call.
  lines.push_back("transient");
  return lines;
}

class Registry {
 public:
  void add(const std::string& name) {
    // locpriv-lint: allow(unbounded-growth) — one entry per shard, fixed.
    entries_.push_back(name);
  }

 private:
  std::vector<std::string> entries_;
};
