// Fixture: the clean twin — a file that defines main() may call exit();
// thin entry points translate errors to process exit codes.
#include <cstdlib>

int run();

int main() {
  if (run() != 0) std::exit(1);
  return 0;
}
