// Violation: the descriptor leaks — no close on the success path (and an
// fcntl borrower does not take ownership).
#include <fcntl.h>

bool probe(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  return ::fcntl(fd, F_GETFD) >= 0;
}
