// Clean twin: snapshot the state under the lock, do the blocking work after
// the lock's scope closes.
#include <unistd.h>

#include "util/sync.hpp"

struct Stats {
  locpriv::util::Mutex mu;
  int fd = -1;
  int epoch = 0;

  void flush() {
    int snapshot_fd = -1;
    {
      locpriv::util::MutexLock lock(mu);
      snapshot_fd = fd;
      ++epoch;
    }
    ::fsync(snapshot_fd);
  }
};
