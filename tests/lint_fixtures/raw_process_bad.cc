// Violation: reaps a child directly instead of letting the harness
// supervisor own the process lifecycle. (The EINTR retry loop is correct —
// only the raw-process rule fires.)
#include <cerrno>
#include <sys/wait.h>

int reap(int pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
  return status;
}
