// Violation: reaps a child directly instead of letting the harness
// supervisor own the process lifecycle.
#include <sys/wait.h>

int reap(int pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}
