// Justified suppression: the descriptor is deliberately left open so the
// exec'd child inherits it (CLOEXEC intentionally not set).
#include <fcntl.h>

int inherit_for_child(const char* path) {
  // locpriv-lint: allow(fd-guard) ownership passes to the exec'd child
  const int fd = ::open(path, O_RDONLY);
  ::fcntl(fd, F_SETFL, 0);
  return 0;
}
