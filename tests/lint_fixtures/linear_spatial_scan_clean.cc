// Clean twin: the same lookup routed through the spatial index. The radius
// query touches only the geohash cells the disc can reach; no distance call
// runs inside a whole-container loop.
#include <vector>

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

struct Hit {
  unsigned index = 0;
  double distance_m = 0.0;
};

struct GeoTree {
  std::vector<Hit> query_radius(const LatLon& center, double radius_m) const;
};

int nearest_poi(const GeoTree& tree, const LatLon& stay) {
  const auto hits = tree.query_radius(stay, 100.0);
  return hits.empty() ? -1 : static_cast<int>(hits.front().index);
}
