// Fixture: one swallowed-catch violation — the handler logs and moves on,
// dropping the exception.
#include <iostream>

void best_effort(void (*step)()) {
  try {
    step();
  } catch (...) {
    std::cerr << "step failed, continuing\n";
  }
}
