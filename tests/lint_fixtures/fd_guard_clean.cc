// Clean twins: closed locally, ownership returned to the caller, and bound
// straight into an RAII guard (no raw binding for the rule to track).
#include <fcntl.h>
#include <unistd.h>

#include "core/harness/fd_guard.hpp"

bool probe(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fcntl(fd, F_GETFD) >= 0;
  ::close(fd);
  return ok;
}

int open_for_caller(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  return fd;
}

bool guarded(const char* path) {
  const locpriv::harness::FdGuard fd(::open(path, O_RDONLY));
  return fd.valid();
}
