// Justified suppression: a mock wire that is 16-bit by design (test-only).
#include <cstdint>

struct Shard {
  std::uint64_t submit_seq = 0;
};

std::uint16_t mock_wire_value(const Shard& shard) {
  // locpriv-lint: allow(seq-narrowing) mock wire is 16-bit by design
  return static_cast<std::uint16_t>(shard.submit_seq);
}
