// Fixture: one raw-write violation (the ofstream), nothing else.
#include <fstream>
#include <string>

void publish_report(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}
