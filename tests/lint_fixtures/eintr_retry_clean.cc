// Clean twin: the do-while retry condition mentions EINTR, so the rule sees
// the call inside a retrying loop extent (header through trailing cond).
#include <cerrno>
#include <unistd.h>

long drain(int fd, char* buf, unsigned long n) {
  long got = 0;
  do {
    got = ::read(fd, buf, n);
  } while (got < 0 && errno == EINTR);
  return got;
}
