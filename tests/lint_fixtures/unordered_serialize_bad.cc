// Fixture: one unordered-serialize violation — an unordered_map in a file
// that also writes CSV output, so iteration order can reach the artifact.
#include <string>
#include <unordered_map>
#include <vector>

#include "util/csv.hpp"

void export_counts(locpriv::util::CsvWriter& csv,
                   const std::unordered_map<std::string, int>& counts) {
  for (const auto& [key, count] : counts)
    csv.write_row({key, std::to_string(count)});
}
