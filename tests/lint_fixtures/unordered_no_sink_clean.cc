// Fixture: an unordered_map is fine when the file has no serialization
// sink — pure in-memory lookup never leaks iteration order into artifacts.
#include <string>
#include <unordered_map>

int lookup(const std::unordered_map<std::string, int>& index,
           const std::string& key) {
  const auto it = index.find(key);
  return it == index.end() ? -1 : it->second;
}
