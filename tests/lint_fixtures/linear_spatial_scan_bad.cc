// Violation: a per-query distance scan over the whole PoI container inside a
// spatial hot path — O(P) haversine/equirectangular calls per lookup.
#include <cstddef>
#include <vector>

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

double equirectangular_m(const LatLon& a, const LatLon& b);

int nearest_poi(const std::vector<LatLon>& centroids, const LatLon& stay) {
  int best = -1;
  double best_distance = 1e18;
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    const double d = equirectangular_m(centroids[i], stay);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}
