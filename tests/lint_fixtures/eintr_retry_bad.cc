// Violation: the read result is never re-checked on EINTR — a stray signal
// (profiler tick, SIGCHLD) surfaces as a spurious short read.
#include <unistd.h>

long drain(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);
}
