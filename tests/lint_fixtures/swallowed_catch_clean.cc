// Fixture: the clean twin — catch-all handlers that forward: one stores
// current_exception for later rethrow, one cleans up and rethrows.
#include <exception>

std::exception_ptr capture(void (*step)()) {
  try {
    step();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

void cleanup_and_rethrow(void (*step)(), void (*cleanup)()) {
  try {
    step();
  } catch (...) {
    cleanup();
    throw;
  }
}
