// Violation: a 32-bit view of a 64-bit wire counter — silently wraps after
// 4Gi events. Only meaningful under src/service/ (the rule is path-gated).
#include <cstdint>

struct Shard {
  std::uint64_t submit_seq = 0;
};

std::uint32_t checkpoint(const Shard& shard) {
  return static_cast<std::uint32_t>(shard.submit_seq);
}
