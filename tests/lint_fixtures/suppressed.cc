// Fixture: both suppression placements — a preceding-line comment and a
// same-line trailing comment — each silencing one raw-write violation.
#include <fstream>
#include <string>

void scratch_files(const std::string& a, const std::string& b) {
  // locpriv-lint: allow(raw-write) scratch file, never published
  std::ofstream first(a);
  std::ofstream second(b);  // locpriv-lint: allow(raw-write) scratch too
  first << "x";
  second << "y";
}
