// Fixture: one nondet-rng violation (random_device seeding).
#include <random>

unsigned fresh_seed() {
  std::random_device device;
  return device();
}
