// Mini-tree fixture: the snapshot verb ships one PR ahead of its decoder;
// the justified allow keeps the tree scan green until the decoder lands.
#pragma once

namespace wire {
inline constexpr const char* kCmdPing = "ping";
// locpriv-lint: allow(verb-exhaustive) decoder lands with the next rev
inline constexpr const char* kCmdSnapshot = "snapshot";
inline constexpr const char* kRspPong = "pong";
}  // namespace wire
