// Mini-tree fixture: decodes ping only (snapshot is suppressed at the
// declaration in wire.hpp).
#include <string>

#include "service/wire.hpp"

bool decode(const std::string& verb) {
  if (verb == wire::kCmdPing) return true;
  return false;
}
