// Mini-tree fixture: dispatches the one response verb.
#include <string>

#include "service/wire.hpp"

bool dispatch(const std::string& verb) {
  if (verb == wire::kRspPong) return true;
  return false;
}
