// Mini-tree fixture: decodes ping and submit but NOT snapshot.
#include <string>

#include "service/wire.hpp"

bool decode(const std::string& verb) {
  if (verb == wire::kCmdPing) return true;
  if (verb == wire::kCmdSubmit) return true;
  return false;
}
