// Mini-tree fixture: kCmdSnapshot has no decoder in shard_child.cpp, so
// verb-exhaustive must flag it here.
#pragma once

namespace wire {
inline constexpr const char* kCmdPing = "ping";
inline constexpr const char* kCmdSubmit = "submit";
inline constexpr const char* kCmdSnapshot = "snapshot";
inline constexpr const char* kRspPong = "pong";
inline constexpr const char* kRspAck = "ack";
}  // namespace wire
