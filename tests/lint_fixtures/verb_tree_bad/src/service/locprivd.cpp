// Mini-tree fixture: the response side is complete (the failures live in
// the command set, the ledger, and the exit-code table).
#include <string>

#include "service/wire.hpp"

bool dispatch(const std::string& verb) {
  if (verb == wire::kRspPong) return true;
  if (verb == wire::kRspAck) return true;
  return false;
}
