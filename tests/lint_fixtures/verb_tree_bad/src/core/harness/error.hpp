// Mini-tree fixture: kIo = 3 is missing from the README exit-code table.
#pragma once

enum class ErrorCode : int {
  kInternal = 1,
  kUsage = 2,
  kIo = 3,
};
