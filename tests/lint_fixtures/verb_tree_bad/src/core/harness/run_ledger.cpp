// Mini-tree fixture: the "shed" record kind is written but never parsed
// back — replay would treat a valid ledger as corrupt.
#include <string>
#include <vector>

std::string keyed_fields_line(const char* kind,
                              const std::vector<std::string>& fields);
void append_line(const std::string& line);
void parse_cell(const std::string& line);

void snapshot(const std::vector<std::string>& fields) {
  append_line(keyed_fields_line("cell", fields));
  append_line(keyed_fields_line("shed", fields));
}

void replay(const std::string& line) {
  if (line.rfind("{\"cell\":", 0) == 0) parse_cell(line);
}
