// Fixture: the clean twin — randomness forked from an explicit seed. The
// message string below mentions time(nullptr) and must not trigger.
#include <cstdint>
#include <string>

#include "stats/rng.hpp"

double jitter(std::uint64_t seed) {
  locpriv::stats::Rng rng(seed);
  const std::string why = "never reseed from time(nullptr) or std::rand";
  return rng.uniform() + static_cast<double>(why.size()) * 0.0;
}
