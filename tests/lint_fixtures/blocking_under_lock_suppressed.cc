// Justified suppression: a startup-only preload path that runs before any
// other thread exists, so the lock is provably uncontended.
#include <unistd.h>

#include "util/sync.hpp"

struct Boot {
  locpriv::util::Mutex mu;
  int fd = -1;

  void preload() {
    locpriv::util::MutexLock lock(mu);
    // locpriv-lint: allow(blocking-under-lock) single-threaded startup
    ::fsync(fd);
  }
};
