// Clean twin: every durability result is either checked or visibly
// discarded with a (void) cast; results that feed a branch or a return are
// checked by construction.
#include <unistd.h>

bool publish(int fd, long size) {
  if (::ftruncate(fd, size) != 0) return false;
  if (::fsync(fd) != 0) return false;
  (void)::fdatasync(fd);
  return true;
}
