// Suppressed: the loop is a bounded refine over index candidates (not the
// whole container), so the justified allow keeps it green.
#include <cstdint>
#include <vector>

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

double equirectangular_m(const LatLon& a, const LatLon& b);

int refine(const std::vector<LatLon>& centroids,
           const std::vector<std::uint32_t>& candidates, const LatLon& stay,
           double radius_m) {
  int best = -1;
  double best_distance = radius_m;
  for (const std::uint32_t id : candidates) {
    // locpriv-lint: allow(linear-spatial-scan) bounded candidate refine
    const double d = equirectangular_m(centroids[id], stay);
    if (d <= best_distance) {
      best_distance = d;
      best = static_cast<int>(id);
    }
  }
  return best;
}
