// Justified suppression: a best-effort directory fsync after the rename
// that already published the artifact — failure here cannot un-publish it,
// so the discard is deliberate and documented.
#include <unistd.h>

void sync_dir(int dfd) {
  // locpriv-lint: allow(unchecked-io) advisory dir fsync; the rename already published
  ::fsync(dfd);
}
