// Clean twin: the handler only touches a sig_atomic_t flag.
#include <csignal>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

void install() { std::signal(SIGTERM, &on_signal); }
