// Fixture: one exit-call violation — library code terminating the process
// instead of throwing through the error taxonomy.
#include <cstdlib>

void die_on_bad_config(bool ok) {
  if (!ok) std::exit(2);
}
