// Full shard-lifecycle surface (fork + kill + waitpid): flagged as three
// raw-process findings in library code, but legal under src/service/ where
// locprivd supervises its own shard children. The waitpid is EINTR-correct
// so only the raw-process rule fires.
#include <cerrno>
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

int respawn_shard(int old_pid) {
  ::kill(old_pid, SIGTERM);
  int status = 0;
  while (::waitpid(old_pid, &status, 0) < 0 && errno == EINTR) {}
  return ::fork();
}
