// Violation: the fsync result vanishes. If the kernel refused the flush,
// the caller goes on to publish a file whose bytes were never made durable
// — the storage fault becomes silent data loss.
#include <unistd.h>

void publish(int fd) {
  ::fsync(fd);
}
