// Violation: fsync(2) while the stats mutex is held — every other thread
// waiting on the mutex stalls behind the disk.
#include <unistd.h>

#include "util/sync.hpp"

struct Stats {
  locpriv::util::Mutex mu;
  int fd = -1;

  void flush() {
    locpriv::util::MutexLock lock(mu);
    ::fsync(fd);
  }
};
