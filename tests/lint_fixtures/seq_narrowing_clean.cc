// Clean twin: the counters stay 64-bit end to end.
#include <cstdint>

struct Shard {
  std::uint64_t submit_seq = 0;
  std::uint64_t acked_bytes = 0;
};

std::uint64_t checkpoint(const Shard& shard) {
  return shard.submit_seq + shard.acked_bytes;
}
