// Mini-tree fixture: the parent side dispatches every response verb.
#include <string>

#include "service/wire.hpp"

bool dispatch(const std::string& verb) {
  if (verb == wire::kRspPong) return true;
  if (verb == wire::kRspAck) return true;
  return false;
}
