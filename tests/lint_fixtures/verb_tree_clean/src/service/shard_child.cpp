// Mini-tree fixture: the shard side decodes every command verb.
#include <string>

#include "service/wire.hpp"

bool decode(const std::string& verb) {
  if (verb == wire::kCmdPing) return true;
  if (verb == wire::kCmdSubmit) return true;
  return false;
}
