// Mini-tree fixture: a wire protocol where every verb has its peer-side
// handler (verb-exhaustive stays quiet).
#pragma once

namespace wire {
inline constexpr const char* kCmdPing = "ping";
inline constexpr const char* kCmdSubmit = "submit";
inline constexpr const char* kRspPong = "pong";
inline constexpr const char* kRspAck = "ack";
}  // namespace wire
