// Mini-tree fixture: an exit-code taxonomy that matches the README table.
#pragma once

enum class ErrorCode : int {
  kInternal = 1,
  kUsage = 2,
};
