// Violation: a member deque grows on every tick with no pop, erase, cap,
// or suppression anywhere near — in an always-on daemon this is a leak.
#include <deque>
#include <string>

class EventLog {
 public:
  void note(const std::string& line) {
    history_.push_back(line);
  }

 private:
  std::deque<std::string> history_;
};
