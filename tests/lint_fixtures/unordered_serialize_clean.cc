// Fixture: the clean twin — ordered map, identical serialization path.
#include <map>
#include <string>
#include <vector>

#include "util/csv.hpp"

void export_counts(locpriv::util::CsvWriter& csv,
                   const std::map<std::string, int>& counts) {
  for (const auto& [key, count] : counts)
    csv.write_row({key, std::to_string(count)});
}
