// Justified suppression: a crash handler making a best-effort stderr note
// before re-raising with the default disposition — the process dies either
// way, so the async-signal-safety risk is accepted.
#include <csignal>
#include <cstdio>

void on_fatal(int sig) {
  // locpriv-lint: allow(signal-safety) crash path; best-effort diagnostics
  std::fprintf(stderr, "fatal signal\n");
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install() { std::signal(SIGSEGV, &on_fatal); }
