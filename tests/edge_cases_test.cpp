// Cross-cutting edge cases that don't belong to a single module's file:
// degenerate corpus sizes, unusual-but-legal inputs, and interactions
// between features (guardian + fused, O-limits + replay).
#include <gtest/gtest.h>

#include "android/fused.hpp"
#include "android/replay.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "geo/geodesy.hpp"
#include "lppm/policy.hpp"
#include "trace/geolife.hpp"
#include "util/expect.hpp"

namespace locpriv {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

TEST(EdgeCases, SingleUserAnalyzerIdentifiesTrivially) {
  // With one stored profile, any match means full identification (the
  // paper's degree-of-anonymity is 0 by definition for N = 1).
  mobility::DatasetConfig dataset;
  dataset.user_count = 1;
  dataset.synthesis.days = 4;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const auto report = analyzer.evaluate_exposure(0, 1);
  EXPECT_TRUE(report.breach_detected());
  EXPECT_DOUBLE_EQ(report.anonymity_movements, 0.0);
}

TEST(EdgeCases, AnalyzerOnTinyTraceDoesNotCrash) {
  // A user with a trace too short for any stay: no PoIs, empty histograms,
  // exposure must degrade gracefully rather than throw.
  trace::UserTrace user;
  user.user_id = "tiny";
  trace::Trajectory trajectory;
  for (std::int64_t t = 0; t < 30; t += 3)
    trajectory.append({geo::destination(kAnchor, 90.0, static_cast<double>(t)), t});
  user.trajectories.push_back(std::move(trajectory));

  // A second, normal-ish user so profiles exist.
  mobility::DatasetConfig dataset;
  dataset.user_count = 1;
  dataset.synthesis.days = 3;
  auto synthetic = mobility::generate_dataset(dataset);
  std::vector<trace::UserTrace> users{user, std::move(synthetic.users[0])};

  const core::PrivacyAnalyzer analyzer(core::experiment_analyzer_config(),
                                       std::move(users));
  const auto report = analyzer.evaluate_exposure(0, 1);
  EXPECT_EQ(report.extracted_pois, 0u);
  EXPECT_FALSE(report.breach_detected());
  EXPECT_DOUBLE_EQ(report.poi_total.fraction(), 1.0);  // Nothing existed to leak.
}

TEST(EdgeCases, GeolifeParserToleratesBlankAndShortFiles) {
  EXPECT_TRUE(trace::parse_plt("").empty());
  EXPECT_TRUE(trace::parse_plt("h1\nh2\nh3\nh4\nh5\nh6\n").empty());
  // Blank lines between records are skipped.
  const std::string text =
      "h\nh\nh\nh\nh\nh\n39.9,116.4,0,0,39745.0\n\n39.91,116.41,0,0,39745.1\n";
  EXPECT_EQ(trace::parse_plt(text).size(), 2u);
}

TEST(EdgeCases, GeolifeParserSortsOutOfOrderRecords) {
  const std::string text =
      "h\nh\nh\nh\nh\nh\n"
      "39.9,116.4,0,0,39745.2\n"
      "39.9,116.4,0,0,39745.1\n";
  const auto trajectory = trace::parse_plt(text);
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_LE(trajectory[0].timestamp_s, trajectory[1].timestamp_s);
}

TEST(EdgeCases, GuardianPlusFusedClientOnDevice) {
  // The release hook applies to fused deliveries exactly as to gps ones.
  android::DeviceSimulator device(1, geo::destination(kAnchor, 45.0, 2000.0));
  lppm::GuardianPolicy policy(kAnchor, 1000.0);
  lppm::GuardianRules block_bg;
  block_bg.background = lppm::ReleaseDecision::kBlock;
  policy.set_default_rules(block_bg);
  device.location_manager().set_release_hook(
      [&](const std::string& package, android::Location& fix) {
        const bool backgrounded =
            device.is_installed(package) &&
            device.app(package).state == android::AppState::kBackground;
        return policy.apply(package, backgrounded, fix.position);
      });

  android::AndroidManifest manifest;
  manifest.package_name = "com.fusedspy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {android::LocationProvider::kFused};
  behavior.request_interval_s = 5;
  device.install(manifest, behavior);
  device.launch(manifest.package_name);
  device.advance(6);
  const std::size_t foreground_deliveries =
      device.location_manager().delivery_log().size();
  EXPECT_GT(foreground_deliveries, 0u);
  device.move_to_background(manifest.package_name);
  device.advance(30);
  EXPECT_EQ(device.location_manager().delivery_log().size(), foreground_deliveries);
}

TEST(EdgeCases, OLimitsPlusReplayCollectSparsely) {
  // Replay a 2-hour walk against a throttled device: deliveries land at
  // the policy cadence, not the app's.
  std::vector<trace::TracePoint> points;
  for (std::int64_t t = 0; t < 7200; t += 4)
    points.push_back(
        {geo::destination(kAnchor, 90.0, static_cast<double>(t) * 0.5), 10000 + t});

  android::DeviceSimulator device(1, kAnchor);
  device.enable_background_location_limits(900);
  device.jump_to(points.front().timestamp_s - 1);
  android::AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {android::LocationProvider::kGps};
  behavior.request_interval_s = 5;
  device.install(manifest, behavior);
  device.launch(manifest.package_name);
  device.move_to_background(manifest.package_name);
  android::replay_trace(device, points, /*sync_clock=*/false);

  const auto fixes =
      android::collected_fixes(device.location_manager(), manifest.package_name);
  // 7,200 s at 900 s cadence: 8-9 fixes instead of ~1,440.
  EXPECT_GE(fixes.size(), 7u);
  EXPECT_LE(fixes.size(), 10u);
}

TEST(EdgeCases, DatasetWithOneDayStillAnalyzable) {
  mobility::DatasetConfig dataset;
  dataset.user_count = 3;
  dataset.synthesis.days = 1;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  for (std::size_t u = 0; u < analyzer.user_count(); ++u)
    EXPECT_GE(analyzer.reference(u).pois.size(), 1u);
}

}  // namespace
}  // namespace locpriv
