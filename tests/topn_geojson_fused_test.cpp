#include <gtest/gtest.h>

#include "android/fused.hpp"
#include "geo/geodesy.hpp"
#include "poi/geojson.hpp"
#include "privacy/topn.hpp"
#include "util/expect.hpp"

namespace locpriv {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

// ---------------------------------------------------------------- top-N --

privacy::PatternHistogram visits_histogram(
    std::initializer_list<std::pair<int, double>> items) {
  privacy::PatternHistogram histogram;
  for (const auto& [key, count] : items) histogram.add(key, count);
  return histogram;
}

TEST(TopRegions, RanksByCountWithDeterministicTies) {
  const auto histogram = visits_histogram({{5, 10.0}, {2, 30.0}, {9, 10.0}, {1, 1.0}});
  const auto top = privacy::top_regions(histogram, 3);
  // Counts: 2 (30), then 5 and 9 tie at 10 -> lower id first; sorted output.
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 2);
  EXPECT_EQ(top[1], 5);
  EXPECT_EQ(top[2], 9);
}

TEST(TopRegions, FewerKeysThanN) {
  const auto histogram = visits_histogram({{7, 3.0}});
  EXPECT_EQ(privacy::top_regions(histogram, 3).size(), 1u);
  EXPECT_THROW(privacy::top_regions(histogram, 0), util::ContractViolation);
}

std::vector<privacy::UserProfileHistograms> topn_profiles() {
  std::vector<privacy::UserProfileHistograms> profiles(3);
  profiles[0].user_id = "a";
  profiles[0].visits = visits_histogram({{1, 30.0}, {2, 20.0}, {3, 5.0}});
  profiles[1].user_id = "b";
  profiles[1].visits = visits_histogram({{1, 25.0}, {2, 18.0}, {4, 9.0}});
  profiles[2].user_id = "c";
  profiles[2].visits = visits_histogram({{7, 30.0}, {8, 20.0}, {9, 2.0}});
  return profiles;
}

TEST(TopNIdentifier, TopTwoCollidesTopThreeSeparates) {
  // Users a and b share top-2 {1,2} but differ at rank 3 — Zang & Bolot's
  // observation that the set shrinks sharply from N=2 to N=3.
  const privacy::TopNIdentifier top2(topn_profiles(), 2);
  const privacy::TopNIdentifier top3(topn_profiles(), 3);
  const auto observed = visits_histogram({{1, 6.0}, {2, 4.0}, {3, 1.0}});
  EXPECT_EQ(top2.matches(observed).size(), 2u);
  const auto matched3 = top3.matches(observed);
  ASSERT_EQ(matched3.size(), 1u);
  EXPECT_EQ(matched3[0], 0u);
  EXPECT_GT(top2.degree_of_anonymity(observed), 0.0);
  EXPECT_DOUBLE_EQ(top3.degree_of_anonymity(observed), 0.0);
}

TEST(TopNIdentifier, IncompleteObservationMatchesNothing) {
  const privacy::TopNIdentifier top3(topn_profiles(), 3);
  const auto observed = visits_histogram({{1, 6.0}});  // Only one region seen.
  EXPECT_TRUE(top3.matches(observed).empty());
  EXPECT_DOUBLE_EQ(top3.degree_of_anonymity(observed), 1.0);
}

TEST(TopNIdentifier, Preconditions) {
  EXPECT_THROW(privacy::TopNIdentifier({}, 3), util::ContractViolation);
  EXPECT_THROW(privacy::TopNIdentifier(topn_profiles(), 0), util::ContractViolation);
}

// -------------------------------------------------------------- GeoJSON --

trace::UserTrace small_trace() {
  trace::UserTrace user;
  user.user_id = "g";
  trace::Trajectory trajectory;
  trajectory.append({kAnchor, 100});
  trajectory.append({geo::destination(kAnchor, 90.0, 100.0), 110});
  user.trajectories.push_back(std::move(trajectory));
  return user;
}

TEST(GeoJson, LineStringFeatureShape) {
  const auto user = small_trace();
  const std::string feature =
      poi::trajectory_to_geojson_feature(user.trajectories[0]);
  EXPECT_NE(feature.find("\"type\":\"LineString\""), std::string::npos);
  EXPECT_NE(feature.find("\"fixes\":2"), std::string::npos);
  EXPECT_NE(feature.find("\"start_s\":100"), std::string::npos);
  // Lon comes first in GeoJSON.
  EXPECT_NE(feature.find("[116.407400,39.904200]"), std::string::npos);
}

TEST(GeoJson, FeatureCollectionWithPois) {
  poi::Poi place;
  place.id = 3;
  place.centroid = kAnchor;
  place.visits.push_back({kAnchor, 0, 600, 10});
  const std::string doc = poi::to_geojson(small_trace(), {place});
  EXPECT_NE(doc.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"Point\""), std::string::npos);
  EXPECT_NE(doc.find("\"poi\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"visits\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"dwell_s\":600"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

TEST(GeoJson, EmptyTraceYieldsEmptyCollection) {
  trace::UserTrace user;
  user.user_id = "empty";
  EXPECT_EQ(poi::to_geojson(user), R"({"type":"FeatureCollection","features":[]})");
}

// ---------------------------------------------------------------- fused --

using android::FusedPriority;
using android::Granularity;
using android::LocationProvider;
using android::Permission;
using android::PermissionSet;

TEST(FusedPlan, PriorityToProviderMapping) {
  const PermissionSet both({Permission::kAccessFineLocation,
                            Permission::kAccessCoarseLocation});
  const PermissionSet coarse({Permission::kAccessCoarseLocation});

  auto plan = android::plan_fused_request(FusedPriority::kHighAccuracy, both);
  EXPECT_EQ(plan.provider, LocationProvider::kFused);
  EXPECT_EQ(plan.granularity, Granularity::kFine);

  plan = android::plan_fused_request(FusedPriority::kBalancedPowerAccuracy, coarse);
  EXPECT_EQ(plan.granularity, Granularity::kCoarse);
  plan = android::plan_fused_request(FusedPriority::kBalancedPowerAccuracy, both);
  EXPECT_EQ(plan.granularity, Granularity::kFine);

  plan = android::plan_fused_request(FusedPriority::kNoPower, coarse);
  EXPECT_EQ(plan.provider, LocationProvider::kPassive);
}

TEST(FusedPlan, PermissionFailures) {
  const PermissionSet none;
  const PermissionSet coarse({Permission::kAccessCoarseLocation});
  EXPECT_THROW(android::plan_fused_request(FusedPriority::kHighAccuracy, coarse),
               android::SecurityException);
  EXPECT_THROW(android::plan_fused_request(FusedPriority::kLowPower, none),
               android::SecurityException);
}

TEST(FusedClient, RequestReplaceAndRemove) {
  android::LocationManager manager((stats::Rng(1)));
  const PermissionSet both({Permission::kAccessFineLocation,
                            Permission::kAccessCoarseLocation});
  android::FusedLocationClient client(manager, "com.fused.app", both);

  client.request_updates(FusedPriority::kHighAccuracy, 10, 0);
  ASSERT_EQ(manager.active_requests().size(), 1u);
  EXPECT_EQ(manager.active_requests()[0].provider, LocationProvider::kFused);
  EXPECT_EQ(manager.active_requests()[0].granularity, Granularity::kFine);

  // Switching to NO_POWER replaces the fused request with a passive one.
  client.request_updates(FusedPriority::kNoPower, 30, 5);
  ASSERT_EQ(manager.active_requests().size(), 1u);
  EXPECT_EQ(manager.active_requests()[0].provider, LocationProvider::kPassive);

  client.remove_updates();
  EXPECT_TRUE(manager.active_requests().empty());
}

TEST(FusedClient, DeliversAndExposesLastLocation) {
  android::LocationManager manager((stats::Rng(1)));
  const PermissionSet fine({Permission::kAccessFineLocation});
  android::FusedLocationClient client(manager, "com.fused.app", fine);
  client.request_updates(FusedPriority::kHighAccuracy, 5, 0);

  android::Location fix;
  EXPECT_FALSE(client.last_location(fix));
  manager.tick(1, kAnchor);
  ASSERT_TRUE(client.last_location(fix));
  EXPECT_EQ(fix.provider, LocationProvider::kFused);
  EXPECT_LT(fix.accuracy_m, 15.0);  // Fine-grade accuracy.
}

TEST(FusedClient, FusedRequestsAppearInDumpsysAsTableOneExpects) {
  android::LocationManager manager((stats::Rng(1)));
  const PermissionSet both({Permission::kAccessFineLocation,
                            Permission::kAccessCoarseLocation});
  android::FusedLocationClient client(manager, "com.fused.app", both);
  client.request_updates(FusedPriority::kBalancedPowerAccuracy, 60, 0);
  const auto requests = manager.requests_of("com.fused.app");
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].provider, LocationProvider::kFused);
  EXPECT_EQ(requests[0].interval_s, 60);
}

}  // namespace
}  // namespace locpriv
