// locprivd tests: the wire codec, the bounded stderr tail, the snapshot
// codec, and the ServiceFailover battery (suite runs under the `chaos`
// ctest label) — shard crash/hang recovery with byte-identical metric
// parity against the batch pipeline, graceful drain + resume, torn-ledger
// recovery to the previous snapshot, and shard-topology resume pinning.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/error.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "service/rolling_tail.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"
#include "sim/faults/process_plan.hpp"

namespace locpriv::service {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  // Per-pid: the chaos_locprivd aggregate runs these tests in a second
  // process concurrently with the ctest-discovered ones under `ctest -j`.
  const fs::path dir =
      fs::temp_directory_path() /
      ("locpriv_service_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- wire ----

TEST(ServiceWire, MessageRoundTripsThroughDecoder) {
  const std::vector<std::string> fields = {"submit", "7", "user_03", "2",
                                           "0x1.5p+5", "-0x1.2p+6", "1234"};
  const std::string encoded = wire::encode_message(fields);
  wire::FrameDecoder decoder;
  decoder.feed(encoded.data(), encoded.size());
  std::vector<std::string> decoded;
  ASSERT_TRUE(decoder.next(decoded));
  EXPECT_EQ(decoded, fields);
  EXPECT_FALSE(decoder.next(decoded));
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServiceWire, DecoderReassemblesByteByByteAndBackToBack) {
  const std::vector<std::string> first = {"ping", "42"};
  const std::vector<std::string> second = {"pong", "42", "100", "2048"};
  const std::string stream =
      wire::encode_message(first) + wire::encode_message(second);
  wire::FrameDecoder decoder;
  std::vector<std::vector<std::string>> seen;
  std::vector<std::string> fields;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(fields)) seen.push_back(fields);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], first);
  EXPECT_EQ(seen[1], second);
}

TEST(ServiceWire, OversizedPayloadLengthLatchesCorrupt) {
  // An outer length far past the sanity cap must poison the stream, not
  // make the decoder wait forever for 4 GiB that will never arrive.
  const char bogus[4] = {'\xff', '\xff', '\xff', '\xff'};
  wire::FrameDecoder decoder;
  decoder.feed(bogus, sizeof(bogus));
  std::vector<std::string> fields;
  EXPECT_FALSE(decoder.next(fields));
  EXPECT_TRUE(decoder.corrupt());
}

// -------------------------------------------------------- rolling tail ----

TEST(ServiceRollingTail, KeepsOnlyTheLastCapBytes) {
  RollingTail tail(8);
  tail.append("abcdefgh", 8);
  tail.append("XY", 2);
  EXPECT_EQ(tail.text(), "cdefghXY");
  EXPECT_EQ(tail.retained(), 8u);
  EXPECT_EQ(tail.total_seen(), 10u);
}

TEST(ServiceRollingTail, SingleAppendLargerThanCapIsTruncatedFromTheFront) {
  RollingTail tail(4);
  const std::string burst(1 << 20, 'x');
  tail.append(burst.data(), burst.size());
  tail.append("tail", 4);
  EXPECT_EQ(tail.text(), "tail");
  EXPECT_EQ(tail.total_seen(), burst.size() + 4);
  // A crash-looping shard can scream forever; memory stays at cap.
  EXPECT_LE(tail.retained(), tail.capacity());
}

TEST(ServiceRollingTail, OneLineFlattensNewlines) {
  RollingTail tail(64);
  tail.append("first\nsecond\n", 13);
  EXPECT_EQ(tail.one_line(), "first second");
}

// ------------------------------------------------------------ snapshot ----

ShardSnapshot sample_snapshot() {
  ShardSnapshot snapshot;
  snapshot.shard = 1;
  snapshot.seq = 3;
  snapshot.last_seq = 17;
  trace::TracePoint fix;
  fix.position.lat_deg = 39.9761234567891;  // Not representable in decimal.
  fix.position.lon_deg = 116.33071234567892;
  fix.timestamp_s = 1496641200;
  snapshot.users["007"].push_back(fix);
  fix.position.lat_deg = -0.1 + 0.2;  // Classic binary-vs-decimal residue.
  fix.timestamp_s += 60;
  snapshot.users["007"].push_back(fix);
  snapshot.users["012"] = {};
  return snapshot;
}

TEST(ServiceSnapshot, RoundTripsExactDoubles) {
  const ShardSnapshot original = sample_snapshot();
  const ShardSnapshot restored = parse_snapshot(encode_snapshot(original));
  EXPECT_EQ(restored.shard, original.shard);
  EXPECT_EQ(restored.seq, original.seq);
  EXPECT_EQ(restored.last_seq, original.last_seq);
  ASSERT_EQ(restored.users.size(), original.users.size());
  const auto& a = original.users.at("007");
  const auto& b = restored.users.at("007");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise equality, not approximate: hexfloat must round-trip exactly
    // or restored shards would drift from the batch pipeline.
    EXPECT_EQ(a[i].position.lat_deg, b[i].position.lat_deg);
    EXPECT_EQ(a[i].position.lon_deg, b[i].position.lon_deg);
    EXPECT_EQ(a[i].timestamp_s, b[i].timestamp_s);
  }
}

TEST(ServiceSnapshot, FlippedBodyByteFailsTheChecksum) {
  std::string encoded = encode_snapshot(sample_snapshot());
  encoded[encoded.size() / 2] ^= 0x20;
  try {
    parse_snapshot(encoded);
    FAIL() << "corrupted snapshot parsed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(ServiceSnapshot, TruncatedBodyIsRefused) {
  const std::string encoded = encode_snapshot(sample_snapshot());
  try {
    parse_snapshot(encoded.substr(0, encoded.size() - 7));
    FAIL() << "truncated snapshot parsed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(ServiceSnapshot, MissingFileIsRefused) {
  try {
    load_snapshot("/nonexistent/locpriv/snapshot.dat");
    FAIL() << "missing snapshot loaded";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

// ------------------------------------------------------------ failover ----

/// Small shared corpus: analyzer construction is the expensive part, so the
/// failover battery builds it once.
const core::PrivacyAnalyzer& test_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig dataset;
    dataset.user_count = 4;
    dataset.synthesis.days = 2;
    return core::PrivacyAnalyzer::from_synthetic(
        core::experiment_analyzer_config(), dataset);
  }();
  return analyzer;
}

ServiceOptions quick_options(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.interval_s = 60;
  options.seed = core::kDatasetSeed;
  options.scale = "4u_t60";
  options.heartbeat = std::chrono::milliseconds(50);
  options.ping_timeout = std::chrono::milliseconds(400);
  options.term_grace = std::chrono::milliseconds(150);
  options.snapshot_interval = std::chrono::milliseconds(150);
  options.backoff_base = std::chrono::milliseconds(10);
  options.backoff_seed = 7;
  return options;
}

TrafficOptions quick_traffic() {
  TrafficOptions traffic;
  traffic.batch_size = 32;
  traffic.rounds = 1;
  return traffic;
}

void expect_parity(const core::PrivacyAnalyzer& analyzer,
                   const ServiceOptions& options,
                   const TrafficOptions& traffic,
                   const std::vector<std::vector<std::string>>& rows) {
  EXPECT_EQ(rows.size(), analyzer.user_count());
  const std::vector<std::string> mismatched =
      parity_mismatches(analyzer, options.interval_s, traffic, rows);
  EXPECT_TRUE(mismatched.empty())
      << mismatched.size() << " users diverged, first: "
      << (mismatched.empty() ? "" : mismatched.front());
}

TEST(ServiceFailover, HealthyRunMatchesBatchPipelineByteForByte) {
  const auto& analyzer = test_analyzer();
  const auto options = quick_options(2);
  const auto traffic = quick_traffic();
  LocprivService daemon(options, analyzer, fresh_dir("healthy"), false);
  const TrafficOutcome outcome = drive_traffic(daemon, analyzer, traffic);
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.accepted, outcome.batches);
  expect_parity(analyzer, options, traffic, daemon.collect_reports());
  daemon.drain();
  EXPECT_EQ(daemon.stats().shard_deaths, 0);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
}

TEST(ServiceFailover, CrashedShardRespawnsFromSnapshotWithParity) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  options.fault_plan = sim::ProcessFaultPlan::parse("crash:1@shard0");
  options.fault_after_batches = 20;
  auto traffic = quick_traffic();
  traffic.pace = std::chrono::milliseconds(2);  // Let snapshots land first.
  LocprivService daemon(options, analyzer, fresh_dir("crash"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  EXPECT_GE(daemon.stats().shard_deaths, 1);
  EXPECT_GE(daemon.stats().respawns, 1);
  ASSERT_GE(daemon.stats().recoveries.size(), 1u);
  EXPECT_GT(daemon.stats().recoveries.front().latency_ms, 0.0);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
  expect_parity(analyzer, options, traffic, rows);
}

TEST(ServiceFailover, HangingShardIsEscalatedAndRecovers) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  // The hang ignores SIGTERM; only the ping timeout -> grace -> SIGKILL
  // escalation can reclaim the shard.
  options.fault_plan = sim::ProcessFaultPlan::parse("hang:1@shard1");
  options.fault_after_batches = 10;
  auto traffic = quick_traffic();
  traffic.pace = std::chrono::milliseconds(1);
  LocprivService daemon(options, analyzer, fresh_dir("hang"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  EXPECT_GE(daemon.stats().shard_deaths, 1);
  ASSERT_GE(daemon.stats().recoveries.size(), 1u);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
  expect_parity(analyzer, options, traffic, rows);
}

TEST(ServiceFailover, FlappingShardIsQuarantinedAndTheRestSurvive) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  options.max_respawns = 1;
  // Crashes every incarnation: one respawn is allowed, then quarantine.
  options.fault_plan = sim::ProcessFaultPlan::parse("crash@shard0");
  options.fault_after_batches = 1;
  const auto traffic = quick_traffic();
  LocprivService daemon(options, analyzer, fresh_dir("flap"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  ASSERT_EQ(daemon.quarantined_shards(),
            std::vector<std::string>{"shard0"});
  EXPECT_EQ(daemon.stats().shard_deaths, 2);  // Budget of 1 respawn + 1.
  // shard1's users still audit with full parity; shard0's are omitted.
  std::size_t shard1_users = 0;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    if (daemon.shard_of(analyzer.reference(i).user_id) == 1) ++shard1_users;
  EXPECT_EQ(rows.size(), shard1_users);
  std::vector<std::string> lost;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    if (daemon.shard_of(analyzer.reference(i).user_id) == 0)
      lost.push_back(analyzer.reference(i).user_id);
  EXPECT_TRUE(parity_mismatches(analyzer, options.interval_s, traffic, rows,
                                lost)
                  .empty());
}

TEST(ServiceFailover, DrainedRunResumesWithNoMetricDivergence) {
  const auto& analyzer = test_analyzer();
  const auto options = quick_options(2);
  const auto traffic = quick_traffic();
  const fs::path run_dir = fresh_dir("resume");

  // Leg 1: interrupted mid-schedule after ~half the batches, then drained.
  std::uint64_t sent = 0;
  {
    LocprivService daemon(options, analyzer, run_dir, false);
    const TrafficOutcome outcome =
        drive_traffic(daemon, analyzer, traffic, [&] { return ++sent > 40; });
    EXPECT_TRUE(outcome.interrupted);
    daemon.drain();  // Exit-7 path: snapshots journaled, dir resumable.
  }

  // Leg 2: resume replays the same deterministic schedule; everything the
  // snapshots already cover is deduped, the rest is applied exactly once.
  LocprivService resumed(options, analyzer, run_dir, true);
  std::uint64_t restored_total = 0;
  for (unsigned k = 0; k < options.shards; ++k)
    restored_total += resumed.restored_seq(k);
  EXPECT_GT(restored_total, 0u) << "resume did not restore any snapshot";
  const TrafficOutcome replay = drive_traffic(resumed, analyzer, traffic);
  EXPECT_GT(resumed.stats().batches_dropped, 0u) << "no resume dedupe hit";
  EXPECT_LT(replay.accepted, replay.batches);
  expect_parity(analyzer, options, traffic, resumed.collect_reports());
  resumed.drain();
}

TEST(ServiceFailover, TornLedgerTailFallsBackToPreviousSnapshot) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.snapshot_interval = std::chrono::milliseconds(50);
  const auto traffic = quick_traffic();
  auto paced = traffic;
  paced.pace = std::chrono::milliseconds(1);  // Several snapshot cadences.
  const fs::path run_dir = fresh_dir("torn");
  std::uint64_t full_watermark = 0;
  {
    LocprivService daemon(options, analyzer, run_dir, false);
    drive_traffic(daemon, analyzer, paced);
    daemon.drain();
    ASSERT_GE(daemon.stats().snapshots, 2u);
  }

  // Tear the ledger mid-way through its final line — the crash-window the
  // fsync'd single-write discipline leaves possible. RunLedger truncates
  // the torn record on reopen, so the last journaled snapshot becomes the
  // previous one, and the service must restore from *that*.
  const fs::path ledger = run_dir / "ledger.jsonl";
  std::ifstream in(ledger, std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  in.close();
  const std::string text = content.str();
  const std::size_t last_line =
      text.rfind('\n', text.size() - 2);  // Start of the final record.
  ASSERT_NE(last_line, std::string::npos);
  const std::string torn =
      text.substr(0, last_line + 1 + (text.size() - last_line - 1) / 2);
  {
    // locpriv-lint: allow(raw-write) torn ledger tail planted on purpose.
    std::ofstream out(ledger, std::ios::binary | std::ios::trunc);
    out << torn;
  }

  LocprivService resumed(options, analyzer, run_dir, true);
  full_watermark = resumed.restored_seq(0);
  EXPECT_GT(full_watermark, 0u)
      << "previous snapshot was not restored after the torn tail";
  const TrafficOutcome replay = drive_traffic(resumed, analyzer, traffic);
  EXPECT_GT(replay.accepted, 0u);  // The torn-off suffix is re-applied.
  expect_parity(analyzer, options, traffic, resumed.collect_reports());
  resumed.drain();
}

TEST(ServiceFailover, MismatchedShardTopologyResumeIsRefused) {
  const auto& analyzer = test_analyzer();
  const auto traffic = quick_traffic();
  const fs::path run_dir = fresh_dir("topology");
  {
    LocprivService daemon(quick_options(2), analyzer, run_dir, false);
    std::uint64_t sent = 0;
    drive_traffic(daemon, analyzer, traffic, [&] { return ++sent > 10; });
    daemon.drain();
  }
  try {
    LocprivService resumed(quick_options(3), analyzer, run_dir, true);
    FAIL() << "resume under a different shard count was accepted";
  } catch (const Error& error) {
    // The user->shard mapping scatters under a different modulus; exit 6.
    EXPECT_EQ(error.code(), ErrorCode::kResume);
    EXPECT_EQ(error.exit_code(), 6);
  }
}

TEST(ServiceFailover, FreshRunRefusesADirectoryWithALedger) {
  const auto& analyzer = test_analyzer();
  const fs::path run_dir = fresh_dir("refuse");
  {
    LocprivService daemon(quick_options(2), analyzer, run_dir, false);
    daemon.drain();
  }
  try {
    LocprivService again(quick_options(2), analyzer, run_dir, false);
    FAIL() << "fresh run silently reused an existing ledger";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

}  // namespace
}  // namespace locpriv::service
