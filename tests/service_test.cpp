// locprivd tests: the wire codec, the bounded stderr tail, the snapshot
// codec, and the ServiceFailover battery (suite runs under the `chaos`
// ctest label) — shard crash/hang recovery with byte-identical metric
// parity against the batch pipeline, graceful drain + resume, torn-ledger
// recovery to the previous snapshot, and shard-topology resume pinning.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/error.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "service/rolling_tail.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"
#include "sim/faults/process_plan.hpp"

namespace locpriv::service {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  // Per-pid: the chaos_locprivd aggregate runs these tests in a second
  // process concurrently with the ctest-discovered ones under `ctest -j`.
  const fs::path dir =
      fs::temp_directory_path() /
      ("locpriv_service_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- wire ----

TEST(ServiceWire, MessageRoundTripsThroughDecoder) {
  const std::vector<std::string> fields = {"submit", "7", "user_03", "2",
                                           "0x1.5p+5", "-0x1.2p+6", "1234"};
  const std::string encoded = wire::encode_message(fields);
  wire::FrameDecoder decoder;
  decoder.feed(encoded.data(), encoded.size());
  std::vector<std::string> decoded;
  ASSERT_TRUE(decoder.next(decoded));
  EXPECT_EQ(decoded, fields);
  EXPECT_FALSE(decoder.next(decoded));
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServiceWire, DecoderReassemblesByteByByteAndBackToBack) {
  const std::vector<std::string> first = {"ping", "42"};
  const std::vector<std::string> second = {"pong", "42", "100", "2048"};
  const std::string stream =
      wire::encode_message(first) + wire::encode_message(second);
  wire::FrameDecoder decoder;
  std::vector<std::vector<std::string>> seen;
  std::vector<std::string> fields;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(fields)) seen.push_back(fields);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], first);
  EXPECT_EQ(seen[1], second);
}

TEST(ServiceWire, OversizedPayloadLengthLatchesCorrupt) {
  // An outer length far past the sanity cap must poison the stream, not
  // make the decoder wait forever for 4 GiB that will never arrive.
  const char bogus[4] = {'\xff', '\xff', '\xff', '\xff'};
  wire::FrameDecoder decoder;
  decoder.feed(bogus, sizeof(bogus));
  std::vector<std::string> fields;
  EXPECT_FALSE(decoder.next(fields));
  EXPECT_TRUE(decoder.corrupt());
}

std::string raw_u32(std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  return std::string(bytes, sizeof(bytes));
}

TEST(ServiceWire, PayloadJustPastTheCapLatchesCorrupt) {
  // Exactly one byte over the 64 MiB cap: the decoder must refuse without
  // buffering toward the declared length.
  wire::FrameDecoder decoder;
  const std::string header = raw_u32(wire::kMaxPayloadBytes + 1);
  decoder.feed(header.data(), header.size());
  std::vector<std::string> fields;
  EXPECT_FALSE(decoder.next(fields));
  EXPECT_TRUE(decoder.corrupt());
}

TEST(ServiceWire, FieldCountPastTheCapLatchesCorrupt) {
  // A plausible outer length hiding an absurd inner field count (claiming
  // a million-plus fields in an 8-byte payload) is corruption, not data.
  const std::string payload =
      raw_u32(wire::kMaxFieldCount + 1) + raw_u32(0);
  const std::string message =
      raw_u32(static_cast<std::uint32_t>(payload.size())) + payload;
  wire::FrameDecoder decoder;
  decoder.feed(message.data(), message.size());
  std::vector<std::string> fields;
  EXPECT_FALSE(decoder.next(fields));
  EXPECT_TRUE(decoder.corrupt());
}

// -------------------------------------------------------- rolling tail ----

TEST(ServiceRollingTail, KeepsOnlyTheLastCapBytes) {
  RollingTail tail(8);
  tail.append("abcdefgh", 8);
  tail.append("XY", 2);
  EXPECT_EQ(tail.text(), "cdefghXY");
  EXPECT_EQ(tail.retained(), 8u);
  EXPECT_EQ(tail.total_seen(), 10u);
}

TEST(ServiceRollingTail, SingleAppendLargerThanCapIsTruncatedFromTheFront) {
  RollingTail tail(4);
  const std::string burst(1 << 20, 'x');
  tail.append(burst.data(), burst.size());
  tail.append("tail", 4);
  EXPECT_EQ(tail.text(), "tail");
  EXPECT_EQ(tail.total_seen(), burst.size() + 4);
  // A crash-looping shard can scream forever; memory stays at cap.
  EXPECT_LE(tail.retained(), tail.capacity());
}

TEST(ServiceRollingTail, OneLineFlattensNewlines) {
  RollingTail tail(64);
  tail.append("first\nsecond\n", 13);
  EXPECT_EQ(tail.one_line(), "first second");
}

TEST(ServiceRollingTail, ZeroCapRetainsNothingButCountsEverything) {
  RollingTail tail(0);
  tail.append("noisy shard", 11);
  EXPECT_EQ(tail.text(), "");
  EXPECT_EQ(tail.retained(), 0u);
  EXPECT_EQ(tail.total_seen(), 11u);
  EXPECT_EQ(tail.one_line(), "");
}

TEST(ServiceRollingTail, ExactCapAppendKeepsTheWholeChunk) {
  RollingTail tail(8);
  tail.append("12345678", 8);  // size == cap, the >= boundary.
  EXPECT_EQ(tail.text(), "12345678");
  tail.append("abcdefgh", 8);  // A second exact-cap chunk replaces it all.
  EXPECT_EQ(tail.text(), "abcdefgh");
  EXPECT_EQ(tail.retained(), 8u);
  EXPECT_EQ(tail.total_seen(), 16u);
}

TEST(ServiceRollingTail, ManySmallChunksWrapToTheSuffix) {
  RollingTail tail(16);
  std::string all;
  for (int i = 0; i < 9; ++i) {
    const std::string chunk = "chunk" + std::to_string(i) + ";";
    tail.append(chunk.data(), chunk.size());
    all += chunk;
  }
  EXPECT_EQ(tail.text(), all.substr(all.size() - 16));
  EXPECT_EQ(tail.retained(), 16u);
  EXPECT_EQ(tail.total_seen(), all.size());
}

// ------------------------------------------------------------ snapshot ----

ShardSnapshot sample_snapshot() {
  ShardSnapshot snapshot;
  snapshot.shard = 1;
  snapshot.seq = 3;
  snapshot.last_seq = 17;
  trace::TracePoint fix;
  fix.position.lat_deg = 39.9761234567891;  // Not representable in decimal.
  fix.position.lon_deg = 116.33071234567892;
  fix.timestamp_s = 1496641200;
  snapshot.users["007"].push_back(fix);
  fix.position.lat_deg = -0.1 + 0.2;  // Classic binary-vs-decimal residue.
  fix.timestamp_s += 60;
  snapshot.users["007"].push_back(fix);
  snapshot.users["012"] = {};
  return snapshot;
}

TEST(ServiceSnapshot, RoundTripsExactDoubles) {
  const ShardSnapshot original = sample_snapshot();
  const ShardSnapshot restored = parse_snapshot(encode_snapshot(original));
  EXPECT_EQ(restored.shard, original.shard);
  EXPECT_EQ(restored.seq, original.seq);
  EXPECT_EQ(restored.last_seq, original.last_seq);
  ASSERT_EQ(restored.users.size(), original.users.size());
  const auto& a = original.users.at("007");
  const auto& b = restored.users.at("007");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise equality, not approximate: hexfloat must round-trip exactly
    // or restored shards would drift from the batch pipeline.
    EXPECT_EQ(a[i].position.lat_deg, b[i].position.lat_deg);
    EXPECT_EQ(a[i].position.lon_deg, b[i].position.lon_deg);
    EXPECT_EQ(a[i].timestamp_s, b[i].timestamp_s);
  }
}

TEST(ServiceSnapshot, FlippedBodyByteFailsTheChecksum) {
  std::string encoded = encode_snapshot(sample_snapshot());
  encoded[encoded.size() / 2] ^= 0x20;
  try {
    parse_snapshot(encoded);
    FAIL() << "corrupted snapshot parsed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(ServiceSnapshot, TruncatedBodyIsRefused) {
  const std::string encoded = encode_snapshot(sample_snapshot());
  try {
    parse_snapshot(encoded.substr(0, encoded.size() - 7));
    FAIL() << "truncated snapshot parsed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(ServiceSnapshot, MissingFileIsRefused) {
  try {
    load_snapshot("/nonexistent/locpriv/snapshot.dat");
    FAIL() << "missing snapshot loaded";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

// ------------------------------------------------------------ failover ----

/// Small shared corpus: analyzer construction is the expensive part, so the
/// failover battery builds it once.
const core::PrivacyAnalyzer& test_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig dataset;
    dataset.user_count = 4;
    dataset.synthesis.days = 2;
    return core::PrivacyAnalyzer::from_synthetic(
        core::experiment_analyzer_config(), dataset);
  }();
  return analyzer;
}

ServiceOptions quick_options(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.interval_s = 60;
  options.seed = core::kDatasetSeed;
  options.scale = "4u_t60";
  options.heartbeat = std::chrono::milliseconds(50);
  options.ping_timeout = std::chrono::milliseconds(400);
  options.term_grace = std::chrono::milliseconds(150);
  options.snapshot_interval = std::chrono::milliseconds(150);
  options.backoff_base = std::chrono::milliseconds(10);
  options.backoff_seed = 7;
  return options;
}

TrafficOptions quick_traffic() {
  TrafficOptions traffic;
  traffic.batch_size = 32;
  traffic.rounds = 1;
  return traffic;
}

void expect_parity(const core::PrivacyAnalyzer& analyzer,
                   const ServiceOptions& options,
                   const TrafficOptions& traffic,
                   const std::vector<std::vector<std::string>>& rows) {
  EXPECT_EQ(rows.size(), analyzer.user_count());
  const std::vector<std::string> mismatched =
      parity_mismatches(analyzer, options.interval_s, traffic, rows);
  EXPECT_TRUE(mismatched.empty())
      << mismatched.size() << " users diverged, first: "
      << (mismatched.empty() ? "" : mismatched.front());
}

TEST(ServiceFailover, HealthyRunMatchesBatchPipelineByteForByte) {
  const auto& analyzer = test_analyzer();
  const auto options = quick_options(2);
  const auto traffic = quick_traffic();
  LocprivService daemon(options, analyzer, fresh_dir("healthy"), false);
  const TrafficOutcome outcome = drive_traffic(daemon, analyzer, traffic);
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.accepted, outcome.batches);
  expect_parity(analyzer, options, traffic, daemon.collect_reports());
  daemon.drain();
  EXPECT_EQ(daemon.stats().shard_deaths, 0);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
  // Lossless admission never sheds; the offer ledger reconciles exactly.
  const ServiceStats& stats = daemon.stats();
  EXPECT_EQ(stats.batches_shed, 0u);
  EXPECT_EQ(stats.batches_offered,
            stats.batches_submitted + stats.batches_dropped);
  EXPECT_TRUE(daemon.shed_users().empty());
}

TEST(ServiceFailover, CrashedShardRespawnsFromSnapshotWithParity) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  options.fault_plan = sim::ProcessFaultPlan::parse("crash:1@shard0");
  options.fault_after_batches = 20;
  auto traffic = quick_traffic();
  traffic.pace = std::chrono::milliseconds(2);  // Let snapshots land first.
  LocprivService daemon(options, analyzer, fresh_dir("crash"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  EXPECT_GE(daemon.stats().shard_deaths, 1);
  EXPECT_GE(daemon.stats().respawns, 1);
  ASSERT_GE(daemon.stats().recoveries.size(), 1u);
  EXPECT_GT(daemon.stats().recoveries.front().latency_ms, 0.0);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
  expect_parity(analyzer, options, traffic, rows);
}

TEST(ServiceFailover, HangingShardIsEscalatedAndRecovers) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  // The hang ignores SIGTERM; only the ping timeout -> grace -> SIGKILL
  // escalation can reclaim the shard.
  options.fault_plan = sim::ProcessFaultPlan::parse("hang:1@shard1");
  options.fault_after_batches = 10;
  auto traffic = quick_traffic();
  traffic.pace = std::chrono::milliseconds(1);
  LocprivService daemon(options, analyzer, fresh_dir("hang"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  EXPECT_GE(daemon.stats().shard_deaths, 1);
  ASSERT_GE(daemon.stats().recoveries.size(), 1u);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
  expect_parity(analyzer, options, traffic, rows);
}

TEST(ServiceFailover, FlappingShardIsQuarantinedAndTheRestSurvive) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(2);
  options.max_respawns = 1;
  // Crashes every incarnation: one respawn is allowed, then quarantine.
  options.fault_plan = sim::ProcessFaultPlan::parse("crash@shard0");
  options.fault_after_batches = 1;
  const auto traffic = quick_traffic();
  LocprivService daemon(options, analyzer, fresh_dir("flap"), false);
  drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  ASSERT_EQ(daemon.quarantined_shards(),
            std::vector<std::string>{"shard0"});
  EXPECT_EQ(daemon.stats().shard_deaths, 2);  // Budget of 1 respawn + 1.
  // shard1's users still audit with full parity; shard0's are omitted.
  std::size_t shard1_users = 0;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    if (daemon.shard_of(analyzer.reference(i).user_id) == 1) ++shard1_users;
  EXPECT_EQ(rows.size(), shard1_users);
  std::vector<std::string> lost;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    if (daemon.shard_of(analyzer.reference(i).user_id) == 0)
      lost.push_back(analyzer.reference(i).user_id);
  EXPECT_TRUE(parity_mismatches(analyzer, options.interval_s, traffic, rows,
                                lost)
                  .empty());
}

TEST(ServiceFailover, DrainedRunResumesWithNoMetricDivergence) {
  const auto& analyzer = test_analyzer();
  const auto options = quick_options(2);
  const auto traffic = quick_traffic();
  const fs::path run_dir = fresh_dir("resume");

  // Leg 1: interrupted mid-schedule after ~half the batches, then drained.
  std::uint64_t sent = 0;
  {
    LocprivService daemon(options, analyzer, run_dir, false);
    const TrafficOutcome outcome =
        drive_traffic(daemon, analyzer, traffic, [&] { return ++sent > 40; });
    EXPECT_TRUE(outcome.interrupted);
    daemon.drain();  // Exit-7 path: snapshots journaled, dir resumable.
  }

  // Leg 2: resume replays the same deterministic schedule; everything the
  // snapshots already cover is deduped, the rest is applied exactly once.
  LocprivService resumed(options, analyzer, run_dir, true);
  std::uint64_t restored_total = 0;
  for (unsigned k = 0; k < options.shards; ++k)
    restored_total += resumed.restored_seq(k);
  EXPECT_GT(restored_total, 0u) << "resume did not restore any snapshot";
  const TrafficOutcome replay = drive_traffic(resumed, analyzer, traffic);
  EXPECT_GT(resumed.stats().batches_dropped, 0u) << "no resume dedupe hit";
  EXPECT_LT(replay.accepted, replay.batches);
  expect_parity(analyzer, options, traffic, resumed.collect_reports());
  resumed.drain();
}

TEST(ServiceFailover, TornLedgerTailFallsBackToPreviousSnapshot) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.snapshot_interval = std::chrono::milliseconds(50);
  const auto traffic = quick_traffic();
  auto paced = traffic;
  paced.pace = std::chrono::milliseconds(1);  // Several snapshot cadences.
  const fs::path run_dir = fresh_dir("torn");
  std::uint64_t full_watermark = 0;
  {
    LocprivService daemon(options, analyzer, run_dir, false);
    drive_traffic(daemon, analyzer, paced);
    daemon.drain();
    ASSERT_GE(daemon.stats().snapshots, 2u);
  }

  // Tear the ledger mid-way through its final line — the crash-window the
  // fsync'd single-write discipline leaves possible. RunLedger truncates
  // the torn record on reopen, so the last journaled snapshot becomes the
  // previous one, and the service must restore from *that*.
  const fs::path ledger = run_dir / "ledger.jsonl";
  std::ifstream in(ledger, std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  in.close();
  const std::string text = content.str();
  const std::size_t last_line =
      text.rfind('\n', text.size() - 2);  // Start of the final record.
  ASSERT_NE(last_line, std::string::npos);
  const std::string torn =
      text.substr(0, last_line + 1 + (text.size() - last_line - 1) / 2);
  {
    // locpriv-lint: allow(raw-write) torn ledger tail planted on purpose.
    std::ofstream out(ledger, std::ios::binary | std::ios::trunc);
    out << torn;
  }

  LocprivService resumed(options, analyzer, run_dir, true);
  full_watermark = resumed.restored_seq(0);
  EXPECT_GT(full_watermark, 0u)
      << "previous snapshot was not restored after the torn tail";
  const TrafficOutcome replay = drive_traffic(resumed, analyzer, traffic);
  EXPECT_GT(replay.accepted, 0u);  // The torn-off suffix is re-applied.
  expect_parity(analyzer, options, traffic, resumed.collect_reports());
  resumed.drain();
}

TEST(ServiceFailover, MismatchedShardTopologyResumeIsRefused) {
  const auto& analyzer = test_analyzer();
  const auto traffic = quick_traffic();
  const fs::path run_dir = fresh_dir("topology");
  {
    LocprivService daemon(quick_options(2), analyzer, run_dir, false);
    std::uint64_t sent = 0;
    drive_traffic(daemon, analyzer, traffic, [&] { return ++sent > 10; });
    daemon.drain();
  }
  try {
    LocprivService resumed(quick_options(3), analyzer, run_dir, true);
    FAIL() << "resume under a different shard count was accepted";
  } catch (const Error& error) {
    // The user->shard mapping scatters under a different modulus; exit 6.
    EXPECT_EQ(error.code(), ErrorCode::kResume);
    EXPECT_EQ(error.exit_code(), 6);
  }
}

TEST(ServiceFailover, FreshRunRefusesADirectoryWithALedger) {
  const auto& analyzer = test_analyzer();
  const fs::path run_dir = fresh_dir("refuse");
  {
    LocprivService daemon(quick_options(2), analyzer, run_dir, false);
    daemon.drain();
  }
  try {
    LocprivService again(quick_options(2), analyzer, run_dir, false);
    FAIL() << "fresh run silently reused an existing ledger";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

// ------------------------------------------------------------ overload ----

TEST(ServiceOverload, EwmaUpdateInitializesThenSmooths) {
  // First sample seeds the average regardless of prev.
  EXPECT_DOUBLE_EQ(ewma_update(999.0, 40.0, 0.2, false), 40.0);
  // Subsequent samples blend: 0.2 * 100 + 0.8 * 40 = 52.
  EXPECT_DOUBLE_EQ(ewma_update(40.0, 100.0, 0.2, true), 52.0);
  // A constant stream is a fixed point.
  EXPECT_DOUBLE_EQ(ewma_update(40.0, 40.0, 0.2, true), 40.0);
}

std::vector<trace::TracePoint> tiny_batch(int fixes, std::int64_t base_ts) {
  std::vector<trace::TracePoint> batch;
  for (int i = 0; i < fixes; ++i) {
    trace::TracePoint fix;
    fix.position.lat_deg = 39.9 + 0.001 * i;
    fix.position.lon_deg = 116.3 + 0.001 * i;
    fix.timestamp_s = base_ts + 60 * i;
    batch.push_back(fix);
  }
  return batch;
}

/// Ticks until `done` reports true; fails the test on a wall-clock budget.
void tick_until(LocprivService& daemon, const std::function<bool()>& done,
                std::chrono::seconds budget = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "service never reached the expected state";
    daemon.tick(std::chrono::milliseconds(10));
  }
}

TEST(ServiceOverload, WindowEdgeShedsSyntheticAndBlocksLossless) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.max_inflight_batches = 4;
  options.shed_policy = ShedPolicy::kRejectNew;
  // The first incarnation wedges (SIGTERM-ignoring) on its first batch, so
  // nothing acks and the credit window fills exactly.
  options.fault_plan = sim::ProcessFaultPlan::parse("hang:1@shard0");
  options.fault_after_batches = 1;
  LocprivService daemon(options, analyzer, fresh_dir("window_edge"), false);

  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496641200 + 1000 * i),
                            /*may_shed=*/true),
              Admission::kAccepted);
  // Window exhausted: shed-eligible offers are rejected...
  EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496650000), true),
            Admission::kShed);
  // ...and a lossless offer whose caller gives up reports kBlocked without
  // entering the system.
  EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496660000), false,
                          [] { return true; }),
            Admission::kBlocked);
  EXPECT_GE(daemon.stats().blocked_waits, 1u);

  // A patient lossless offer blocks through wedge detection, SIGKILL,
  // respawn, and replay — then lands. Data is never shed on this path.
  EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496660000), false),
            Admission::kAccepted);
  daemon.drain();

  const ServiceStats& stats = daemon.stats();
  EXPECT_GE(stats.shard_deaths, 1);
  EXPECT_EQ(stats.shed_reject_new, 1u);
  EXPECT_EQ(stats.batches_shed, 1u);
  EXPECT_EQ(stats.batches_submitted, 5u);
  EXPECT_EQ(stats.batches_offered,
            stats.batches_submitted + stats.batches_dropped +
                stats.batches_shed);
  EXPECT_LE(stats.pending_ops_peak, options.max_inflight_batches + 4);
  const auto& loads = daemon.user_loads();
  ASSERT_EQ(loads.count("user_w"), 1u);
  EXPECT_EQ(loads.at("user_w").batches_offered, 6u);
  EXPECT_EQ(loads.at("user_w").batches_accepted, 5u);
  EXPECT_EQ(loads.at("user_w").batches_shed, 1u);
  EXPECT_EQ(daemon.shed_users(), std::vector<std::string>{"user_w"});
}

TEST(ServiceOverload, DropOldestEvictsUnsentBatchesWhileShardIsDown) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.max_inflight_batches = 2;
  options.shed_policy = ShedPolicy::kDropOldest;
  options.fault_plan = sim::ProcessFaultPlan::parse("crash:1@shard0");
  options.fault_after_batches = 1;
  // A long respawn backoff keeps the shard down while we queue into it.
  options.backoff_base = std::chrono::milliseconds(400);
  LocprivService daemon(options, analyzer, fresh_dir("drop_oldest"), false);

  EXPECT_EQ(daemon.submit("user_a", tiny_batch(2, 1496641200), true),
            Admission::kAccepted);
  // The child segfaults on that batch; wait for the supervisor to reap it.
  tick_until(daemon, [&] { return daemon.stats().shard_deaths >= 1; });

  // During backoff the sent cursor is rewound, so both retained batches are
  // unsent; the window (2) fills, and drop-oldest evicts the oldest unsent
  // batch to admit the newest.
  EXPECT_EQ(daemon.submit("user_b", tiny_batch(2, 1496650000), true),
            Admission::kAccepted);
  EXPECT_EQ(daemon.submit("user_c", tiny_batch(2, 1496660000), true),
            Admission::kAccepted);
  daemon.drain();

  const ServiceStats& stats = daemon.stats();
  EXPECT_EQ(stats.shed_drop_oldest, 1u);
  EXPECT_EQ(stats.batches_shed, 1u);
  EXPECT_EQ(stats.batches_submitted, 2u);  // user_a's batch was evicted.
  EXPECT_EQ(stats.batches_offered,
            stats.batches_submitted + stats.batches_dropped +
                stats.batches_shed);
  EXPECT_EQ(daemon.shed_users(), std::vector<std::string>{"user_a"});
  const ShardLoad load = daemon.shard_load(0);
  EXPECT_EQ(load.offered, 3u);
  EXPECT_EQ(load.accepted, 2u);
  EXPECT_EQ(load.shed, 1u);
}

TEST(ServiceOverload, ShedOffersConsumeSeqsSoResumeStaysAligned) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.max_inflight_batches = 2;
  options.shed_policy = ShedPolicy::kRejectNew;
  // The first incarnation wedges on its first batch, so nothing acks, the
  // window fills, and the shed below lands mid-schedule.
  options.fault_plan = sim::ProcessFaultPlan::parse("hang:1@shard0");
  options.fault_after_batches = 1;
  const fs::path run_dir = fresh_dir("shed_resume");

  {
    LocprivService daemon(options, analyzer, run_dir, false);
    EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496641200), true),
              Admission::kAccepted);  // seq 1 — wedges the child.
    EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496642200), true),
              Admission::kAccepted);  // seq 2 — window (2) now full.
    EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496643200), true),
              Admission::kShed);  // Shed, but must still consume seq 3.
    // A patient lossless offer blocks through wedge detection, SIGKILL,
    // respawn, and replay, then lands as seq 4.
    EXPECT_EQ(daemon.submit("user_w", tiny_batch(2, 1496644200), false),
              Admission::kAccepted);
    daemon.drain();  // Final snapshot watermark covers seq 4.
  }

  // Resume replays the same deterministic offer schedule. Because the shed
  // offer consumed seq 3, the restored watermark is 4 and every re-offer
  // dedupes. If sheds skipped seqs, the fourth offer would shift past the
  // watermark and the child would apply it a second time on top of the
  // snapshot that already holds it.
  options.fault_plan = sim::ProcessFaultPlan();
  LocprivService resumed(options, analyzer, run_dir, true);
  EXPECT_EQ(resumed.restored_seq(0), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(resumed.submit("user_w", tiny_batch(2, 1496641200 + 1000 * i),
                             true),
              Admission::kDeduped)
        << "offer " << i + 1 << " fell out of resume alignment";
  resumed.drain();
  const ServiceStats& stats = resumed.stats();
  EXPECT_EQ(stats.batches_submitted, 0u);  // Nothing re-applied on resume.
  EXPECT_EQ(stats.batches_dropped, 4u);
  EXPECT_EQ(stats.batches_shed, 0u);
}

TEST(ServiceOverload, DropOldestEvictsUntilTheByteCapAdmitsTheBatch) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.max_inflight_batches = 0;  // Only the byte cap governs admission.
  options.max_retained_bytes = 600;
  options.shed_policy = ShedPolicy::kDropOldest;
  options.fault_plan = sim::ProcessFaultPlan::parse("crash:1@shard0");
  options.fault_after_batches = 1;
  // A long respawn backoff keeps the shard down (everything unsent) while
  // we queue into it.
  options.backoff_base = std::chrono::milliseconds(400);
  // Cadence snapshots would truncate retained mid-test; push them out.
  options.snapshot_interval = std::chrono::milliseconds(60000);
  LocprivService daemon(options, analyzer, fresh_dir("evict_until_fits"),
                        false);

  EXPECT_EQ(daemon.submit("user_a", tiny_batch(2, 1496641200), true),
            Admission::kAccepted);
  tick_until(daemon, [&] { return daemon.stats().shard_deaths >= 1; });

  // Three small frames (~170 bytes each) sit under the 600-byte cap, then a
  // large one is admitted at the edge (the one-frame slack every admission
  // path has).
  EXPECT_EQ(daemon.submit("user_b", tiny_batch(2, 1496642200), true),
            Admission::kAccepted);
  EXPECT_EQ(daemon.submit("user_c", tiny_batch(2, 1496643200), true),
            Admission::kAccepted);
  EXPECT_EQ(daemon.submit("user_d", tiny_batch(20, 1496644200), true),
            Admission::kAccepted);
  // The next offer finds retained far past the cap. One eviction frees too
  // few bytes, so drop-oldest must keep evicting — all four unsent batches
  // go — before the incoming frame fits back under the cap.
  EXPECT_EQ(daemon.submit("user_e", tiny_batch(2, 1496645200), true),
            Admission::kAccepted);
  const ServiceStats& mid = daemon.stats();
  EXPECT_EQ(mid.shed_drop_oldest, 4u);
  EXPECT_EQ(mid.batches_shed, 4u);
  EXPECT_EQ(mid.batches_submitted, 1u);
  const ShardLoad load = daemon.shard_load(0);
  EXPECT_EQ(load.retained_batches, 1u);
  EXPECT_LT(load.retained_bytes, options.max_retained_bytes);
  daemon.drain();

  const ServiceStats& stats = daemon.stats();
  EXPECT_EQ(stats.batches_offered,
            stats.batches_submitted + stats.batches_dropped +
                stats.batches_shed);
  EXPECT_EQ(daemon.user_loads().at("user_d").batches_accepted, 0u);
  EXPECT_EQ(daemon.user_loads().at("user_e").batches_accepted, 1u);
}

TEST(ServiceOverload, RetainedByteCapForcesEarlySnapshotsAndHolds) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.max_inflight_batches = 0;  // Only the byte cap governs admission.
  options.max_retained_bytes = 16 * 1024;
  // Cadence snapshots would mask the cap; push them out of the run.
  options.snapshot_interval = std::chrono::milliseconds(60000);
  const auto traffic = quick_traffic();
  LocprivService daemon(options, analyzer, fresh_dir("byte_cap"), false);
  drive_traffic(daemon, analyzer, traffic);
  expect_parity(analyzer, options, traffic, daemon.collect_reports());
  daemon.drain();

  const ServiceStats& stats = daemon.stats();
  EXPECT_GE(stats.forced_snapshots, 1u);
  EXPECT_EQ(stats.batches_shed, 0u);  // Lossless blocking, never shedding.
  // The peak may overshoot by at most the one batch admitted at the edge.
  EXPECT_LE(stats.retained_bytes_peak, options.max_retained_bytes + 8 * 1024);
  EXPECT_EQ(daemon.shard_load(0).retained_bytes, 0u);  // Drain truncates all.
}

TEST(ServiceOverload, DegradedEwmaTriggersOutOfBandSnapshotPerEpisode) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.degraded_ms = std::chrono::milliseconds(50);
  LocprivService daemon(options, analyzer, fresh_dir("degraded"), false);

  daemon.inject_turnaround_sample_for_testing(0, 200.0);
  EXPECT_EQ(daemon.stats().degraded_events, 1u);
  EXPECT_TRUE(daemon.shard_load(0).degraded);
  // Staying slow extends the same episode; no double-count.
  daemon.inject_turnaround_sample_for_testing(0, 200.0);
  EXPECT_EQ(daemon.stats().degraded_events, 1u);
  // Recovery needs the EWMA below half the threshold (hysteresis)...
  for (int i = 0; i < 16; ++i)
    daemon.inject_turnaround_sample_for_testing(0, 0.0);
  EXPECT_FALSE(daemon.shard_load(0).degraded);
  // ...after which a new slow spell is a second episode.
  daemon.inject_turnaround_sample_for_testing(0, 400.0);
  EXPECT_EQ(daemon.stats().degraded_events, 2u);
  tick_until(daemon, [&] { return daemon.stats().snapshots >= 1u; });
  daemon.drain();
}

TEST(ServiceOverload, SlowEwmaRestartsTheShardThroughTheRespawnPath) {
  const auto& analyzer = test_analyzer();
  auto options = quick_options(1);
  options.slow_restart_ms = std::chrono::milliseconds(50);
  LocprivService daemon(options, analyzer, fresh_dir("slow_restart"), false);

  EXPECT_EQ(daemon.submit("user_s", tiny_batch(2, 1496641200), false),
            Admission::kAccepted);
  daemon.inject_turnaround_sample_for_testing(0, 500.0);
  EXPECT_EQ(daemon.stats().slow_restarts, 1u);
  tick_until(daemon, [&] {
    return daemon.stats().shard_deaths >= 1 && daemon.stats().respawns >= 1;
  });
  daemon.drain();
  // The restart rode the normal death/replay path: nothing was lost.
  EXPECT_EQ(daemon.stats().batches_submitted, 1u);
  EXPECT_EQ(daemon.stats().batches_shed, 0u);
  EXPECT_TRUE(daemon.quarantined_shards().empty());
}

}  // namespace
}  // namespace locpriv::service
