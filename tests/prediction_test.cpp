#include <gtest/gtest.h>

#include "privacy/prediction.hpp"
#include "privacy/reconstruction.hpp"
#include "geo/geodesy.hpp"
#include "trace/sampling.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

PatternHistogram movements_from(
    std::initializer_list<std::pair<std::pair<RegionId, RegionId>, double>> items) {
  PatternHistogram histogram;
  for (const auto& [pair, count] : items)
    histogram.add(pack_transition(pair.first, pair.second), count);
  return histogram;
}

TEST(NextPlacePredictor, PredictsMostFrequentDestination) {
  const auto movements =
      movements_from({{{1, 2}, 10.0}, {{1, 3}, 3.0}, {{2, 1}, 8.0}});
  const NextPlacePredictor predictor(movements);
  EXPECT_EQ(predictor.source_count(), 2u);
  RegionId next = 0;
  ASSERT_TRUE(predictor.predict(1, next));
  EXPECT_EQ(next, 2);
  ASSERT_TRUE(predictor.predict(2, next));
  EXPECT_EQ(next, 1);
  EXPECT_FALSE(predictor.predict(99, next));
}

TEST(NextPlacePredictor, TransitionProbabilities) {
  const auto movements = movements_from({{{1, 2}, 30.0}, {{1, 3}, 10.0}});
  const NextPlacePredictor predictor(movements);
  EXPECT_DOUBLE_EQ(predictor.transition_probability(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(predictor.transition_probability(1, 3), 0.25);
  EXPECT_DOUBLE_EQ(predictor.transition_probability(1, 9), 0.0);
  EXPECT_DOUBLE_EQ(predictor.transition_probability(5, 2), 0.0);
}

TEST(NextPlacePredictor, TiesBreakDeterministically) {
  const auto movements = movements_from({{{1, 7}, 5.0}, {{1, 4}, 5.0}});
  const NextPlacePredictor predictor(movements);
  RegionId next = 0;
  ASSERT_TRUE(predictor.predict(1, next));
  EXPECT_EQ(next, 4);  // Lowest region id wins ties.
}

TEST(NextPlacePredictor, EmptyHistogramNeverPredicts) {
  const NextPlacePredictor predictor{PatternHistogram{}};
  RegionId next = 0;
  EXPECT_FALSE(predictor.predict(1, next));
  EXPECT_EQ(predictor.source_count(), 0u);
}

TEST(ScorePredictions, CountsCorrectSkippedEvaluated) {
  const auto movements = movements_from({{{1, 2}, 10.0}, {{2, 3}, 10.0}});
  const NextPlacePredictor predictor(movements);
  // Sequence 1 -> 2 (correct), 2 -> 1 (wrong: model says 3), 9 -> 1 (skip).
  const PredictionScore score = score_predictions(predictor, {1, 2, 1});
  EXPECT_EQ(score.evaluated, 2u);
  EXPECT_EQ(score.correct, 1u);
  const PredictionScore skip = score_predictions(predictor, {9, 1});
  EXPECT_EQ(skip.skipped, 1u);
  EXPECT_DOUBLE_EQ(skip.accuracy(), 0.0);
}

std::vector<trace::TracePoint> two_stop_truth() {
  // At the anchor for t in [0, 1000), then 2 km east for [1000, 2000].
  std::vector<trace::TracePoint> points;
  const geo::LatLon second = geo::destination(kAnchor, 90.0, 2000.0);
  for (std::int64_t t = 0; t <= 2000; t += 10)
    points.push_back({t < 1000 ? kAnchor : second, t});
  return points;
}

TEST(PositionEstimator, LastFixCarriesForward) {
  const auto truth = two_stop_truth();
  const PositionEstimator estimator(trace::decimate(truth, 500));
  // Collected at t = 0, 500, 1000, 1500, 2000.
  EXPECT_LT(geo::haversine_m(estimator.estimate(400), kAnchor), 1.0);
  EXPECT_LT(geo::haversine_m(estimator.estimate(999), kAnchor), 1.0);
  const geo::LatLon second = geo::destination(kAnchor, 90.0, 2000.0);
  EXPECT_LT(geo::haversine_m(estimator.estimate(1200), second), 1.0);
  // Queries before the first fix return the first fix.
  EXPECT_LT(geo::haversine_m(estimator.estimate(-100), kAnchor), 1.0);
}

TEST(PositionEstimator, Preconditions) {
  EXPECT_THROW(PositionEstimator({}), util::ContractViolation);
  std::vector<trace::TracePoint> unordered{{kAnchor, 10}, {kAnchor, 5}};
  EXPECT_THROW(PositionEstimator(std::move(unordered)), util::ContractViolation);
}

TEST(ReconstructionError, PerfectCollectionHasZeroError) {
  const auto truth = two_stop_truth();
  const PositionEstimator estimator(truth);
  const auto error = reconstruction_error(truth, estimator, 10);
  EXPECT_DOUBLE_EQ(error.mean_m, 0.0);
  EXPECT_GT(error.samples, 100u);
}

TEST(ReconstructionError, SparserCollectionHasLargerError) {
  const auto truth = two_stop_truth();
  const auto dense_error =
      reconstruction_error(truth, PositionEstimator(trace::decimate(truth, 100)), 10);
  const auto sparse_error =
      reconstruction_error(truth, PositionEstimator(trace::decimate(truth, 1500)), 10);
  EXPECT_LE(dense_error.mean_m, sparse_error.mean_m);
  // The sparse estimator misses the move for ~500 s: large p90.
  EXPECT_GT(sparse_error.p90_m, 1000.0);
  EXPECT_THROW(reconstruction_error({}, PositionEstimator(truth), 10),
               util::ContractViolation);
  EXPECT_THROW(reconstruction_error(truth, PositionEstimator(truth), 0),
               util::ContractViolation);
}

}  // namespace
}  // namespace locpriv::privacy
