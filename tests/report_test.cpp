#include <gtest/gtest.h>

#include <sstream>

#include "report_command.hpp"

namespace locpriv::tools {
namespace {

TEST(ReproductionReport, ContainsBothSectionsAndExactMarketRows) {
  ReportOptions options;
  options.user_count = 8;
  options.days = 4;
  std::ostringstream out;
  write_reproduction_report(out, options);
  const std::string report = out.str();
  EXPECT_NE(report.find("# locpriv reproduction report"), std::string::npos);
  EXPECT_NE(report.find("## Section III - market measurement"), std::string::npos);
  EXPECT_NE(report.find("## Section IV - privacy measurement"), std::string::npos);
  // The calibrated market rows are exact regardless of corpus size.
  EXPECT_NE(report.find("| apps declaring a location permission | 1,137 | 1137 |"),
            std::string::npos);
  EXPECT_NE(report.find("| apps accessing location in background | 102 | 102 |"),
            std::string::npos);
  // Section IV rows render percentages.
  EXPECT_NE(report.find("PoIs recoverable at 10 s polling"), std::string::npos);
}

TEST(ReproductionReport, CorpusLineReflectsOptions) {
  ReportOptions options;
  options.user_count = 5;
  options.days = 3;
  std::ostringstream out;
  write_reproduction_report(out, options);
  EXPECT_NE(out.str().find("Corpus: 5 users x 3 days"), std::string::npos);
}

}  // namespace
}  // namespace locpriv::tools
