#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace locpriv::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<int> hits(kCount, 0);
  // Force the threaded path even on single-core machines.
  parallel_for(kCount, [&](std::size_t i) { ++hits[i]; }, /*max_threads=*/4);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, ResultsMatchSequential) {
  constexpr std::size_t kCount = 512;
  std::vector<double> parallel_out(kCount);
  std::vector<double> sequential_out(kCount);
  const auto work = [](std::size_t i) {
    double x = static_cast<double>(i) + 1.0;
    for (int iter = 0; iter < 50; ++iter) x = x * 1.0001 + 0.5;
    return x;
  };
  parallel_for(kCount, [&](std::size_t i) { parallel_out[i] = work(i); }, 8);
  for (std::size_t i = 0; i < kCount; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);  // Bit-identical.
}

TEST(ParallelFor, ZeroAndSmallCounts) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallel_for(2, [&](std::size_t) { ++calls; }, 4);  // Sequential fallback.
  EXPECT_EQ(calls, 2);
}

TEST(ParallelFor, PropagatesFirstException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(
        100,
        [&](std::size_t i) {
          if (i == 42) throw std::runtime_error("boom at 42");
          completed.fetch_add(1, std::memory_order_relaxed);
        },
        4);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom at 42");
  }
  // Other indices still ran (workers are joined before rethrow).
  EXPECT_GE(completed.load(), 50);
}

TEST(ParallelFor, CollectsAllConcurrentExceptionsAndRethrowsLowestWorker) {
  // Every worker throws. All of them must be joined, the rethrown error must
  // be the lowest worker's (deterministic, not a mutex race), and the others
  // are logged rather than silently dropped.
  std::atomic<int> throws{0};
  constexpr std::size_t kCount = 64;  // 4 workers x 16-index chunks.
  try {
    parallel_for(
        kCount,
        [&](std::size_t i) {
          if (i % 16 == 0) {  // First index of every worker's chunk.
            throws.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error("boom in chunk " + std::to_string(i / 16));
          }
        },
        4);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom in chunk 0");
  }
  EXPECT_EQ(throws.load(), 4);  // Every worker ran and failed; all joined.
}

TEST(ParallelFor, MaxThreadsOneIsPlainLoop) {
  std::vector<std::size_t> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // Strictly in order with one thread.
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<int> hits(5, 0);
  parallel_for(5, [&](std::size_t i) { ++hits[i]; }, 64);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace locpriv::util
