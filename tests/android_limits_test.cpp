// The Android 8 background-location-limits policy and the defense
// evaluation harness built on top of the analyzer.
#include <gtest/gtest.h>

#include "android/device.hpp"
#include "core/defense_eval.hpp"
#include "core/experiment.hpp"
#include "market/study.hpp"
#include "util/expect.hpp"

namespace locpriv {
namespace {

using android::AppBehavior;
using android::AndroidManifest;
using android::DeviceSimulator;
using android::LocationProvider;
using android::Permission;

const geo::LatLon kDesk{39.9042, 116.4074};

AndroidManifest fine_manifest(const std::string& package) {
  AndroidManifest manifest;
  manifest.package_name = package;
  manifest.uses_permissions = {Permission::kAccessFineLocation};
  return manifest;
}

AppBehavior fast_background_behavior() {
  AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {LocationProvider::kGps};
  behavior.request_interval_s = 5;
  return behavior;
}

TEST(BackgroundLimits, ThrottlesBackgroundedApp) {
  DeviceSimulator device(1, kDesk);
  device.enable_background_location_limits(1800);
  EXPECT_TRUE(device.background_location_limits());
  device.install(fine_manifest("com.fast"), fast_background_behavior());
  device.launch("com.fast");
  // Foreground: full rate.
  EXPECT_EQ(device.location_manager().requests_of("com.fast")[0].interval_s, 5);
  device.move_to_background("com.fast");
  // Background: clamped to the policy interval.
  EXPECT_EQ(device.location_manager().requests_of("com.fast")[0].interval_s, 1800);
  // Foregrounding restores the requested rate.
  device.launch("com.fast");
  EXPECT_EQ(device.location_manager().requests_of("com.fast")[0].interval_s, 5);
}

TEST(BackgroundLimits, SlowRequestersUnaffected) {
  DeviceSimulator device(1, kDesk);
  device.enable_background_location_limits(1800);
  AppBehavior behavior = fast_background_behavior();
  behavior.request_interval_s = 7200;  // Already slower than the policy.
  device.install(fine_manifest("com.slow"), behavior);
  device.launch("com.slow");
  device.move_to_background("com.slow");
  EXPECT_EQ(device.location_manager().requests_of("com.slow")[0].interval_s, 7200);
}

TEST(BackgroundLimits, EnablingAppliesToAlreadyBackgroundedApps) {
  DeviceSimulator device(1, kDesk);
  device.install(fine_manifest("com.fast"), fast_background_behavior());
  device.launch("com.fast");
  device.move_to_background("com.fast");
  EXPECT_EQ(device.location_manager().requests_of("com.fast")[0].interval_s, 5);
  device.enable_background_location_limits(1800);
  EXPECT_EQ(device.location_manager().requests_of("com.fast")[0].interval_s, 1800);
  EXPECT_THROW(device.enable_background_location_limits(0), util::ContractViolation);
}

TEST(BackgroundLimits, DeliveryRateActuallyDrops) {
  DeviceSimulator unlimited(1, kDesk);
  DeviceSimulator limited(1, kDesk);
  limited.enable_background_location_limits(60);
  for (DeviceSimulator* device : {&unlimited, &limited}) {
    device->install(fine_manifest("com.fast"), fast_background_behavior());
    device->launch("com.fast");
    device->move_to_background("com.fast");
    device->location_manager().clear_delivery_log();
    device->advance(300);
  }
  // 300 s at 5 s vs at 60 s.
  EXPECT_GE(unlimited.location_manager().delivery_log().size(), 50u);
  EXPECT_LE(limited.location_manager().delivery_log().size(), 6u);
}

TEST(BackgroundLimits, MarketStudyShowsCollapsedIntervals) {
  // A reduced catalog run is too entangled with the calibrated quotas, so
  // run the full study (fast) under the policy and check every background
  // interval is at least the throttle.
  const market::Catalog catalog = market::generate_catalog(market::CatalogConfig{});
  const market::MarketReport report =
      market::run_market_study(catalog, 7, /*background_limits_s=*/1800);
  EXPECT_EQ(report.background, 102);  // Who listens is unchanged...
  for (const std::int64_t interval : report.background_intervals)
    EXPECT_GE(interval, 1800);        // ...how often they hear is not.
}

TEST(DefenseEval, IdentityDefenseMatchesUndefendedExposure) {
  mobility::DatasetConfig dataset;
  dataset.user_count = 8;
  dataset.synthesis.days = 5;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const lppm::IdentityDefense identity;
  const core::DefenseOutcome outcome =
      core::evaluate_defense(analyzer, identity, 1, /*seed=*/3);
  EXPECT_DOUBLE_EQ(outcome.poi_total_fraction, 1.0);
  EXPECT_DOUBLE_EQ(outcome.release_ratio, 1.0);
  // Duplicate timestamps in a trace can pair a released fix with the other
  // same-second fix, so the error is near zero rather than exactly zero.
  EXPECT_NEAR(outcome.mean_position_error_m, 0.0, 0.1);
  EXPECT_GT(outcome.users_identified, 4);
}

TEST(DefenseEval, ThrottleTradesVolumeNotAccuracy) {
  mobility::DatasetConfig dataset;
  dataset.user_count = 8;
  dataset.synthesis.days = 5;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const lppm::ThrottleDefense throttle(600);
  const core::DefenseOutcome outcome =
      core::evaluate_defense(analyzer, throttle, 1, 3);
  EXPECT_LT(outcome.release_ratio, 0.05);          // Volume collapses...
  EXPECT_DOUBLE_EQ(outcome.mean_position_error_m, 0.0);  // ...accuracy intact.
  EXPECT_LT(outcome.poi_total_fraction, 1.0);
}

TEST(DefenseEval, SnappingTradesAccuracyNotVolume) {
  mobility::DatasetConfig dataset;
  dataset.user_count = 8;
  dataset.synthesis.days = 5;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const lppm::GridSnapDefense snap(1000.0, dataset.city.anchor);
  const core::DefenseOutcome outcome = core::evaluate_defense(analyzer, snap, 1, 3);
  EXPECT_DOUBLE_EQ(outcome.release_ratio, 1.0);
  EXPECT_GT(outcome.mean_position_error_m, 200.0);
  EXPECT_LT(outcome.poi_total_fraction, 0.5);
  EXPECT_LT(outcome.users_identified, 3);
}

}  // namespace
}  // namespace locpriv
