// Run harness: atomic artifact writer (torn-write injection), run ledger
// (journal replay, torn tails, identity mismatch), kill-and-resume byte
// identity, stage watchdog deadlines through parallel_for's exception
// aggregation, and the error taxonomy's exit-code mapping.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/harness/atomic_file.hpp"
#include "core/harness/error.hpp"
#include "core/harness/run_ledger.hpp"
#include "core/harness/sweep.hpp"
#include "core/harness/watchdog.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace locpriv::harness {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("locpriv_harness_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// True if `dir` holds any leftover "*.tmp.*" debris.
bool has_temp_debris(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().filename().string().find(".tmp.") != std::string::npos)
      return true;
  return false;
}

// ---- atomic artifact writer -------------------------------------------

TEST(AtomicFile, CommitPublishesExactContent) {
  const fs::path dir = fresh_dir("atomic_commit");
  const fs::path target = dir / "artifact.csv";
  {
    AtomicFileWriter writer(target);
    writer.stream() << "a,b\n1,2\n";
    writer.commit();
    EXPECT_TRUE(writer.committed());
  }
  EXPECT_EQ(slurp(target), "a,b\n1,2\n");
  EXPECT_FALSE(has_temp_debris(dir));
}

TEST(AtomicFile, AbandonedWriterLeavesNothing) {
  const fs::path dir = fresh_dir("atomic_abandon");
  const fs::path target = dir / "artifact.csv";
  {
    AtomicFileWriter writer(target);
    writer.stream() << "half a row";
    // No commit: simulated early exit.
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(has_temp_debris(dir));
}

TEST(AtomicFile, UnwritableDirectoryFailsFastWithPath) {
  try {
    AtomicFileWriter writer("/nonexistent_locpriv_dir/artifact.csv");
    FAIL() << "constructor should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIo);
    EXPECT_EQ(error.exit_code(), 4);
    EXPECT_NE(std::string(error.what()).find("/nonexistent_locpriv_dir"),
              std::string::npos);
  }
}

TEST(AtomicFile, TornWriteNeverReachesFreshDestination) {
  const fs::path dir = fresh_dir("atomic_torn_fresh");
  const fs::path target = dir / "artifact.csv";
  for (const WriteFault fault : {WriteFault::kFlush, WriteFault::kRename}) {
    AtomicFileWriter writer(target);
    writer.stream() << "row that must never be visible\n";
    set_write_fault_for_testing(fault);
    EXPECT_THROW(writer.commit(), Error);
    // The destination is absent — not a partial file that looks like data.
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(has_temp_debris(dir));
  }
}

TEST(AtomicFile, TornWriteKeepsCompleteOldVersion) {
  const fs::path dir = fresh_dir("atomic_torn_old");
  const fs::path target = dir / "artifact.csv";
  write_file_atomic(target, "old,complete,version\n");
  for (const WriteFault fault : {WriteFault::kFlush, WriteFault::kRename}) {
    AtomicFileWriter writer(target);
    writer.stream() << "new version that fails to land\n";
    set_write_fault_for_testing(fault);
    try {
      writer.commit();
      FAIL() << "commit should have thrown";
    } catch (const Error& error) {
      EXPECT_EQ(error.code(), ErrorCode::kIo);
    }
    EXPECT_EQ(slurp(target), "old,complete,version\n");
  }
  EXPECT_FALSE(has_temp_debris(dir));
}

TEST(AtomicFile, ConcurrentPublishersToSameDestinationNeverTear) {
  // Two writers race full publishes of the same destination, repeatedly.
  // The invariant is last-complete-wins: after every round the destination
  // holds one writer's COMPLETE content — never an interleaving — and no
  // temp debris survives.
  const fs::path dir = fresh_dir("atomic_race");
  const fs::path target = dir / "artifact.csv";
  const std::string content_a(8192, 'a');
  const std::string content_b(8192, 'b');
  constexpr int kRounds = 25;

  auto publish = [&](const std::string& content) {
    for (int round = 0; round < kRounds; ++round) {
      AtomicFileWriter writer(target);
      writer.stream() << content << "\n";
      writer.commit();
    }
  };
  std::thread racer_a([&] { publish(content_a); });
  std::thread racer_b([&] { publish(content_b); });
  racer_a.join();
  racer_b.join();

  const std::string final_content = slurp(target);
  EXPECT_TRUE(final_content == content_a + "\n" ||
              final_content == content_b + "\n")
      << "destination holds a torn mix of both publishers";
  EXPECT_FALSE(has_temp_debris(dir));
}

// ---- run ledger --------------------------------------------------------

const RunInfo kInfo{"harness_test", 42, "3u1d"};

TEST(RunLedger, RecordsReplayAcrossReopen) {
  const fs::path dir = fresh_dir("ledger_replay");
  {
    RunLedger ledger(dir, kInfo);
    EXPECT_EQ(ledger.completed_count(), 0u);
    ledger.record("cell_a", {"1", "2.5", "x,y \"quoted\""});
    ledger.record("cell_b", {});
  }
  RunLedger reopened(dir, kInfo);
  EXPECT_EQ(reopened.completed_count(), 2u);
  EXPECT_TRUE(reopened.completed("cell_a"));
  EXPECT_TRUE(reopened.completed("cell_b"));
  EXPECT_FALSE(reopened.completed("cell_c"));
  ASSERT_NE(reopened.fields("cell_a"), nullptr);
  EXPECT_EQ(*reopened.fields("cell_a"),
            (std::vector<std::string>{"1", "2.5", "x,y \"quoted\""}));
  EXPECT_TRUE(reopened.fields("cell_b")->empty());
}

TEST(RunLedger, DuplicateRecordIsAHarnessBug) {
  const fs::path dir = fresh_dir("ledger_dup");
  RunLedger ledger(dir, kInfo);
  ledger.record("cell", {"1"});
  try {
    ledger.record("cell", {"2"});
    FAIL() << "duplicate record should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(RunLedger, TornTailIsTruncatedAndOverwritten) {
  const fs::path dir = fresh_dir("ledger_torn");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1"});
    ledger.record("cell_b", {"2"});
  }
  // Simulate a SIGKILL mid-append: a partial record with no newline.
  {
    // locpriv-lint: allow(raw-write) torn bytes planted on purpose.
    std::ofstream out(dir / "ledger.jsonl", std::ios::binary | std::ios::app);
    out << "{\"cell\":\"cell_c\",\"fi";
  }
  {
    RunLedger ledger(dir, kInfo);
    EXPECT_EQ(ledger.completed_count(), 2u);
    EXPECT_FALSE(ledger.completed("cell_c"));
    ledger.record("cell_c", {"3"});
  }
  // The torn bytes are gone: a fresh replay sees three intact records.
  RunLedger reopened(dir, kInfo);
  EXPECT_EQ(reopened.completed_count(), 3u);
  EXPECT_EQ(*reopened.fields("cell_c"), std::vector<std::string>{"3"});
}

TEST(RunLedger, InteriorCorruptionRefusesToGuess) {
  const fs::path dir = fresh_dir("ledger_corrupt");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1"});
  }
  // Corrupt an interior line (more intact data follows), which single-write
  // appends cannot produce — this is damage, not a crash artifact, and it
  // gets the dedicated ledger-corrupt exit so scripts can route it to
  // `locpriv scrub --repair` instead of treating it as a resume mismatch.
  std::string content = slurp(dir / "ledger.jsonl");
  content += "garbage line\n{\"cell\":\"cell_b\",\"fields\":[\"2\"]}\n";
  {
    // locpriv-lint: allow(raw-write) interior corruption planted on purpose.
    std::ofstream out(dir / "ledger.jsonl", std::ios::binary | std::ios::trunc);
    out << content;
  }
  try {
    RunLedger ledger(dir, kInfo);
    FAIL() << "corrupt ledger should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kLedgerCorrupt);
    EXPECT_EQ(error.exit_code(), 8);
    EXPECT_NE(std::string(error.what()).find("scrub"), std::string::npos);
  }
}

TEST(RunLedger, MismatchedRunIdentityRefusesResume) {
  const fs::path dir = fresh_dir("ledger_mismatch");
  { RunLedger ledger(dir, kInfo); }
  for (const RunInfo& wrong :
       {RunInfo{"other_bench", 42, "3u1d"}, RunInfo{"harness_test", 7, "3u1d"},
        RunInfo{"harness_test", 42, "182u12d"}}) {
    try {
      RunLedger ledger(dir, wrong);
      FAIL() << "mismatched identity should have thrown";
    } catch (const Error& error) {
      EXPECT_EQ(error.code(), ErrorCode::kResume);
    }
  }
}

TEST(RunLedger, QuarantineRecordsReplayAndAreSupersededByCompletion) {
  const fs::path dir = fresh_dir("ledger_quarantine");
  const std::vector<std::string> details = {
      "attempt 1: killed by SIGSEGV; stderr: boom",
      "attempt 2: deadline 500ms exceeded (SIGTERM, escalated to SIGKILL)"};
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_ok", {"1"});
    ledger.record_quarantine("cell_bad", details);
    EXPECT_TRUE(ledger.quarantined("cell_bad"));
    EXPECT_FALSE(ledger.quarantined("cell_ok"));
    EXPECT_FALSE(ledger.completed("cell_bad"));
  }
  {
    // Quarantine records are journaled: they survive reopen with their
    // structured details intact and are listed for the summary.
    RunLedger ledger(dir, kInfo);
    EXPECT_TRUE(ledger.quarantined("cell_bad"));
    ASSERT_NE(ledger.quarantine_details("cell_bad"), nullptr);
    EXPECT_EQ(*ledger.quarantine_details("cell_bad"), details);
    EXPECT_EQ(ledger.quarantined_cells(), std::vector<std::string>{"cell_bad"});
    // A resumed run that retries the cell and succeeds supersedes the
    // quarantine — latest state wins, exactly like a completed record.
    ledger.record("cell_bad", {"2"});
    EXPECT_FALSE(ledger.quarantined("cell_bad"));
    EXPECT_TRUE(ledger.quarantined_cells().empty());
  }
  RunLedger reopened(dir, kInfo);
  EXPECT_TRUE(reopened.completed("cell_bad"));
  EXPECT_FALSE(reopened.quarantined("cell_bad"));
}

TEST(RunLedger, QuarantiningACompletedCellIsAHarnessBug) {
  const fs::path dir = fresh_dir("ledger_quarantine_bug");
  RunLedger ledger(dir, kInfo);
  ledger.record("cell", {"1"});
  try {
    ledger.record_quarantine("cell", {"attempt 1: exit 1"});
    FAIL() << "quarantining a completed cell should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
  }
}

TEST(RunLedger, MismatchedExecutionModeRefusesResume) {
  const fs::path dir = fresh_dir("ledger_mode_mismatch");
  RunInfo isolate_info = kInfo;
  isolate_info.mode = "isolate-w4";
  { RunLedger ledger(dir, isolate_info); }
  // Same experiment/seed/scale, different execution mode: a resume must not
  // silently switch between isolated and in-process dispatch.
  try {
    RunLedger ledger(dir, kInfo);
    FAIL() << "mode mismatch should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kResume);
    EXPECT_NE(std::string(error.what()).find("isolate-w4"), std::string::npos);
  }
  RunLedger matched(dir, isolate_info);  // The pinned mode still resumes.
}

TEST(OpenLedger, FreshRunDirRefusesExistingLedger) {
  const fs::path dir = fresh_dir("open_ledger");
  RunOptions options;
  options.run_dir = dir;
  ASSERT_NE(open_ledger(options, kInfo), nullptr);  // Creates the ledger.
  EXPECT_THROW(open_ledger(options, kInfo), Error);
  options.resume = true;
  EXPECT_NE(open_ledger(options, kInfo), nullptr);  // Resume is allowed.
  EXPECT_EQ(open_ledger(RunOptions{}, kInfo), nullptr);  // Unsupervised.
}

// ---- kill-and-resume byte identity ------------------------------------

/// A miniature deterministic sweep over 12 cells standing in for the bench
/// binaries: compute (or replay) every cell, journal fresh ones, and
/// publish the final CSV atomically.
std::string run_mini_sweep(const fs::path& run_dir, std::size_t stop_after) {
  const RunInfo info{"mini_sweep", 7, "12cells"};
  RunLedger ledger(run_dir, info);
  std::vector<std::vector<std::string>> rows;
  std::size_t computed = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      const std::string key = "a" + std::to_string(a) + "_b" + std::to_string(b);
      if (ledger.completed(key)) {
        rows.push_back(*ledger.fields(key));
        continue;
      }
      if (computed == stop_after) return {};  // Simulated crash point.
      ++computed;
      const std::vector<std::string> fields = {
          std::to_string(a), std::to_string(b),
          util::format_fixed(a * 10.0 + b / 3.0, 4)};
      ledger.record(key, fields);
      rows.push_back(fields);
    }
  }
  AtomicFileWriter writer(run_dir / "sweep.csv");
  util::CsvWriter csv(writer.stream());
  csv.write_row({"a", "b", "value"});
  for (const auto& row : rows) csv.write_row(row);
  writer.commit();
  return slurp(run_dir / "sweep.csv");
}

TEST(KillAndResume, FinalCsvIsByteIdenticalToUninterruptedRun) {
  const fs::path uninterrupted = fresh_dir("resume_reference");
  const std::string reference =
      run_mini_sweep(uninterrupted, /*stop_after=*/100);
  ASSERT_FALSE(reference.empty());

  const fs::path crashed = fresh_dir("resume_crashed");
  // Abandon mid-ledger after 5 of 12 cells...
  EXPECT_EQ(run_mini_sweep(crashed, /*stop_after=*/5), "");
  // ...with the last append torn, as a SIGKILL mid-write(2) would leave it.
  {
    // locpriv-lint: allow(raw-write) torn tail planted on purpose.
    std::ofstream out(crashed / "ledger.jsonl",
                      std::ios::binary | std::ios::app);
    out << "{\"cell\":\"a1_b2\",\"fie";
  }
  EXPECT_FALSE(fs::exists(crashed / "sweep.csv"));

  const std::string resumed = run_mini_sweep(crashed, /*stop_after=*/100);
  EXPECT_EQ(resumed, reference);
  EXPECT_EQ(slurp(crashed / "sweep.csv"), slurp(uninterrupted / "sweep.csv"));
}

// ---- stage watchdog ----------------------------------------------------

TEST(Watchdog, NoDeadlinesNeverExpires) {
  StageOptions options;
  options.name = "quiet";
  options.heartbeat = std::chrono::milliseconds(0);
  StageWatchdog watchdog(options);
  watchdog.set_total(10);
  watchdog.add_progress(3);
  EXPECT_EQ(watchdog.progress(), 3u);
  EXPECT_FALSE(watchdog.expired());
  EXPECT_NO_THROW(watchdog.checkpoint());
}

TEST(Watchdog, HardDeadlineThrowsAtCheckpoint) {
  StageOptions options;
  options.name = "doomed";
  options.heartbeat = std::chrono::milliseconds(0);
  options.hard_deadline = std::chrono::milliseconds(10);
  StageWatchdog watchdog(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(watchdog.expired());
  try {
    watchdog.checkpoint();
    FAIL() << "checkpoint should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadline);
    EXPECT_EQ(error.exit_code(), 5);
    EXPECT_NE(std::string(error.what()).find("doomed"), std::string::npos);
  }
}

TEST(Watchdog, DeadlinePropagatesThroughParallelFor) {
  StageOptions options;
  options.name = "sweep";
  options.heartbeat = std::chrono::milliseconds(0);
  options.hard_deadline = std::chrono::milliseconds(5);
  StageWatchdog watchdog(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Every worker hits the checkpoint; parallel_for joins them all and
  // rethrows the first Error with its code (and exit code) intact.
  try {
    util::parallel_for(64, [&](std::size_t) { watchdog.checkpoint(); });
    FAIL() << "parallel_for should have rethrown the deadline error";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadline);
  }
}

TEST(Watchdog, HeartbeatThreadStartsAndStopsCleanly) {
  StageOptions options;
  options.name = "chatty";
  options.heartbeat = std::chrono::milliseconds(5);
  options.soft_deadline = std::chrono::milliseconds(10);
  StageWatchdog watchdog(options);
  watchdog.set_total(100);
  for (int i = 0; i < 10; ++i) {
    watchdog.add_progress(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_FALSE(watchdog.expired());  // Soft deadline only warns.
}

// ---- error taxonomy ----------------------------------------------------

TEST(ErrorTaxonomy, CodesMapToDistinctExitCodes) {
  EXPECT_EQ(exit_code(ErrorCode::kInternal), 1);
  EXPECT_EQ(exit_code(ErrorCode::kUsage), 2);
  EXPECT_EQ(exit_code(ErrorCode::kQuarantined), 3);
  EXPECT_EQ(exit_code(ErrorCode::kIo), 4);
  EXPECT_EQ(exit_code(ErrorCode::kDeadline), 5);
  EXPECT_EQ(exit_code(ErrorCode::kResume), 6);
  EXPECT_EQ(exit_code(ErrorCode::kInterrupted), 7);
  EXPECT_EQ(exit_code(ErrorCode::kLedgerCorrupt), 8);
  EXPECT_EQ(error_code_name(ErrorCode::kInterrupted), "interrupted");
  EXPECT_EQ(error_code_name(ErrorCode::kLedgerCorrupt), "ledger_corrupt");
}

TEST(ErrorTaxonomy, ContextChainRendersOutermostFirst) {
  Error error(ErrorCode::kIo, "cannot rename temp file to out.csv");
  error.add_context("sweep cell i0.50_t60");
  error.add_context("writing artifacts");
  EXPECT_EQ(std::string(error.what()),
            "io_error: writing artifacts: sweep cell i0.50_t60: "
            "cannot rename temp file to out.csv");
  EXPECT_EQ(error.context().size(), 2u);
  EXPECT_EQ(error.message(), "cannot rename temp file to out.csv");
}

TEST(ErrorTaxonomy, ParseRunOptionsValidates) {
  const char* good[] = {"bench", "--resume", "/tmp/run", "--hard-deadline", "60"};
  const RunOptions options = parse_run_options(5, good, "stage");
  EXPECT_TRUE(options.active());
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.run_dir, fs::path("/tmp/run"));
  EXPECT_EQ(options.stage.hard_deadline, std::chrono::seconds(60));
  EXPECT_EQ(options.stage.heartbeat, std::chrono::seconds(30));

  const char* unknown[] = {"bench", "--frobnicate"};
  try {
    parse_run_options(2, unknown, "stage");
    FAIL() << "unknown flag should have thrown";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUsage);
  }

  const char* clash[] = {"bench", "--run-dir", "a", "--resume", "b"};
  EXPECT_THROW(parse_run_options(5, clash, "stage"), Error);
}

TEST(ErrorTaxonomy, ParseRunOptionsCoversSupervisorFlags) {
  const char* good[] = {"bench",        "--run-dir",      "/tmp/run",
                        "--isolate",    "--workers",      "4",
                        "--cell-rlimit-mb", "512",        "--cell-deadline",
                        "2.5",          "--cell-retries", "5",
                        "--cell-backoff-ms", "250"};
  const RunOptions options = parse_run_options(14, good, "stage");
  EXPECT_TRUE(options.supervisor.isolate);
  EXPECT_EQ(options.supervisor.workers, 4u);
  EXPECT_EQ(options.supervisor.cell_rlimit_mb, 512u);
  EXPECT_EQ(options.supervisor.cell_deadline, std::chrono::milliseconds(2500));
  EXPECT_EQ(options.supervisor.max_attempts, 5);
  EXPECT_EQ(options.supervisor.backoff_base, std::chrono::milliseconds(250));
  EXPECT_EQ(options.mode_string(), "isolate-w4");
  EXPECT_EQ(RunOptions{}.mode_string(), "inproc-w1");

  const char* zero_workers[] = {"bench", "--workers", "0"};
  EXPECT_THROW(parse_run_options(3, zero_workers, "stage"), Error);
  const char* zero_retries[] = {"bench", "--cell-retries", "0"};
  EXPECT_THROW(parse_run_options(3, zero_retries, "stage"), Error);
  const char* negative_limit[] = {"bench", "--cell-rlimit-mb", "-1"};
  EXPECT_THROW(parse_run_options(3, negative_limit, "stage"), Error);
}

}  // namespace
}  // namespace locpriv::harness
