#include <gtest/gtest.h>

#include <cmath>

#include "geo/geodesy.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "stats/rng.hpp"
#include "util/expect.hpp"

namespace locpriv::poi {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

// Builds a synthetic fix stream: travel to a place, dwell, travel away.
// Returns the stream and (via out-params) the dwell bounds.
std::vector<trace::TracePoint> make_stay_trace(double dwell_minutes,
                                               double travel_speed_mps = 1.5,
                                               double noise_m = 0.0,
                                               std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  std::vector<trace::TracePoint> points;
  std::int64_t t = 0;
  // Approach leg: 600 m walk toward the anchor from the west.
  for (double travelled = 0.0; travelled < 600.0; travelled += travel_speed_mps * 3) {
    geo::LatLon p = geo::destination(kAnchor, 270.0, 600.0 - travelled);
    if (noise_m > 0.0) p = geo::destination(p, rng.uniform(0.0, 360.0),
                                            std::abs(rng.normal(0.0, noise_m)));
    points.push_back({p, t});
    t += 3;
  }
  // Dwell at the anchor.
  const auto dwell_end = t + static_cast<std::int64_t>(dwell_minutes * 60.0);
  while (t < dwell_end) {
    geo::LatLon p = kAnchor;
    if (noise_m > 0.0) p = geo::destination(p, rng.uniform(0.0, 360.0),
                                            std::abs(rng.normal(0.0, noise_m)));
    points.push_back({p, t});
    t += 3;
  }
  // Departure leg: 600 m walk east.
  for (double travelled = 0.0; travelled < 600.0; travelled += travel_speed_mps * 3) {
    geo::LatLon p = geo::destination(kAnchor, 90.0, travelled);
    if (noise_m > 0.0) p = geo::destination(p, rng.uniform(0.0, 360.0),
                                            std::abs(rng.normal(0.0, noise_m)));
    points.push_back({p, t});
    t += 3;
  }
  return points;
}

TEST(StayPointExtraction, FindsSingleStay) {
  const auto points = make_stay_trace(/*dwell_minutes=*/20.0);
  const auto stays = extract_stay_points(points, ExtractionParams{});
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_LT(geo::haversine_m(stays[0].centroid, kAnchor), 25.0);
  EXPECT_GE(stays[0].duration_s(), 18 * 60);
  EXPECT_LE(stays[0].duration_s(), 22 * 60);
}

TEST(StayPointExtraction, RobustToGpsNoise) {
  const auto points = make_stay_trace(20.0, 1.5, /*noise_m=*/5.0);
  const auto stays = extract_stay_points(points, ExtractionParams{});
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_LT(geo::haversine_m(stays[0].centroid, kAnchor), 30.0);
}

TEST(StayPointExtraction, ShortStayBelowVisitingTimeIsDropped) {
  const auto points = make_stay_trace(/*dwell_minutes=*/5.0);
  EXPECT_TRUE(extract_stay_points(points, ExtractionParams{}).empty());
}

TEST(StayPointExtraction, ContinuousMovementYieldsNoStay) {
  // A long steady drive: no stay should survive the visiting-time filter.
  std::vector<trace::TracePoint> points;
  std::int64_t t = 0;
  for (double travelled = 0.0; travelled < 20000.0; travelled += 9.0 * 3) {
    points.push_back({geo::destination(kAnchor, 45.0, travelled), t});
    t += 3;
  }
  EXPECT_TRUE(extract_stay_points(points, ExtractionParams{}).empty());
}

TEST(StayPointExtraction, EmptyAndTinyInputs) {
  EXPECT_TRUE(extract_stay_points({}, ExtractionParams{}).empty());
  std::vector<trace::TracePoint> two{{kAnchor, 0}, {kAnchor, 10}};
  EXPECT_TRUE(extract_stay_points(two, ExtractionParams{}).empty());
}

TEST(StayPointExtraction, StayOpenAtEndOfStreamIsClosed) {
  // Approach then dwell until the stream ends (no departure).
  auto points = make_stay_trace(20.0);
  // Chop off the departure leg: keep points within 60 m of the anchor tail.
  while (!points.empty() &&
         geo::haversine_m(points.back().position, kAnchor) > 60.0)
    points.pop_back();
  const auto stays = extract_stay_points(points, ExtractionParams{});
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_GE(stays[0].duration_s(), 15 * 60);
}

TEST(StayPointExtraction, BackToBackStaysBothFound) {
  // Two dwells 700 m apart joined by a walk.
  auto points = make_stay_trace(15.0);
  const std::int64_t t0 = points.back().timestamp_s + 3;
  const geo::LatLon second = geo::destination(kAnchor, 90.0, 700.0);
  std::int64_t t = t0;
  for (double travelled = 600.0; travelled < 700.0; travelled += 4.5) {
    points.push_back({geo::destination(kAnchor, 90.0, travelled), t});
    t += 3;
  }
  const std::int64_t dwell_end = t + 15 * 60;
  while (t < dwell_end) {
    points.push_back({second, t});
    t += 3;
  }
  for (double travelled = 0.0; travelled < 400.0; travelled += 4.5) {
    points.push_back({geo::destination(second, 0.0, travelled), t});
    t += 3;
  }
  const auto stays = extract_stay_points(points, ExtractionParams{});
  ASSERT_EQ(stays.size(), 2u);
  EXPECT_LT(geo::haversine_m(stays[0].centroid, kAnchor), 30.0);
  EXPECT_LT(geo::haversine_m(stays[1].centroid, second), 30.0);
  EXPECT_LT(stays[0].exit_s, stays[1].enter_s);
}

TEST(StayPointExtraction, SparseDecimatedStayStillFound) {
  // Fixes every 240 s during a 4 h stay (heavy decimation): the 4-fix
  // window must still detect it.
  std::vector<trace::TracePoint> points;
  std::int64_t t = 0;
  // Two travel fixes far away (approaching).
  points.push_back({geo::destination(kAnchor, 270.0, 5000.0), t});
  t += 240;
  points.push_back({geo::destination(kAnchor, 270.0, 2500.0), t});
  t += 240;
  for (int i = 0; i < 60; ++i) {
    points.push_back({kAnchor, t});
    t += 240;
  }
  points.push_back({geo::destination(kAnchor, 90.0, 2500.0), t});
  const auto stays = extract_stay_points(points, ExtractionParams{});
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_GT(stays[0].duration_s(), 3 * 3600);
}

TEST(StayPointExtraction, Preconditions) {
  std::vector<trace::TracePoint> points{{kAnchor, 0}};
  ExtractionParams params;
  params.radius_m = 0.0;
  EXPECT_THROW(extract_stay_points(points, params), util::ContractViolation);
  params = {};
  params.min_visit_s = 0;
  EXPECT_THROW(extract_stay_points(points, params), util::ContractViolation);
  params = {};
  params.window_fixes = 5;  // Odd.
  EXPECT_THROW(extract_stay_points(points, params), util::ContractViolation);
  params.window_fixes = 2;  // Too small.
  EXPECT_THROW(extract_stay_points(points, params), util::ContractViolation);
}

TEST(StayPointExtraction, Table3ParameterSets) {
  const auto sets = table3_parameter_sets();
  ASSERT_EQ(sets.size(), 6u);
  EXPECT_DOUBLE_EQ(sets[0].radius_m, 50.0);
  EXPECT_EQ(sets[0].min_visit_s, 600);
  EXPECT_EQ(sets[2].min_visit_s, 1800);
  EXPECT_DOUBLE_EQ(sets[3].radius_m, 100.0);
  EXPECT_EQ(sets[5].min_visit_s, 1800);
}

class VisitingTimeSweep : public ::testing::TestWithParam<int> {};

TEST_P(VisitingTimeSweep, LongerVisitingTimeNeverFindsMore) {
  // Property (paper Figure 2): the number of extracted stays is
  // non-increasing in the visiting-time threshold.
  const auto points = make_stay_trace(25.0, 1.5, 3.0, 7);
  ExtractionParams strict;
  strict.min_visit_s = GetParam() * 60;
  ExtractionParams loose;
  loose.min_visit_s = std::max<std::int64_t>(60, strict.min_visit_s / 2);
  EXPECT_LE(extract_stay_points(points, strict).size(),
            extract_stay_points(points, loose).size());
}

INSTANTIATE_TEST_SUITE_P(Minutes, VisitingTimeSweep, ::testing::Values(10, 20, 30, 60));

TEST(AnchorExtraction, AgreesOnCleanStay) {
  const auto points = make_stay_trace(20.0);
  const auto buffered = extract_stay_points(points, ExtractionParams{});
  const auto anchored = extract_stay_points_anchor(points, ExtractionParams{});
  ASSERT_EQ(buffered.size(), 1u);
  ASSERT_EQ(anchored.size(), 1u);
  EXPECT_LT(geo::haversine_m(buffered[0].centroid, anchored[0].centroid), 40.0);
}

TEST(AnchorExtraction, EmptyInput) {
  EXPECT_TRUE(extract_stay_points_anchor({}, ExtractionParams{}).empty());
}

TEST(Clustering, MergesNearbyStaysAcrossDays) {
  std::vector<StayPoint> stays;
  for (int day = 0; day < 3; ++day) {
    StayPoint stay;
    stay.centroid = geo::destination(kAnchor, 90.0, day * 10.0);  // Within 50 m.
    stay.enter_s = day * 86400;
    stay.exit_s = day * 86400 + 1200;
    stays.push_back(stay);
  }
  StayPoint far;
  far.centroid = geo::destination(kAnchor, 90.0, 900.0);
  far.enter_s = 3 * 86400;
  far.exit_s = 3 * 86400 + 1200;
  stays.push_back(far);

  const auto pois = cluster_stay_points(stays, 50.0);
  ASSERT_EQ(pois.size(), 2u);
  EXPECT_EQ(pois[0].visit_count(), 3u);
  EXPECT_EQ(pois[1].visit_count(), 1u);
  EXPECT_EQ(pois[0].id, 0);
  EXPECT_EQ(pois[1].id, 1);
}

TEST(Clustering, CentroidIsVisitWeightedMean) {
  std::vector<StayPoint> stays;
  StayPoint a;
  a.centroid = kAnchor;
  a.enter_s = 0;
  a.exit_s = 600;
  StayPoint b;
  b.centroid = geo::destination(kAnchor, 90.0, 30.0);
  b.enter_s = 1000;
  b.exit_s = 1600;
  stays = {a, b};
  const auto pois = cluster_stay_points(stays, 50.0);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_NEAR(geo::haversine_m(pois[0].centroid, kAnchor), 15.0, 1.0);
}

TEST(Clustering, EmptyInputAndPreconditions) {
  EXPECT_TRUE(cluster_stay_points({}, 50.0).empty());
  EXPECT_THROW(cluster_stay_points({}, 0.0), util::ContractViolation);
}

TEST(SensitivePois, FiltersByVisitCount) {
  std::vector<StayPoint> stays;
  // Five visits to one place, one visit to another.
  for (int i = 0; i < 5; ++i) {
    StayPoint stay;
    stay.centroid = kAnchor;
    stay.enter_s = i * 10000;
    stay.exit_s = i * 10000 + 1200;
    stays.push_back(stay);
  }
  StayPoint rare;
  rare.centroid = geo::destination(kAnchor, 0.0, 1000.0);
  rare.enter_s = 90000;
  rare.exit_s = 91200;
  stays.push_back(rare);

  const auto pois = cluster_stay_points(stays, 50.0);
  const auto sensitive = sensitive_pois(pois, 3);
  ASSERT_EQ(sensitive.size(), 1u);
  EXPECT_EQ(sensitive[0].visit_count(), 1u);
  EXPECT_THROW(sensitive_pois(pois, 0), util::ContractViolation);
}

TEST(VisitSequence, ChronologicalWithCollapsedRepeats) {
  std::vector<StayPoint> stays;
  const geo::LatLon home = kAnchor;
  const geo::LatLon work = geo::destination(kAnchor, 90.0, 2000.0);
  // home(0) -> work(1) -> work(again, two stays same place) -> home.
  const geo::LatLon places[] = {home, work, work, home};
  std::int64_t t = 0;
  for (const auto& place : places) {
    StayPoint stay;
    stay.centroid = place;
    stay.enter_s = t;
    stay.exit_s = t + 1200;
    stays.push_back(stay);
    t += 10000;
  }
  const auto pois = cluster_stay_points(stays, 50.0);
  const auto sequence = visit_sequence(pois);
  // Consecutive repeats collapse: home, work, home.
  ASSERT_EQ(sequence.size(), 3u);
  EXPECT_EQ(sequence[0], sequence[2]);
  EXPECT_NE(sequence[0], sequence[1]);
}

}  // namespace
}  // namespace locpriv::poi
