#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "util/expect.hpp"

namespace locpriv::stats {
namespace {

TEST(Descriptive, MeanVariance) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(variance(values), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), util::ContractViolation);
  EXPECT_THROW(quantile(values, 1.5), util::ContractViolation);
}

TEST(Descriptive, SummaryFields) {
  const auto s = summarize({1.0, 3.0, 5.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
}

TEST(BinnedHistogram, BinsAndClamps) {
  BinnedHistogram histogram(0.0, 10.0, 5);
  histogram.add(0.5);    // bin 0
  histogram.add(9.99);   // bin 4
  histogram.add(-3.0);   // clamped to bin 0
  histogram.add(42.0);   // clamped to bin 4
  EXPECT_EQ(histogram.count(0), 2u);
  EXPECT_EQ(histogram.count(4), 2u);
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_DOUBLE_EQ(histogram.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(histogram.bin_upper(1), 4.0);
}

TEST(BinnedHistogram, NormalizedSumsToOne) {
  BinnedHistogram histogram(0.0, 1.0, 4);
  histogram.add_all({0.1, 0.3, 0.6, 0.9});
  double total = 0.0;
  for (const double f : histogram.normalized()) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinnedHistogram, Preconditions) {
  EXPECT_THROW(BinnedHistogram(1.0, 1.0, 3), util::ContractViolation);
  EXPECT_THROW(BinnedHistogram(0.0, 1.0, 0), util::ContractViolation);
  BinnedHistogram histogram(0.0, 1.0, 2);
  EXPECT_THROW(histogram.count(2), util::ContractViolation);
}

TEST(Ecdf, StepFunction) {
  Ecdf ecdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(99.0), 1.0);
}

TEST(Ecdf, InverseMatchesPaperStyleQueries) {
  // Intervals like Figure 1: ECDF(10) fraction of apps <= 10 s.
  Ecdf ecdf({1.0, 5.0, 10.0, 60.0, 600.0});
  EXPECT_DOUBLE_EQ(ecdf(10.0), 0.6);
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.6), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.inverse(1.0), 600.0);
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.0001), 1.0);
  EXPECT_THROW(Ecdf({}), util::ContractViolation);
  EXPECT_THROW(ecdf.inverse(0.0), util::ContractViolation);
}

TEST(Entropy, UniformIsLog2N) {
  EXPECT_NEAR(shannon_entropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
  EXPECT_NEAR(shannon_entropy({1.0, 1.0}), 1.0, 1e-12);  // Normalises.
}

TEST(Entropy, DegenerateIsZero) {
  EXPECT_NEAR(shannon_entropy({1.0, 0.0, 0.0}), 0.0, 1e-12);
}

TEST(Entropy, Preconditions) {
  EXPECT_THROW(shannon_entropy({0.0, 0.0}), util::ContractViolation);
  EXPECT_THROW(shannon_entropy({-0.1, 1.0}), util::ContractViolation);
  EXPECT_THROW(max_entropy(0), util::ContractViolation);
}

TEST(DegreeOfAnonymity, PaperFormulaCases) {
  // Uniform posterior over all N profiles: degree 1 (maximum anonymity).
  EXPECT_NEAR(degree_of_anonymity({0.25, 0.25, 0.25, 0.25}, 4), 1.0, 1e-12);
  // Posterior concentrated on one profile: degree 0 (identified).
  EXPECT_NEAR(degree_of_anonymity({1.0, 0.0, 0.0, 0.0}, 4), 0.0, 1e-12);
  // Singleton anonymity set: identified by definition.
  EXPECT_DOUBLE_EQ(degree_of_anonymity({1.0}, 1), 0.0);
  // Two equal candidates among 4 profiles: H = 1 bit, H_M = 2 bits.
  EXPECT_NEAR(degree_of_anonymity({0.5, 0.5, 0.0, 0.0}, 4), 0.5, 1e-12);
}

}  // namespace
}  // namespace locpriv::stats
