#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.hpp"
#include "util/expect.hpp"

namespace locpriv::stats {
namespace {

TEST(RegularizedGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(1.0, 0.0), 1.0);
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x} exactly.
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12)
        << "x=" << x;
  }
}

TEST(RegularizedGamma, ErlangSpecialCase) {
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (const double x : {0.2, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(regularized_gamma_p(2.0, x), 1.0 - std::exp(-x) * (1.0 + x), 1e-12)
        << "x=" << x;
  }
}

class GammaComplementTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaComplementTest, PPlusQIsOne) {
  const auto [a, x] = GetParam();
  EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GammaComplementTest,
    ::testing::Values(std::pair{0.5, 0.1}, std::pair{0.5, 2.0}, std::pair{1.0, 1.0},
                      std::pair{3.0, 0.5}, std::pair{3.0, 10.0}, std::pair{10.0, 9.0},
                      std::pair{50.0, 60.0}, std::pair{100.0, 80.0},
                      std::pair{0.25, 5.0}));

TEST(RegularizedGamma, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.25) {
    const double p = regularized_gamma_p(4.0, x);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(RegularizedGamma, MedianNearShapeForLargeA) {
  // For large a, the gamma(a,1) median is close to a - 1/3.
  for (const double a : {20.0, 50.0, 100.0}) {
    EXPECT_NEAR(regularized_gamma_p(a, a - 1.0 / 3.0), 0.5, 0.01) << "a=" << a;
  }
}

TEST(RegularizedGamma, Preconditions) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), util::ContractViolation);
  EXPECT_THROW(regularized_gamma_p(1.0, -0.1), util::ContractViolation);
  EXPECT_THROW(regularized_gamma_q(-1.0, 1.0), util::ContractViolation);
}

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(std::acos(-1.0))), 1e-12);
}

}  // namespace
}  // namespace locpriv::stats
