#include <gtest/gtest.h>

#include <cmath>

#include "android/indicator.hpp"
#include "util/expect.hpp"
#include "util/json.hpp"

namespace locpriv {
namespace {

// ----------------------------------------------------------------- JSON --

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(util::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, ObjectWithMixedMembers) {
  util::JsonWriter json;
  json.begin_object();
  json.member("name", "user \"007\"");
  json.member("count", 42);
  json.member("ratio", 0.5);
  json.member("flag", true);
  json.key("nothing");
  json.null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"user \"007\"","count":42,"ratio":0.5,"flag":true,"nothing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  util::JsonWriter json;
  json.begin_object();
  json.key("series");
  json.begin_array();
  json.value(1);
  json.value(2);
  json.begin_object();
  json.member("x", 3);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"series":[1,2,{"x":3}]})");
}

TEST(Json, EmptyContainers) {
  util::JsonWriter object;
  object.begin_object();
  object.end_object();
  EXPECT_EQ(object.str(), "{}");
  util::JsonWriter array;
  array.begin_array();
  array.end_array();
  EXPECT_EQ(array.str(), "[]");
}

TEST(Json, ContractsOnMisuse) {
  util::JsonWriter unclosed;
  unclosed.begin_object();
  EXPECT_THROW(unclosed.str(), util::ContractViolation);

  util::JsonWriter bad_end;
  bad_end.begin_array();
  EXPECT_THROW(bad_end.end_object(), util::ContractViolation);

  util::JsonWriter key_in_array;
  key_in_array.begin_array();
  EXPECT_THROW(key_in_array.key("x"), util::ContractViolation);

  util::JsonWriter nan_value;
  nan_value.begin_array();
  EXPECT_THROW(nan_value.value(std::nan("")), util::ContractViolation);
}

// ------------------------------------------------------------ indicator --

android::Delivery delivery(const std::string& package, std::int64_t t) {
  android::Delivery d;
  d.package = package;
  d.location.time_s = t;
  return d;
}

TEST(Indicator, MergesCloseDeliveriesIntoOneSpan) {
  const std::vector<android::Delivery> log{
      delivery("a", 100), delivery("a", 105), delivery("a", 112)};
  const auto spans = android::indicator_spans(log, 10);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_s, 100);
  EXPECT_EQ(spans[0].end_s, 122);
  ASSERT_EQ(spans[0].packages.size(), 1u);
}

TEST(Indicator, SplitsOnGapsBeyondLinger) {
  const std::vector<android::Delivery> log{delivery("a", 100), delivery("a", 200)};
  const auto spans = android::indicator_spans(log, 10);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].begin_s, 200);
}

TEST(Indicator, SharedSpanListsBothApps) {
  const std::vector<android::Delivery> log{
      delivery("fg", 100), delivery("bg", 104), delivery("fg", 108)};
  const auto spans = android::indicator_spans(log, 10);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].packages.size(), 2u);
}

TEST(Indicator, AttributionSeparatesSoleAndAmbiguous) {
  const std::vector<android::Delivery> log{
      delivery("a", 0),                       // Sole span: [0, 10).
      delivery("a", 100), delivery("b", 105), // Shared span: [100, 115).
      delivery("b", 300),                     // Sole span for b.
  };
  const auto attribution =
      android::attribute_indicator(android::indicator_spans(log, 10));
  EXPECT_EQ(attribution.sole_s.at("a"), 10);
  EXPECT_EQ(attribution.sole_s.at("b"), 10);
  EXPECT_EQ(attribution.ambiguous_s, 15);
  EXPECT_EQ(attribution.lit_s, 35);
}

TEST(Indicator, EmptyLogAndPreconditions) {
  EXPECT_TRUE(android::indicator_spans({}, 10).empty());
  EXPECT_THROW(android::indicator_spans({}, 0), util::ContractViolation);
  const auto attribution = android::attribute_indicator({});
  EXPECT_EQ(attribution.lit_s, 0);
}

}  // namespace
}  // namespace locpriv
