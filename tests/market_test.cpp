#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "market/analysis.hpp"
#include "market/catalog.hpp"
#include "market/categories.hpp"
#include "market/study.hpp"
#include "util/expect.hpp"

namespace locpriv::market {
namespace {

// The catalog is deterministic and takes ~10 ms; share it across tests.
const Catalog& test_catalog() {
  static const Catalog catalog = generate_catalog(CatalogConfig{});
  return catalog;
}

TEST(Categories, TwentyEightWellFormed) {
  std::set<std::string_view> names;
  std::set<std::string_view> slugs;
  for (int i = 0; i < kCategoryCount; ++i) {
    names.insert(category_name(i));
    slugs.insert(category_slug(i));
    EXPECT_GT(category_location_propensity(i), 0.0);
  }
  EXPECT_EQ(names.size(), 28u);
  EXPECT_EQ(slugs.size(), 28u);
  EXPECT_THROW(category_name(28), util::ContractViolation);
  EXPECT_THROW(category_name(-1), util::ContractViolation);
}

TEST(Categories, QuotaSumsExactlyAndRespectsCap) {
  const auto quota = allocate_declaring_quota(1137, 100);
  ASSERT_EQ(quota.size(), 28u);
  EXPECT_EQ(std::accumulate(quota.begin(), quota.end(), 0), 1137);
  for (const int q : quota) {
    EXPECT_GE(q, 0);
    EXPECT_LE(q, 100);
  }
  // High-propensity categories get more slots than low-propensity ones.
  int weather = -1;
  int comics = -1;
  for (int i = 0; i < kCategoryCount; ++i) {
    if (category_name(i) == "Weather") weather = quota[static_cast<std::size_t>(i)];
    if (category_name(i) == "Comics") comics = quota[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(weather, comics);
}

TEST(Categories, QuotaEdgeCases) {
  const auto none = allocate_declaring_quota(0, 100);
  EXPECT_EQ(std::accumulate(none.begin(), none.end(), 0), 0);
  const auto full = allocate_declaring_quota(2800, 100);
  for (const int q : full) EXPECT_EQ(q, 100);
  EXPECT_THROW(allocate_declaring_quota(2801, 100), util::ContractViolation);
}

TEST(ProviderCombos, MatchTableOneColumns) {
  EXPECT_EQ(provider_combo_name(0), "gps");
  EXPECT_EQ(provider_combo_name(1), "network");
  EXPECT_EQ(provider_combo_name(2), "passive");
  EXPECT_EQ(provider_combo_name(3), "gps network");
  EXPECT_EQ(provider_combo_name(4), "gps passive");
  EXPECT_EQ(provider_combo_name(5), "network passive");
  EXPECT_EQ(provider_combo_name(6), "gps network passive");
  EXPECT_EQ(provider_combo_name(7), "fused network");
  EXPECT_THROW(provider_combo(8), util::ContractViolation);
}

TEST(Catalog, GroundTruthMarginalsMatchTargets) {
  const Catalog& catalog = test_catalog();
  const CalibrationTargets targets;
  ASSERT_EQ(catalog.size(), 2800u);

  int declaring = 0;
  int fine_only = 0;
  int coarse_only = 0;
  int functional = 0;
  int auto_start = 0;
  int background = 0;
  int background_auto = 0;
  for (const AppSpec& app : catalog) {
    if (app.manifest.declares_location()) ++declaring;
    if (app.manifest.declared_granularity() == "Fine") ++fine_only;
    if (app.manifest.declared_granularity() == "Coarse") ++coarse_only;
    if (app.behavior.uses_location) {
      ++functional;
      if (app.behavior.auto_start_on_launch) ++auto_start;
      if (app.behavior.continues_in_background) {
        ++background;
        if (app.behavior.auto_start_on_launch) ++background_auto;
      }
    }
  }
  EXPECT_EQ(declaring, targets.declaring);
  EXPECT_EQ(fine_only, targets.fine_only);
  EXPECT_EQ(coarse_only, targets.coarse_only);
  EXPECT_EQ(functional, targets.functional);
  EXPECT_EQ(auto_start, targets.functional_auto_start);
  EXPECT_EQ(background, targets.background);
  EXPECT_EQ(background_auto, targets.background_auto_start);
}

TEST(Catalog, EveryAppBehaviorConsistentWithPermissions) {
  // Ground-truth sanity: no app's behaviour requires a permission its
  // manifest lacks (the device would throw SecurityException otherwise).
  for (const AppSpec& app : test_catalog()) {
    if (!app.behavior.uses_location) continue;
    const android::PermissionSet held(app.manifest.uses_permissions);
    for (const auto provider : app.behavior.providers) {
      if (provider == android::LocationProvider::kGps) {
        EXPECT_TRUE(held.fine_location()) << app.package;
      }
      if (provider == android::LocationProvider::kFused &&
          app.behavior.requested_granularity == android::Granularity::kFine) {
        EXPECT_TRUE(held.fine_location()) << app.package;
      }
      EXPECT_TRUE(held.any_location()) << app.package;
    }
    EXPECT_FALSE(app.behavior.providers.empty()) << app.package;
    EXPECT_GE(app.behavior.request_interval_s, 1) << app.package;
  }
}

TEST(Catalog, PackagesUniqueAndWellFormed) {
  std::set<std::string> packages;
  for (const AppSpec& app : test_catalog()) {
    EXPECT_TRUE(packages.insert(app.package).second) << "duplicate " << app.package;
    EXPECT_EQ(app.manifest.package_name, app.package);
    EXPECT_GE(app.rank, 0);
    EXPECT_LT(app.rank, 100);
  }
}

TEST(Catalog, DeterministicForSameSeed) {
  const Catalog a = generate_catalog(CatalogConfig{});
  const Catalog b = generate_catalog(CatalogConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].package, b[i].package);
    EXPECT_EQ(a[i].behavior.uses_location, b[i].behavior.uses_location);
    EXPECT_EQ(a[i].behavior.request_interval_s, b[i].behavior.request_interval_s);
  }
}

TEST(Catalog, DifferentSeedDifferentAssignment) {
  CatalogConfig other;
  other.seed = 999;
  const Catalog a = test_catalog();
  const Catalog b = generate_catalog(other);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].manifest.declares_location() != b[i].manifest.declares_location())
      ++differing;
  EXPECT_GT(differing, 100);
}

TEST(Catalog, InvalidTargetsRejected) {
  CatalogConfig config;
  config.targets.background = 50;  // Table I rows no longer sum to this.
  EXPECT_THROW(generate_catalog(config), util::ContractViolation);
  config = CatalogConfig{};
  config.targets.interval_band_counts = {10, 10, 10, 10};  // Sum != 102.
  EXPECT_THROW(generate_catalog(config), util::ContractViolation);
}

TEST(StaticAnalysis, ReadsOnlyTheManifest) {
  AppSpec app;
  app.package = "com.test.x";
  app.manifest.package_name = app.package;
  app.manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  // Behaviour deliberately inconsistent with the manifest: static analysis
  // must not look at it.
  app.behavior.uses_location = false;
  const StaticFinding finding = analyze_manifest(app);
  EXPECT_TRUE(finding.declares_location);
  EXPECT_EQ(finding.granularity_claim, "Fine");
}

TEST(DynamicTester, ObservesBackgroundApp) {
  AppSpec app;
  app.package = "com.test.bg";
  app.manifest.package_name = app.package;
  app.manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  app.behavior.uses_location = true;
  app.behavior.auto_start_on_launch = true;
  app.behavior.continues_in_background = true;
  app.behavior.providers = {android::LocationProvider::kGps};
  app.behavior.request_interval_s = 5;

  DynamicTester tester(1);
  const DynamicObservation observation = tester.test(app);
  EXPECT_TRUE(observation.functions);
  EXPECT_TRUE(observation.auto_start);
  EXPECT_TRUE(observation.background_access);
  EXPECT_TRUE(observation.uses_precise);
  EXPECT_EQ(observation.background_interval_s, 5);
  ASSERT_EQ(observation.background_providers.size(), 1u);
  EXPECT_EQ(observation.background_providers[0], android::LocationProvider::kGps);
  EXPECT_GT(observation.deliveries, 0u);
}

TEST(DynamicTester, ObservesForegroundOnlyApp) {
  AppSpec app;
  app.package = "com.test.fg";
  app.manifest.package_name = app.package;
  app.manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  app.behavior.uses_location = true;
  app.behavior.auto_start_on_launch = false;  // Needs the user trigger.
  app.behavior.continues_in_background = false;
  app.behavior.providers = {android::LocationProvider::kNetwork};
  app.behavior.request_interval_s = 30;

  DynamicTester tester(1);
  const DynamicObservation observation = tester.test(app);
  EXPECT_TRUE(observation.functions);
  EXPECT_FALSE(observation.auto_start);
  EXPECT_FALSE(observation.background_access);
  EXPECT_TRUE(observation.background_providers.empty());
}

TEST(DynamicTester, ObservesOverPrivilegedApp) {
  AppSpec app;
  app.package = "com.test.lazy";
  app.manifest.package_name = app.package;
  app.manifest.uses_permissions = {android::Permission::kAccessCoarseLocation};
  // Declares the permission, never uses it.
  DynamicTester tester(1);
  const DynamicObservation observation = tester.test(app);
  EXPECT_FALSE(observation.functions);
  EXPECT_FALSE(observation.auto_start);
  EXPECT_FALSE(observation.background_access);
  EXPECT_EQ(observation.deliveries, 0u);
}

// The full study is the subject of bench_market_stats; here we verify the
// pipeline recovers the calibrated ground truth end to end.
TEST(MarketStudy, RecoversPaperHeadlineNumbers) {
  const MarketReport report = run_market_study(test_catalog(), /*device_seed=*/7);
  const CalibrationTargets targets;
  EXPECT_EQ(report.total_apps, 2800);
  EXPECT_EQ(report.declaring, targets.declaring);
  EXPECT_EQ(report.fine_only, targets.fine_only);
  EXPECT_EQ(report.coarse_only, targets.coarse_only);
  EXPECT_EQ(report.both, targets.declaring - targets.fine_only - targets.coarse_only);
  EXPECT_EQ(report.functional, targets.functional);
  EXPECT_EQ(report.functional_auto, targets.functional_auto_start);
  EXPECT_EQ(report.background, targets.background);
  EXPECT_EQ(report.background_auto, targets.background_auto_start);
  // Paper: 96 of the 102 claim fine, 6 coarse; 68 precise; 28 coarse-despite-fine.
  EXPECT_EQ(report.background_claim_fine, 96);
  EXPECT_EQ(report.background_claim_coarse, 6);
  EXPECT_EQ(report.background_precise, 68);
  EXPECT_EQ(report.background_coarse_despite_fine, 28);
}

TEST(MarketStudy, TableOneMatrixRecovered) {
  const MarketReport report = run_market_study(test_catalog(), 7);
  const CalibrationTargets targets;
  for (int row = 0; row < kGranularityClaimCount; ++row)
    for (int combo = 0; combo < kProviderComboCount; ++combo)
      EXPECT_EQ(report.provider_matrix[static_cast<std::size_t>(row)]
                                      [static_cast<std::size_t>(combo)],
                targets.background_provider_matrix[static_cast<std::size_t>(row)]
                                                  [static_cast<std::size_t>(combo)])
          << "row " << row << " combo " << combo;
}

TEST(MarketStudy, IntervalBandsMatchFigureOne) {
  const MarketReport report = run_market_study(test_catalog(), 7);
  ASSERT_EQ(report.background_intervals.size(), 102u);
  int band[4] = {0, 0, 0, 0};
  std::int64_t max_interval = 0;
  for (const std::int64_t interval : report.background_intervals) {
    if (interval <= 10) ++band[0];
    else if (interval <= 60) ++band[1];
    else if (interval <= 600) ++band[2];
    else ++band[3];
    max_interval = std::max(max_interval, interval);
  }
  const CalibrationTargets targets;
  EXPECT_EQ(band[0], targets.interval_band_counts[0]);
  EXPECT_EQ(band[1], targets.interval_band_counts[1]);
  EXPECT_EQ(band[2], targets.interval_band_counts[2]);
  EXPECT_EQ(band[3], targets.interval_band_counts[3]);
  EXPECT_EQ(max_interval, 7200);  // The single slowest app.
}

}  // namespace
}  // namespace locpriv::market
