#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geo/geodesy.hpp"
#include "mobility/city.hpp"
#include "mobility/profile.hpp"
#include "mobility/synthesis.hpp"
#include "trace/trace_stats.hpp"
#include "util/expect.hpp"

namespace locpriv::mobility {
namespace {

CityModel make_city(std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  CityConfig config;
  return CityModel(config, rng);
}

TEST(City, GeneratesRequestedPoiPool) {
  const CityModel city = make_city();
  EXPECT_EQ(city.pois().size(), 400u);
  // Every category is represented (first kPoiCategoryCount ids guarantee it).
  for (int c = 0; c < kPoiCategoryCount; ++c)
    EXPECT_FALSE(city.pois_of_category(static_cast<PoiCategory>(c)).empty());
}

TEST(City, PoisLieWithinGridExtent) {
  const CityModel city = make_city();
  const double max_east = city.config().blocks_x * city.config().block_m;
  const double max_north = city.config().blocks_y * city.config().block_m;
  for (const PoiSite& site : city.pois()) {
    const geo::EastNorth plane = city.projection().to_plane(site.position);
    // Jitter is Gaussian (sigma 60 m); allow a generous margin.
    EXPECT_GT(plane.east_m, -400.0);
    EXPECT_LT(plane.east_m, max_east + 400.0);
    EXPECT_GT(plane.north_m, -400.0);
    EXPECT_LT(plane.north_m, max_north + 400.0);
  }
}

TEST(City, NearestIntersectionSnapsAndClamps) {
  const CityModel city = make_city();
  const geo::LatLon inside = city.projection().to_geo({730.0, 260.0});
  const geo::EastNorth snapped = city.projection().to_plane(city.nearest_intersection(inside));
  EXPECT_NEAR(snapped.east_m, 500.0, 1e-6);
  EXPECT_NEAR(snapped.north_m, 500.0, 1e-6);
  // Far outside the grid clamps to the boundary.
  const geo::LatLon outside = city.projection().to_geo({-9000.0, 1e6});
  const geo::EastNorth clamped = city.projection().to_plane(city.nearest_intersection(outside));
  EXPECT_NEAR(clamped.east_m, 0.0, 1e-6);
  EXPECT_NEAR(clamped.north_m, city.config().blocks_y * city.config().block_m, 1e-3);
}

TEST(City, RoutesConnectEndpointsAlongGrid) {
  const CityModel city = make_city();
  stats::Rng rng(5);
  const geo::LatLon from = city.poi(0).position;
  const geo::LatLon to = city.poi(50).position;
  const auto route = city.plan_route(from, to, rng);
  ASSERT_GE(route.size(), 2u);
  EXPECT_EQ(route.front(), from);
  EXPECT_EQ(route.back(), to);
  // Route length at least the straight-line distance, at most ~3x for a
  // Manhattan detour on this grid.
  const double direct = geo::haversine_m(from, to);
  const double length = geo::polyline_length_m(route);
  EXPECT_GE(length, direct - 1.0);
  EXPECT_LE(length, 3.0 * direct + 4.0 * city.config().block_m);
}

TEST(City, RouteToSelfIsTrivial) {
  const CityModel city = make_city();
  stats::Rng rng(5);
  const auto route = city.plan_route(city.poi(3).position, city.poi(3).position, rng);
  EXPECT_EQ(route.size(), 1u);
}

TEST(Profile, ContainsHomeWorkAndAmenities) {
  const CityModel city = make_city();
  stats::Rng rng(9);
  const int home = city.pois_of_category(PoiCategory::kHome).front();
  const UserProfile profile =
      build_user_profile(city, "042", home, ProfileConfig{}, rng);
  EXPECT_EQ(profile.user_id, "042");
  EXPECT_EQ(profile.home_poi(), home);
  EXPECT_EQ(city.poi(profile.work_poi()).category, PoiCategory::kWork);
  EXPECT_GE(profile.place_count(), 3u);
  // No duplicate places.
  std::set<int> unique(profile.poi_ids.begin(), profile.poi_ids.end());
  EXPECT_EQ(unique.size(), profile.poi_ids.size());
}

TEST(Profile, TransitionMatricesAreRowStochastic) {
  const CityModel city = make_city();
  stats::Rng rng(9);
  const int home = city.pois_of_category(PoiCategory::kHome).front();
  const UserProfile profile =
      build_user_profile(city, "u", home, ProfileConfig{}, rng);
  for (const auto* matrix : {&profile.weekday_transition, &profile.weekend_transition}) {
    ASSERT_EQ(matrix->size(), profile.place_count());
    for (std::size_t i = 0; i < matrix->size(); ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < (*matrix)[i].size(); ++j) {
        EXPECT_GE((*matrix)[i][j], 0.0);
        row_sum += (*matrix)[i][j];
      }
      EXPECT_NEAR(row_sum, 1.0, 1e-9);
      EXPECT_DOUBLE_EQ((*matrix)[i][i], 0.0);  // No self transitions.
    }
  }
}

TEST(Profile, RequiresHomeCategorySite) {
  const CityModel city = make_city();
  stats::Rng rng(9);
  const int work = city.pois_of_category(PoiCategory::kWork).front();
  EXPECT_THROW(build_user_profile(city, "u", work, ProfileConfig{}, rng),
               util::ContractViolation);
}

TEST(Profile, DistinctUsersGetDistinctHabits) {
  const CityModel city = make_city();
  stats::Rng rng(9);
  const auto homes = city.pois_of_category(PoiCategory::kHome);
  const UserProfile a = build_user_profile(city, "a", homes[0], ProfileConfig{}, rng);
  const UserProfile b = build_user_profile(city, "b", homes[1], ProfileConfig{}, rng);
  EXPECT_NE(a.poi_ids, b.poi_ids);
}

TEST(DwellModel, HomeAndWorkDwellLongest) {
  EXPECT_GT(dwell_model(PoiCategory::kHome).mu_log_s,
            dwell_model(PoiCategory::kShop).mu_log_s);
  EXPECT_GT(dwell_model(PoiCategory::kWork).mu_log_s,
            dwell_model(PoiCategory::kTransit).mu_log_s);
}

SimulatedUser simulate_one(int days = 6, std::uint64_t seed = 11) {
  const CityModel city = make_city();
  stats::Rng rng(seed);
  const int home = city.pois_of_category(PoiCategory::kHome).front();
  const UserProfile profile =
      build_user_profile(city, "000", home, ProfileConfig{}, rng);
  SynthesisConfig config;
  config.days = days;
  return simulate_user(city, profile, config, rng);
}

TEST(Synthesis, OneTrajectoryPerDayChronological) {
  const SimulatedUser user = simulate_one(6);
  EXPECT_EQ(user.trace.trajectories.size(), 6u);
  for (std::size_t d = 1; d < user.trace.trajectories.size(); ++d)
    EXPECT_LT(user.trace.trajectories[d - 1].back().timestamp_s,
              user.trace.trajectories[d].front().timestamp_s);
}

TEST(Synthesis, VisitsAreChronologicalAndAtProfilePlaces) {
  const SimulatedUser user = simulate_one();
  ASSERT_FALSE(user.ground_truth.visits.empty());
  const std::set<int> places(user.ground_truth.poi_ids.begin(),
                             user.ground_truth.poi_ids.end());
  std::int64_t previous_exit = 0;
  for (const VisitEvent& visit : user.ground_truth.visits) {
    EXPECT_TRUE(places.contains(visit.poi_id));
    EXPECT_GE(visit.enter_s, previous_exit);
    EXPECT_GT(visit.exit_s, visit.enter_s);
    previous_exit = visit.exit_s;
  }
}

TEST(Synthesis, EveryDayStartsAndEndsAtHome) {
  const SimulatedUser user = simulate_one();
  const int home = user.ground_truth.poi_ids.front();
  // First visit of the log is the morning home stay.
  EXPECT_EQ(user.ground_truth.visits.front().poi_id, home);
}

TEST(Synthesis, SamplingIsGeolifeLike) {
  const SimulatedUser user = simulate_one(8);
  const auto stats = trace::compute_dataset_stats({user.trace});
  // The paper's corpus: ~91 % of consecutive intervals in 1..5 s.
  EXPECT_GT(stats.high_frequency_fraction, 0.80);
  EXPECT_LE(stats.median_interval_s, 5.0);
  EXPECT_GT(stats.point_count, 1000u);
}

TEST(Synthesis, FixesStayNearTheCity) {
  const SimulatedUser user = simulate_one(3);
  const CityModel city = make_city();
  for (const auto& trajectory : user.trace.trajectories)
    for (const auto& point : trajectory) {
      const geo::EastNorth plane = city.projection().to_plane(point.position);
      EXPECT_GT(plane.east_m, -2000.0);
      EXPECT_LT(plane.east_m, 15000.0);
      EXPECT_GT(plane.north_m, -2000.0);
      EXPECT_LT(plane.north_m, 15000.0);
    }
}

TEST(Synthesis, DeterministicGivenSeed) {
  const SimulatedUser a = simulate_one(3, 77);
  const SimulatedUser b = simulate_one(3, 77);
  ASSERT_EQ(a.trace.total_points(), b.trace.total_points());
  const auto fa = a.trace.flattened();
  const auto fb = b.trace.flattened();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].timestamp_s, fb[i].timestamp_s);
    EXPECT_EQ(fa[i].position, fb[i].position);
  }
}

TEST(Dataset, GeneratesRequestedUsers) {
  DatasetConfig config;
  config.user_count = 8;
  config.synthesis.days = 3;
  const SyntheticDataset dataset = generate_dataset(config);
  EXPECT_EQ(dataset.users.size(), 8u);
  EXPECT_EQ(dataset.profiles.size(), 8u);
  EXPECT_EQ(dataset.ground_truths.size(), 8u);
  for (std::size_t u = 0; u < dataset.users.size(); ++u) {
    EXPECT_EQ(dataset.users[u].user_id, dataset.profiles[u].user_id);
    EXPECT_FALSE(dataset.users[u].trajectories.empty());
  }
}

TEST(Dataset, UsersHaveDistinctHomes) {
  DatasetConfig config;
  config.user_count = 10;
  config.synthesis.days = 2;
  const SyntheticDataset dataset = generate_dataset(config);
  std::set<int> homes;
  for (const auto& profile : dataset.profiles) homes.insert(profile.home_poi());
  EXPECT_EQ(homes.size(), 10u);
}

TEST(Dataset, SharedHomesAssignUsersPerBuilding) {
  DatasetConfig config;
  config.user_count = 12;
  config.users_per_home = 4;
  config.synthesis.days = 2;
  const SyntheticDataset dataset = generate_dataset(config);
  std::map<int, int> residents;
  for (const auto& profile : dataset.profiles) ++residents[profile.home_poi()];
  ASSERT_EQ(residents.size(), 3u);  // 12 users / 4 per home.
  for (const auto& [home, count] : residents) {
    (void)home;
    EXPECT_EQ(count, 4);
  }
}

TEST(Dataset, SharedHomesRejectInvalidConfig) {
  DatasetConfig config;
  config.user_count = 10;
  config.users_per_home = 0;
  EXPECT_THROW(generate_dataset(config), util::ContractViolation);
}

TEST(Dataset, FailsWhenTooFewHomeSites) {
  DatasetConfig config;
  config.user_count = 50;
  config.city.poi_count = 40;  // Cannot hold 50 distinct homes.
  EXPECT_THROW(generate_dataset(config), util::ContractViolation);
}

TEST(Dataset, DeterministicAcrossRuns) {
  DatasetConfig config;
  config.user_count = 4;
  config.synthesis.days = 2;
  const SyntheticDataset a = generate_dataset(config);
  const SyntheticDataset b = generate_dataset(config);
  ASSERT_EQ(a.users.size(), b.users.size());
  for (std::size_t u = 0; u < a.users.size(); ++u)
    EXPECT_EQ(a.users[u].total_points(), b.users[u].total_points());
}

class DatasetScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetScaleTest, PointBudgetScalesWithDays) {
  // Property: more simulated days yield proportionally more fixes (within a
  // factor of ~2 slack for daily variation).
  DatasetConfig config;
  config.user_count = 3;
  config.synthesis.days = GetParam();
  const SyntheticDataset dataset = generate_dataset(config);
  std::size_t total = 0;
  for (const auto& user : dataset.users) total += user.total_points();
  const double per_day =
      static_cast<double>(total) / (3.0 * static_cast<double>(GetParam()));
  EXPECT_GT(per_day, 300.0);
  EXPECT_LT(per_day, 8000.0);
}

INSTANTIATE_TEST_SUITE_P(Days, DatasetScaleTest, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace locpriv::mobility
