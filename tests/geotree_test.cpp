#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geo/geodensity.hpp"
#include "geo/geodesy.hpp"
#include "geo/geotree.hpp"
#include "geo/latlon.hpp"
#include "stats/rng.hpp"

namespace locpriv::geo {
namespace {

const LatLon kBeijing{39.9042, 116.4074};

std::vector<LatLon> scatter(std::size_t n, const LatLon& center, double spread_deg,
                            std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<LatLon> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({center.lat_deg + rng.uniform(-spread_deg, spread_deg),
                      center.lon_deg + rng.uniform(-spread_deg, spread_deg)});
  }
  return points;
}

// locpriv-lint: allow(linear-spatial-scan) brute-force oracle for index tests
std::vector<GeoTree::Hit> oracle_radius(const std::vector<LatLon>& points,
                                        const LatLon& center, double radius_m,
                                        GeoTree::Metric metric) {
  std::vector<GeoTree::Hit> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = metric == GeoTree::Metric::kHaversine
                         ? haversine_m(center, points[i])
                         : equirectangular_m(center, points[i]);
    if (d <= radius_m) hits.push_back({static_cast<std::uint32_t>(i), d});
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.distance_m != b.distance_m ? a.distance_m < b.distance_m
                                        : a.index < b.index;
  });
  return hits;
}

TEST(GeohashEncoding, PrefixNestsAndCenterRoundTrips) {
  const std::uint64_t code = geohash_encode(kBeijing);
  for (int level = 0; level <= kGeohashMaxLevel; ++level) {
    const std::uint64_t prefix = geohash_prefix(code, level);
    EXPECT_LT(prefix, 1ull << (2 * level));
    // A cell's center must re-encode into the same cell.
    EXPECT_EQ(geohash_prefix(geohash_encode(geohash_cell_center(prefix, level)), level),
              prefix);
    // Child cells refine their parent.
    if (level > 0) {
      EXPECT_EQ(prefix >> 2, geohash_prefix(code, level - 1));
    }
  }
}

TEST(GeohashEncoding, AxisExtremesStayInRange) {
  for (const LatLon& p : {LatLon{90.0, 180.0}, LatLon{-90.0, -180.0}, LatLon{0.0, 0.0},
                          LatLon{89.9999, -180.0}, LatLon{-90.0, 179.9999}}) {
    const std::uint64_t code = geohash_encode(p);
    EXPECT_LT(code, 1ull << (2 * kGeohashMaxLevel));
    const LatLon center = geohash_cell_center(code, kGeohashMaxLevel);
    EXPECT_NEAR(center.lat_deg, p.lat_deg, 180.0 / (1 << 26) * 2);
    EXPECT_NEAR(center.lon_deg, p.lon_deg, 360.0 / (1 << 26) * 2);
  }
}

TEST(GeoTree, CellRangeCountsEveryPointExactlyOnce) {
  const auto points = scatter(500, kBeijing, 0.5, 41);
  const GeoTree tree(points);
  for (int level : {0, 3, 8, 14}) {
    std::size_t total = 0;
    for (std::uint64_t prefix = 0; prefix < (1ull << (2 * level)); ++prefix) {
      if (level >= 8) break;  // full sweeps only at coarse levels
      total += tree.cell_count(prefix, level);
    }
    if (level < 8) {
      EXPECT_EQ(total, points.size()) << "level " << level;
    }
  }
  // At any level, each point is inside the cell its own code names.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t prefix = geohash_prefix(geohash_encode(points[i]), 14);
    const auto ids = tree.cell_indices(prefix, 14);
    EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), i));
  }
}

TEST(GeoTree, RadiusQueryMatchesOracleBothMetrics) {
  const auto points = scatter(800, kBeijing, 0.3, 42);
  const GeoTree tree(points);
  stats::Rng rng(43);
  for (int q = 0; q < 50; ++q) {
    const LatLon center{kBeijing.lat_deg + rng.uniform(-0.3, 0.3),
                        kBeijing.lon_deg + rng.uniform(-0.3, 0.3)};
    const double radius = rng.uniform(50.0, 20000.0);
    for (auto metric : {GeoTree::Metric::kHaversine, GeoTree::Metric::kEquirectangular}) {
      EXPECT_EQ(tree.query_radius(center, radius, metric),
                oracle_radius(points, center, radius, metric));
    }
  }
}

TEST(GeoTree, AnyWithinAgreesWithRadiusQuery) {
  const auto points = scatter(200, kBeijing, 0.1, 44);
  const GeoTree tree(points);
  stats::Rng rng(45);
  for (int q = 0; q < 50; ++q) {
    const LatLon center{kBeijing.lat_deg + rng.uniform(-0.12, 0.12),
                        kBeijing.lon_deg + rng.uniform(-0.12, 0.12)};
    const double radius = rng.uniform(10.0, 5000.0);
    for (auto metric : {GeoTree::Metric::kHaversine, GeoTree::Metric::kEquirectangular}) {
      EXPECT_EQ(tree.any_within(center, radius, metric),
                !tree.query_radius(center, radius, metric).empty());
    }
  }
}

TEST(GeoTree, KnnMatchesOracleAndSortsByDistance) {
  const auto points = scatter(600, kBeijing, 0.4, 46);
  const GeoTree tree(points);
  stats::Rng rng(47);
  for (int q = 0; q < 25; ++q) {
    const LatLon center{kBeijing.lat_deg + rng.uniform(-0.4, 0.4),
                        kBeijing.lon_deg + rng.uniform(-0.4, 0.4)};
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 40));
    auto expected = oracle_radius(points, center, 1e9, GeoTree::Metric::kHaversine);
    expected.resize(std::min(k, expected.size()));
    EXPECT_EQ(tree.query_knn(center, k), expected);
  }
  EXPECT_TRUE(tree.query_knn(kBeijing, 0).empty());
  EXPECT_EQ(tree.query_knn(kBeijing, points.size() + 10).size(), points.size());
}

TEST(GeoTree, DeterministicAcrossRebuilds) {
  const auto points = scatter(300, kBeijing, 0.2, 48);
  const GeoTree a(points);
  const GeoTree b(points);
  const auto hits_a = a.query_radius(kBeijing, 15000.0);
  EXPECT_EQ(hits_a, b.query_radius(kBeijing, 15000.0));
  // Duplicate coordinates tie-break by ascending original index.
  std::vector<LatLon> dupes(8, kBeijing);
  const GeoTree d(dupes);
  const auto hits = d.query_radius(kBeijing, 1.0);
  ASSERT_EQ(hits.size(), dupes.size());
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].index, i);
}

TEST(GeoTree, CountCacheIsTransparentAtAnyCapacity) {
  const auto points = scatter(400, kBeijing, 0.3, 49);
  const GeoTree cached(points, 4);    // tiny cache: constant eviction
  const GeoTree uncached(points, 0);  // cache disabled
  const std::uint64_t code = geohash_encode(kBeijing);
  for (int pass = 0; pass < 3; ++pass) {
    for (int level = 0; level <= kGeohashMaxLevel; ++level) {
      const std::uint64_t prefix = geohash_prefix(code, level);
      EXPECT_EQ(cached.cell_count(prefix, level), uncached.cell_count(prefix, level));
    }
  }
}

TEST(GeoDensity, AdaptiveRadiusShrinksWithDensity) {
  // Same k over a dense and a sparse corpus: the dense first guess is smaller.
  const GeoTree dense(scatter(5000, kBeijing, 0.05, 50));
  const GeoTree sparse(scatter(50, kBeijing, 2.0, 51));
  const DensityEstimator de_dense(dense);
  const DensityEstimator de_sparse(sparse);
  const double r_dense = de_dense.adaptive_radius(kBeijing, 10);
  const double r_sparse = de_sparse.adaptive_radius(kBeijing, 10);
  EXPECT_LT(r_dense, r_sparse);
  EXPECT_GE(r_dense, DensityEstimator::kMinRadiusM);
  EXPECT_LE(r_sparse, DensityEstimator::kMaxRadiusM);
  // Probe reports a cell that really holds the requested count.
  const auto probe = de_dense.probe(kBeijing, 10);
  EXPECT_GE(probe.count, 10u);
  EXPECT_GT(probe.density_per_m2, 0.0);
}

TEST(GeoCellIndex, CandidatesAreSortedSupersetAndTrackMoves) {
  stats::Rng rng(52);
  std::vector<LatLon> positions;
  GeoCellIndex index(500.0);
  for (std::uint32_t id = 0; id < 300; ++id) {
    positions.push_back({kBeijing.lat_deg + rng.uniform(-0.05, 0.05),
                         kBeijing.lon_deg + rng.uniform(-0.05, 0.05)});
    index.insert(id, positions.back());
  }
  // Move a third of the points somewhere else.
  for (std::uint32_t id = 0; id < 300; id += 3) {
    positions[id] = {kBeijing.lat_deg + rng.uniform(-0.05, 0.05),
                     kBeijing.lon_deg + rng.uniform(-0.05, 0.05)};
    index.move(id, positions[id]);
  }
  for (int q = 0; q < 30; ++q) {
    const LatLon center{kBeijing.lat_deg + rng.uniform(-0.05, 0.05),
                        kBeijing.lon_deg + rng.uniform(-0.05, 0.05)};
    const double radius = rng.uniform(100.0, 2000.0);
    std::vector<std::uint32_t> candidates;
    index.candidates_within(center, radius, candidates);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());
    for (std::uint32_t id = 0; id < 300; ++id) {
      if (equirectangular_m(center, positions[id]) <= radius) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), id))
            << "id " << id << " within " << radius << " m but not a candidate";
      }
    }
  }
}

TEST(Geodesy, BatchedDistancesBitIdenticalToScalar) {
  const auto points = scatter(256, kBeijing, 1.5, 53);
  std::vector<double> batched(points.size());
  haversine_from(kBeijing, points, batched);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batched[i], haversine_m(kBeijing, points[i])) << i;
  }
  equirectangular_from(kBeijing, points, batched);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batched[i], equirectangular_m(kBeijing, points[i])) << i;
  }
}

}  // namespace
}  // namespace locpriv::geo
