// Storage-fault resilience tests: the CRC-32C primitive, StorageFaultPlan
// spec parsing, the deterministic FaultyFileOps fault menu, the atomic
// writer's torn-write invariant under injected faults, the run ledger's
// per-record checksums (torn tail vs. mid-file bit-rot), the run-dir
// scrubber, and locprivd's disk-full degraded mode (suite ServiceStorage
// runs under the `chaos` ctest label).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/atomic_file.hpp"
#include "core/harness/crc32c.hpp"
#include "core/harness/error.hpp"
#include "core/harness/file_ops.hpp"
#include "core/harness/run_ledger.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "service/scrub.hpp"
#include "service/snapshot.hpp"

namespace locpriv {
namespace {

namespace fs = std::filesystem;
using harness::FaultyFileOps;
using harness::LedgerScan;
using harness::RunInfo;
using harness::RunLedger;
using harness::ScopedFileOps;
using harness::StorageFaultPlan;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("locpriv_storage_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_raw(const fs::path& path, const std::string& content) {
  // locpriv-lint: allow(raw-write) tests plant exact bytes on purpose.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

bool has_temp_debris(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().filename().string().find(".tmp.") != std::string::npos)
      return true;
  return false;
}

const RunInfo kInfo{"storage_test", 42, "3u1d"};

// ------------------------------------------------------------- crc32c ----

TEST(StorageCrc32c, MatchesTheCastagnoliCheckVectors) {
  // RFC 3720 appendix B check value for "123456789", plus the classic
  // pangram vector — wrong polynomial or reflection fails both.
  EXPECT_EQ(harness::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(harness::crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
  EXPECT_EQ(harness::crc32c(""), 0u);
}

TEST(StorageCrc32c, HexFormIsFixedWidthLowercase) {
  EXPECT_EQ(harness::crc32c_hex("123456789"), "e3069283");
  EXPECT_EQ(harness::crc32c_hex(""), "00000000");
}

TEST(StorageCrc32c, SingleBitFlipChangesTheChecksum) {
  std::string data = "{\"cell\":\"seed7\",\"fields\":[\"1\",\"2\"]}";
  const std::uint32_t before = harness::crc32c(data);
  data[10] ^= 0x01;
  EXPECT_NE(harness::crc32c(data), before);
}

// --------------------------------------------------- fault plan spec ----

TEST(StoragePlan, SpecRoundTripsEveryField) {
  StorageFaultPlan plan;
  plan.seed = 7;
  plan.path_filter = ".snap.";
  plan.eio_at_op = 17;
  plan.enospc_at_op = 40;
  plan.enospc_recover_after = 12;
  plan.short_write_prob = 0.25;
  plan.drop_tail_at_fsync = 3;
  plan.rename_fail_at = 2;
  plan.flip_read = true;
  plan.flip_offset = 128;
  const std::string spec = plan.spec();
  EXPECT_EQ(StorageFaultPlan::parse(spec).spec(), spec);
}

TEST(StoragePlan, DefaultPlanSpecIsSeedOnly) {
  EXPECT_EQ(StorageFaultPlan{}.spec(), "seed=1");
  const StorageFaultPlan parsed = StorageFaultPlan::parse("seed=1");
  EXPECT_EQ(parsed.eio_at_op, 0u);
  EXPECT_FALSE(parsed.flip_read);
}

TEST(StoragePlan, MalformedSpecsAreUsageErrors) {
  for (const char* bad : {"bogus=1", "eio=x", "eio=-3", "short=2.0",
                          "short=nope", "noequals"}) {
    try {
      StorageFaultPlan::parse(bad);
      FAIL() << "spec '" << bad << "' parsed";
    } catch (const Error& error) {
      EXPECT_EQ(error.code(), ErrorCode::kUsage) << bad;
    }
  }
}

// ------------------------------------------------------ faulty ops ----

int open_for_write(harness::FileOps& ops, const fs::path& path) {
  return ops.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

TEST(StorageFaultyOps, EioFailsExactlyTheNthMutatingOp) {
  const fs::path dir = fresh_dir("eio");
  StorageFaultPlan plan;
  plan.eio_at_op = 2;
  FaultyFileOps ops(plan);
  const int fd = open_for_write(ops, dir / "victim");
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ops.write(fd, "a", 1), 1);
  errno = 0;
  EXPECT_EQ(ops.write(fd, "b", 1), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(ops.write(fd, "c", 1), 1);  // One-shot, not sticky.
  EXPECT_EQ(ops.close(fd), 0);
  EXPECT_EQ(ops.injected().eio, 1u);
}

TEST(StorageFaultyOps, StickyEnospcNeverRecovers) {
  const fs::path dir = fresh_dir("enospc_sticky");
  StorageFaultPlan plan;
  plan.enospc_at_op = 2;  // recover_after = 0: the disk stays full.
  FaultyFileOps ops(plan);
  const int fd = open_for_write(ops, dir / "victim");
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ops.write(fd, "a", 1), 1);
  for (int attempt = 0; attempt < 4; ++attempt) {
    errno = 0;
    EXPECT_EQ(ops.write(fd, "b", 1), -1);
    EXPECT_EQ(errno, ENOSPC);
  }
  EXPECT_EQ(ops.close(fd), 0);
  EXPECT_EQ(ops.injected().enospc, 4u);
}

TEST(StorageFaultyOps, RecoveringEnospcClearsAfterTheConfiguredFailures) {
  const fs::path dir = fresh_dir("enospc_recover");
  StorageFaultPlan plan;
  plan.enospc_at_op = 1;
  plan.enospc_recover_after = 2;
  FaultyFileOps ops(plan);
  const int fd = open_for_write(ops, dir / "victim");
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ops.write(fd, "x", 1), -1);
  EXPECT_EQ(ops.write(fd, "x", 1), -1);
  EXPECT_EQ(ops.write(fd, "x", 1), 1);  // Space was freed.
  EXPECT_EQ(ops.close(fd), 0);
  EXPECT_EQ(ops.injected().enospc, 2u);
  EXPECT_EQ(slurp(dir / "victim"), "x");
}

TEST(StorageFaultyOps, ShortWritesCutTheCountButStayPositive) {
  const fs::path dir = fresh_dir("short");
  StorageFaultPlan plan;
  plan.seed = 11;
  plan.short_write_prob = 1.0;
  FaultyFileOps ops(plan);
  const int fd = open_for_write(ops, dir / "victim");
  ASSERT_GE(fd, 0);
  const std::string buffer(100, 'z');
  const ::ssize_t n = ops.write(fd, buffer.data(), buffer.size());
  ASSERT_GT(n, 0);
  EXPECT_LT(n, 100);
  EXPECT_EQ(ops.close(fd), 0);
  EXPECT_GE(ops.injected().short_writes, 1u);
}

TEST(StorageFaultyOps, LyingFsyncDropsTheUnsyncedTailAtClose) {
  const fs::path dir = fresh_dir("dropsync");
  StorageFaultPlan plan;
  plan.drop_tail_at_fsync = 2;  // First fsync is honest, the second lies.
  FaultyFileOps ops(plan);
  const int fd = open_for_write(ops, dir / "victim");
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ops.write(fd, "abc", 3), 3);
  EXPECT_EQ(ops.fsync(fd), 0);  // Honest: "abc" is durable.
  EXPECT_EQ(ops.write(fd, "tail", 4), 4);
  EXPECT_EQ(ops.fsync(fd), 0);  // The lie: reports success, syncs nothing.
  EXPECT_EQ(ops.close(fd), 0);  // Power loss: the unsynced tail vanishes.
  EXPECT_EQ(slurp(dir / "victim"), "abc");
  EXPECT_EQ(ops.injected().dropped_tails, 1u);
}

TEST(StorageFaultyOps, RenameFailsAtTheConfiguredCount) {
  const fs::path dir = fresh_dir("rename");
  StorageFaultPlan plan;
  plan.rename_fail_at = 1;
  FaultyFileOps ops(plan);
  write_raw(dir / "from", "payload");
  errno = 0;
  EXPECT_EQ(ops.rename((dir / "from").c_str(), (dir / "to").c_str()), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_TRUE(fs::exists(dir / "from"));
  EXPECT_FALSE(fs::exists(dir / "to"));
  EXPECT_EQ(ops.rename((dir / "from").c_str(), (dir / "to").c_str()), 0);
  EXPECT_EQ(ops.injected().rename_failures, 1u);
}

TEST(StorageFaultyOps, ReadBitFlipIsPersistentLikeABadSector) {
  const fs::path dir = fresh_dir("flip");
  write_raw(dir / "victim", "hello");
  StorageFaultPlan plan;
  plan.flip_read = true;
  plan.flip_offset = 1;
  FaultyFileOps ops(plan);
  const int fd = ops.open((dir / "victim").c_str(), O_RDONLY, 0);
  ASSERT_GE(fd, 0);
  char buf[8] = {};
  ASSERT_EQ(ops.read(fd, buf, 5), 5);
  EXPECT_EQ(std::string(buf, 5), std::string("h") + char('e' ^ 0x01) + "llo");
  ::lseek(fd, 0, SEEK_SET);
  ASSERT_EQ(ops.read(fd, buf, 5), 5);  // Retries see the same rot.
  EXPECT_EQ(buf[1], char('e' ^ 0x01));
  EXPECT_EQ(ops.close(fd), 0);
  EXPECT_EQ(ops.injected().bit_flips, 2u);
}

TEST(StorageFaultyOps, PathFilterScopesFaultsToMatchingFiles) {
  const fs::path dir = fresh_dir("filter");
  StorageFaultPlan plan;
  plan.path_filter = ".snap.";
  plan.enospc_at_op = 1;
  FaultyFileOps ops(plan);
  const int healthy = open_for_write(ops, dir / "ledger.jsonl");
  const int faulted = open_for_write(ops, dir / "shard0.snap.1");
  ASSERT_GE(healthy, 0);
  ASSERT_GE(faulted, 0);
  EXPECT_EQ(ops.write(healthy, "ok", 2), 2);
  errno = 0;
  EXPECT_EQ(ops.write(faulted, "xx", 2), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(ops.close(healthy), 0);
  EXPECT_EQ(ops.close(faulted), 0);
}

TEST(StorageFaultyOps, SamePlanAndCallSequenceInjectTheSameFaults) {
  // The whole fault menu is seeded: replaying a plan against the same call
  // sequence must reproduce byte-identical injections (the torture bench
  // and CI env-var installs rely on this).
  const fs::path dir = fresh_dir("deterministic");
  const auto run_once = [&dir] {
    StorageFaultPlan plan;
    plan.seed = 99;
    plan.short_write_prob = 0.5;
    FaultyFileOps ops(plan);
    const int fd = open_for_write(ops, dir / "victim");
    EXPECT_GE(fd, 0);
    std::vector<::ssize_t> sizes;
    const std::string buffer(64, 'q');
    for (int i = 0; i < 8; ++i)
      sizes.push_back(ops.write(fd, buffer.data(), buffer.size()));
    EXPECT_EQ(ops.close(fd), 0);
    return sizes;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------- atomic writer under fault ----

TEST(AtomicFileStorageFaults, EnospcDuringCommitKeepsOldContentAndNoDebris) {
  const fs::path dir = fresh_dir("atomic_enospc");
  const fs::path target = dir / "table.csv";
  harness::write_file_atomic(target, "old,complete,version\n");
  StorageFaultPlan plan;
  plan.enospc_at_op = 1;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  try {
    harness::write_file_atomic(target, "new,half,written\n");
    FAIL() << "commit survived a full disk";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIo);
  }
  EXPECT_EQ(slurp(target), "old,complete,version\n");
  EXPECT_FALSE(has_temp_debris(dir));
  EXPECT_GE(faulty.injected().enospc, 1u);
}

TEST(AtomicFileStorageFaults, RenameFailureKeepsOldContentAndNoDebris) {
  const fs::path dir = fresh_dir("atomic_rename");
  const fs::path target = dir / "table.csv";
  harness::write_file_atomic(target, "old,complete,version\n");
  StorageFaultPlan plan;
  plan.rename_fail_at = 1;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  try {
    harness::write_file_atomic(target, "new\n");
    FAIL() << "commit survived a failed rename";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIo);
  }
  EXPECT_EQ(slurp(target), "old,complete,version\n");
  EXPECT_FALSE(has_temp_debris(dir));
}

TEST(AtomicFileStorageFaults, ShortWritesAreRetriedToCompletion) {
  const fs::path dir = fresh_dir("atomic_short");
  const fs::path target = dir / "table.csv";
  StorageFaultPlan plan;
  plan.seed = 3;
  plan.short_write_prob = 1.0;  // Every write is cut short; retries finish.
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  std::string content;
  for (int i = 0; i < 5000; ++i) content += "row," + std::to_string(i) + "\n";
  harness::write_file_atomic(target, content);
  EXPECT_EQ(slurp(target), content);
  EXPECT_GE(faulty.injected().short_writes, 1u);
}

TEST(AtomicFileStorageFaults, LyingFsyncPublishesTheTruncationNotGarbage) {
  // A lying fsync is the one fault the writer cannot detect (the kernel
  // reported success); the published file is truncated at the last durable
  // byte. What the protocol still guarantees: no interleaved garbage, and
  // downstream content checksums (snapshot FNV, ledger CRC) catch the loss.
  const fs::path dir = fresh_dir("atomic_dropsync");
  const fs::path target = dir / "table.csv";
  StorageFaultPlan plan;
  plan.drop_tail_at_fsync = 1;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  harness::write_file_atomic(target, "never,synced\n");
  EXPECT_EQ(slurp(target), "");  // Truncated to the durable prefix (empty).
  EXPECT_EQ(faulty.injected().dropped_tails, 1u);
}

// ------------------------------------------------------- ledger CRC ----

TEST(RunLedgerCrc, EveryAppendedLineCarriesASelfChecksum) {
  const fs::path dir = fresh_dir("crc_lines");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1", "2"});
    ledger.record_quarantine("cell_b", {"signal 11 (SIGSEGV)"});
  }
  const std::string content = slurp(dir / "ledger.jsonl");
  std::istringstream lines(content);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_GE(line.size(), 19u) << line;
    const std::string suffix = line.substr(line.size() - 18);
    EXPECT_EQ(suffix.substr(0, 8), ",\"crc\":\"") << line;
    EXPECT_EQ(suffix.substr(16), "\"}") << line;
  }
  EXPECT_EQ(count, 3u);  // Header + cell + quarantine.

  const harness::LedgerReplay replay = harness::replay_ledger(content);
  EXPECT_EQ(replay.status, LedgerScan::kClean);
  EXPECT_TRUE(replay.has_header);
  EXPECT_EQ(replay.valid_bytes, content.size());
  EXPECT_EQ(replay.cells.count("cell_a"), 1u);
  EXPECT_EQ(replay.quarantine.count("cell_b"), 1u);
}

TEST(RunLedgerCrc, ReopenReplaysChecksummedRecords) {
  const fs::path dir = fresh_dir("crc_reopen");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("seed7", {"0.25", "12"});
  }
  RunLedger resumed(dir, kInfo);
  ASSERT_TRUE(resumed.completed("seed7"));
  EXPECT_EQ(*resumed.fields("seed7"),
            (std::vector<std::string>{"0.25", "12"}));
}

TEST(RunLedgerCrc, InteriorBitFlipIsRefusedWithTheLedgerCorruptExit) {
  const fs::path dir = fresh_dir("crc_bitflip");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1"});
    ledger.record("cell_b", {"2"});
    ledger.record("cell_c", {"3"});
  }
  std::string content = slurp(dir / "ledger.jsonl");
  // Flip one bit inside the second record (line 3 of 4) — interior damage,
  // not a torn tail, so replay must refuse rather than silently drop it.
  std::size_t newlines = 0;
  std::size_t victim = std::string::npos;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (newlines == 2 && content[i] != '\n') {
      victim = i + 4;
      break;
    }
    if (content[i] == '\n') ++newlines;
  }
  ASSERT_NE(victim, std::string::npos);
  content[victim] ^= 0x01;
  write_raw(dir / "ledger.jsonl", content);
  try {
    RunLedger reopened(dir, kInfo);
    FAIL() << "bit-flipped ledger replayed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kLedgerCorrupt);
    EXPECT_EQ(error.exit_code(), 8);
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("scrub"), std::string::npos);
  }
}

TEST(RunLedgerCrc, ReadPathBitRotIsCaughtByTheRecordCrc) {
  const fs::path dir = fresh_dir("crc_readrot");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1"});
    ledger.record("cell_b", {"2"});
  }
  // Rot a byte in the middle of the file at read time: the bytes on disk
  // are fine, the sector is not. The per-record CRC catches what syntax
  // checks alone might miss.
  StorageFaultPlan plan;
  plan.flip_read = true;
  plan.flip_offset = slurp(dir / "ledger.jsonl").size() / 2;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  try {
    RunLedger reopened(dir, kInfo);
    FAIL() << "rotting ledger replayed";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kLedgerCorrupt);
  }
  EXPECT_GE(faulty.injected().bit_flips, 1u);
}

TEST(RunLedgerCrc, PreCrcLedgersReplayUnchanged) {
  const fs::path dir = fresh_dir("crc_legacy");
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("cell_a", {"1", "2"});
  }
  // Rewrite the ledger as an old writer would have produced it: identical
  // lines minus the trailing `,"crc":"xxxxxxxx"` member.
  std::string stripped;
  std::istringstream lines(slurp(dir / "ledger.jsonl"));
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_GE(line.size(), 19u);
    stripped += line.substr(0, line.size() - 18);
    stripped += "}\n";
  }
  write_raw(dir / "ledger.jsonl", stripped);
  RunLedger resumed(dir, kInfo);
  ASSERT_TRUE(resumed.completed("cell_a"));
  EXPECT_EQ(*resumed.fields("cell_a"), (std::vector<std::string>{"1", "2"}));
}

std::string crc_line(const std::string& base) {
  return base.substr(0, base.size() - 1) + ",\"crc\":\"" +
         harness::crc32c_hex(base) + "\"}";
}

TEST(RunLedgerCrc, ReplayClassifiesTornVersusCorrupt) {
  const std::string header = crc_line(
      "{\"experiment\":\"x\",\"seed\":1,\"scale\":\"s\",\"mode\":\"inproc-w1\"}");
  const std::string cell = crc_line("{\"cell\":\"a\",\"fields\":[\"1\"]}");

  // Unterminated tail: torn, valid bytes stop at the last newline.
  harness::LedgerReplay replay =
      harness::replay_ledger(header + "\n" + cell.substr(0, 10));
  EXPECT_EQ(replay.status, LedgerScan::kTorn);
  EXPECT_EQ(replay.valid_bytes, header.size() + 1);

  // A terminated legacy (no-CRC) junk line with nothing after it could be a
  // torn pre-CRC append whose payload held a newline: truncate, don't refuse.
  replay = harness::replay_ledger(header + "\n{\"cell\":junk}\n");
  EXPECT_EQ(replay.status, LedgerScan::kTorn);
  EXPECT_EQ(replay.valid_bytes, header.size() + 1);

  // The same junk with intact data after it is mid-file damage.
  replay = harness::replay_ledger(header + "\n{\"cell\":junk}\n" + cell + "\n");
  EXPECT_EQ(replay.status, LedgerScan::kCorrupt);
  EXPECT_EQ(replay.bad_line, 2u);

  // A CRC-verified line that does not parse is writer corruption even in
  // final position: the CRC proves those exact bytes were written on purpose.
  replay = harness::replay_ledger(header + "\n" +
                                  crc_line("{\"bogus\":\"record\"}") + "\n");
  EXPECT_EQ(replay.status, LedgerScan::kCorrupt);
  EXPECT_EQ(replay.bad_line, 2u);

  // A terminated garbage header is damage: appends are single-write, so a
  // crash cannot leave a terminated-but-unparsable line 1.
  replay = harness::replay_ledger("garbage\n");
  EXPECT_EQ(replay.status, LedgerScan::kCorrupt);
  EXPECT_EQ(replay.bad_line, 1u);

  // Clean image: everything accounted for.
  replay = harness::replay_ledger(header + "\n" + cell + "\n");
  EXPECT_EQ(replay.status, LedgerScan::kClean);
  EXPECT_TRUE(replay.has_header);
  EXPECT_EQ(replay.cells.count("a"), 1u);
}

// ------------------------------------------------------------- scrub ----

/// A minimal but honest run directory: a ledger journaling `count`
/// snapshots for shard0 plus the snapshot files themselves, exactly the
/// shape locprivd's record_snapshot produces.
fs::path scrub_fixture(const std::string& name, unsigned count,
                       unsigned keep_from = 1) {
  const fs::path dir = fresh_dir(name);
  RunLedger ledger(dir, kInfo);
  for (unsigned seq = 1; seq <= count; ++seq) {
    service::ShardSnapshot snapshot;
    snapshot.shard = 0;
    snapshot.seq = seq;
    snapshot.last_seq = seq * 10;
    snapshot.users["user_00"] = {};
    const std::string encoded = service::encode_snapshot(snapshot);
    const fs::path file = dir / ("shard0.snap." + std::to_string(seq));
    if (seq >= keep_from) harness::write_file_atomic(file, encoded);
    ledger.record("shard0/snap/" + std::to_string(seq),
                  {file.string(), std::to_string(snapshot.last_seq), "1", "0",
                   service::snapshot_checksum(encoded)});
  }
  return dir;
}

TEST(ScrubRunDir, CleanDirectoryVerifiesAndIsResumable) {
  const fs::path dir = scrub_fixture("clean", 2);
  const service::ScrubReport report = service::scrub_run_dir(dir, false);
  EXPECT_EQ(report.ledger_status, LedgerScan::kClean);
  EXPECT_EQ(report.ledger_records, 2u);
  ASSERT_EQ(report.snapshots.size(), 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.resumable);
  EXPECT_TRUE(report.repairs.empty());
}

TEST(ScrubRunDir, MissingLedgerIsAUsageError) {
  const fs::path dir = fresh_dir("no_ledger");
  try {
    service::scrub_run_dir(dir, false);
    FAIL() << "scrubbed a non-run directory";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUsage);
  }
}

TEST(ScrubRunDir, ReclaimedSnapshotsOutsideTheRetentionWindowAreNotChecked) {
  // Seqs 1..4 journaled, files 1..2 already reclaimed by the service's
  // newest-two retention — a correct scrub only verifies 3 and 4.
  const fs::path dir = scrub_fixture("retention", 4, 3);
  const service::ScrubReport report = service::scrub_run_dir(dir, false);
  ASSERT_EQ(report.snapshots.size(), 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.resumable);
}

TEST(ScrubRunDir, CorruptNewestSnapshotFallsBackToThePrevious) {
  const fs::path dir = scrub_fixture("fallback", 2);
  const fs::path newest = dir / "shard0.snap.2";
  std::string encoded = slurp(newest);
  encoded[encoded.size() / 2] ^= 0x20;
  write_raw(newest, encoded);

  const service::ScrubReport verify = service::scrub_run_dir(dir, false);
  EXPECT_FALSE(verify.clean());
  EXPECT_TRUE(verify.resumable);  // Seq 1 still loads: the service's fallback.

  const service::ScrubReport repair = service::scrub_run_dir(dir, true);
  EXPECT_TRUE(repair.resumable);
  EXPECT_FALSE(repair.repairs.empty());
  EXPECT_FALSE(fs::exists(newest));  // The lie is gone from disk.
  EXPECT_TRUE(fs::exists(dir / "shard0.snap.1"));
}

TEST(ScrubRunDir, WindowFullyCorruptRepairDropsTheRecordsForAFreshResume) {
  // Only one snapshot journaled and its file is rotten: nothing in the
  // retention window loads, so a resume would refuse (kResume). Repair must
  // drop the untrusted records too, or the directory stays dead.
  const fs::path dir = scrub_fixture("fresh_resume", 1);
  std::string encoded = slurp(dir / "shard0.snap.1");
  encoded[encoded.size() / 2] ^= 0x20;
  write_raw(dir / "shard0.snap.1", encoded);

  EXPECT_FALSE(service::scrub_run_dir(dir, false).resumable);
  const service::ScrubReport repaired = service::scrub_run_dir(dir, true);
  EXPECT_TRUE(repaired.resumable);
  EXPECT_FALSE(fs::exists(dir / "shard0.snap.1"));

  const service::ScrubReport rescan = service::scrub_run_dir(dir, false);
  EXPECT_TRUE(rescan.clean());
  EXPECT_TRUE(rescan.resumable);
  RunLedger reopened(dir, kInfo);  // Header survived the rewrite intact.
  EXPECT_FALSE(reopened.completed("shard0/snap/1"));
}

TEST(ScrubRunDir, RepairTruncatesACorruptLedgerBackToTheIntactPrefix) {
  const fs::path dir = scrub_fixture("truncate", 1);
  {
    RunLedger ledger(dir, kInfo);
    ledger.record("extra_cell", {"x"});
  }
  // Corrupt the final record's body (clear of its CRC suffix); the header
  // and shard0/snap/1 stay intact.
  std::string content = slurp(dir / "ledger.jsonl");
  content[content.size() - 30] ^= 0x01;
  write_raw(dir / "ledger.jsonl", content);

  EXPECT_EQ(service::scrub_run_dir(dir, false).ledger_status,
            LedgerScan::kCorrupt);
  const service::ScrubReport repaired = service::scrub_run_dir(dir, true);
  ASSERT_FALSE(repaired.repairs.empty());
  EXPECT_NE(repaired.repairs.front().find("truncated"), std::string::npos);
  EXPECT_TRUE(repaired.resumable);

  // After repair the directory is fully healthy again: replay is clean and
  // the ledger reopens (the cell past the damage is gone, as advertised).
  const service::ScrubReport rescan = service::scrub_run_dir(dir, false);
  EXPECT_EQ(rescan.ledger_status, LedgerScan::kClean);
  EXPECT_TRUE(rescan.clean());
  RunLedger reopened(dir, kInfo);
  EXPECT_TRUE(reopened.completed("shard0/snap/1"));
  EXPECT_FALSE(reopened.completed("extra_cell"));
}

TEST(ScrubRunDir, RepairUnlinksSnapshotDebrisTheJournalNeverVouchedFor) {
  const fs::path dir = scrub_fixture("debris", 1);
  write_raw(dir / "shard9.snap.7", "not a snapshot at all");
  const service::ScrubReport report = service::scrub_run_dir(dir, true);
  EXPECT_FALSE(fs::exists(dir / "shard9.snap.7"));
  bool mentioned = false;
  for (const std::string& repair : report.repairs)
    mentioned = mentioned || repair.find("unreferenced") != std::string::npos;
  EXPECT_TRUE(mentioned);
  EXPECT_TRUE(fs::exists(dir / "shard0.snap.1"));  // Vouched-for file stays.
}

// --------------------------------------------- locprivd degraded mode ----

const core::PrivacyAnalyzer& storage_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig dataset;
    dataset.user_count = 4;
    dataset.synthesis.days = 2;
    return core::PrivacyAnalyzer::from_synthetic(
        core::experiment_analyzer_config(), dataset);
  }();
  return analyzer;
}

service::ServiceOptions storage_options(unsigned shards) {
  service::ServiceOptions options;
  options.shards = shards;
  options.interval_s = 60;
  options.seed = core::kDatasetSeed;
  options.scale = "4u_t60";
  options.heartbeat = std::chrono::milliseconds(50);
  options.ping_timeout = std::chrono::milliseconds(400);
  options.term_grace = std::chrono::milliseconds(150);
  options.snapshot_interval = std::chrono::milliseconds(150);
  options.backoff_base = std::chrono::milliseconds(10);
  options.backoff_seed = 7;
  return options;
}

void expect_storage_parity(const service::ServiceOptions& options,
                           const service::TrafficOptions& traffic,
                           const std::vector<std::vector<std::string>>& rows) {
  const std::vector<std::string> mismatched = service::parity_mismatches(
      storage_analyzer(), options.interval_s, traffic, rows);
  EXPECT_TRUE(mismatched.empty())
      << mismatched.size() << " users diverged, first: "
      << (mismatched.empty() ? "" : mismatched.front());
}

TEST(ServiceStorage, StickyDiskFullDegradesServesFromMemoryAndExitsIo) {
  const auto& analyzer = storage_analyzer();
  const auto options = storage_options(2);
  service::TrafficOptions traffic;
  traffic.batch_size = 32;
  // Only snapshot publishes hit the full disk; the ledger stays healthy, so
  // degraded-mode bookkeeping (snapdrop records) still lands.
  StorageFaultPlan plan;
  plan.path_filter = ".snap.";
  plan.enospc_at_op = 1;  // Sticky: the disk never recovers.
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);

  const fs::path dir = fresh_dir("svc_sticky");
  service::LocprivService daemon(options, analyzer, dir, false);
  const service::TrafficOutcome outcome =
      service::drive_traffic(daemon, analyzer, traffic);
  EXPECT_EQ(outcome.accepted, outcome.batches);

  // Snapshots cannot land, but the shards keep answering from memory.
  const auto rows = daemon.collect_reports();
  expect_storage_parity(options, traffic, rows);

  try {
    daemon.drain();
    FAIL() << "drain published snapshots on a full disk";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIo);
  }
  const service::ServiceStats& stats = daemon.stats();
  EXPECT_GE(stats.snapshots_shed, 3u);  // Three drain strikes at minimum.
  EXPECT_GE(stats.storage_degraded_events, 1u);
  EXPECT_EQ(stats.snapshots, 0u);
  bool degraded = false;
  for (unsigned shard = 0; shard < options.shards; ++shard)
    degraded = degraded || daemon.shard_load(shard).storage_degraded;
  EXPECT_TRUE(degraded);
  // The episode is journaled for post-mortem audit.
  EXPECT_NE(slurp(dir / "ledger.jsonl").find("/snapdrop/1"),
            std::string::npos);
}

TEST(ServiceStorage, RecoveringDiskRearmsSnapshotsAndDrainsWithParity) {
  const auto& analyzer = storage_analyzer();
  const auto options = storage_options(2);
  service::TrafficOptions traffic;
  traffic.batch_size = 32;
  traffic.pace = std::chrono::milliseconds(2);  // Let the cadence fire.
  // Every shard child inherits the plan across fork: its first two snapshot
  // writes fail, then the "space was freed" recovery kicks in.
  StorageFaultPlan plan;
  plan.path_filter = ".snap.";
  plan.enospc_at_op = 1;
  plan.enospc_recover_after = 2;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);

  const fs::path dir = fresh_dir("svc_recover");
  service::LocprivService daemon(options, analyzer, dir, false);
  service::drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();  // Fewer than three strikes per shard: the drain lands.

  const service::ServiceStats& stats = daemon.stats();
  EXPECT_GE(stats.snapshots_shed, 1u);
  EXPECT_GE(stats.storage_degraded_events, 1u);
  EXPECT_GE(stats.snapshots, 1u);
  for (unsigned shard = 0; shard < options.shards; ++shard)
    EXPECT_FALSE(daemon.shard_load(shard).storage_degraded) << shard;
  expect_storage_parity(options, traffic, rows);

  // The drained directory is exactly what the scrubber calls healthy.
  const service::ScrubReport report = service::scrub_run_dir(dir, false);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.resumable);
}

}  // namespace
}  // namespace locpriv
