#include <gtest/gtest.h>

#include <cmath>

#include "geo/geodesy.hpp"
#include "lppm/defense.hpp"
#include "util/expect.hpp"

namespace locpriv::lppm {
namespace {

const geo::LatLon kAnchor{39.9042, 116.4074};

std::vector<trace::TracePoint> walk(int count = 50, std::int64_t step_s = 5) {
  std::vector<trace::TracePoint> points;
  for (int i = 0; i < count; ++i)
    points.push_back({geo::destination(kAnchor, 90.0, i * 10.0), i * step_s});
  return points;
}

TEST(IdentityDefense, ReleasesVerbatim) {
  stats::Rng rng(1);
  const auto requested = walk();
  const IdentityDefense defense;
  EXPECT_EQ(defense.release(requested, rng), requested);
  EXPECT_EQ(defense.name(), "none");
}

TEST(GridSnapDefense, SnapsEveryFixToCellCenters) {
  stats::Rng rng(1);
  const GridSnapDefense defense(250.0, kAnchor);
  const auto released = defense.release(walk(), rng);
  const geo::LocalProjection projection(kAnchor);
  for (const auto& point : released) {
    const geo::EastNorth plane = projection.to_plane(point.position);
    // Cell centers sit at (n + 0.5) * 250.
    const double frac_east = plane.east_m / 250.0 - std::floor(plane.east_m / 250.0);
    EXPECT_NEAR(frac_east, 0.5, 1e-6);
  }
  EXPECT_EQ(defense.name(), "snap-250m");
  EXPECT_THROW(GridSnapDefense(0.0, kAnchor), util::ContractViolation);
}

TEST(GridSnapDefense, PreservesTimestampsAndCount) {
  stats::Rng rng(1);
  const auto requested = walk();
  const auto released = GridSnapDefense(100.0, kAnchor).release(requested, rng);
  ASSERT_EQ(released.size(), requested.size());
  for (std::size_t i = 0; i < released.size(); ++i)
    EXPECT_EQ(released[i].timestamp_s, requested[i].timestamp_s);
}

TEST(GaussianPerturbationDefense, NoiseHasExpectedScale) {
  stats::Rng rng(7);
  const auto requested = walk(400);
  const GaussianPerturbationDefense defense(100.0);
  const auto released = defense.release(requested, rng);
  double total = 0.0;
  for (std::size_t i = 0; i < released.size(); ++i)
    total += geo::haversine_m(requested[i].position, released[i].position);
  // Rayleigh mean = sigma * sqrt(pi/2) ~ 125 m.
  EXPECT_NEAR(total / 400.0, 125.0, 20.0);
  EXPECT_THROW(GaussianPerturbationDefense(0.0), util::ContractViolation);
}

TEST(GaussianPerturbationDefense, DeterministicGivenRngSeed) {
  const auto requested = walk();
  const GaussianPerturbationDefense defense(50.0);
  stats::Rng a(9);
  stats::Rng b(9);
  EXPECT_EQ(defense.release(requested, a), defense.release(requested, b));
}

TEST(SpatialCloakingDefense, CellGrowsUntilKAnchors) {
  // Ten homes within ~40 m of a dense spot: a small cell reaches k=5 after
  // at most a couple of ladder doublings (grid alignment can split the
  // cluster at first); a lone position 5 km away needs a much larger cell.
  const geo::LatLon dense = geo::destination(kAnchor, 45.0, 800.0);
  std::vector<geo::LatLon> anchors;
  for (int i = 0; i < 10; ++i)
    anchors.push_back(geo::destination(dense, 36.0 * i, 40.0));
  const SpatialCloakingDefense defense(250.0, 5, anchors, kAnchor);
  EXPECT_LE(defense.cell_for(dense), 1000.0);
  const geo::LatLon lonely = geo::destination(dense, 90.0, 5000.0);
  EXPECT_GT(defense.cell_for(lonely), 1000.0);
  EXPECT_EQ(defense.name(), "cloak-k5");
}

TEST(SpatialCloakingDefense, Preconditions) {
  std::vector<geo::LatLon> anchors{kAnchor};
  EXPECT_THROW(SpatialCloakingDefense(0.0, 5, anchors, kAnchor),
               util::ContractViolation);
  EXPECT_THROW(SpatialCloakingDefense(250.0, 0, anchors, kAnchor),
               util::ContractViolation);
  EXPECT_THROW(SpatialCloakingDefense(250.0, 5, {}, kAnchor),
               util::ContractViolation);
}

TEST(ThrottleDefense, EnforcesMinimumSpacing) {
  stats::Rng rng(1);
  const auto requested = walk(100, 5);  // Every 5 s.
  const ThrottleDefense defense(60);
  const auto released = defense.release(requested, rng);
  ASSERT_FALSE(released.empty());
  EXPECT_LT(released.size(), requested.size() / 10 + 2);
  for (std::size_t i = 1; i < released.size(); ++i)
    EXPECT_GE(released[i].timestamp_s - released[i - 1].timestamp_s, 60);
  EXPECT_THROW(ThrottleDefense(0), util::ContractViolation);
}

TEST(PlaceSuppressionDefense, DropsFixesNearProtectedPlaces) {
  stats::Rng rng(1);
  const auto requested = walk(50);  // 0..490 m east.
  const PlaceSuppressionDefense defense({kAnchor}, 155.0);
  const auto released = defense.release(requested, rng);
  // Fixes within 155 m of the anchor (indices 0..15, at 0..150 m) are gone.
  ASSERT_FALSE(released.empty());
  for (const auto& point : released)
    EXPECT_GT(geo::equirectangular_m(point.position, kAnchor), 155.0);
  EXPECT_EQ(released.size(), 34u);
  EXPECT_THROW(PlaceSuppressionDefense({kAnchor}, 0.0), util::ContractViolation);
}

TEST(StandardSuite, ContainsExpectedDefenses) {
  const auto suite = standard_suite(kAnchor, {kAnchor});
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite.front()->name(), "none");
  // All defenses runnable on an empty stream.
  stats::Rng rng(1);
  for (const auto& defense : suite)
    EXPECT_TRUE(defense->release({}, rng).empty()) << defense->name();
  EXPECT_THROW(standard_suite(kAnchor, {}), util::ContractViolation);
}

class DefenseTimestampInvariant : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DefenseTimestampInvariant, NeverReordersTime) {
  // Property: every defense in the suite preserves temporal order and only
  // ever releases timestamps that were requested.
  const auto suite = standard_suite(kAnchor, {kAnchor});
  const auto& defense = suite[GetParam()];
  stats::Rng rng(5);
  const auto requested = walk(200, 3);
  const auto released = defense->release(requested, rng);
  for (std::size_t i = 1; i < released.size(); ++i)
    EXPECT_LE(released[i - 1].timestamp_s, released[i].timestamp_s) << defense->name();
  for (const auto& point : released) {
    bool found = false;
    for (const auto& original : requested)
      if (original.timestamp_s == point.timestamp_s) {
        found = true;
        break;
      }
    EXPECT_TRUE(found) << defense->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, DefenseTimestampInvariant,
                         ::testing::Range<std::size_t>(0, 8));

}  // namespace
}  // namespace locpriv::lppm
