#include "market/study.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/logging.hpp"

namespace locpriv::market {

namespace {

// Maps an observed provider set to its Table I column, or -1 if the set
// matches no canonical combination.
int combo_index_of(std::vector<android::LocationProvider> providers) {
  std::sort(providers.begin(), providers.end());
  providers.erase(std::unique(providers.begin(), providers.end()), providers.end());
  for (int combo = 0; combo < kProviderComboCount; ++combo) {
    auto canonical = provider_combo(combo);
    std::sort(canonical.begin(), canonical.end());
    if (canonical == providers) return combo;
  }
  return -1;
}

int claim_row_of(const std::string& claim) {
  if (claim == "Fine") return 0;
  if (claim == "Coarse") return 1;
  if (claim == "Fine & Coarse") return 2;
  return -1;
}

}  // namespace

MarketReport run_market_study(const Catalog& catalog, std::uint64_t device_seed,
                              std::int64_t background_limits_s) {
  MarketReport report;
  report.total_apps = static_cast<int>(catalog.size());

  // Stage 1: static manifest analysis over every apk.
  for (const AppSpec& app : catalog) {
    StaticFinding finding = analyze_manifest(app);
    if (finding.declares_location) {
      ++report.declaring;
      if (finding.granularity_claim == "Fine") ++report.fine_only;
      else if (finding.granularity_claim == "Coarse") ++report.coarse_only;
      else ++report.both;
    }
    report.static_findings.push_back(std::move(finding));
  }

  // Stage 2: dynamic testing of every location-declaring app.
  DynamicTester tester(device_seed, background_limits_s);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const StaticFinding& finding = report.static_findings[i];
    if (!finding.declares_location) continue;
    DynamicObservation observation = tester.test(catalog[i]);
    if (observation.functions) {
      ++report.functional;
      if (observation.auto_start) ++report.functional_auto;
    }
    if (observation.background_access) {
      ++report.background;
      if (observation.auto_start) ++report.background_auto;
      if (finding.granularity_claim == "Coarse") ++report.background_claim_coarse;
      else ++report.background_claim_fine;
      if (observation.uses_precise) ++report.background_precise;
      else if (finding.granularity_claim != "Coarse")
        ++report.background_coarse_despite_fine;

      const int row = claim_row_of(finding.granularity_claim);
      const int combo = combo_index_of(observation.background_providers);
      LOCPRIV_ENSURE(row >= 0);
      if (combo >= 0)
        ++report.provider_matrix[static_cast<std::size_t>(row)]
                                [static_cast<std::size_t>(combo)];
      report.background_intervals.push_back(observation.background_interval_s);
    }
    report.dynamic_observations.push_back(std::move(observation));
  }

  LOCPRIV_LOG(kInfo, "market") << "study complete: " << report.declaring
                               << " declaring, " << report.functional
                               << " functional, " << report.background
                               << " background";
  return report;
}

}  // namespace locpriv::market
