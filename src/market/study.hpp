// The full market study: static stage over all 2,800 apps, dynamic stage
// over the location-declaring ones, aggregated into the numbers the paper's
// Section III reports (headline statistics, Table I, Figure 1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "market/analysis.hpp"
#include "market/catalog.hpp"

namespace locpriv::market {

/// Aggregated results of the measurement campaign.
struct MarketReport {
  // Static stage.
  int total_apps = 0;
  int declaring = 0;
  int fine_only = 0;
  int coarse_only = 0;
  int both = 0;

  // Dynamic stage.
  int functional = 0;        ///< Access location when operated (paper: 528).
  int functional_auto = 0;   ///< ... right after launch (paper: 393).
  int background = 0;        ///< Access location in background (paper: 102).
  int background_auto = 0;   ///< Background + auto start (paper: 85).

  int background_claim_fine = 0;    ///< Paper: 96 claim fine (18 fine-only + 78 both).
  int background_claim_coarse = 0;  ///< Paper: 6.
  int background_precise = 0;       ///< Use precise location (paper: 68).
  int background_coarse_despite_fine = 0;  ///< Claim fine, use coarse (paper: 28).

  /// Table I: [granularity row][provider combo] counts over background apps.
  std::array<std::array<int, kProviderComboCount>, kGranularityClaimCount>
      provider_matrix{};

  /// Background request intervals (seconds), one per background app —
  /// Figure 1's sample.
  std::vector<std::int64_t> background_intervals;

  /// Per-app observations (kept for downstream analyses / tests).
  std::vector<StaticFinding> static_findings;
  std::vector<DynamicObservation> dynamic_observations;
};

/// Runs the two-stage measurement over `catalog` on a simulated device.
/// `background_limits_s` > 0 runs the dynamic stage on a device enforcing
/// Android 8-style background throttling at that interval (0 = the paper's
/// Android 4.4 behaviour).
MarketReport run_market_study(const Catalog& catalog, std::uint64_t device_seed,
                              std::int64_t background_limits_s = 0);

}  // namespace locpriv::market
