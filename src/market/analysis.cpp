#include "market/analysis.hpp"

#include <algorithm>

#include "android/dumpsys.hpp"
#include "util/expect.hpp"

namespace locpriv::market {

using android::DumpsysRequest;
using android::LocationProvider;

StaticFinding analyze_manifest(const AppSpec& app) {
  StaticFinding finding;
  finding.package = app.manifest.package_name;
  finding.declares_location = app.manifest.declares_location();
  finding.granularity_claim = app.manifest.declared_granularity();
  finding.has_service = app.manifest.declares_service;
  return finding;
}

DynamicTester::DynamicTester(std::uint64_t device_seed,
                             std::int64_t background_limits_s)
    : device_(device_seed, geo::LatLon{39.9042, 116.4074}) {
  if (background_limits_s > 0)
    device_.enable_background_location_limits(background_limits_s);
}

namespace {

// Requests belonging to `package` in a parsed dumpsys report.
std::vector<DumpsysRequest> requests_of(const std::vector<DumpsysRequest>& all,
                                        const std::string& package) {
  std::vector<DumpsysRequest> mine;
  for (const auto& request : all)
    if (request.package == package) mine.push_back(request);
  return mine;
}

std::vector<DumpsysRequest> snapshot(android::DeviceSimulator& device,
                                     const std::string& package) {
  const std::string report =
      android::dumpsys_location_report(device.location_manager(), device.now_s());
  return requests_of(android::parse_dumpsys_location(report), package);
}

}  // namespace

DynamicObservation DynamicTester::test(const AppSpec& app) {
  DynamicObservation observation;
  observation.package = app.package;

  device_.install(app.manifest, app.behavior);
  device_.location_manager().clear_delivery_log();

  // Launch and let it settle for a couple of seconds.
  device_.launch(app.package);
  device_.advance(2);
  auto requests = snapshot(device_, app.package);
  observation.auto_start = !requests.empty();

  // If nothing registered yet, operate the app like a normal user would.
  if (requests.empty()) {
    device_.trigger_location_use(app.package);
    device_.advance(2);
    requests = snapshot(device_, app.package);
  }
  observation.functions = !requests.empty();

  // Home button; verify via dumpsys whether requests survive in background.
  device_.move_to_background(app.package);
  device_.advance(3);
  const auto background_requests = snapshot(device_, app.package);
  observation.background_access = !background_requests.empty();
  if (observation.background_access) {
    observation.background_interval_s = background_requests.front().interval_s;
    for (const auto& request : background_requests) {
      observation.background_providers.push_back(request.provider);
      observation.background_interval_s =
          std::min(observation.background_interval_s, request.interval_s);
      if (android::provider_yields_fine(request.provider, request.granularity))
        observation.uses_precise = true;
    }
    // Observe long enough to witness at least one more delivery for fast
    // requesters (pure evidence gathering; the interval itself comes from
    // dumpsys, as in the paper).
    device_.advance(std::min<std::int64_t>(observation.background_interval_s, 30));
  }

  for (const auto& delivery : device_.location_manager().delivery_log())
    if (delivery.package == app.package) ++observation.deliveries;

  device_.close(app.package);
  device_.uninstall(app.package);
  return observation;
}

}  // namespace locpriv::market
