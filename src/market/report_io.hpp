// CSV export of market-study results, for spreadsheet/plotting consumers of
// the CLI (`locpriv market-study --csv ...`).
#pragma once

#include <iosfwd>

#include "market/study.hpp"

namespace locpriv::market {

/// One row per dynamically tested app: package, declared granularity,
/// functions, auto_start, background, providers, interval_s, deliveries.
void write_observations_csv(std::ostream& out, const MarketReport& report);

/// One row per headline statistic: name, paper value, measured value.
void write_summary_csv(std::ostream& out, const MarketReport& report);

}  // namespace locpriv::market
