// Calibrated catalog generation.
//
// The paper measures a fixed population (the top-100 apps of 28 Google Play
// categories in early 2016); we cannot download it, so we synthesise a
// population whose ground-truth marginals equal the paper's reported
// statistics, then *re-measure* them through the same static + dynamic
// pipeline the paper used. Calibration uses exact quotas (deterministically
// shuffled), so every reported headline number is reproduced by the
// pipeline rather than merely asserted.
#pragma once

#include <array>
#include <cstdint>

#include "market/app_spec.hpp"

namespace locpriv::market {

/// The provider combinations of Table I, in the paper's column order.
inline constexpr int kProviderComboCount = 8;

/// Providers of Table I column `combo` in [0, 8).
std::vector<android::LocationProvider> provider_combo(int combo);

/// Table I column label of `combo` ("gps", "gps network", "fused network"...).
std::string provider_combo_name(int combo);

/// Declared-granularity rows of Table I.
enum class GranularityClaim { kFineOnly, kCoarseOnly, kBoth };
inline constexpr int kGranularityClaimCount = 3;
std::string granularity_claim_name(GranularityClaim claim);

/// Calibration targets; defaults are the paper's Section III numbers.
struct CalibrationTargets {
  int total_apps = 2800;          ///< 28 categories x top 100.
  int declaring = 1137;           ///< Declare >= 1 location permission.
  int fine_only = 193;            ///< 17 % of 1,137.
  int coarse_only = 182;          ///< 16 % of 1,137.
  int functional = 528;           ///< Actually access location when run.
  int functional_auto_start = 393;///< Request right after launch.
  int background = 102;           ///< Keep accessing in background.
  int background_auto_start = 85; ///< Background apps that also auto-start.

  /// Table I: per (granularity row, provider combo) counts for the 102
  /// background apps. Rows: fine, coarse, fine&coarse; columns as
  /// provider_combo(). Row sums must be 18 / 6 / 78.
  std::array<std::array<int, kProviderComboCount>, kGranularityClaimCount>
      background_provider_matrix = {{
          {7, 3, 4, 2, 0, 1, 1, 0},
          {0, 0, 6, 0, 0, 0, 0, 0},
          {32, 9, 7, 14, 5, 4, 6, 1},
      }};

  /// Figure 1 interval bands for the 102 background apps: counts whose
  /// request interval falls in (0,10], (10,60], (60,600], (600,7200]
  /// seconds. Chosen so the CDF passes through the paper's 57.8 % / 68.6 %
  /// / 83.8 % points; exactly one app sits at the 7,200 s maximum.
  std::array<int, 4> interval_band_counts = {59, 11, 15, 17};
};

/// Catalog generation parameters.
struct CatalogConfig {
  std::uint64_t seed = 20170301;
  CalibrationTargets targets;
};

/// Generates the market corpus. Throws ContractViolation if the targets are
/// internally inconsistent (e.g. Table I rows not summing to the background
/// count).
Catalog generate_catalog(const CatalogConfig& config);

}  // namespace locpriv::market
