// One app in the synthetic market: its manifest (what static analysis sees)
// plus its true runtime behaviour (what dynamic testing uncovers). The
// measurement pipeline never reads `behavior` directly — it installs the app
// on the device simulator and observes.
#pragma once

#include <string>
#include <vector>

#include "android/device.hpp"
#include "android/permissions.hpp"

namespace locpriv::market {

/// A catalog entry.
struct AppSpec {
  std::string package;           ///< "com.<category>.appNNN".
  int category = 0;              ///< Index into the category table.
  int rank = 0;                  ///< Popularity rank within the category (0 = top).
  android::AndroidManifest manifest;
  android::AppBehavior behavior;
};

/// The whole downloaded corpus (2,800 apps).
using Catalog = std::vector<AppSpec>;

}  // namespace locpriv::market
