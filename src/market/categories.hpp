// The 28 Google Play categories the paper crawls (top 100 apps each), with
// per-category propensities to request location used by the catalog
// generator. Propensities are our modelling choice (the paper does not
// report a per-category breakdown); only their normalised total — the
// 1,137-of-2,800 declaring apps — is calibrated to the paper.
#pragma once

#include <string_view>
#include <vector>

namespace locpriv::market {

/// Number of market categories (paper: 28).
inline constexpr int kCategoryCount = 28;

/// Display name of category `index` in [0, 28).
std::string_view category_name(int index);

/// Package-name slug of category `index` ("travel_local", ...).
std::string_view category_slug(int index);

/// Relative propensity of apps in category `index` to declare a location
/// permission (weather/travel high, comics low). Strictly positive.
double category_location_propensity(int index);

/// Splits `total` declaring-app slots across categories proportionally to
/// propensity with a per-category cap of `per_category` apps, using the
/// largest-remainder method. The result sums exactly to `total`.
/// Preconditions: 0 <= total <= 28 * per_category, per_category > 0.
std::vector<int> allocate_declaring_quota(int total, int per_category);

}  // namespace locpriv::market
