// The two measurement stages of the paper's Section III pipeline.
//
// Static stage ("We extract the manifest file from the apk file by using
// the Apktool"): reads only the manifest — never the behaviour — and
// reports the declared permissions.
//
// Dynamic stage ("we manually install and operate them one by one on a real
// mobile device... launch the app, try to trigger location access, move the
// app to background, and finally close it", observed via dumpsys): drives
// the app through the same script on the DeviceSimulator and derives every
// observation from parsed dumpsys reports and the framework delivery log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "market/app_spec.hpp"

namespace locpriv::market {

/// What static manifest analysis yields for one apk.
struct StaticFinding {
  std::string package;
  bool declares_location = false;
  std::string granularity_claim;  ///< "Fine", "Coarse", "Fine & Coarse", "None".
  bool has_service = false;
};

/// Runs the Apktool-equivalent manifest extraction.
StaticFinding analyze_manifest(const AppSpec& app);

/// What one dynamic test session yields.
struct DynamicObservation {
  std::string package;
  bool functions = false;        ///< Registered a location request when operated.
  bool auto_start = false;       ///< Registered right after launch, untriggered.
  bool background_access = false;///< Still registered after moving to background.
  /// Providers seen registered while backgrounded (empty unless
  /// background_access).
  std::vector<android::LocationProvider> background_providers;
  /// Smallest requested interval among the background registrations.
  std::int64_t background_interval_s = 0;
  /// Whether any background registration can yield precise fixes.
  bool uses_precise = false;
  /// Fixes delivered to the app during the whole session (evidence that the
  /// registrations are live).
  std::size_t deliveries = 0;
};

/// Drives apps through the launch / trigger / background / close script on a
/// simulated device and reports what dumpsys shows at each step.
class DynamicTester {
 public:
  /// `background_limits_s` > 0 enables the Android 8-style background
  /// throttling policy on the test device (see
  /// DeviceSimulator::enable_background_location_limits); 0 reproduces the
  /// paper's Android 4.4 testbed.
  explicit DynamicTester(std::uint64_t device_seed,
                         std::int64_t background_limits_s = 0);

  /// Tests one app; the device is left clean (app uninstalled) afterwards.
  DynamicObservation test(const AppSpec& app);

 private:
  android::DeviceSimulator device_;
};

}  // namespace locpriv::market
