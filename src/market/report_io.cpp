#include "market/report_io.hpp"

#include <map>
#include <ostream>

#include "android/location.hpp"
#include "util/csv.hpp"

namespace locpriv::market {

void write_observations_csv(std::ostream& out, const MarketReport& report) {
  util::CsvWriter writer(out);
  writer.write_row({"package", "granularity_claim", "functions", "auto_start",
                    "background", "providers", "background_interval_s",
                    "uses_precise", "deliveries"});
  // Static findings are indexed over the whole catalog; dynamic
  // observations only over declaring apps. Join on package.
  std::map<std::string, const StaticFinding*> by_package;
  for (const auto& finding : report.static_findings)
    by_package[finding.package] = &finding;
  for (const auto& observation : report.dynamic_observations) {
    const auto it = by_package.find(observation.package);
    const std::string claim =
        it == by_package.end() ? "?" : it->second->granularity_claim;
    writer.write_row(
        {observation.package, claim, observation.functions ? "1" : "0",
         observation.auto_start ? "1" : "0", observation.background_access ? "1" : "0",
         observation.background_providers.empty()
             ? ""
             : android::provider_combo_label(observation.background_providers),
         std::to_string(observation.background_interval_s),
         observation.uses_precise ? "1" : "0", std::to_string(observation.deliveries)});
  }
}

void write_summary_csv(std::ostream& out, const MarketReport& report) {
  util::CsvWriter writer(out);
  writer.write_row({"statistic", "paper", "measured"});
  const auto row = [&](const std::string& name, const std::string& paper,
                       long long measured) {
    writer.write_row({name, paper, std::to_string(measured)});
  };
  row("total_apps", "2800", report.total_apps);
  row("declaring", "1137", report.declaring);
  row("fine_only", "193", report.fine_only);
  row("coarse_only", "182", report.coarse_only);
  row("both", "762", report.both);
  row("functional", "528", report.functional);
  row("functional_auto", "393", report.functional_auto);
  row("background", "102", report.background);
  row("background_auto", "85", report.background_auto);
  row("background_claim_fine", "96", report.background_claim_fine);
  row("background_claim_coarse", "6", report.background_claim_coarse);
  row("background_precise", "68", report.background_precise);
  row("background_coarse_despite_fine", "28", report.background_coarse_despite_fine);
}

}  // namespace locpriv::market
