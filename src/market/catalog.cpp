#include "market/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "market/categories.hpp"
#include "stats/rng.hpp"
#include "util/expect.hpp"

namespace locpriv::market {

using android::Granularity;
using android::LocationProvider;
using android::Permission;

std::vector<LocationProvider> provider_combo(int combo) {
  switch (combo) {
    case 0: return {LocationProvider::kGps};
    case 1: return {LocationProvider::kNetwork};
    case 2: return {LocationProvider::kPassive};
    case 3: return {LocationProvider::kGps, LocationProvider::kNetwork};
    case 4: return {LocationProvider::kGps, LocationProvider::kPassive};
    case 5: return {LocationProvider::kNetwork, LocationProvider::kPassive};
    case 6:
      return {LocationProvider::kGps, LocationProvider::kNetwork,
              LocationProvider::kPassive};
    case 7: return {LocationProvider::kFused, LocationProvider::kNetwork};
    default: break;
  }
  LOCPRIV_EXPECT(false && "combo out of range");
  return {};
}

std::string provider_combo_name(int combo) {
  return android::provider_combo_label(provider_combo(combo));
}

std::string granularity_claim_name(GranularityClaim claim) {
  switch (claim) {
    case GranularityClaim::kFineOnly: return "Fine";
    case GranularityClaim::kCoarseOnly: return "Coarse";
    case GranularityClaim::kBoth: return "Fine & Coarse";
  }
  return "?";
}

namespace {

// Representative interval values (seconds) inside each Figure 1 band.
const std::vector<std::int64_t> kBandValues[4] = {
    {1, 2, 3, 5, 8, 10},
    {15, 20, 30, 45, 60},
    {90, 120, 180, 300, 600},
    {900, 1200, 1800, 3600},
};

std::vector<Permission> permissions_for(GranularityClaim claim) {
  switch (claim) {
    case GranularityClaim::kFineOnly: return {Permission::kAccessFineLocation};
    case GranularityClaim::kCoarseOnly: return {Permission::kAccessCoarseLocation};
    case GranularityClaim::kBoth:
      return {Permission::kAccessFineLocation, Permission::kAccessCoarseLocation};
  }
  return {};
}

// Sanity-checks the calibration targets before generation.
void validate_targets(const CalibrationTargets& t) {
  LOCPRIV_EXPECT(t.total_apps == kCategoryCount * 100);
  LOCPRIV_EXPECT(t.declaring > 0 && t.declaring <= t.total_apps);
  LOCPRIV_EXPECT(t.fine_only + t.coarse_only <= t.declaring);
  LOCPRIV_EXPECT(t.functional <= t.declaring);
  LOCPRIV_EXPECT(t.functional_auto_start <= t.functional);
  LOCPRIV_EXPECT(t.background <= t.functional);
  LOCPRIV_EXPECT(t.background_auto_start <= t.background);

  int matrix_total = 0;
  for (const auto& row : t.background_provider_matrix)
    for (const int cell : row) {
      LOCPRIV_EXPECT(cell >= 0);
      matrix_total += cell;
    }
  LOCPRIV_EXPECT(matrix_total == t.background);

  int band_total = 0;
  for (const int band : t.interval_band_counts) band_total += band;
  LOCPRIV_EXPECT(band_total == t.background);

  // Permission consistency: gps and fine-fused combos are impossible for
  // coarse-only apps.
  const auto& coarse_row = t.background_provider_matrix[1];
  LOCPRIV_EXPECT(coarse_row[0] == 0 && coarse_row[3] == 0 && coarse_row[4] == 0 &&
                 coarse_row[6] == 0 && coarse_row[7] == 0);
}

std::string make_package(int category, int rank) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "com.%s.app%03d",
                std::string(category_slug(category)).c_str(), rank);
  return buffer;
}

}  // namespace

Catalog generate_catalog(const CatalogConfig& config) {
  const CalibrationTargets& targets = config.targets;
  validate_targets(targets);
  stats::Rng rng(config.seed);

  // 1. Build the 2,800 skeletons.
  Catalog catalog;
  catalog.reserve(static_cast<std::size_t>(targets.total_apps));
  for (int category = 0; category < kCategoryCount; ++category) {
    for (int rank = 0; rank < 100; ++rank) {
      AppSpec app;
      app.package = make_package(category, rank);
      app.category = category;
      app.rank = rank;
      app.manifest.package_name = app.package;
      catalog.push_back(std::move(app));
    }
  }

  // 2. Pick which apps declare location, honouring per-category quotas.
  const std::vector<int> quota = allocate_declaring_quota(targets.declaring, 100);
  std::vector<std::size_t> declaring_indices;
  for (int category = 0; category < kCategoryCount; ++category) {
    std::vector<std::size_t> ranks(100);
    for (std::size_t r = 0; r < 100; ++r)
      ranks[r] = static_cast<std::size_t>(category) * 100 + r;
    rng.shuffle(ranks);
    for (int k = 0; k < quota[static_cast<std::size_t>(category)]; ++k)
      declaring_indices.push_back(ranks[static_cast<std::size_t>(k)]);
  }
  LOCPRIV_ENSURE(static_cast<int>(declaring_indices.size()) == targets.declaring);

  // 3. Granularity claims: fine-only / coarse-only / both quotas.
  rng.shuffle(declaring_indices);
  std::vector<std::size_t> fine_pool;
  std::vector<std::size_t> coarse_pool;
  std::vector<std::size_t> both_pool;
  for (std::size_t i = 0; i < declaring_indices.size(); ++i) {
    const std::size_t app = declaring_indices[i];
    GranularityClaim claim;
    if (static_cast<int>(i) < targets.fine_only) {
      claim = GranularityClaim::kFineOnly;
      fine_pool.push_back(app);
    } else if (static_cast<int>(i) < targets.fine_only + targets.coarse_only) {
      claim = GranularityClaim::kCoarseOnly;
      coarse_pool.push_back(app);
    } else {
      claim = GranularityClaim::kBoth;
      both_pool.push_back(app);
    }
    catalog[app].manifest.uses_permissions = permissions_for(claim);
  }

  // 4. Background apps: Table I fixes how many come from each claim row.
  const auto row_sum = [&](int row) {
    int sum = 0;
    for (const int cell : targets.background_provider_matrix[static_cast<std::size_t>(row)])
      sum += cell;
    return sum;
  };
  std::vector<std::size_t> background_apps;
  std::vector<int> background_rows;  // Parallel: Table I row per app.
  const std::vector<std::size_t>* pools[3] = {&fine_pool, &coarse_pool, &both_pool};
  std::size_t pool_taken[3] = {0, 0, 0};
  for (int row = 0; row < kGranularityClaimCount; ++row) {
    const int needed = row_sum(row);
    LOCPRIV_EXPECT(static_cast<std::size_t>(needed) <= pools[row]->size());
    for (int k = 0; k < needed; ++k) {
      background_apps.push_back((*pools[row])[pool_taken[row]++]);
      background_rows.push_back(row);
    }
  }
  LOCPRIV_ENSURE(static_cast<int>(background_apps.size()) == targets.background);

  // 5. Provider combos for background apps, exactly per Table I.
  {
    std::size_t cursor = 0;
    for (int row = 0; row < kGranularityClaimCount; ++row) {
      for (int combo = 0; combo < kProviderComboCount; ++combo) {
        const int count =
            targets.background_provider_matrix[static_cast<std::size_t>(row)]
                                              [static_cast<std::size_t>(combo)];
        for (int k = 0; k < count; ++k) {
          AppSpec& app = catalog[background_apps[cursor]];
          LOCPRIV_ENSURE(background_rows[cursor] == row);
          app.behavior.uses_location = true;
          app.behavior.continues_in_background = true;
          app.behavior.providers = provider_combo(combo);
          app.behavior.requested_granularity = row == 1 /* coarse-only */
                                                   ? Granularity::kCoarse
                                                   : Granularity::kFine;
          ++cursor;
        }
      }
    }
    LOCPRIV_ENSURE(cursor == background_apps.size());
  }

  // 6. Background request intervals per the Figure 1 bands; the slowest
  //    band contains exactly one app at the paper's 7,200 s maximum.
  {
    std::vector<std::size_t> order = background_apps;
    rng.shuffle(order);
    std::size_t cursor = 0;
    for (int band = 0; band < 4; ++band) {
      for (int k = 0; k < targets.interval_band_counts[static_cast<std::size_t>(band)];
           ++k) {
        AppSpec& app = catalog[order[cursor++]];
        const auto& values = kBandValues[band];
        app.behavior.request_interval_s =
            values[static_cast<std::size_t>(rng.next_below(values.size()))];
      }
    }
    // Force the single 7,200 s straggler (last assigned app of band 3).
    catalog[order[cursor - 1]].behavior.request_interval_s = 7200;
    LOCPRIV_ENSURE(cursor == order.size());
  }

  // 7. Background auto-start: 85 of the 102.
  {
    std::vector<std::size_t> order = background_apps;
    rng.shuffle(order);
    for (int k = 0; k < targets.background_auto_start; ++k)
      catalog[order[static_cast<std::size_t>(k)]].behavior.auto_start_on_launch = true;
  }

  // 8. Foreground-only functional apps: the remaining 426 of the 528,
  //    drawn from declaring apps not already background.
  {
    std::vector<std::size_t> candidates;
    for (const std::size_t app : declaring_indices) {
      if (std::find(background_apps.begin(), background_apps.end(), app) !=
          background_apps.end())
        continue;
      candidates.push_back(app);
    }
    rng.shuffle(candidates);
    const int foreground_functional = targets.functional - targets.background;
    const int foreground_auto =
        targets.functional_auto_start - targets.background_auto_start;
    LOCPRIV_EXPECT(static_cast<int>(candidates.size()) >= foreground_functional);
    for (int k = 0; k < foreground_functional; ++k) {
      AppSpec& app = catalog[candidates[static_cast<std::size_t>(k)]];
      app.behavior.uses_location = true;
      app.behavior.continues_in_background = false;
      app.behavior.auto_start_on_launch = k < foreground_auto;
      app.behavior.request_interval_s = rng.uniform_int(5, 60);
      const bool fine_capable = app.manifest.declared_granularity() != "Coarse";
      app.behavior.requested_granularity =
          fine_capable ? Granularity::kFine : Granularity::kCoarse;
      // Foreground apps favour one-shot-ish gps/network/fused usage.
      const double roll = rng.uniform01();
      if (!fine_capable) {
        app.behavior.providers = {LocationProvider::kNetwork};
      } else if (roll < 0.40) {
        app.behavior.providers = {LocationProvider::kGps};
      } else if (roll < 0.65) {
        app.behavior.providers = {LocationProvider::kNetwork};
      } else if (roll < 0.85) {
        app.behavior.providers = {LocationProvider::kFused, LocationProvider::kNetwork};
      } else {
        app.behavior.providers = {LocationProvider::kGps, LocationProvider::kNetwork};
      }
    }
  }

  // 9. Manifest services/receivers: every background app has a service;
  //    some others do too (services are common and not location-specific).
  for (AppSpec& app : catalog) {
    if (app.behavior.continues_in_background) app.manifest.declares_service = true;
    else app.manifest.declares_service = rng.bernoulli(0.35);
    app.manifest.declares_receiver = rng.bernoulli(0.25);
  }

  return catalog;
}

}  // namespace locpriv::market
