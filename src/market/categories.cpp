#include "market/categories.hpp"

#include <algorithm>
#include <numeric>

#include "util/expect.hpp"

namespace locpriv::market {

namespace {

struct CategoryInfo {
  std::string_view name;
  std::string_view slug;
  double propensity;
};

// Google Play taxonomy circa the paper's crawl.
constexpr CategoryInfo kCategories[kCategoryCount] = {
    {"Books & Reference", "books_reference", 0.15},
    {"Business", "business", 0.40},
    {"Comics", "comics", 0.08},
    {"Communication", "communication", 0.50},
    {"Education", "education", 0.20},
    {"Entertainment", "entertainment", 0.30},
    {"Finance", "finance", 0.45},
    {"Health & Fitness", "health_fitness", 0.55},
    {"Libraries & Demo", "libraries_demo", 0.15},
    {"Lifestyle", "lifestyle", 0.55},
    {"Live Wallpaper", "live_wallpaper", 0.15},
    {"Media & Video", "media_video", 0.25},
    {"Medical", "medical", 0.40},
    {"Music & Audio", "music_audio", 0.25},
    {"News & Magazines", "news_magazines", 0.55},
    {"Personalization", "personalization", 0.15},
    {"Photography", "photography", 0.50},
    {"Productivity", "productivity", 0.35},
    {"Shopping", "shopping", 0.60},
    {"Social", "social", 0.65},
    {"Sports", "sports", 0.45},
    {"Tools", "tools", 0.45},
    {"Transportation", "transportation", 0.90},
    {"Travel & Local", "travel_local", 0.95},
    {"Weather", "weather", 0.95},
    {"Widgets", "widgets", 0.30},
    {"Games", "games", 0.25},
    {"Family", "family", 0.20},
};

}  // namespace

std::string_view category_name(int index) {
  LOCPRIV_EXPECT(index >= 0 && index < kCategoryCount);
  return kCategories[index].name;
}

std::string_view category_slug(int index) {
  LOCPRIV_EXPECT(index >= 0 && index < kCategoryCount);
  return kCategories[index].slug;
}

double category_location_propensity(int index) {
  LOCPRIV_EXPECT(index >= 0 && index < kCategoryCount);
  return kCategories[index].propensity;
}

std::vector<int> allocate_declaring_quota(int total, int per_category) {
  LOCPRIV_EXPECT(per_category > 0);
  LOCPRIV_EXPECT(total >= 0 && total <= kCategoryCount * per_category);

  double propensity_sum = 0.0;
  for (const auto& category : kCategories) propensity_sum += category.propensity;

  // Ideal (real-valued) shares, capped at the category size.
  std::vector<double> ideal(kCategoryCount);
  std::vector<int> quota(kCategoryCount, 0);
  for (int i = 0; i < kCategoryCount; ++i)
    ideal[i] = std::min(static_cast<double>(per_category),
                        static_cast<double>(total) * kCategories[i].propensity /
                            propensity_sum);

  int assigned = 0;
  for (int i = 0; i < kCategoryCount; ++i) {
    quota[i] = static_cast<int>(ideal[i]);
    assigned += quota[i];
  }

  // Largest remainders get the leftover slots (respecting the cap).
  std::vector<int> order(kCategoryCount);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (ideal[a] - static_cast<int>(ideal[a])) >
           (ideal[b] - static_cast<int>(ideal[b]));
  });
  int remaining = total - assigned;
  for (int round = 0; remaining > 0; ++round) {
    bool progressed = false;
    for (const int i : order) {
      if (remaining == 0) break;
      if (quota[i] >= per_category) continue;
      ++quota[i];
      --remaining;
      progressed = true;
    }
    LOCPRIV_ENSURE(progressed);  // total <= capacity guarantees progress.
  }
  return quota;
}

}  // namespace locpriv::market
