#include "privacy/uniqueness.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace locpriv::privacy {

std::set<StPoint> quantize_trace(const std::vector<trace::TracePoint>& points,
                                 const RegionGrid& grid, int hour_bucket_h) {
  LOCPRIV_EXPECT(hour_bucket_h >= 1);
  std::set<StPoint> quantized;
  const std::int64_t bucket_s = static_cast<std::int64_t>(hour_bucket_h) * 3600;
  for (const auto& point : points)
    quantized.emplace(grid.region_of(point.position), point.timestamp_s / bucket_s);
  return quantized;
}

UnicityResult unicity(const std::vector<std::set<StPoint>>& corpus, int max_points,
                      int trials_per_user, stats::Rng& rng) {
  LOCPRIV_EXPECT(!corpus.empty());
  LOCPRIV_EXPECT(max_points >= 1);
  LOCPRIV_EXPECT(trials_per_user >= 1);

  UnicityResult result;
  result.trials_per_user = static_cast<std::size_t>(trials_per_user);
  result.unique_fraction.assign(static_cast<std::size_t>(max_points), 0.0);
  std::vector<std::size_t> trial_counts(static_cast<std::size_t>(max_points), 0);

  for (const auto& user_points : corpus) {
    if (static_cast<int>(user_points.size()) < max_points) continue;
    const std::vector<StPoint> pool(user_points.begin(), user_points.end());
    for (int p = 1; p <= max_points; ++p) {
      for (int trial = 0; trial < trials_per_user; ++trial) {
        // Draw p distinct points by partial shuffle of index positions.
        std::vector<std::size_t> indices(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) indices[i] = i;
        for (int k = 0; k < p; ++k) {
          const auto j = static_cast<std::size_t>(
              rng.uniform_int(static_cast<std::int64_t>(k),
                              static_cast<std::int64_t>(pool.size()) - 1));
          std::swap(indices[static_cast<std::size_t>(k)], indices[j]);
        }
        // Count corpus members containing every drawn point.
        std::size_t consistent = 0;
        for (const auto& other : corpus) {
          bool contains_all = true;
          for (int k = 0; k < p; ++k) {
            if (!other.contains(pool[indices[static_cast<std::size_t>(k)]])) {
              contains_all = false;
              break;
            }
          }
          if (contains_all && ++consistent > 1) break;
        }
        ++trial_counts[static_cast<std::size_t>(p - 1)];
        if (consistent == 1)
          result.unique_fraction[static_cast<std::size_t>(p - 1)] += 1.0;
      }
    }
  }
  for (std::size_t p = 0; p < result.unique_fraction.size(); ++p) {
    if (trial_counts[p] > 0)
      result.unique_fraction[p] /= static_cast<double>(trial_counts[p]);
  }
  return result;
}

}  // namespace locpriv::privacy
