// The two profile representations compared throughout the paper:
//   pattern 1: <region, visited times>            (prior work's profile)
//   pattern 2: <movement PoI_i -> PoI_j, times>   (this paper's profile)
// Both are sparse keyed histograms over 64-bit keys (region ids, or packed
// region transitions).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "poi/clustering.hpp"
#include "privacy/region.hpp"

namespace locpriv::privacy {

/// Sparse keyed histogram. Keys are RegionIds (pattern 1) or packed
/// transitions (pattern 2); values are visit / occurrence counts.
class PatternHistogram {
 public:
  PatternHistogram() = default;

  /// Adds `weight` to `key`'s count (weight > 0).
  void add(std::int64_t key, double weight = 1.0);

  /// Count for `key` (0 if absent).
  double count(std::int64_t key) const;

  /// Number of distinct keys.
  std::size_t key_count() const { return counts_.size(); }

  /// Sum of all counts.
  double total() const { return total_; }

  bool empty() const { return counts_.empty(); }

  const std::map<std::int64_t, double>& counts() const { return counts_; }

 private:
  std::map<std::int64_t, double> counts_;
  double total_ = 0.0;
};

/// Which profile representation a histogram encodes.
enum class Pattern {
  kVisits = 1,     ///< Pattern 1: <region, visited times>.
  kMovements = 2,  ///< Pattern 2: <region_i -> region_j, happen times>.
};

/// The chronological sequence of region ids visited, derived from extracted
/// PoIs (each visit contributes its PoI's region; consecutive repeats
/// collapse, since they mean the user never left the place).
std::vector<RegionId> region_sequence(const std::vector<poi::Poi>& pois,
                                      const RegionGrid& grid);

/// Pattern-1 histogram: one count per visit, keyed by the visited region.
PatternHistogram visit_histogram(const std::vector<poi::Poi>& pois,
                                 const RegionGrid& grid);

/// Pattern-2 histogram: one count per consecutive pair in the visit
/// sequence, keyed by the packed transition.
PatternHistogram movement_histogram(const std::vector<poi::Poi>& pois,
                                    const RegionGrid& grid);

/// Builds the histogram for the requested pattern.
PatternHistogram build_histogram(Pattern pattern, const std::vector<poi::Poi>& pois,
                                 const RegionGrid& grid);

}  // namespace locpriv::privacy
