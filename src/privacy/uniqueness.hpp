// Unicity of mobility traces (after de Montjoye et al., "Unique in the
// Crowd", the paper's [7]): how many random spatio-temporal points from a
// user's trace suffice to single them out of the whole corpus? The famous
// answer on real CDR data: four hourly-antenna points identify 95 % of
// people, and coarsening helps surprisingly little.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "privacy/region.hpp"
#include "stats/rng.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::privacy {

/// One spatio-temporal point: a region and an hour bucket (hours since the
/// Unix epoch divided by `hour_bucket`).
using StPoint = std::pair<RegionId, std::int64_t>;

/// Quantises a fix stream into its set of spatio-temporal points.
/// Precondition: hour_bucket_h >= 1.
std::set<StPoint> quantize_trace(const std::vector<trace::TracePoint>& points,
                                 const RegionGrid& grid, int hour_bucket_h);

/// Unicity estimate across a corpus.
struct UnicityResult {
  /// unique_fraction[p-1] = fraction of sampled (user, p-point) draws whose
  /// p spatio-temporal points match exactly one corpus member.
  std::vector<double> unique_fraction;
  std::size_t trials_per_user = 0;
};

/// For p = 1..max_points: draw `trials_per_user` random p-subsets of each
/// user's point set and check how many corpus members contain them all.
/// Users with fewer than max_points quantised points are skipped.
/// Preconditions: corpus non-empty, max_points >= 1, trials_per_user >= 1.
UnicityResult unicity(const std::vector<std::set<StPoint>>& corpus, int max_points,
                      int trials_per_user, stats::Rng& rng);

}  // namespace locpriv::privacy
