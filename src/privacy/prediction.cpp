#include "privacy/prediction.hpp"

namespace locpriv::privacy {

NextPlacePredictor::NextPlacePredictor(const PatternHistogram& movements) {
  for (const auto& [key, count] : movements.counts()) {
    RegionId from = 0;
    RegionId to = 0;
    unpack_transition(key, from, to);
    by_source_[from][to] += count;
    source_totals_[from] += count;
  }
}

bool NextPlacePredictor::predict(RegionId from, RegionId& next) const {
  const auto it = by_source_.find(from);
  if (it == by_source_.end()) return false;
  double best_count = -1.0;
  for (const auto& [to, count] : it->second) {
    // Strictly-greater keeps the lowest region id on ties (map order).
    if (count > best_count) {
      best_count = count;
      next = to;
    }
  }
  return true;
}

double NextPlacePredictor::transition_probability(RegionId from, RegionId to) const {
  const auto source = by_source_.find(from);
  if (source == by_source_.end()) return 0.0;
  const auto destination = source->second.find(to);
  if (destination == source->second.end()) return 0.0;
  return destination->second / source_totals_.at(from);
}

PredictionScore score_predictions(const NextPlacePredictor& predictor,
                                  const std::vector<RegionId>& held_out_sequence) {
  PredictionScore score;
  for (std::size_t i = 1; i < held_out_sequence.size(); ++i) {
    RegionId predicted = 0;
    if (!predictor.predict(held_out_sequence[i - 1], predicted)) {
      ++score.skipped;
      continue;
    }
    ++score.evaluated;
    if (predicted == held_out_sequence[i]) ++score.correct;
  }
  return score;
}

}  // namespace locpriv::privacy
