// Zang & Bolot's top-N location baseline ("Anonymization of location data
// does not work", MobiCom'11, the paper's [35]): a user is characterised by
// the set of their N most-visited regions. The paper builds on this result
// — top 2-3 locations already yield tiny anonymity sets — so the baseline
// belongs in the comparison next to pattern 1 and pattern 2.
#pragma once

#include <cstddef>
#include <vector>

#include "privacy/adversary.hpp"
#include "privacy/pattern_histogram.hpp"

namespace locpriv::privacy {

/// The `n` most-visited regions of a visit histogram, ties broken by
/// region id (deterministic). Fewer than `n` if the histogram has fewer
/// keys. Precondition: n >= 1.
std::vector<RegionId> top_regions(const PatternHistogram& visits, std::size_t n);

/// Identification by top-N equality: the anonymity set is every profile
/// whose top-N region *set* equals the observed one (order-insensitive,
/// matching Zang & Bolot's treatment).
class TopNIdentifier {
 public:
  /// Precomputes the top-N sets of all profiles. Preconditions: profiles
  /// non-empty, n >= 1.
  TopNIdentifier(const std::vector<UserProfileHistograms>& profiles, std::size_t n);

  std::size_t profile_count() const { return profile_tops_.size(); }
  std::size_t n() const { return n_; }

  /// Indices of profiles whose top-N set equals `observed_visits`'s.
  /// An observed histogram with fewer than N regions matches nothing (the
  /// adversary cannot form the quasi-identifier yet).
  std::vector<std::size_t> matches(const PatternHistogram& observed_visits) const;

  /// Degree of anonymity of the match set (uniform posterior): 1 when
  /// nothing matched, 0 when exactly one profile matched.
  double degree_of_anonymity(const PatternHistogram& observed_visits) const;

 private:
  std::vector<std::vector<RegionId>> profile_tops_;  // Sorted sets.
  std::size_t n_;
};

}  // namespace locpriv::privacy
