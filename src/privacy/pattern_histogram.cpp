#include "privacy/pattern_histogram.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace locpriv::privacy {

void PatternHistogram::add(std::int64_t key, double weight) {
  LOCPRIV_EXPECT(weight > 0.0);
  counts_[key] += weight;
  total_ += weight;
}

double PatternHistogram::count(std::int64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0.0 : it->second;
}

std::vector<RegionId> region_sequence(const std::vector<poi::Poi>& pois,
                                      const RegionGrid& grid) {
  // Chronological (enter time, region) events across all PoIs.
  std::vector<std::pair<std::int64_t, RegionId>> events;
  for (const auto& poi : pois) {
    const RegionId region = grid.region_of(poi.centroid);
    for (const auto& visit : poi.visits) events.emplace_back(visit.enter_s, region);
  }
  std::sort(events.begin(), events.end());
  std::vector<RegionId> sequence;
  for (const auto& [time, region] : events) {
    (void)time;
    if (sequence.empty() || sequence.back() != region) sequence.push_back(region);
  }
  return sequence;
}

PatternHistogram visit_histogram(const std::vector<poi::Poi>& pois,
                                 const RegionGrid& grid) {
  PatternHistogram histogram;
  for (const auto& poi : pois) {
    const RegionId region = grid.region_of(poi.centroid);
    for (std::size_t i = 0; i < poi.visit_count(); ++i) histogram.add(region);
  }
  return histogram;
}

PatternHistogram movement_histogram(const std::vector<poi::Poi>& pois,
                                    const RegionGrid& grid) {
  PatternHistogram histogram;
  const auto sequence = region_sequence(pois, grid);
  for (std::size_t i = 1; i < sequence.size(); ++i)
    histogram.add(pack_transition(sequence[i - 1], sequence[i]));
  return histogram;
}

PatternHistogram build_histogram(Pattern pattern, const std::vector<poi::Poi>& pois,
                                 const RegionGrid& grid) {
  return pattern == Pattern::kVisits ? visit_histogram(pois, grid)
                                     : movement_histogram(pois, grid);
}

}  // namespace locpriv::privacy
