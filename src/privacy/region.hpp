// Region discretisation.
//
// The paper's pattern 1 is the histogram <region, visited times> and
// pattern 2 is <movement pattern PoI_i -> PoI_j, happen times>. For the
// adversary to compare histograms *across* users (identification) the keys
// must live in a user-independent space, so places are keyed by the square
// grid cell containing them. Cells are sized so that the small jitter in
// extracted PoI centroids (GPS noise, partial visits) almost never moves a
// place across a cell boundary, while distinct city places fall in distinct
// cells.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geotree.hpp"
#include "geo/projection.hpp"

namespace locpriv::privacy {

/// Opaque id of a grid cell.
using RegionId = std::int64_t;

/// Maps coordinates to grid-cell ids within a local projection.
class RegionGrid {
 public:
  /// `cell_m` is the cell edge in meters (default 250 m: comfortably larger
  /// than PoI centroid jitter, smaller than the synthetic city's 500 m
  /// blocks). Precondition: cell_m > 0.
  RegionGrid(const geo::LatLon& anchor, double cell_m);

  /// Cell id containing `p`. Ids are stable across calls and unique per
  /// cell within +-4000 km of the anchor.
  RegionId region_of(const geo::LatLon& p) const;

  /// Center coordinate of a cell id (inverse of region_of up to the cell).
  geo::LatLon region_center(RegionId id) const;

  /// Original indices (ascending) of the indexed points that fall inside the
  /// region cell, resolved by cell-prefix matching against `tree` instead of
  /// per-point distance/containment tests: the region square maps to a
  /// lat/lon rectangle (the projection is linear), the tree narrows it to a
  /// handful of geohash cells, and only those candidates are confirmed with
  /// the exact cell arithmetic. Equivalent to points_in_region_scan.
  std::vector<std::uint32_t> points_in_region(const geo::GeoTree& tree,
                                              RegionId id) const;

  /// The O(n) full scan twin of points_in_region, kept as its equivalence
  /// oracle and as the "before" side of the BM_RegionContainment microbench.
  std::vector<std::uint32_t> points_in_region_scan(const std::vector<geo::LatLon>& points,
                                                   RegionId id) const;

  double cell_m() const { return cell_m_; }
  const geo::LocalProjection& projection() const { return projection_; }

 private:
  geo::LocalProjection projection_;
  double cell_m_;
};

/// Packs an ordered pair of regions (a movement pattern a -> b) into one
/// 64-bit key. Requires both ids to fit in 32 bits, which region_of
/// guarantees.
std::int64_t pack_transition(RegionId from, RegionId to);

/// Unpacks a movement-pattern key.
void unpack_transition(std::int64_t key, RegionId& from, RegionId& to);

}  // namespace locpriv::privacy
