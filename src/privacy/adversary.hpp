// The adversary: a third party holding profile histograms of N users who
// receives a stream of locations from an unknown user and tries to identify
// them (paper Section IV.B, Formulas 2-5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poi/clustering.hpp"
#include "privacy/matching.hpp"
#include "privacy/pattern_histogram.hpp"
#include "privacy/reconstruction.hpp"

namespace locpriv::privacy {

/// Profile of one known user, under both pattern representations.
struct UserProfileHistograms {
  std::string user_id;
  PatternHistogram visits;     ///< Pattern 1.
  PatternHistogram movements;  ///< Pattern 2.

  const PatternHistogram& histogram(Pattern pattern) const {
    return pattern == Pattern::kVisits ? visits : movements;
  }
};

/// How posterior weights are assigned to matching profiles.
enum class PosteriorWeighting {
  /// Paper Formula 2, literal: p_i proportional to chi_i^2 among matches.
  kChiSquare,
  /// Principled alternative (ablation): p_i proportional to 1 / (1 + chi_i^2),
  /// so better-fitting profiles get more mass.
  kInverseChiSquare,
};

/// Result of one identification attempt.
struct IdentificationResult {
  /// Per-profile posterior, aligned with the adversary's profile order;
  /// zero for profiles that did not match. All-zero when nothing matched.
  std::vector<double> posterior;
  /// Indices of profiles whose His_bin matched.
  std::vector<std::size_t> matched;
  /// Degree of anonymity H(X)/log2(N) (paper Formula 5); 1.0 when nothing
  /// matched (the adversary learned nothing), 0.0 when exactly one profile
  /// matched (the user is identified).
  double degree_of_anonymity = 1.0;
  /// Shannon entropy of the posterior in bits (0 when <= 1 match).
  double entropy_bits = 0.0;
};

/// Holds the N profiles an adversary has acquired and answers
/// identification queries against them.
class Adversary {
 public:
  /// Takes ownership of the profile set. Precondition: non-empty.
  explicit Adversary(std::vector<UserProfileHistograms> profiles);

  std::size_t profile_count() const { return profiles_.size(); }
  const UserProfileHistograms& profile(std::size_t i) const;

  /// Matches `observed` (built with `pattern`) against every stored
  /// profile, then forms the posterior over the matching set using
  /// `weighting` and computes the anonymity metrics.
  IdentificationResult identify(const PatternHistogram& observed, Pattern pattern,
                                const MatchParams& params,
                                PosteriorWeighting weighting =
                                    PosteriorWeighting::kChiSquare) const;

 private:
  std::vector<UserProfileHistograms> profiles_;
};

/// How strongly a collected fix stream exposes one reference place.
struct PlaceExposure {
  int poi_id = 0;
  std::size_t visit_count = 0;    ///< Recovered visit episodes at the place.
  std::int64_t total_dwell_s = 0; ///< Summed episode dwell.
  std::size_t fix_count = 0;      ///< Collected fixes within the match radius.
};

/// Cross-references an adversary's reconstructed fix stream against a set of
/// reference places: for each PoI, the recovered visit episodes within
/// `radius_m` of its centroid (cell lookups in the estimator's fix index —
/// one radius query per place instead of a full-trace rescan per place).
/// Returns one entry per PoI in input order; places the stream never touches
/// report zero visits. Preconditions: radius_m >= 0, max_gap_s > 0,
/// min_dwell_s >= 0.
std::vector<PlaceExposure> place_exposure(const PositionEstimator& estimator,
                                          const std::vector<poi::Poi>& pois,
                                          double radius_m, std::int64_t max_gap_s,
                                          std::int64_t min_dwell_s);

}  // namespace locpriv::privacy
