// Detection-time analysis (paper Figure 4): how much of a user's profile an
// app must observe before His_bin fires, and which pattern fires first.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "poi/staypoint.hpp"
#include "privacy/adversary.hpp"
#include "privacy/matching.hpp"
#include "privacy/pattern_histogram.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::privacy {

/// Parameters of a detection-time sweep.
struct DetectionConfig {
  poi::ExtractionParams extraction;  ///< Paper uses Table III set 1.
  MatchParams match;
  RegionGrid grid;                   ///< Shared key space.
  std::int64_t interval_s = 1;       ///< App access interval to simulate.
  /// Prefix fractions to probe, ascending; defaults to 2 %..100 % in 2 %
  /// steps (set by make_default_fractions).
  std::vector<double> fractions;

  DetectionConfig(const RegionGrid& grid_in) : grid(grid_in) {
    fractions = make_default_fractions();
  }

  static std::vector<double> make_default_fractions();
};

/// Earliest-detection outcome for one user and one pattern.
struct DetectionOutcome {
  bool detected = false;
  double fraction = 1.0;  ///< Smallest probed prefix fraction that matched.
};

/// Builds the pattern histogram an app observing `points` at
/// `interval_s` would obtain: decimate, extract stay points, cluster, build.
PatternHistogram observed_histogram(const std::vector<trace::TracePoint>& points,
                                    Pattern pattern,
                                    const poi::ExtractionParams& extraction,
                                    const RegionGrid& grid, std::int64_t interval_s);

/// Sweeps prefix fractions of `points` (the app starts collecting at the
/// trace start) and reports the earliest fraction whose observed histogram
/// matches `profile`.
DetectionOutcome earliest_detection(const std::vector<trace::TracePoint>& points,
                                    const PatternHistogram& profile, Pattern pattern,
                                    const DetectionConfig& config);

/// Earliest prefix fraction at which the adversary *uniquely identifies*
/// the true user: the chi-square match set over all stored profiles is
/// exactly {true_user}. This is Figure 4's notion of risk detection — the
/// histogram acting as a quasi-identifier that "can be used to identify a
/// small anonymity set"; identification is the moment that set collapses
/// to one. Precondition: true_user < adversary.profile_count().
DetectionOutcome earliest_identification(const std::vector<trace::TracePoint>& points,
                                         const Adversary& adversary,
                                         std::size_t true_user, Pattern pattern,
                                         const DetectionConfig& config);

/// Combined detector per the paper's conclusion: alert as soon as *either*
/// pattern matches; returns the smaller detection fraction.
DetectionOutcome combined_detection(const std::vector<trace::TracePoint>& points,
                                    const PatternHistogram& visit_profile,
                                    const PatternHistogram& movement_profile,
                                    const DetectionConfig& config);

}  // namespace locpriv::privacy
