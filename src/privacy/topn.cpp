#include "privacy/topn.hpp"

#include <algorithm>

#include "stats/entropy.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

std::vector<RegionId> top_regions(const PatternHistogram& visits, std::size_t n) {
  LOCPRIV_EXPECT(n >= 1);
  std::vector<std::pair<double, RegionId>> ranked;
  ranked.reserve(visits.counts().size());
  for (const auto& [region, count] : visits.counts()) ranked.emplace_back(count, region);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;  // Most visited first.
    return a.second < b.second;                        // Deterministic ties.
  });
  std::vector<RegionId> top;
  for (std::size_t i = 0; i < ranked.size() && i < n; ++i)
    top.push_back(ranked[i].second);
  std::sort(top.begin(), top.end());  // Set semantics.
  return top;
}

TopNIdentifier::TopNIdentifier(const std::vector<UserProfileHistograms>& profiles,
                               std::size_t n)
    : n_(n) {
  LOCPRIV_EXPECT(!profiles.empty());
  LOCPRIV_EXPECT(n >= 1);
  profile_tops_.reserve(profiles.size());
  for (const auto& profile : profiles)
    profile_tops_.push_back(top_regions(profile.visits, n));
}

std::vector<std::size_t> TopNIdentifier::matches(
    const PatternHistogram& observed_visits) const {
  const std::vector<RegionId> observed_top = top_regions(observed_visits, n_);
  std::vector<std::size_t> matched;
  if (observed_top.size() < n_) return matched;  // Quasi-identifier incomplete.
  for (std::size_t i = 0; i < profile_tops_.size(); ++i)
    if (profile_tops_[i] == observed_top) matched.push_back(i);
  return matched;
}

double TopNIdentifier::degree_of_anonymity(
    const PatternHistogram& observed_visits) const {
  const auto matched = matches(observed_visits);
  if (matched.empty()) return 1.0;
  if (matched.size() == 1) return 0.0;
  std::vector<double> posterior(profile_tops_.size(), 0.0);
  for (const std::size_t i : matched)
    posterior[i] = 1.0 / static_cast<double>(matched.size());
  return stats::degree_of_anonymity(posterior, profile_tops_.size());
}

}  // namespace locpriv::privacy
