// Next-place prediction from collected movement patterns.
//
// The paper's core claim is that the movement-pattern histogram captures a
// user's *habituation*. The sharpest consequence: an adversary who has the
// histogram can predict where the user goes next. This module turns a
// pattern-2 histogram into a first-order Markov predictor and measures its
// accuracy on held-out movement, quantifying how actionable the leaked
// habits are.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "privacy/pattern_histogram.hpp"

namespace locpriv::privacy {

/// First-order Markov next-region predictor trained from a movement
/// histogram (keys = packed region transitions, values = counts).
class NextPlacePredictor {
 public:
  /// Trains from a movement histogram. An empty histogram yields a
  /// predictor that never predicts.
  explicit NextPlacePredictor(const PatternHistogram& movements);

  /// Most likely next region after `from` (ties broken by region id), or
  /// false if `from` was never seen as a source.
  bool predict(RegionId from, RegionId& next) const;

  /// Probability of moving `from` -> `to` under the trained model (0 when
  /// `from` is unseen).
  double transition_probability(RegionId from, RegionId to) const;

  /// Number of distinct source regions.
  std::size_t source_count() const { return by_source_.size(); }

 private:
  // source -> (destination -> count), plus per-source totals.
  std::map<RegionId, std::map<RegionId, double>> by_source_;
  std::map<RegionId, double> source_totals_;
};

/// Accuracy of a predictor on a held-out region sequence: for every
/// consecutive pair, does predict(seq[i]) equal seq[i+1]?
struct PredictionScore {
  std::size_t evaluated = 0;  ///< Pairs with a prediction available.
  std::size_t correct = 0;
  std::size_t skipped = 0;    ///< Pairs whose source was never trained.

  double accuracy() const {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(correct) / static_cast<double>(evaluated);
  }
};

PredictionScore score_predictions(const NextPlacePredictor& predictor,
                                  const std::vector<RegionId>& held_out_sequence);

}  // namespace locpriv::privacy
