// PoI-exposure metrics: PoI_total and PoI_sensitive (paper Table II and
// Figure 3). Both compare the PoIs an app recovered from collected
// locations against the reference PoIs extracted from the full-rate trace.
#pragma once

#include <cstddef>
#include <vector>

#include "poi/clustering.hpp"

namespace locpriv::privacy {

/// How much of a reference PoI set a collected PoI set reveals.
struct PoiRecovery {
  std::size_t reference_count = 0;  ///< PoIs in the ground-truth/full trace.
  std::size_t recovered_count = 0;  ///< Reference PoIs with a collected PoI nearby.

  /// Fraction recovered in [0, 1]; 1 when the reference set is empty
  /// (nothing existed to leak).
  double fraction() const {
    return reference_count == 0
               ? 1.0
               : static_cast<double>(recovered_count) / static_cast<double>(reference_count);
  }

  /// True if every reference PoI was recovered.
  bool complete() const { return recovered_count == reference_count; }
};

/// Matches collected PoIs against reference PoIs: a reference PoI counts as
/// recovered when some collected PoI centroid lies within `match_radius_m`.
/// Precondition: match_radius_m > 0.
PoiRecovery poi_recovery(const std::vector<poi::Poi>& reference,
                         const std::vector<poi::Poi>& collected,
                         double match_radius_m);

/// PoI_sensitive: recovery restricted to reference PoIs visited at most
/// `max_visits` times (the paper's sensitive PoIs; it reports curves for
/// <=1, <=2 and <=3). Sensitivity is judged on the *reference* visit counts
/// — the adversary's undercount cannot make a place non-sensitive.
PoiRecovery sensitive_poi_recovery(const std::vector<poi::Poi>& reference,
                                   const std::vector<poi::Poi>& collected,
                                   double match_radius_m, std::size_t max_visits);

/// The original O(R x C) linear-scan recovery, kept as the equivalence oracle
/// for poi_recovery (tests assert identical counts) and as the "before" side
/// of the BM_PoiRecovery microbench.
PoiRecovery poi_recovery_scan(const std::vector<poi::Poi>& reference,
                              const std::vector<poi::Poi>& collected,
                              double match_radius_m);

}  // namespace locpriv::privacy
