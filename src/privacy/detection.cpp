#include "privacy/detection.hpp"

#include <algorithm>

#include "poi/clustering.hpp"
#include "trace/sampling.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

std::vector<double> DetectionConfig::make_default_fractions() {
  std::vector<double> fractions;
  for (int percent = 2; percent <= 100; percent += 2)
    fractions.push_back(static_cast<double>(percent) / 100.0);
  return fractions;
}

PatternHistogram observed_histogram(const std::vector<trace::TracePoint>& points,
                                    Pattern pattern,
                                    const poi::ExtractionParams& extraction,
                                    const RegionGrid& grid, std::int64_t interval_s) {
  const auto collected =
      interval_s <= 1 ? points : trace::decimate(points, interval_s);
  const auto stays = poi::extract_stay_points(collected, extraction);
  const auto pois = poi::cluster_stay_points(stays, extraction.radius_m);
  return build_histogram(pattern, pois, grid);
}

DetectionOutcome earliest_detection(const std::vector<trace::TracePoint>& points,
                                    const PatternHistogram& profile, Pattern pattern,
                                    const DetectionConfig& config) {
  LOCPRIV_EXPECT(std::is_sorted(config.fractions.begin(), config.fractions.end()));
  DetectionOutcome outcome;
  for (const double fraction : config.fractions) {
    const auto prefix = trace::take_prefix_fraction(points, fraction);
    if (prefix.empty()) continue;
    const PatternHistogram observed = observed_histogram(
        prefix, pattern, config.extraction, config.grid, config.interval_s);
    const MatchResult match = match_histograms(observed, profile, config.match);
    if (match.attempted && match.matches) {
      outcome.detected = true;
      outcome.fraction = fraction;
      return outcome;
    }
  }
  return outcome;
}

DetectionOutcome earliest_identification(const std::vector<trace::TracePoint>& points,
                                         const Adversary& adversary,
                                         std::size_t true_user, Pattern pattern,
                                         const DetectionConfig& config) {
  LOCPRIV_EXPECT(true_user < adversary.profile_count());
  LOCPRIV_EXPECT(std::is_sorted(config.fractions.begin(), config.fractions.end()));
  DetectionOutcome outcome;
  for (const double fraction : config.fractions) {
    const auto prefix = trace::take_prefix_fraction(points, fraction);
    if (prefix.empty()) continue;
    const PatternHistogram observed = observed_histogram(
        prefix, pattern, config.extraction, config.grid, config.interval_s);
    if (observed.empty()) continue;
    const IdentificationResult result =
        adversary.identify(observed, pattern, config.match);
    if (result.matched.size() == 1 && result.matched.front() == true_user) {
      outcome.detected = true;
      outcome.fraction = fraction;
      return outcome;
    }
  }
  return outcome;
}

DetectionOutcome combined_detection(const std::vector<trace::TracePoint>& points,
                                    const PatternHistogram& visit_profile,
                                    const PatternHistogram& movement_profile,
                                    const DetectionConfig& config) {
  const DetectionOutcome visits =
      earliest_detection(points, visit_profile, Pattern::kVisits, config);
  const DetectionOutcome movements =
      earliest_detection(points, movement_profile, Pattern::kMovements, config);
  if (!visits.detected) return movements;
  if (!movements.detected) return visits;
  return visits.fraction <= movements.fraction ? visits : movements;
}

}  // namespace locpriv::privacy
