// Adversary correctness (after Shokri et al., "Quantifying Location
// Privacy", the paper's [30]): privacy is ultimately the adversary's
// *error* when estimating where the user actually was. The adversary
// reconstructs a position timeline from the collected fixes (piecewise:
// the user is at the last observed fix until the next one) and we measure
// the distance between that estimate and the ground-truth trace.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlon.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::privacy {

/// Piecewise-constant position estimator over a collected fix stream.
class PositionEstimator {
 public:
  /// Builds from collected fixes (time-ordered). Precondition: non-empty.
  explicit PositionEstimator(std::vector<trace::TracePoint> collected);

  /// The adversary's estimate at time `t`: the last fix at or before `t`
  /// (the first fix for queries before any observation).
  const geo::LatLon& estimate(std::int64_t t) const;

  std::size_t fix_count() const { return collected_.size(); }

 private:
  std::vector<trace::TracePoint> collected_;
};

/// Summary of the reconstruction error over a ground-truth trace.
struct ReconstructionError {
  double mean_m = 0.0;
  double median_m = 0.0;
  double p90_m = 0.0;
  std::size_t samples = 0;
};

/// Evaluates the estimator against `truth`, sampling every
/// `sample_every_s` seconds of the truth stream (1 = every fix).
/// Preconditions: truth non-empty, sample_every_s >= 1.
ReconstructionError reconstruction_error(const std::vector<trace::TracePoint>& truth,
                                         const PositionEstimator& estimator,
                                         std::int64_t sample_every_s = 60);

}  // namespace locpriv::privacy
