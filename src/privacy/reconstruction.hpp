// Adversary correctness (after Shokri et al., "Quantifying Location
// Privacy", the paper's [30]): privacy is ultimately the adversary's
// *error* when estimating where the user actually was. The adversary
// reconstructs a position timeline from the collected fixes (piecewise:
// the user is at the last observed fix until the next one) and we measure
// the distance between that estimate and the ground-truth trace.
//
// The estimator also answers the adversary's spatial queries: "which of the
// collected fixes place the user near this location, and when?" Those used
// to rescan the full fix stream per place; they now go through a GeoTree
// over the fix positions, so a candidate lookup touches only the geohash
// cells a radius disc can reach.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geotree.hpp"
#include "geo/latlon.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::privacy {

/// One contiguous episode of collected fixes near a queried place: the
/// adversary's evidence that the user *visited* it, with dwell bounds.
struct RecoveredVisit {
  std::size_t first_fix = 0;  ///< Index of the first in-radius fix.
  std::size_t last_fix = 0;   ///< Index of the last in-radius fix.
  std::int64_t enter_s = 0;   ///< Timestamp of the first fix.
  std::int64_t exit_s = 0;    ///< Timestamp of the last fix.
  std::size_t fix_count = 0;  ///< In-radius fixes inside the episode.

  std::int64_t dwell_s() const { return exit_s - enter_s; }

  friend bool operator==(const RecoveredVisit&, const RecoveredVisit&) = default;
};

/// Piecewise-constant position estimator over a collected fix stream.
class PositionEstimator {
 public:
  /// Builds from collected fixes (time-ordered) and indexes their positions.
  /// Precondition: non-empty.
  explicit PositionEstimator(std::vector<trace::TracePoint> collected);

  /// Index of the last fix at or before `t` (std::upper_bound over the
  /// time-sorted stream); 0 for queries before the first fix.
  std::size_t locate(std::int64_t t) const;

  /// The adversary's estimate at time `t`: the position of locate(t).
  const geo::LatLon& estimate(std::int64_t t) const;

  const trace::TracePoint& fix(std::size_t i) const { return collected_[i]; }
  std::size_t fix_count() const { return collected_.size(); }

  /// Indices (ascending, hence chronological) of the fixes within
  /// `radius_m` of `center` (haversine, inclusive), resolved by cell lookup
  /// in the fix index. Precondition: radius_m >= 0.
  std::vector<std::uint32_t> fixes_near(const geo::LatLon& center,
                                        double radius_m) const;

  /// The O(n) full-stream twin of fixes_near, kept as its equivalence oracle
  /// and as the "before" side of the BM_ReconstructionCandidates microbench.
  std::vector<std::uint32_t> fixes_near_scan(const geo::LatLon& center,
                                             double radius_m) const;

  /// Groups the fixes near `center` into visit episodes: a new episode
  /// starts whenever consecutive in-radius fixes are more than `max_gap_s`
  /// apart, and only episodes dwelling at least `min_dwell_s` count.
  /// Preconditions: radius_m >= 0, max_gap_s > 0, min_dwell_s >= 0.
  std::vector<RecoveredVisit> recovered_visits(const geo::LatLon& center,
                                               double radius_m, std::int64_t max_gap_s,
                                               std::int64_t min_dwell_s) const;

 private:
  std::vector<trace::TracePoint> collected_;
  geo::GeoTree index_;  ///< Over the fix positions, in stream order.
};

/// Summary of the reconstruction error over a ground-truth trace.
struct ReconstructionError {
  double mean_m = 0.0;
  double median_m = 0.0;
  double p90_m = 0.0;
  std::size_t samples = 0;
};

/// Evaluates the estimator against `truth`, sampling every
/// `sample_every_s` seconds of the truth stream (1 = every fix).
/// Preconditions: truth non-empty, sample_every_s >= 1.
ReconstructionError reconstruction_error(const std::vector<trace::TracePoint>& truth,
                                         const PositionEstimator& estimator,
                                         std::int64_t sample_every_s = 60);

}  // namespace locpriv::privacy
