// Histogram matching: the His_bin metric.
//
// His_bin asks whether the histogram built from the locations an app
// collected fits the user's profile histogram. The paper decides this with
// Pearson's chi-square goodness-of-fit at p = 0.05.
//
// Note on the test's tail: the paper's prose says it tests the *lower* tail
// and sets His_bin = 0 when that p-value is below the threshold. Read
// literally, scarce collected data (whose rescaled statistic is far *above*
// the degrees of freedom) would always yield His_bin = 1 immediately, which
// contradicts the paper's own Figure 4 (detection requires ~10 %+ of the
// profile). The operationally consistent reading — and our default — is the
// classical upper-tail test: His_bin = 1 ("the histograms are similar, the
// release is unsafe") iff the goodness-of-fit hypothesis cannot be rejected,
// i.e. p_upper >= alpha. The literal lower-tail variant remains selectable
// for the ablation bench (bench_ablation), which demonstrates its
// degeneracy.
#pragma once

#include "privacy/pattern_histogram.hpp"
#include "stats/chi_square.hpp"
#include "stats/ks_test.hpp"

namespace locpriv::privacy {

/// Which statistical test decides the match.
enum class MatchTest {
  kChiSquare,           ///< Pearson goodness-of-fit (the paper's choice).
  kKolmogorovSmirnov,   ///< Two-sample KS over key-ordered CDFs (sparse-data
                        ///< alternative, contrasted in bench_ablation).
};

/// Matching parameters.
struct MatchParams {
  double alpha = 0.05;  ///< The paper's p-value threshold.
  MatchTest test = MatchTest::kChiSquare;
  stats::ChiSquareTail tail = stats::ChiSquareTail::kUpper;  ///< See header note.
  /// Pseudo-count assigned to keys the observed histogram contains but the
  /// profile does not (Laplace-style smoothing). The default 0 follows the
  /// paper's Formula 1, whose expected counts come from the profile's keys
  /// only: observing *new* places neither helps nor hurts the fit, and an
  /// observed histogram fully disjoint from the profile is a definitive
  /// non-match. The ablation bench contrasts smoothing > 0, which turns
  /// unexpected keys into evidence against a match.
  double unseen_key_pseudo_count = 0.0;
  /// Minimum observed mass before the test is attempted; with fewer
  /// observations the chi-square approximation is meaningless and His_bin
  /// is reported as 0 (no evidence of breach yet).
  double min_observed_total = 5.0;
};

/// Outcome of matching one observed histogram against one profile.
struct MatchResult {
  bool attempted = false;   ///< False when below min_observed_total or keys < 2.
  bool matches = false;     ///< His_bin: true = the release exposes the profile.
  stats::ChiSquareResult chi;  ///< Valid when attempted with kChiSquare.
  stats::KsResult ks;          ///< Valid when attempted with kKolmogorovSmirnov.
};

/// Runs the His_bin decision for `observed` against `profile`.
MatchResult match_histograms(const PatternHistogram& observed,
                             const PatternHistogram& profile,
                             const MatchParams& params);

}  // namespace locpriv::privacy
