#include "privacy/adversary.hpp"

#include "stats/entropy.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

Adversary::Adversary(std::vector<UserProfileHistograms> profiles)
    : profiles_(std::move(profiles)) {
  LOCPRIV_EXPECT(!profiles_.empty());
}

const UserProfileHistograms& Adversary::profile(std::size_t i) const {
  LOCPRIV_EXPECT(i < profiles_.size());
  return profiles_[i];
}

IdentificationResult Adversary::identify(const PatternHistogram& observed,
                                         Pattern pattern, const MatchParams& params,
                                         PosteriorWeighting weighting) const {
  IdentificationResult result;
  result.posterior.assign(profiles_.size(), 0.0);

  std::vector<double> weights(profiles_.size(), 0.0);
  double weight_total = 0.0;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const MatchResult match =
        match_histograms(observed, profiles_[i].histogram(pattern), params);
    if (!match.attempted || !match.matches) continue;
    result.matched.push_back(i);
    const double weight = weighting == PosteriorWeighting::kChiSquare
                              ? match.chi.statistic
                              : 1.0 / (1.0 + match.chi.statistic);
    weights[i] = weight;
    weight_total += weight;
  }

  if (result.matched.empty()) {
    // Nothing matched: the adversary cannot narrow the anonymity set at all.
    result.degree_of_anonymity = 1.0;
    result.entropy_bits = stats::max_entropy(profiles_.size());
    return result;
  }

  if (weight_total <= 0.0) {
    // Degenerate weights (e.g. a perfect fit with statistic 0 under the
    // paper's literal Formula 2): fall back to uniform over matches.
    for (const std::size_t i : result.matched)
      weights[i] = 1.0 / static_cast<double>(result.matched.size());
    weight_total = 1.0;
  }

  for (std::size_t i = 0; i < profiles_.size(); ++i)
    result.posterior[i] = weights[i] / weight_total;

  if (result.matched.size() == 1) {
    result.entropy_bits = 0.0;
    result.degree_of_anonymity = 0.0;
  } else {
    result.entropy_bits = stats::shannon_entropy(result.posterior);
    result.degree_of_anonymity =
        stats::degree_of_anonymity(result.posterior, profiles_.size());
  }
  return result;
}

std::vector<PlaceExposure> place_exposure(const PositionEstimator& estimator,
                                          const std::vector<poi::Poi>& pois,
                                          double radius_m, std::int64_t max_gap_s,
                                          std::int64_t min_dwell_s) {
  std::vector<PlaceExposure> exposures;
  exposures.reserve(pois.size());
  for (const auto& poi : pois) {
    PlaceExposure exposure;
    exposure.poi_id = poi.id;
    exposure.fix_count = estimator.fixes_near(poi.centroid, radius_m).size();
    for (const auto& visit :
         estimator.recovered_visits(poi.centroid, radius_m, max_gap_s, min_dwell_s)) {
      ++exposure.visit_count;
      exposure.total_dwell_s += visit.dwell_s();
    }
    exposures.push_back(exposure);
  }
  return exposures;
}

}  // namespace locpriv::privacy
