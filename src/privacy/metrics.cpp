#include "privacy/metrics.hpp"

#include "geo/geodesy.hpp"
#include "geo/geotree.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {

geo::GeoTree collected_tree(const std::vector<poi::Poi>& collected) {
  std::vector<geo::LatLon> centroids;
  centroids.reserve(collected.size());
  for (const auto& poi : collected) centroids.push_back(poi.centroid);
  return geo::GeoTree(std::move(centroids));
}

// locpriv-lint: allow(linear-spatial-scan) reference oracle for the index path
bool has_match_within_scan(const poi::Poi& reference,
                           const std::vector<poi::Poi>& collected,
                           double match_radius_m) {
  for (const auto& candidate : collected)
    if (geo::equirectangular_m(reference.centroid, candidate.centroid) <= match_radius_m)
      return true;
  return false;
}

}  // namespace

PoiRecovery poi_recovery(const std::vector<poi::Poi>& reference,
                         const std::vector<poi::Poi>& collected,
                         double match_radius_m) {
  LOCPRIV_EXPECT(match_radius_m > 0.0);
  PoiRecovery recovery;
  recovery.reference_count = reference.size();
  // One index over the collected centroids turns each existence test into a
  // cell probe; the equirectangular metric keeps the match predicate
  // identical to the scan it replaced.
  const geo::GeoTree tree = collected_tree(collected);
  for (const auto& poi : reference) {
    if (tree.any_within(poi.centroid, match_radius_m,
                        geo::GeoTree::Metric::kEquirectangular))
      ++recovery.recovered_count;
  }
  return recovery;
}

PoiRecovery sensitive_poi_recovery(const std::vector<poi::Poi>& reference,
                                   const std::vector<poi::Poi>& collected,
                                   double match_radius_m, std::size_t max_visits) {
  LOCPRIV_EXPECT(match_radius_m > 0.0);
  LOCPRIV_EXPECT(max_visits >= 1);
  PoiRecovery recovery;
  const geo::GeoTree tree = collected_tree(collected);
  for (const auto& poi : reference) {
    if (poi.visit_count() > max_visits) continue;
    ++recovery.reference_count;
    if (tree.any_within(poi.centroid, match_radius_m,
                        geo::GeoTree::Metric::kEquirectangular))
      ++recovery.recovered_count;
  }
  return recovery;
}

PoiRecovery poi_recovery_scan(const std::vector<poi::Poi>& reference,
                              const std::vector<poi::Poi>& collected,
                              double match_radius_m) {
  LOCPRIV_EXPECT(match_radius_m > 0.0);
  PoiRecovery recovery;
  recovery.reference_count = reference.size();
  for (const auto& poi : reference)
    if (has_match_within_scan(poi, collected, match_radius_m))
      ++recovery.recovered_count;
  return recovery;
}

}  // namespace locpriv::privacy
