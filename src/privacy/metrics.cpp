#include "privacy/metrics.hpp"

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {

bool has_match_within(const poi::Poi& reference, const std::vector<poi::Poi>& collected,
                      double match_radius_m) {
  for (const auto& candidate : collected)
    if (geo::equirectangular_m(reference.centroid, candidate.centroid) <= match_radius_m)
      return true;
  return false;
}

}  // namespace

PoiRecovery poi_recovery(const std::vector<poi::Poi>& reference,
                         const std::vector<poi::Poi>& collected,
                         double match_radius_m) {
  LOCPRIV_EXPECT(match_radius_m > 0.0);
  PoiRecovery recovery;
  recovery.reference_count = reference.size();
  for (const auto& poi : reference)
    if (has_match_within(poi, collected, match_radius_m)) ++recovery.recovered_count;
  return recovery;
}

PoiRecovery sensitive_poi_recovery(const std::vector<poi::Poi>& reference,
                                   const std::vector<poi::Poi>& collected,
                                   double match_radius_m, std::size_t max_visits) {
  LOCPRIV_EXPECT(match_radius_m > 0.0);
  LOCPRIV_EXPECT(max_visits >= 1);
  PoiRecovery recovery;
  for (const auto& poi : reference) {
    if (poi.visit_count() > max_visits) continue;
    ++recovery.reference_count;
    if (has_match_within(poi, collected, match_radius_m)) ++recovery.recovered_count;
  }
  return recovery;
}

}  // namespace locpriv::privacy
