#include "privacy/region.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {
// Cell indices are offset into [0, 2^15) per axis so the packed id is
// non-negative and fits 30 bits; +-16384 cells of >= 1 m covers any city.
constexpr std::int64_t kAxisOffset = 1 << 14;
constexpr std::int64_t kAxisSpan = 1 << 15;
}  // namespace

RegionGrid::RegionGrid(const geo::LatLon& anchor, double cell_m)
    : projection_(anchor), cell_m_(cell_m) {
  LOCPRIV_EXPECT(cell_m > 0.0);
}

RegionId RegionGrid::region_of(const geo::LatLon& p) const {
  const geo::EastNorth plane = projection_.to_plane(p);
  const auto ix = static_cast<std::int64_t>(std::floor(plane.east_m / cell_m_));
  const auto iy = static_cast<std::int64_t>(std::floor(plane.north_m / cell_m_));
  LOCPRIV_EXPECT(ix >= -kAxisOffset && ix < kAxisOffset);
  LOCPRIV_EXPECT(iy >= -kAxisOffset && iy < kAxisOffset);
  return (ix + kAxisOffset) * kAxisSpan + (iy + kAxisOffset);
}

geo::LatLon RegionGrid::region_center(RegionId id) const {
  LOCPRIV_EXPECT(id >= 0 && id < kAxisSpan * kAxisSpan);
  const std::int64_t ix = id / kAxisSpan - kAxisOffset;
  const std::int64_t iy = id % kAxisSpan - kAxisOffset;
  return projection_.to_geo({(static_cast<double>(ix) + 0.5) * cell_m_,
                             (static_cast<double>(iy) + 0.5) * cell_m_});
}

namespace {

// Per-axis cell index of a planar coordinate; mirrors region_of's floor but
// without the range asserts, so stray far-away points filter out instead of
// aborting.
inline std::int64_t plane_cell(double meters, double cell_m) {
  return static_cast<std::int64_t>(std::floor(meters / cell_m));
}

}  // namespace

std::vector<std::uint32_t> RegionGrid::points_in_region(const geo::GeoTree& tree,
                                                        RegionId id) const {
  LOCPRIV_EXPECT(id >= 0 && id < kAxisSpan * kAxisSpan);
  const std::int64_t ix = id / kAxisSpan - kAxisOffset;
  const std::int64_t iy = id % kAxisSpan - kAxisOffset;
  // The region square in the plane, padded a hair so floating-point slop in
  // the plane<->geo round trip cannot drop a boundary point; the exact cell
  // check below removes anything the padding let in.
  const double pad = cell_m_ * 1e-6;
  const geo::LatLon lo = projection_.to_geo(
      {static_cast<double>(ix) * cell_m_ - pad, static_cast<double>(iy) * cell_m_ - pad});
  const geo::LatLon hi =
      projection_.to_geo({static_cast<double>(ix + 1) * cell_m_ + pad,
                          static_cast<double>(iy + 1) * cell_m_ + pad});
  std::vector<std::uint32_t> out;
  for (const std::uint32_t index :
       tree.query_rect(lo.lat_deg, hi.lat_deg, lo.lon_deg, hi.lon_deg)) {
    const geo::EastNorth plane = projection_.to_plane(tree.point(index));
    if (plane_cell(plane.east_m, cell_m_) == ix && plane_cell(plane.north_m, cell_m_) == iy)
      out.push_back(index);
  }
  return out;
}

std::vector<std::uint32_t> RegionGrid::points_in_region_scan(
    const std::vector<geo::LatLon>& points, RegionId id) const {
  LOCPRIV_EXPECT(id >= 0 && id < kAxisSpan * kAxisSpan);
  const std::int64_t ix = id / kAxisSpan - kAxisOffset;
  const std::int64_t iy = id % kAxisSpan - kAxisOffset;
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const geo::EastNorth plane = projection_.to_plane(points[i]);
    if (plane_cell(plane.east_m, cell_m_) == ix && plane_cell(plane.north_m, cell_m_) == iy)
      out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::int64_t pack_transition(RegionId from, RegionId to) {
  LOCPRIV_EXPECT(from >= 0 && from < (std::int64_t{1} << 31));
  LOCPRIV_EXPECT(to >= 0 && to < (std::int64_t{1} << 31));
  return (from << 31) | to;
}

void unpack_transition(std::int64_t key, RegionId& from, RegionId& to) {
  LOCPRIV_EXPECT(key >= 0);
  from = key >> 31;
  to = key & ((std::int64_t{1} << 31) - 1);
}

}  // namespace locpriv::privacy
