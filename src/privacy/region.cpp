#include "privacy/region.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {
// Cell indices are offset into [0, 2^15) per axis so the packed id is
// non-negative and fits 30 bits; +-16384 cells of >= 1 m covers any city.
constexpr std::int64_t kAxisOffset = 1 << 14;
constexpr std::int64_t kAxisSpan = 1 << 15;
}  // namespace

RegionGrid::RegionGrid(const geo::LatLon& anchor, double cell_m)
    : projection_(anchor), cell_m_(cell_m) {
  LOCPRIV_EXPECT(cell_m > 0.0);
}

RegionId RegionGrid::region_of(const geo::LatLon& p) const {
  const geo::EastNorth plane = projection_.to_plane(p);
  const auto ix = static_cast<std::int64_t>(std::floor(plane.east_m / cell_m_));
  const auto iy = static_cast<std::int64_t>(std::floor(plane.north_m / cell_m_));
  LOCPRIV_EXPECT(ix >= -kAxisOffset && ix < kAxisOffset);
  LOCPRIV_EXPECT(iy >= -kAxisOffset && iy < kAxisOffset);
  return (ix + kAxisOffset) * kAxisSpan + (iy + kAxisOffset);
}

geo::LatLon RegionGrid::region_center(RegionId id) const {
  LOCPRIV_EXPECT(id >= 0 && id < kAxisSpan * kAxisSpan);
  const std::int64_t ix = id / kAxisSpan - kAxisOffset;
  const std::int64_t iy = id % kAxisSpan - kAxisOffset;
  return projection_.to_geo({(static_cast<double>(ix) + 0.5) * cell_m_,
                             (static_cast<double>(iy) + 0.5) * cell_m_});
}

std::int64_t pack_transition(RegionId from, RegionId to) {
  LOCPRIV_EXPECT(from >= 0 && from < (std::int64_t{1} << 31));
  LOCPRIV_EXPECT(to >= 0 && to < (std::int64_t{1} << 31));
  return (from << 31) | to;
}

void unpack_transition(std::int64_t key, RegionId& from, RegionId& to) {
  LOCPRIV_EXPECT(key >= 0);
  from = key >> 31;
  to = key & ((std::int64_t{1} << 31) - 1);
}

}  // namespace locpriv::privacy
