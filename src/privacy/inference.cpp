#include "privacy/inference.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {

constexpr std::int64_t kDay = 86400;

// Overlap of [begin, end) with the window [win_lo, win_hi) within one day,
// where the interval is given in seconds-of-day and may not wrap.
double window_overlap(std::int64_t begin, std::int64_t end, std::int64_t win_lo,
                      std::int64_t win_hi) {
  const std::int64_t lo = std::max(begin, win_lo);
  const std::int64_t hi = std::min(end, win_hi);
  return hi > lo ? static_cast<double>(hi - lo) : 0.0;
}

bool is_weekday(std::int64_t unix_s) {
  const std::int64_t day_index = unix_s / kDay;
  const int weekday = static_cast<int>((day_index + 4) % 7);  // 0 = Sunday.
  return weekday >= 1 && weekday <= 5;
}

}  // namespace

DwellSplit split_dwell(std::int64_t enter_s, std::int64_t exit_s) {
  LOCPRIV_EXPECT(exit_s >= enter_s);
  DwellSplit split;
  // Walk the interval day by day so multi-day stays are handled exactly.
  std::int64_t cursor = enter_s;
  while (cursor < exit_s) {
    const std::int64_t day_start = (cursor / kDay) * kDay;
    const std::int64_t day_end = day_start + kDay;
    const std::int64_t chunk_end = std::min(exit_s, day_end);
    const std::int64_t begin_sod = cursor - day_start;
    const std::int64_t end_sod = chunk_end - day_start;
    // Night: [00:00, 06:00) and [22:00, 24:00).
    split.night_s += window_overlap(begin_sod, end_sod, 0, 6 * 3600);
    split.night_s += window_overlap(begin_sod, end_sod, 22 * 3600, kDay);
    // Working hours on weekdays: [09:00, 18:00).
    if (is_weekday(cursor))
      split.workday_s += window_overlap(begin_sod, end_sod, 9 * 3600, 18 * 3600);
    cursor = chunk_end;
  }
  return split;
}

HomeWorkResult infer_home_work(const std::vector<poi::Poi>& pois,
                               const RegionGrid& grid) {
  HomeWorkResult result;
  std::vector<DwellSplit> splits(pois.size());
  for (std::size_t i = 0; i < pois.size(); ++i) {
    for (const auto& visit : pois[i].visits) {
      const DwellSplit split = split_dwell(visit.enter_s, visit.exit_s);
      splits[i].night_s += split.night_s;
      splits[i].workday_s += split.workday_s;
    }
    if (splits[i].night_s > result.home_night_s) {
      result.home_night_s = splits[i].night_s;
      result.home_index = static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < pois.size(); ++i) {
    if (static_cast<int>(i) == result.home_index) continue;
    if (splits[i].workday_s > result.work_workday_s) {
      result.work_workday_s = splits[i].workday_s;
      result.work_index = static_cast<int>(i);
    }
  }
  if (result.home_index >= 0)
    result.home_region =
        grid.region_of(pois[static_cast<std::size_t>(result.home_index)].centroid);
  if (result.work_index >= 0)
    result.work_region =
        grid.region_of(pois[static_cast<std::size_t>(result.work_index)].centroid);
  return result;
}

std::size_t pair_anonymity_set(const std::vector<HomeWorkResult>& population,
                               std::size_t user) {
  LOCPRIV_EXPECT(user < population.size());
  LOCPRIV_EXPECT(population[user].resolved());
  const HomeWorkResult& target = population[user];
  std::size_t count = 0;
  for (const HomeWorkResult& other : population) {
    if (!other.resolved()) continue;
    if (other.home_region == target.home_region &&
        other.work_region == target.work_region)
      ++count;
  }
  return count;
}

TrackingStats time_to_confusion(const std::vector<trace::TracePoint>& points,
                                std::int64_t max_gap_s, double max_speed_mps) {
  LOCPRIV_EXPECT(max_gap_s > 0);
  LOCPRIV_EXPECT(max_speed_mps > 0.0);
  TrackingStats stats;
  if (points.empty()) return stats;

  std::vector<double> episodes;
  std::int64_t episode_start = points.front().timestamp_s;
  for (std::size_t i = 1; i <= points.size(); ++i) {
    bool broken = i == points.size();
    if (!broken) {
      const std::int64_t gap = points[i].timestamp_s - points[i - 1].timestamp_s;
      if (gap > max_gap_s) {
        broken = true;
      } else if (gap > 0) {
        const double speed =
            // locpriv-lint: allow(linear-spatial-scan) one pair-speed per fix
            geo::haversine_m(points[i - 1].position, points[i].position) /
            static_cast<double>(gap);
        broken = speed > max_speed_mps;
      }
    }
    if (broken) {
      episodes.push_back(
          static_cast<double>(points[i - 1].timestamp_s - episode_start));
      if (i < points.size()) episode_start = points[i].timestamp_s;
    }
  }
  stats.episode_count = episodes.size();
  stats.mean_s = stats::mean(episodes);
  stats.median_s = stats::quantile(episodes, 0.5);
  stats.max_s = *std::max_element(episodes.begin(), episodes.end());
  return stats;
}

}  // namespace locpriv::privacy
