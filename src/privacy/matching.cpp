#include "privacy/matching.hpp"

#include <vector>

#include "util/expect.hpp"

namespace locpriv::privacy {

MatchResult match_histograms(const PatternHistogram& observed,
                             const PatternHistogram& profile,
                             const MatchParams& params) {
  LOCPRIV_EXPECT(params.alpha > 0.0 && params.alpha < 1.0);
  LOCPRIV_EXPECT(params.unseen_key_pseudo_count >= 0.0);

  MatchResult result;
  if (observed.total() < params.min_observed_total) return result;
  if (profile.empty()) return result;

  // Category space: union of profile keys and observed keys. Profile keys
  // carry their profile counts as expected mass; observed-only keys carry a
  // small pseudo-count so unexpected places/movements penalise the fit.
  std::vector<double> observed_counts;
  std::vector<double> expected_counts;
  observed_counts.reserve(profile.counts().size() + observed.counts().size());
  expected_counts.reserve(observed_counts.capacity());

  for (const auto& [key, expected] : profile.counts()) {
    observed_counts.push_back(observed.count(key));
    expected_counts.push_back(expected);
  }
  if (params.unseen_key_pseudo_count > 0.0) {
    for (const auto& [key, count] : observed.counts()) {
      if (profile.count(key) > 0.0) continue;
      observed_counts.push_back(count);
      expected_counts.push_back(params.unseen_key_pseudo_count);
    }
  }
  if (observed_counts.size() < 2) return result;

  // With no pseudo-counts an observed histogram can be fully disjoint from
  // the profile's key space; that is a definitive non-match, not a test.
  double observed_overlap = 0.0;
  for (const double count : observed_counts) observed_overlap += count;
  if (observed_overlap <= 0.0) return result;

  if (params.test == MatchTest::kKolmogorovSmirnov) {
    result.ks = stats::ks_two_sample(observed_counts, expected_counts);
    result.attempted = true;
    result.matches = result.ks.p_value >= params.alpha;
    return result;
  }

  result.chi = stats::pearson_goodness_of_fit(observed_counts, expected_counts);
  result.attempted = true;
  // His_bin = 1 when the fit cannot be rejected (upper tail) / when the
  // paper-literal lower-tail p-value clears alpha. See header for why the
  // upper tail is the default.
  result.matches = result.chi.p_value(params.tail) >= params.alpha;
  return result;
}

}  // namespace locpriv::privacy
