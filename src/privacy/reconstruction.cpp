#include "privacy/reconstruction.hpp"

#include <algorithm>

#include "geo/geodesy.hpp"
#include "stats/descriptive.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

namespace {

std::vector<geo::LatLon> fix_positions(const std::vector<trace::TracePoint>& fixes) {
  std::vector<geo::LatLon> positions;
  positions.reserve(fixes.size());
  for (const auto& fix : fixes) positions.push_back(fix.position);
  return positions;
}

}  // namespace

PositionEstimator::PositionEstimator(std::vector<trace::TracePoint> collected)
    : collected_(std::move(collected)), index_(fix_positions(collected_)) {
  LOCPRIV_EXPECT(!collected_.empty());
  for (std::size_t i = 1; i < collected_.size(); ++i)
    LOCPRIV_EXPECT(collected_[i - 1].timestamp_s <= collected_[i].timestamp_s);
}

std::size_t PositionEstimator::locate(std::int64_t t) const {
  const auto it = std::upper_bound(
      collected_.begin(), collected_.end(), t,
      [](std::int64_t value, const trace::TracePoint& p) { return value < p.timestamp_s; });
  if (it == collected_.begin()) return 0;
  return static_cast<std::size_t>(it - collected_.begin()) - 1;
}

const geo::LatLon& PositionEstimator::estimate(std::int64_t t) const {
  return collected_[locate(t)].position;
}

std::vector<std::uint32_t> PositionEstimator::fixes_near(const geo::LatLon& center,
                                                         double radius_m) const {
  const auto hits = index_.query_radius(center, radius_m);
  std::vector<std::uint32_t> indices;
  indices.reserve(hits.size());
  for (const auto& hit : hits) indices.push_back(hit.index);
  std::sort(indices.begin(), indices.end());
  return indices;
}

std::vector<std::uint32_t> PositionEstimator::fixes_near_scan(const geo::LatLon& center,
                                                              double radius_m) const {
  LOCPRIV_EXPECT(radius_m >= 0.0);
  std::vector<std::uint32_t> indices;
  for (std::size_t i = 0; i < collected_.size(); ++i) {
    // locpriv-lint: allow(linear-spatial-scan) reference oracle for fixes_near
    if (geo::haversine_m(center, collected_[i].position) <= radius_m)
      indices.push_back(static_cast<std::uint32_t>(i));
  }
  return indices;
}

std::vector<RecoveredVisit> PositionEstimator::recovered_visits(
    const geo::LatLon& center, double radius_m, std::int64_t max_gap_s,
    std::int64_t min_dwell_s) const {
  LOCPRIV_EXPECT(max_gap_s > 0);
  LOCPRIV_EXPECT(min_dwell_s >= 0);
  const auto near = fixes_near(center, radius_m);
  std::vector<RecoveredVisit> visits;
  RecoveredVisit current;
  for (std::size_t i = 0; i < near.size(); ++i) {
    const auto& point = collected_[near[i]];
    if (current.fix_count > 0 && point.timestamp_s - current.exit_s <= max_gap_s) {
      current.last_fix = near[i];
      current.exit_s = point.timestamp_s;
      ++current.fix_count;
      continue;
    }
    if (current.fix_count > 0 && current.dwell_s() >= min_dwell_s)
      visits.push_back(current);
    current = {near[i], near[i], point.timestamp_s, point.timestamp_s, 1};
  }
  if (current.fix_count > 0 && current.dwell_s() >= min_dwell_s)
    visits.push_back(current);
  return visits;
}

ReconstructionError reconstruction_error(const std::vector<trace::TracePoint>& truth,
                                         const PositionEstimator& estimator,
                                         std::int64_t sample_every_s) {
  LOCPRIV_EXPECT(!truth.empty());
  LOCPRIV_EXPECT(sample_every_s >= 1);
  std::vector<double> errors;
  std::int64_t next_sample = truth.front().timestamp_s;
  for (const auto& point : truth) {
    if (point.timestamp_s < next_sample) continue;
    errors.push_back(
        // locpriv-lint: allow(linear-spatial-scan) one truth-estimate pair
        geo::haversine_m(point.position, estimator.estimate(point.timestamp_s)));
    next_sample = point.timestamp_s + sample_every_s;
  }
  ReconstructionError result;
  result.samples = errors.size();
  if (errors.empty()) return result;
  result.mean_m = stats::mean(errors);
  result.median_m = stats::quantile(errors, 0.5);
  result.p90_m = stats::quantile(errors, 0.9);
  return result;
}

}  // namespace locpriv::privacy
