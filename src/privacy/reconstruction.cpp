#include "privacy/reconstruction.hpp"

#include <algorithm>

#include "geo/geodesy.hpp"
#include "stats/descriptive.hpp"
#include "util/expect.hpp"

namespace locpriv::privacy {

PositionEstimator::PositionEstimator(std::vector<trace::TracePoint> collected)
    : collected_(std::move(collected)) {
  LOCPRIV_EXPECT(!collected_.empty());
  for (std::size_t i = 1; i < collected_.size(); ++i)
    LOCPRIV_EXPECT(collected_[i - 1].timestamp_s <= collected_[i].timestamp_s);
}

const geo::LatLon& PositionEstimator::estimate(std::int64_t t) const {
  // Last fix with timestamp <= t; the first fix for earlier queries.
  const auto it = std::upper_bound(
      collected_.begin(), collected_.end(), t,
      [](std::int64_t value, const trace::TracePoint& p) { return value < p.timestamp_s; });
  if (it == collected_.begin()) return collected_.front().position;
  return (it - 1)->position;
}

ReconstructionError reconstruction_error(const std::vector<trace::TracePoint>& truth,
                                         const PositionEstimator& estimator,
                                         std::int64_t sample_every_s) {
  LOCPRIV_EXPECT(!truth.empty());
  LOCPRIV_EXPECT(sample_every_s >= 1);
  std::vector<double> errors;
  std::int64_t next_sample = truth.front().timestamp_s;
  for (const auto& point : truth) {
    if (point.timestamp_s < next_sample) continue;
    errors.push_back(
        geo::haversine_m(point.position, estimator.estimate(point.timestamp_s)));
    next_sample = point.timestamp_s + sample_every_s;
  }
  ReconstructionError result;
  result.samples = errors.size();
  if (errors.empty()) return result;
  result.mean_m = stats::mean(errors);
  result.median_m = stats::quantile(errors, 0.5);
  result.p90_m = stats::quantile(errors, 0.9);
  return result;
}

}  // namespace locpriv::privacy
