// Higher-level inference attacks built on extracted PoIs — the attacks the
// paper's related work warns about once a background app has the trace:
//
//  * home/work identification from visit times (day/night structure);
//  * the Golle-Partridge home/work-pair anonymity set ("On the anonymity
//    of home/work location pairs");
//  * Hoh et al.'s time-to-confusion: for how long can an adversary track a
//    user continuously before losing the fix chain?
#pragma once

#include <cstdint>
#include <vector>

#include "poi/clustering.hpp"
#include "privacy/region.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::privacy {

/// Seconds of a visit interval spent in the night window (22:00-06:00 UTC)
/// and in the weekday working window (09:00-18:00 UTC, Monday-Friday).
struct DwellSplit {
  double night_s = 0.0;
  double workday_s = 0.0;
};

/// Splits one visit interval by time-of-day/week. Exposed for testing.
DwellSplit split_dwell(std::int64_t enter_s, std::int64_t exit_s);

/// Result of home/work inference over one user's extracted PoIs.
struct HomeWorkResult {
  int home_index = -1;  ///< Index into the input PoI vector, -1 if unresolved.
  int work_index = -1;
  RegionId home_region = -1;
  RegionId work_region = -1;
  double home_night_s = 0.0;   ///< Overnight dwell supporting the home call.
  double work_workday_s = 0.0; ///< Working-hours dwell supporting the work call.

  bool resolved() const { return home_index >= 0 && work_index >= 0; }
};

/// Infers home (the PoI with the most overnight dwell) and work (the most
/// weekday working-hours dwell among the remaining PoIs). Either index is
/// -1 when no PoI has any dwell in the corresponding window.
HomeWorkResult infer_home_work(const std::vector<poi::Poi>& pois,
                               const RegionGrid& grid);

/// Golle-Partridge: how many members of `population` share `user`'s
/// (home region, work region) pair — the user's anonymity set including
/// themselves. Unresolved members never match anyone. Precondition:
/// user < population.size() and population[user].resolved().
std::size_t pair_anonymity_set(const std::vector<HomeWorkResult>& population,
                               std::size_t user);

/// Hoh-style tracking statistics: a fix chain stays "trackable" while the
/// gap to the next fix is at most `max_gap_s` and the implied speed at most
/// `max_speed_mps`; each maximal trackable chain's duration is a tracking
/// episode. Mean/median/max episode length measure how long the adversary
/// follows the user before confusion.
struct TrackingStats {
  std::size_t episode_count = 0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double max_s = 0.0;
};

/// Computes tracking episodes over a time-ordered fix stream.
/// Preconditions: max_gap_s > 0, max_speed_mps > 0.
TrackingStats time_to_confusion(const std::vector<trace::TracePoint>& points,
                                std::int64_t max_gap_s, double max_speed_mps);

}  // namespace locpriv::privacy
