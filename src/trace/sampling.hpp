// Access-frequency simulation and measurement-noise models.
//
// The paper's central experimental knob is the interval at which a
// background app refreshes location (1 s ... 7,200 s). Decimating the
// full-rate ground-truth trace at a fixed interval models exactly what such
// an app collects; prefix/offset selection models Figure 4's "from the
// start" vs "from a random position" conditions.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::trace {

/// Keeps the first fix at or after `start_s`, then greedily the next fix at
/// least `interval_s` later, and so on — the trace an app polling every
/// `interval_s` seconds would observe. Interval 1 with start at the first
/// fix reproduces the full trace for 1 Hz ground truth.
/// Preconditions: interval_s > 0.
std::vector<TracePoint> decimate(const std::vector<TracePoint>& points,
                                 std::int64_t interval_s, std::int64_t start_s);

/// Convenience overload starting at the first fix.
std::vector<TracePoint> decimate(const std::vector<TracePoint>& points,
                                 std::int64_t interval_s);

/// First `fraction` of the points (by count). fraction in [0, 1].
std::vector<TracePoint> take_prefix_fraction(const std::vector<TracePoint>& points,
                                             double fraction);

/// Points from a random starting index to the end; models an app installed
/// partway through the observation period (Figure 4(b)).
std::vector<TracePoint> from_random_offset(const std::vector<TracePoint>& points,
                                           stats::Rng& rng);

/// Adds zero-mean Gaussian position noise of `sigma_m` meters per axis to
/// every fix (GPS measurement error). sigma_m >= 0.
std::vector<TracePoint> add_gaussian_noise(const std::vector<TracePoint>& points,
                                           double sigma_m, stats::Rng& rng);

/// Drops each fix independently with probability `loss_rate` (urban-canyon
/// style outages). loss_rate in [0, 1].
std::vector<TracePoint> drop_random(const std::vector<TracePoint>& points,
                                    double loss_rate, stats::Rng& rng);

}  // namespace locpriv::trace
