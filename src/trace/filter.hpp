// GPS trace cleaning. Real recordings (and realistic simulations of them)
// contain teleport outliers — multipath fixes kilometres off — and bursts
// of duplicated fixes. Extraction quality depends on removing them, so the
// cleaning steps live in the library rather than in ad-hoc scripts.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trajectory.hpp"

namespace locpriv::trace {

/// Removes fixes whose implied speed from the previous *kept* fix exceeds
/// `max_speed_mps` (teleport outliers). The first fix is always kept.
/// Precondition: max_speed_mps > 0.
std::vector<TracePoint> filter_by_speed(const std::vector<TracePoint>& points,
                                        double max_speed_mps);

/// Collapses runs of fixes that share a timestamp, keeping the first of
/// each run (duplicate suppression for loggers that double-write).
std::vector<TracePoint> dedupe_timestamps(const std::vector<TracePoint>& points);

/// Result of a cleaning pass.
struct CleaningReport {
  std::size_t input_fixes = 0;
  std::size_t speed_outliers = 0;
  std::size_t duplicates = 0;
  std::vector<TracePoint> cleaned;
};

/// Standard cleaning: dedupe, then speed-filter at `max_speed_mps`
/// (default 70 m/s — faster than any urban transport, slower than a
/// multipath teleport).
CleaningReport clean_trace(const std::vector<TracePoint>& points,
                           double max_speed_mps = 70.0);

}  // namespace locpriv::trace
