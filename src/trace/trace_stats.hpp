// Dataset-level statistics, used to validate that the synthetic dataset
// matches the Geolife characteristics the paper relies on (182 users, ~91 %
// of fixes sampled every 1-5 s, ~1.2 M km total).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trajectory.hpp"

namespace locpriv::trace {

/// Aggregate statistics for a set of user traces.
struct DatasetStats {
  std::size_t user_count = 0;
  std::size_t trajectory_count = 0;
  std::size_t point_count = 0;
  double total_length_km = 0.0;
  double total_duration_hours = 0.0;
  /// Fraction of consecutive-fix intervals that are 1..5 seconds.
  double high_frequency_fraction = 0.0;
  /// Median of consecutive-fix intervals in seconds (0 if < 2 points).
  double median_interval_s = 0.0;
};

/// Computes aggregate statistics over `users`.
DatasetStats compute_dataset_stats(const std::vector<UserTrace>& users);

/// All consecutive-fix intervals (seconds) within trajectories of one user.
std::vector<double> sampling_intervals_s(const UserTrace& user);

}  // namespace locpriv::trace
