#include "trace/trajectory.hpp"

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::trace {

Trajectory::Trajectory(std::vector<TracePoint> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i)
    LOCPRIV_EXPECT(points_[i - 1].timestamp_s <= points_[i].timestamp_s);
}

void Trajectory::append(const TracePoint& point) {
  LOCPRIV_EXPECT(points_.empty() || points_.back().timestamp_s <= point.timestamp_s);
  points_.push_back(point);
}

std::int64_t Trajectory::duration_s() const {
  if (points_.size() < 2) return 0;
  return points_.back().timestamp_s - points_.front().timestamp_s;
}

double Trajectory::length_m() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    total += geo::haversine_m(points_[i - 1].position, points_[i].position);
  return total;
}

std::vector<Trajectory> Trajectory::split_on_gaps(std::int64_t max_gap_s) const {
  LOCPRIV_EXPECT(max_gap_s > 0);
  std::vector<Trajectory> segments;
  Trajectory current;
  for (const auto& point : points_) {
    if (!current.empty() && point.timestamp_s - current.back().timestamp_s > max_gap_s) {
      segments.push_back(std::move(current));
      current = Trajectory();
    }
    current.append(point);
  }
  if (!current.empty()) segments.push_back(std::move(current));
  return segments;
}

std::size_t UserTrace::total_points() const {
  std::size_t total = 0;
  for (const auto& trajectory : trajectories) total += trajectory.size();
  return total;
}

std::vector<TracePoint> UserTrace::flattened() const {
  std::vector<TracePoint> all;
  all.reserve(total_points());
  for (const auto& trajectory : trajectories)
    all.insert(all.end(), trajectory.begin(), trajectory.end());
  for (std::size_t i = 1; i < all.size(); ++i)
    LOCPRIV_EXPECT(all[i - 1].timestamp_s <= all[i].timestamp_s);
  return all;
}

}  // namespace locpriv::trace
