// Geolife .plt trajectory format.
//
// The paper evaluates on the Geolife GPS dataset (182 users, 17,621
// trajectories). The dataset itself is not redistributable, so this repo
// synthesises a Geolife-like dataset (src/mobility); the reader/writer here
// lets the full pipeline run unchanged on the real dataset when a copy is
// available, and round-trips the synthetic one through the identical format.
//
// PLT layout (per the Geolife user guide): six header lines, then records
//   lat,lon,0,altitude_ft,days_since_1899-12-30,date,time
// e.g. "39.906631,116.385564,0,492,39745.0902,2008-10-24,02:09:59".
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trajectory.hpp"

namespace locpriv::trace {

/// Days between the PLT epoch (1899-12-30) and the Unix epoch (1970-01-01).
inline constexpr double kPltEpochToUnixDays = 25569.0;

/// Converts a PLT fractional-day timestamp to Unix seconds (rounded).
std::int64_t plt_days_to_unix_s(double days_since_1899);

/// Converts Unix seconds to a PLT fractional-day timestamp.
double unix_s_to_plt_days(std::int64_t unix_s);

/// Parses one .plt document from memory. Tolerates LF, CRLF, and lone-CR
/// line endings and any number of trailing blank lines (all present in real
/// Geolife downloads); throws std::runtime_error with the offending line
/// number on genuinely malformed records.
Trajectory parse_plt(std::string_view text);

/// Serialises a trajectory to .plt text (Geolife header + records).
std::string write_plt(const Trajectory& trajectory);

/// One file the lenient reader set aside instead of loading.
struct QuarantinedFile {
  std::filesystem::path path;
  std::string error;
};

/// Structured outcome of a dataset load.
struct IngestReport {
  std::size_t files_scanned = 0;   ///< .plt files considered.
  std::size_t files_loaded = 0;    ///< Parsed into a non-empty trajectory.
  std::size_t empty_files = 0;     ///< Parsed fine but held no records.
  std::size_t points_loaded = 0;   ///< Total fixes across loaded files.
  std::size_t users_loaded = 0;    ///< Users with at least one trajectory.
  std::vector<QuarantinedFile> quarantined;  ///< Lenient mode only.

  bool clean() const { return quarantined.empty(); }
};

/// Dataset-read behaviour.
struct ReadOptions {
  /// Strict (default): the first unreadable or corrupt file throws. Lenient:
  /// such files are quarantined into the report and the rest of the corpus
  /// still loads — how a production ingest survives a damaged download.
  bool lenient = false;
  /// Worker cap for per-file parsing (0 = hardware concurrency).
  unsigned max_threads = 0;
};

/// Reads a whole Geolife-layout dataset: root/<user_id>/Trajectory/*.plt.
/// Users are returned sorted by id; each user's trajectories sorted by
/// start time. Files are parsed in parallel (deterministic output order).
/// Throws std::runtime_error if root does not exist; per-file errors follow
/// `options.lenient`. When `report` is non-null it receives the ingest
/// summary in both modes.
std::vector<UserTrace> read_geolife_dataset(const std::filesystem::path& root,
                                            const ReadOptions& options,
                                            IngestReport* report = nullptr);

/// Strict-mode convenience overload (the original API).
std::vector<UserTrace> read_geolife_dataset(const std::filesystem::path& root);

/// Writes a dataset in Geolife layout under `root` (created if needed).
void write_geolife_dataset(const std::filesystem::path& root,
                           const std::vector<UserTrace>& users);

}  // namespace locpriv::trace
