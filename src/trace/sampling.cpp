#include "trace/sampling.hpp"

#include <cmath>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::trace {

std::vector<TracePoint> decimate(const std::vector<TracePoint>& points,
                                 std::int64_t interval_s, std::int64_t start_s) {
  LOCPRIV_EXPECT(interval_s > 0);
  std::vector<TracePoint> out;
  std::int64_t next_due = start_s;
  for (const auto& point : points) {
    if (point.timestamp_s < next_due) continue;
    out.push_back(point);
    next_due = point.timestamp_s + interval_s;
  }
  return out;
}

std::vector<TracePoint> decimate(const std::vector<TracePoint>& points,
                                 std::int64_t interval_s) {
  if (points.empty()) return {};
  return decimate(points, interval_s, points.front().timestamp_s);
}

std::vector<TracePoint> take_prefix_fraction(const std::vector<TracePoint>& points,
                                             double fraction) {
  LOCPRIV_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto keep = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(points.size())));
  return {points.begin(), points.begin() + static_cast<std::ptrdiff_t>(keep)};
}

std::vector<TracePoint> from_random_offset(const std::vector<TracePoint>& points,
                                           stats::Rng& rng) {
  if (points.empty()) return {};
  const auto start = static_cast<std::size_t>(rng.next_below(points.size()));
  return {points.begin() + static_cast<std::ptrdiff_t>(start), points.end()};
}

std::vector<TracePoint> add_gaussian_noise(const std::vector<TracePoint>& points,
                                           double sigma_m, stats::Rng& rng) {
  LOCPRIV_EXPECT(sigma_m >= 0.0);
  std::vector<TracePoint> out;
  out.reserve(points.size());
  for (const auto& point : points) {
    const double east = rng.normal(0.0, sigma_m);
    const double north = rng.normal(0.0, sigma_m);
    const double distance = std::sqrt(east * east + north * north);
    const double bearing = geo::rad_to_deg(std::atan2(east, north));
    TracePoint noisy = point;
    if (distance > 0.0)
      noisy.position = geo::destination(point.position, bearing, distance);
    out.push_back(noisy);
  }
  return out;
}

std::vector<TracePoint> drop_random(const std::vector<TracePoint>& points,
                                    double loss_rate, stats::Rng& rng) {
  LOCPRIV_EXPECT(loss_rate >= 0.0 && loss_rate <= 1.0);
  std::vector<TracePoint> out;
  out.reserve(points.size());
  for (const auto& point : points)
    if (!rng.bernoulli(loss_rate)) out.push_back(point);
  return out;
}

}  // namespace locpriv::trace
