// Trajectory data model.
//
// A TracePoint is one GPS fix (position + Unix timestamp in seconds). A
// Trajectory is a time-ordered sequence of fixes, matching one Geolife .plt
// file (one recording session). A UserTrace is all trajectories of one user.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/latlon.hpp"

namespace locpriv::trace {

/// One GPS fix.
struct TracePoint {
  geo::LatLon position;
  std::int64_t timestamp_s = 0;  ///< Unix time, seconds.

  friend bool operator==(const TracePoint&, const TracePoint&) = default;
};

/// A time-ordered sequence of GPS fixes. Maintains the invariant that
/// timestamps are non-decreasing (append enforces it).
class Trajectory {
 public:
  Trajectory() = default;

  /// Builds from points; they must already be in non-decreasing time order.
  explicit Trajectory(std::vector<TracePoint> points);

  /// Appends a fix. Precondition: its timestamp is >= the last one's.
  void append(const TracePoint& point);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const TracePoint& operator[](std::size_t i) const { return points_[i]; }
  const TracePoint& front() const { return points_.front(); }
  const TracePoint& back() const { return points_.back(); }
  const std::vector<TracePoint>& points() const { return points_; }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  /// Elapsed time in seconds between first and last fix (0 for < 2 points).
  std::int64_t duration_s() const;

  /// Total path length in meters (haversine, 0 for < 2 points).
  double length_m() const;

  /// Splits at time gaps larger than `max_gap_s`: a trajectory with a long
  /// recording hole becomes several contiguous segments. Used to keep
  /// synthetic multi-day traces analogous to Geolife's per-session files.
  /// Precondition: max_gap_s > 0.
  std::vector<Trajectory> split_on_gaps(std::int64_t max_gap_s) const;

 private:
  std::vector<TracePoint> points_;
};

/// All trajectories of one user.
struct UserTrace {
  std::string user_id;
  std::vector<Trajectory> trajectories;

  /// Total fix count over all trajectories.
  std::size_t total_points() const;

  /// Concatenates all trajectories into one point list in global time
  /// order. Precondition: trajectories are mutually non-overlapping and
  /// stored in chronological order (both hold for Geolife and for the
  /// synthesiser output).
  std::vector<TracePoint> flattened() const;
};

}  // namespace locpriv::trace
