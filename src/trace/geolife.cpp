#include "trace/geolife.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/harness/atomic_file.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace locpriv::trace {

namespace fs = std::filesystem;

std::int64_t plt_days_to_unix_s(double days_since_1899) {
  return static_cast<std::int64_t>(
      std::llround((days_since_1899 - kPltEpochToUnixDays) * 86400.0));
}

double unix_s_to_plt_days(std::int64_t unix_s) {
  return static_cast<double>(unix_s) / 86400.0 + kPltEpochToUnixDays;
}

namespace {

[[noreturn]] void parse_error(std::size_t line_number, const std::string& detail) {
  std::ostringstream os;
  os << "PLT parse error at line " << line_number << ": " << detail;
  throw std::runtime_error(os.str());
}

// Formats Unix seconds as the "YYYY-MM-DD" and "HH:MM:SS" columns.
void format_date_time(std::int64_t unix_s, std::string& date, std::string& time) {
  const auto t = static_cast<std::time_t>(unix_s);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", tm_utc.tm_year + 1900,
                tm_utc.tm_mon + 1, tm_utc.tm_mday);
  date = buffer;
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d", tm_utc.tm_hour, tm_utc.tm_min,
                tm_utc.tm_sec);
  time = buffer;
}

}  // namespace

Trajectory parse_plt(std::string_view text) {
  std::vector<TracePoint> points;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Accept LF, CRLF, and lone-CR terminators: real Geolife downloads mix
    // them, and a lone-CR file would otherwise parse as one giant "header"
    // line and silently yield an empty trajectory.
    std::size_t end = text.find_first_of("\r\n", pos);
    std::size_t next;
    if (end == std::string_view::npos) {
      end = text.size();
      next = end;
    } else {
      next = end + 1;
      if (text[end] == '\r' && next < text.size() && text[next] == '\n') ++next;
    }
    std::string_view line = util::trim(text.substr(pos, end - pos));
    pos = next;
    ++line_number;
    if (line_number <= 6) continue;  // Fixed-size prose header.
    if (line.empty()) continue;
    const auto fields = util::split(line, ',');
    if (fields.size() < 5) parse_error(line_number, "expected >= 5 fields");
    double lat = 0.0;
    double lon = 0.0;
    double days = 0.0;
    if (!util::parse_double(fields[0], lat)) parse_error(line_number, "bad latitude");
    if (!util::parse_double(fields[1], lon)) parse_error(line_number, "bad longitude");
    if (!util::parse_double(fields[4], days)) parse_error(line_number, "bad timestamp");
    if (lat < -90.0 || lat > 90.0) parse_error(line_number, "latitude out of range");
    if (lon < -180.0 || lon > 180.0) parse_error(line_number, "longitude out of range");
    points.push_back(TracePoint{{lat, lon}, plt_days_to_unix_s(days)});
  }
  // Geolife files are chronological, but tolerate duplicated timestamps and
  // occasional clock jitter by stable-sorting before constructing.
  std::stable_sort(points.begin(), points.end(),
                   [](const TracePoint& a, const TracePoint& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return Trajectory(std::move(points));
}

std::string write_plt(const Trajectory& trajectory) {
  std::ostringstream os;
  os << "Geolife trajectory\n"
        "WGS 84\n"
        "Altitude is in Feet\n"
        "Reserved 3\n"
        "0,2,255,My Track,0,0,2,8421376\n"
     << trajectory.size() << '\n';
  for (const auto& point : trajectory) {
    std::string date;
    std::string time;
    format_date_time(point.timestamp_s, date, time);
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%.6f,%.6f,0,0,%.10f,%s,%s\n",
                  point.position.lat_deg, point.position.lon_deg,
                  unix_s_to_plt_days(point.timestamp_s), date.c_str(), time.c_str());
    os << buffer;
  }
  return os.str();
}

std::vector<UserTrace> read_geolife_dataset(const fs::path& root,
                                            const ReadOptions& options,
                                            IngestReport* report) {
  if (!fs::exists(root))
    throw std::runtime_error("Geolife root does not exist: " + root.string());

  // Enumerate first (sorted, sequential) so the parse fan-out below writes
  // into index-keyed slots and the result is identical at any thread count.
  struct FileSlot {
    std::size_t user_index = 0;
    fs::path path;
    Trajectory trajectory;
    std::string error;
    bool failed = false;
  };
  std::vector<fs::path> user_dirs;
  for (const auto& entry : fs::directory_iterator(root))
    if (entry.is_directory()) user_dirs.push_back(entry.path());
  std::sort(user_dirs.begin(), user_dirs.end());

  std::vector<UserTrace> staged(user_dirs.size());
  std::vector<FileSlot> slots;
  for (std::size_t u = 0; u < user_dirs.size(); ++u) {
    staged[u].user_id = user_dirs[u].filename().string();
    const fs::path trajectory_dir = user_dirs[u] / "Trajectory";
    if (!fs::exists(trajectory_dir)) continue;
    std::vector<fs::path> plt_files;
    for (const auto& entry : fs::directory_iterator(trajectory_dir))
      if (entry.is_regular_file() && entry.path().extension() == ".plt")
        plt_files.push_back(entry.path());
    std::sort(plt_files.begin(), plt_files.end());
    for (auto& file : plt_files) slots.push_back({u, std::move(file), {}, {}, false});
  }

  IngestReport ingest;
  ingest.files_scanned = slots.size();

  util::parallel_for(
      slots.size(),
      [&](std::size_t i) {
        FileSlot& slot = slots[i];
        try {
          std::ifstream in(slot.path, std::ios::binary);
          if (!in) throw std::runtime_error("cannot open " + slot.path.string());
          std::ostringstream buffer;
          buffer << in.rdbuf();
          slot.trajectory = parse_plt(buffer.str());
        } catch (const std::exception& error) {
          if (!options.lenient)
            throw std::runtime_error(slot.path.string() + ": " + error.what());
          slot.failed = true;
          slot.error = error.what();
        }
      },
      options.max_threads);

  for (FileSlot& slot : slots) {
    if (slot.failed) {
      ingest.quarantined.push_back({std::move(slot.path), std::move(slot.error)});
      continue;
    }
    if (slot.trajectory.empty()) {
      ++ingest.empty_files;
      continue;
    }
    ++ingest.files_loaded;
    ingest.points_loaded += slot.trajectory.size();
    staged[slot.user_index].trajectories.push_back(std::move(slot.trajectory));
  }

  std::vector<UserTrace> users;
  for (UserTrace& user : staged) {
    if (user.trajectories.empty()) continue;
    std::sort(user.trajectories.begin(), user.trajectories.end(),
              [](const Trajectory& a, const Trajectory& b) {
                return a.front().timestamp_s < b.front().timestamp_s;
              });
    users.push_back(std::move(user));
  }
  ingest.users_loaded = users.size();
  if (report != nullptr) *report = std::move(ingest);
  return users;
}

std::vector<UserTrace> read_geolife_dataset(const fs::path& root) {
  return read_geolife_dataset(root, ReadOptions{});
}

void write_geolife_dataset(const fs::path& root, const std::vector<UserTrace>& users) {
  for (const auto& user : users) {
    const fs::path trajectory_dir = root / user.user_id / "Trajectory";
    fs::create_directories(trajectory_dir);
    std::size_t index = 0;
    for (const auto& trajectory : user.trajectories) {
      char name[32];
      std::snprintf(name, sizeof(name), "%06zu.plt", index++);
      // Atomic publish: a full disk or kill mid-write must not leave a
      // truncated .plt that a later ingest would parse as a short (but
      // plausible) trajectory.
      harness::write_file_atomic(trajectory_dir / name, write_plt(trajectory));
    }
  }
}

}  // namespace locpriv::trace
