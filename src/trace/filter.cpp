#include "trace/filter.hpp"

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::trace {

std::vector<TracePoint> filter_by_speed(const std::vector<TracePoint>& points,
                                        double max_speed_mps) {
  LOCPRIV_EXPECT(max_speed_mps > 0.0);
  std::vector<TracePoint> kept;
  kept.reserve(points.size());
  for (const auto& point : points) {
    if (!kept.empty()) {
      const auto dt = point.timestamp_s - kept.back().timestamp_s;
      const double distance = geo::haversine_m(kept.back().position, point.position);
      // Zero-dt pairs cannot define a speed; treat any displacement beyond
      // plausible GPS noise (~100 m) as an outlier there.
      const bool outlier = dt <= 0 ? distance > 100.0
                                   : distance / static_cast<double>(dt) > max_speed_mps;
      if (outlier) continue;
    }
    kept.push_back(point);
  }
  return kept;
}

std::vector<TracePoint> dedupe_timestamps(const std::vector<TracePoint>& points) {
  std::vector<TracePoint> kept;
  kept.reserve(points.size());
  for (const auto& point : points) {
    if (!kept.empty() && kept.back().timestamp_s == point.timestamp_s) continue;
    kept.push_back(point);
  }
  return kept;
}

CleaningReport clean_trace(const std::vector<TracePoint>& points,
                           double max_speed_mps) {
  CleaningReport report;
  report.input_fixes = points.size();
  const auto deduped = dedupe_timestamps(points);
  report.duplicates = points.size() - deduped.size();
  report.cleaned = filter_by_speed(deduped, max_speed_mps);
  report.speed_outliers = deduped.size() - report.cleaned.size();
  return report;
}

}  // namespace locpriv::trace
