#include "trace/trace_stats.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace locpriv::trace {

std::vector<double> sampling_intervals_s(const UserTrace& user) {
  std::vector<double> intervals;
  for (const auto& trajectory : user.trajectories)
    for (std::size_t i = 1; i < trajectory.size(); ++i)
      intervals.push_back(static_cast<double>(trajectory[i].timestamp_s -
                                              trajectory[i - 1].timestamp_s));
  return intervals;
}

DatasetStats compute_dataset_stats(const std::vector<UserTrace>& users) {
  DatasetStats stats;
  stats.user_count = users.size();
  std::vector<double> all_intervals;
  for (const auto& user : users) {
    stats.trajectory_count += user.trajectories.size();
    stats.point_count += user.total_points();
    for (const auto& trajectory : user.trajectories) {
      stats.total_length_km += trajectory.length_m() / 1000.0;
      stats.total_duration_hours += static_cast<double>(trajectory.duration_s()) / 3600.0;
    }
    auto intervals = sampling_intervals_s(user);
    all_intervals.insert(all_intervals.end(), intervals.begin(), intervals.end());
  }
  if (!all_intervals.empty()) {
    const auto high_frequency =
        std::count_if(all_intervals.begin(), all_intervals.end(),
                      [](double v) { return v >= 1.0 && v <= 5.0; });
    stats.high_frequency_fraction =
        static_cast<double>(high_frequency) / static_cast<double>(all_intervals.size());
    stats.median_interval_s = stats::quantile(all_intervals, 0.5);
  }
  return stats;
}

}  // namespace locpriv::trace
