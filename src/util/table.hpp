// Fixed-width console table used by the bench binaries to print reproduced
// paper tables / figure series in a readable, diff-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace locpriv::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// Numeric cells should be pre-formatted by the caller (format_fixed etc.)
/// so the table stays a purely presentational component.
class ConsoleTable {
 public:
  /// Creates a table with the given column headers.
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Appends one row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// The column headers / accumulated rows, e.g. for CSV export of the
  /// same series the table renders.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the table (headers, separator, rows) to `out`.
  void print(std::ostream& out) const;

  /// Renders to a string; convenient in tests.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner like "== Table I: ... ==" used between bench
/// outputs so the combined bench log is navigable.
void print_banner(std::ostream& out, const std::string& title);

}  // namespace locpriv::util
