// Minimal leveled logger. A single process-wide sink (stderr by default) with
// a runtime-settable threshold; formatting is plain ostream insertion so the
// library adds no dependencies. Not a singleton class (I.3) — free functions
// over one translation-unit-local state object, configured once at startup.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace locpriv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns a short uppercase tag for a level ("DEBUG", "INFO", ...).
std::string_view log_level_name(LogLevel level);

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold.
LogLevel log_level();

/// Emits one formatted line to the log sink if `level` passes the threshold.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Redirects the sink (nullptr restores stderr) and returns the previous
/// one. For tests that need to hammer the logger without spamming the test
/// output — e.g. the fork-safety regression around shard respawn.
std::FILE* set_log_sink_for_testing(std::FILE* sink);

/// Fork-safety bracket: holds the sink mutex for its lifetime so no other
/// thread can be mid-emission at the instant of a fork(2) — a child forked
/// while another thread held the sink lock would inherit it locked and
/// deadlock on its first log line. The harness supervisor constructs one
/// around each fork; the child must still never log through the inherited
/// sink (it sets the level to kOff as its first action, which short-circuits
/// log_line before the mutex is touched).
class LogForkGuard {
 public:
  LogForkGuard();
  ~LogForkGuard();
  LogForkGuard(const LogForkGuard&) = delete;
  LogForkGuard& operator=(const LogForkGuard&) = delete;
};

/// Builder used by the LOCPRIV_LOG macro; collects a message via `<<`.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace locpriv::util

#define LOCPRIV_LOG(level, component) \
  ::locpriv::util::LogMessage(::locpriv::util::LogLevel::level, component)
