#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace locpriv::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool parse_double(std::string_view text, double& out) {
  text = trim(text);
  if (text.empty()) return false;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return false;
  out = value;
  return true;
}

bool parse_int64(std::string_view text, long long& out) {
  text = trim(text);
  if (text.empty()) return false;
  long long value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return false;
  out = value;
  return true;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

}  // namespace locpriv::util
