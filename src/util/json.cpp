#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/expect.hpp"

namespace locpriv::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (key_pending_) return;  // Value follows its key directly.
  if (!stack_.empty() && has_items_.back()) out_ += ',';
  if (!stack_.empty()) has_items_.back() = true;
}

void JsonWriter::begin_object() {
  comma_if_needed();
  key_pending_ = false;
  out_ += '{';
  stack_.push_back('o');
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  LOCPRIV_EXPECT(!stack_.empty() && stack_.back() == 'o');
  LOCPRIV_EXPECT(!key_pending_);
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  comma_if_needed();
  key_pending_ = false;
  out_ += '[';
  stack_.push_back('a');
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  LOCPRIV_EXPECT(!stack_.empty() && stack_.back() == 'a');
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  LOCPRIV_EXPECT(!stack_.empty() && stack_.back() == 'o');
  LOCPRIV_EXPECT(!key_pending_);
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::value(std::string_view text) {
  comma_if_needed();
  key_pending_ = false;
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
}

void JsonWriter::value(double number) {
  comma_if_needed();
  key_pending_ = false;
  LOCPRIV_EXPECT(std::isfinite(number));
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", number);
  out_ += buffer;
}

void JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  key_pending_ = false;
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  key_pending_ = false;
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma_if_needed();
  key_pending_ = false;
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  key_pending_ = false;
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  LOCPRIV_EXPECT(stack_.empty());
  return out_;
}

}  // namespace locpriv::util
