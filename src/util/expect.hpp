// Precondition / postcondition helpers in the spirit of the C++ Core
// Guidelines (I.6 / I.8). Violations indicate a programming error, so they
// throw std::logic_error with location context rather than silently
// continuing; callers treat them as bugs, not recoverable conditions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string_view>

namespace locpriv::util {

/// Thrown when a stated precondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(std::string_view kind, std::string_view expr,
                                       std::string_view file, int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace locpriv::util

/// State a precondition. `LOCPRIV_EXPECT(n > 0)` throws ContractViolation on
/// violation. Kept enabled in all build types: these guard API misuse, and
/// the cost is negligible next to the work the guarded functions do.
#define LOCPRIV_EXPECT(expr)                                                      \
  do {                                                                            \
    if (!(expr))                                                                  \
      ::locpriv::util::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (false)

/// State a postcondition or internal invariant.
#define LOCPRIV_ENSURE(expr)                                                      \
  do {                                                                            \
    if (!(expr))                                                                  \
      ::locpriv::util::detail::contract_fail("postcondition", #expr, __FILE__, __LINE__); \
  } while (false)
