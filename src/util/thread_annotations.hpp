// Clang Thread Safety Analysis attribute macros (no-ops elsewhere). The
// LOCPRIV_ prefix keeps them collision-free; the spelling follows the clang
// documentation so the analysis semantics are exactly the documented ones.
//
// These only do something on capability-annotated types. libstdc++'s
// std::mutex carries no annotations, so code that wants the analysis uses
// the wrappers in util/sync.hpp (util::Mutex / util::MutexLock /
// util::CondVar) instead of std::mutex directly. Build with
// -DLOCPRIV_STATIC_ANALYSIS=ON under clang to turn violations into errors
// (-Wthread-safety -Werror=thread-safety).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LOCPRIV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LOCPRIV_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define LOCPRIV_CAPABILITY(x) LOCPRIV_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose lifetime holds a capability.
#define LOCPRIV_SCOPED_CAPABILITY LOCPRIV_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define LOCPRIV_GUARDED_BY(x) LOCPRIV_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define LOCPRIV_PT_GUARDED_BY(x) LOCPRIV_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering constraints between capabilities.
#define LOCPRIV_ACQUIRED_BEFORE(...) \
  LOCPRIV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define LOCPRIV_ACQUIRED_AFTER(...) \
  LOCPRIV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held on entry (and still held
/// on exit).
#define LOCPRIV_REQUIRES(...) \
  LOCPRIV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires/releases the listed capabilities.
#define LOCPRIV_ACQUIRE(...) \
  LOCPRIV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define LOCPRIV_RELEASE(...) \
  LOCPRIV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define LOCPRIV_TRY_ACQUIRE(...) \
  LOCPRIV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (non-reentrancy / deadlock guard).
#define LOCPRIV_EXCLUDES(...) \
  LOCPRIV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define LOCPRIV_ASSERT_CAPABILITY(x) \
  LOCPRIV_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define LOCPRIV_RETURN_CAPABILITY(x) LOCPRIV_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Prefer fixing the
/// annotations; use only where the locking pattern is deliberately outside
/// the analysis' model.
#define LOCPRIV_NO_THREAD_SAFETY_ANALYSIS \
  LOCPRIV_THREAD_ANNOTATION__(no_thread_safety_analysis)
