// Minimal JSON writer (no parser — the library only emits JSON, for CLI
// consumers). Produces compact, valid output with correct string escaping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::util {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view text);

/// Builder for one JSON value tree. Usage:
///   JsonWriter json;
///   json.begin_object();
///   json.key("users");
///   json.value(182);
///   json.end_object();
///   json.str();
/// The builder validates nesting (begin/end pairing) via contracts.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key (must be inside an object, before its value).
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(std::uint64_t number);
  void value(bool flag);
  void null();

  /// Convenience: key + value in one call.
  template <typename T>
  void member(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  /// The finished document. Precondition: all scopes closed.
  const std::string& str() const;

 private:
  void comma_if_needed();

  std::string out_;
  // Stack of scopes: 'o' = object, 'a' = array; tracks whether the next
  // emission needs a separating comma and whether a key is pending.
  std::vector<char> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace locpriv::util
