// CSV reading/writing used by benches (to dump series for plotting) and by
// the Geolife PLT parser (PLT is a comma-separated format with a header).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::util {

/// A parsed CSV document: a header row (possibly empty) and data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Quoting rules: fields may be wrapped in double quotes,
/// inside which commas and doubled quotes ("") are literal. `has_header`
/// controls whether the first row populates `header` or `rows`.
CsvDocument parse_csv(std::string_view text, bool has_header);

/// Escapes a single field for CSV output (quotes when it contains a comma,
/// quote, or newline).
std::string csv_escape(std::string_view field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row, escaping each field.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

}  // namespace locpriv::util
