#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace locpriv::util {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_sink_mutex;

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_threshold.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %-5.*s %.*s: %.*s\n",
               static_cast<long long>(secs / 1000), static_cast<long long>(secs % 1000),
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace locpriv::util
