#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace locpriv::util {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

// The sink FILE* is the shared mutable state here: concurrent fprintf calls
// to the same stream may interleave bytes mid-line, so every emission holds
// g_sink_mutex. nullptr means "stderr", resolved under the lock, so the
// stream pointer read and the write it feeds are one critical section.
Mutex g_sink_mutex;
std::FILE* g_sink LOCPRIV_GUARDED_BY(g_sink_mutex) = nullptr;

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

std::FILE* set_log_sink_for_testing(std::FILE* sink) {
  const MutexLock lock(g_sink_mutex);
  std::FILE* previous = g_sink;
  g_sink = sink;
  return previous;
}

LogLevel log_level() { return g_threshold.load(std::memory_order_relaxed); }

// The guard acquires a TU-local capability the header cannot name, so the
// pair is excluded from the analysis instead of annotated.
LogForkGuard::LogForkGuard() LOCPRIV_NO_THREAD_SAFETY_ANALYSIS {
  g_sink_mutex.lock();
}

LogForkGuard::~LogForkGuard() LOCPRIV_NO_THREAD_SAFETY_ANALYSIS {
  g_sink_mutex.unlock();
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count();
  const MutexLock lock(g_sink_mutex);
  std::FILE* sink = g_sink == nullptr ? stderr : g_sink;
  std::fprintf(sink, "[%lld.%03lld] %-5.*s %.*s: %.*s\n",
               static_cast<long long>(secs / 1000), static_cast<long long>(secs % 1000),
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace locpriv::util
