// Minimal command-line argument parser for the tools/ binaries.
// Supports `--flag value`, `--flag=value`, and boolean `--flag`; positional
// arguments are collected in order. Unknown flags are an error, so typos
// fail loudly instead of silently running a default experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace locpriv::util {

/// Parsed command line.
class Args {
 public:
  /// Declares a value flag (e.g. "--users") with an optional default.
  void declare(const std::string& flag, std::string default_value);
  /// Declares a boolean flag (present/absent).
  void declare_bool(const std::string& flag);

  /// Parses argv[begin..argc). Throws std::runtime_error on unknown flags,
  /// missing values, or a value supplied to a boolean flag.
  void parse(int argc, const char* const* argv, int begin = 1);

  /// Value of a declared value flag (default if not supplied).
  /// Throws std::runtime_error if the flag was never declared.
  const std::string& get(const std::string& flag) const;

  /// Integer/double/bool accessors with validation.
  long long get_int(const std::string& flag) const;
  double get_double(const std::string& flag) const;
  bool get_bool(const std::string& flag) const;

  /// True if the user explicitly supplied the flag.
  bool supplied(const std::string& flag) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;     // flag -> current value.
  std::map<std::string, bool> booleans_;          // flag -> present.
  std::map<std::string, bool> supplied_;
  std::vector<std::string> positional_;
};

}  // namespace locpriv::util
