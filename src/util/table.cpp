#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/expect.hpp"

namespace locpriv::util {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LOCPRIV_EXPECT(!headers_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  LOCPRIV_EXPECT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  print_row(headers_);
  out << '|';
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string ConsoleTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace locpriv::util
