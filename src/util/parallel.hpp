// Deterministic data-parallel loop. Work is split into contiguous index
// chunks across hardware threads; callers write results into pre-sized
// slots keyed by index, so the output is identical to the sequential run
// regardless of thread count. Any randomness must be pre-derived per index
// (fork seeds sequentially, then run in parallel).
#pragma once

#include <cstddef>
#include <functional>

namespace locpriv::util {

/// Invokes `body(i)` for every i in [0, count). `body` runs concurrently
/// for distinct indices; it must not touch shared mutable state without
/// synchronisation. All workers are joined even when invocations throw;
/// every worker's exception is collected, the one from the lowest worker
/// index is rethrown on the caller's thread, and the rest are logged at
/// warn level (concurrent failures are never silently dropped).
///
/// `max_threads` caps the worker count (0 = hardware concurrency). Passing
/// 1 degenerates to a plain sequential loop, which is also the fallback
/// when count is small.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned max_threads = 0);

/// Like parallel_for, but indices are handed out one at a time from a shared
/// atomic cursor instead of pre-chunked. Use when the per-index cost is
/// heterogeneous (e.g. sweep cells that retry or back off), so a slow index
/// does not strand its statically assigned neighbours behind it. Outputs
/// keyed by index stay deterministic; the *visit order* is not, so bodies
/// must not append to shared sequences. Exception aggregation matches
/// parallel_for: all workers join, every failure is captured, the lowest
/// worker index's exception is rethrown and the rest are logged.
void parallel_for_dynamic(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          unsigned max_threads = 0);

}  // namespace locpriv::util
