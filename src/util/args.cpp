#include "util/args.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace locpriv::util {

void Args::declare(const std::string& flag, std::string default_value) {
  values_[flag] = std::move(default_value);
  supplied_[flag] = false;
}

void Args::declare_bool(const std::string& flag) {
  booleans_[flag] = false;
  supplied_[flag] = false;
}

void Args::parse(int argc, const char* const* argv, int begin) {
  for (int i = begin; i < argc; ++i) {
    std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string flag = token;
    std::optional<std::string> inline_value;
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      flag = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
    }
    if (booleans_.contains(flag)) {
      if (inline_value) throw std::runtime_error("boolean flag takes no value: " + flag);
      booleans_[flag] = true;
      supplied_[flag] = true;
      continue;
    }
    const auto it = values_.find(flag);
    if (it == values_.end()) throw std::runtime_error("unknown flag: " + flag);
    if (inline_value) {
      it->second = *inline_value;
    } else {
      if (i + 1 >= argc) throw std::runtime_error("missing value for flag: " + flag);
      it->second = argv[++i];
    }
    supplied_[flag] = true;
  }
}

const std::string& Args::get(const std::string& flag) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) throw std::runtime_error("undeclared flag: " + flag);
  return it->second;
}

long long Args::get_int(const std::string& flag) const {
  long long value = 0;
  if (!parse_int64(get(flag), value))
    throw std::runtime_error("flag " + flag + " expects an integer, got '" +
                             get(flag) + "'");
  return value;
}

double Args::get_double(const std::string& flag) const {
  double value = 0.0;
  if (!parse_double(get(flag), value))
    throw std::runtime_error("flag " + flag + " expects a number, got '" + get(flag) +
                             "'");
  return value;
}

bool Args::get_bool(const std::string& flag) const {
  const auto it = booleans_.find(flag);
  if (it == booleans_.end()) throw std::runtime_error("undeclared flag: " + flag);
  return it->second;
}

bool Args::supplied(const std::string& flag) const {
  const auto it = supplied_.find(flag);
  return it != supplied_.end() && it->second;
}

}  // namespace locpriv::util
