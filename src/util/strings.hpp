// Small string utilities shared by parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace locpriv::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; returns false (leaving `out` untouched) on any trailing
/// garbage or empty input instead of the partial-parse behaviour of strtod.
bool parse_double(std::string_view text, double& out);

/// Parses a signed 64-bit integer with the same strictness as parse_double.
bool parse_int64(std::string_view text, long long& out);

/// Formats `value` with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats a fraction in [0,1] as a percentage string like "27.5%".
std::string format_percent(double fraction, int digits = 1);

}  // namespace locpriv::util
