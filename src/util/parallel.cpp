#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace locpriv::util {

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned max_threads) {
  if (count == 0) return;
  unsigned threads = max_threads == 0 ? std::thread::hardware_concurrency() : max_threads;
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));

  // Tiny workloads are not worth the thread spawn.
  if (threads <= 1 || count < 4) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace locpriv::util
