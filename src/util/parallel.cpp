#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace locpriv::util {

namespace {

unsigned resolve_threads(std::size_t count, unsigned max_threads) {
  unsigned threads =
      max_threads == 0 ? std::thread::hardware_concurrency() : max_threads;
  if (threads == 0) threads = 1;
  return static_cast<unsigned>(std::min<std::size_t>(threads, count));
}

// One error slot per worker: every concurrent failure is captured, and
// "first" is deterministic (lowest worker index) rather than whichever
// thread lost the race to a shared mutex.
void rethrow_first_log_rest(const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr first_error;
  for (const std::exception_ptr& error : errors) {
    if (!error) continue;
    if (!first_error) {
      first_error = error;
      continue;
    }
    // Secondary failures would otherwise vanish; surface them in the log
    // before the primary one is rethrown.
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      LOCPRIV_LOG(kWarn, "parallel")
          << "additional worker exception suppressed: " << e.what();
      // Secondary failure: logged here, while the primary worker exception
      // is rethrown below. locpriv-lint: allow(swallowed-catch)
    } catch (...) {
      LOCPRIV_LOG(kWarn, "parallel")
          << "additional non-std worker exception suppressed";
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned max_threads) {
  if (count == 0) return;
  const unsigned threads = resolve_threads(count, max_threads);

  // Tiny workloads are not worth the thread spawn.
  if (threads <= 1 || count < 4) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, t, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  rethrow_first_log_rest(errors);
}

void parallel_for_dynamic(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          unsigned max_threads) {
  if (count == 0) return;
  const unsigned threads = resolve_threads(count, max_threads);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // A worker whose body throws stops pulling new indices, but the others
  // keep draining the cursor — a single failed sweep cell must not strand
  // the rest of the queue (the caller decides what a failure means).
  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (std::size_t i = cursor.fetch_add(1); i < count;
             i = cursor.fetch_add(1))
          body(i);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  rethrow_first_log_rest(errors);
}

}  // namespace locpriv::util
