#include "util/csv.hpp"

#include <ostream>

namespace locpriv::util {

namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record and
// its terminating newline. Handles quoted fields with embedded commas,
// newlines, and doubled quotes.
std::vector<std::string> parse_record(std::string_view text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
      ++pos;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume one line terminator (\n, \r, or \r\n) and finish the record.
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else {
      current += c;
      ++pos;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

CsvDocument parse_csv(std::string_view text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto record = parse_record(text, pos);
    // Skip completely empty trailing lines.
    if (record.size() == 1 && record[0].empty()) continue;
    if (first && has_header) {
      doc.header = std::move(record);
    } else {
      doc.rows.push_back(std::move(record));
    }
    first = false;
  }
  return doc;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace locpriv::util
