// Annotated synchronisation primitives: thin wrappers over std::mutex /
// std::condition_variable_any that carry the clang thread-safety attributes
// from util/thread_annotations.hpp. libstdc++'s std::mutex is not a
// capability, so locking it through std::lock_guard is invisible to the
// analysis; these wrappers make GUARDED_BY/REQUIRES checkable. New
// mutex-protected state should use util::Mutex, declare its guarded members
// with LOCPRIV_GUARDED_BY, and lock via util::MutexLock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace locpriv::util {

/// std::mutex as a clang capability. Same cost, same semantics; only the
/// type (and therefore the analysis) changes.
class LOCPRIV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LOCPRIV_ACQUIRE() { mutex_.lock(); }
  void unlock() LOCPRIV_RELEASE() { mutex_.unlock(); }
  bool try_lock() LOCPRIV_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock for Mutex (std::lock_guard shape, but visible to the analysis).
class LOCPRIV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LOCPRIV_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() LOCPRIV_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. Waits take the Mutex directly (it models
/// BasicLockable), so call sites keep their REQUIRES obligations explicit —
/// the wait atomically releases and reacquires, which is exactly what the
/// REQUIRES(mutex) contract (held on entry, held on exit) describes.
/// Spurious wakeups are possible; callers re-check their predicate in a
/// loop instead of passing lambdas the analysis cannot see into.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) LOCPRIV_REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mutex,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      LOCPRIV_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace locpriv::util
