// Shannon entropy and the degree-of-anonymity metric (paper Formulas 3-5,
// following Diaz et al. "Towards measuring anonymity").
#pragma once

#include <vector>

namespace locpriv::stats {

/// Shannon entropy in bits of a probability vector. Entries must be >= 0;
/// they are normalised internally, and zero entries contribute nothing.
/// Precondition: at least one entry > 0.
double shannon_entropy(const std::vector<double>& probabilities);

/// Maximum entropy of an anonymity set of `n` members: log2(n). n >= 1.
double max_entropy(std::size_t n);

/// Degree of anonymity H(X)/H_M in [0, 1] (paper Formula 5). `n` is the
/// number of profiles the adversary holds; `probabilities` is the posterior
/// over candidate profiles. A singleton set yields degree 0 by definition
/// (the user is fully identified).
double degree_of_anonymity(const std::vector<double>& probabilities, std::size_t n);

}  // namespace locpriv::stats
