// Special functions needed by the chi-square distribution: the regularised
// incomplete gamma functions P(a, x) and Q(a, x). Implemented from scratch
// (series expansion for x < a + 1, Lentz continued fraction otherwise) so the
// library has no dependency beyond <cmath>'s lgamma.
#pragma once

namespace locpriv::stats {

/// Regularised lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Preconditions: a > 0, x >= 0. Monotone in x from 0 to 1.
double regularized_gamma_p(double a, double x);

/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Natural log of the Gamma function (thin wrapper; centralises the call so
/// a custom implementation could be swapped in).
double log_gamma(double x);

}  // namespace locpriv::stats
