// Deterministic pseudo-random number generation.
//
// Everything stochastic in this repository (dataset synthesis, catalog
// generation, noise injection, sampling offsets) flows through Rng so that
// every experiment is bit-reproducible from a printed 64-bit seed. The
// generator is xoshiro256** seeded via SplitMix64, both public-domain
// algorithms; we implement them here rather than use std::mt19937 because
// the standard distributions are not bit-stable across library versions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace locpriv::stats {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator, but the distribution helpers below
/// should be preferred over <random> distributions for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next 64 uniform random bits.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform integer in [0, bound) using Lemire rejection (unbiased).
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean (>= 0); inversion for
  /// small means, normal approximation above 60.
  std::uint64_t poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Preconditions: weights non-empty, all weights >= 0, sum > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// user/app its own stream so adding one entity never perturbs another.
  /// (Declaration shares a POSIX spelling. locpriv-lint: allow(raw-process))
  Rng fork();

 private:
  std::uint64_t state_[4];
  // Cached second output of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace locpriv::stats
