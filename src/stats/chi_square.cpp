#include "stats/chi_square.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/expect.hpp"

namespace locpriv::stats {

double chi_square_cdf(double x, double dof) {
  LOCPRIV_EXPECT(dof > 0.0);
  LOCPRIV_EXPECT(x >= 0.0);
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double chi_square_survival(double x, double dof) {
  LOCPRIV_EXPECT(dof > 0.0);
  LOCPRIV_EXPECT(x >= 0.0);
  return regularized_gamma_q(dof / 2.0, x / 2.0);
}

double chi_square_quantile(double p, double dof) {
  LOCPRIV_EXPECT(p >= 0.0 && p < 1.0);
  LOCPRIV_EXPECT(dof > 0.0);
  if (p == 0.0) return 0.0;
  // Bracket the quantile, then bisect. The CDF is monotone so this is
  // robust, and quantiles are only evaluated at setup time (not per point).
  double hi = dof + 10.0 * std::sqrt(2.0 * dof) + 10.0;
  while (chi_square_cdf(hi, dof) < p) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi_square_cdf(mid, dof) < p) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

ChiSquareResult pearson_goodness_of_fit(const std::vector<double>& observed,
                                        const std::vector<double>& expected) {
  LOCPRIV_EXPECT(observed.size() == expected.size());
  LOCPRIV_EXPECT(!observed.empty());

  double observed_total = 0.0;
  double expected_total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    LOCPRIV_EXPECT(observed[i] >= 0.0);
    LOCPRIV_EXPECT(expected[i] >= 0.0);
    observed_total += observed[i];
    expected_total += expected[i];
  }
  LOCPRIV_EXPECT(observed_total > 0.0);
  LOCPRIV_EXPECT(expected_total > 0.0);

  const double scale = observed_total / expected_total;
  double statistic = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = expected[i] * scale;
    if (e <= 0.0) {
      // A category absent from the profile cannot contribute a finite term;
      // observing mass there is handled by the caller-side match logic (the
      // observed histogram having unknown keys already weakens the fit via
      // the rescaling of the remaining categories).
      continue;
    }
    const double diff = observed[i] - e;
    statistic += diff * diff / e;
    ++bins;
  }
  LOCPRIV_EXPECT(bins >= 2);

  ChiSquareResult result;
  result.statistic = statistic;
  result.bins = bins;
  result.dof = static_cast<double>(bins - 1);
  result.p_lower = chi_square_cdf(statistic, result.dof);
  result.p_upper = chi_square_survival(statistic, result.dof);
  return result;
}

}  // namespace locpriv::stats
