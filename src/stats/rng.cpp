#include "stats/rng.hpp"

#include <cmath>

namespace locpriv::stats {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot emit
  // four consecutive zeros, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LOCPRIV_EXPECT(bound > 0);
  // Lemire's multiply-then-reject method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LOCPRIV_EXPECT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range, i.e. any value is in range.
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LOCPRIV_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  LOCPRIV_EXPECT(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double mean) {
  LOCPRIV_EXPECT(mean > 0.0);
  return -mean * std::log1p(-uniform01());
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::uint64_t Rng::poisson(double mean) {
  LOCPRIV_EXPECT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 60.0) {
    // Inversion by sequential search.
    const double limit = std::exp(-mean);
    double product = uniform01();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= uniform01();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload-synthesis use cases in this repo.
  const double value = normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  LOCPRIV_EXPECT(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    LOCPRIV_EXPECT(w >= 0.0);
    total += w;
  }
  LOCPRIV_EXPECT(total > 0.0);
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last non-zero weight.
  for (std::size_t i = weights.size(); i > 0; --i)
    if (weights[i - 1] > 0.0) return i - 1;
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace locpriv::stats
