// Numeric histogram and empirical CDF. Figure 1 of the paper is a CDF of
// background request intervals; Figure 4(a,b) are CDF-like curves over the
// fraction of a profile an adversary needs — both are rendered from Ecdf.
#pragma once

#include <cstddef>
#include <vector>

namespace locpriv::stats {

/// Fixed-width binned histogram over doubles.
class BinnedHistogram {
 public:
  /// Bins [lo, hi) into `bin_count` equal-width bins; values outside the
  /// range are clamped into the first/last bin so no sample is dropped.
  /// Preconditions: lo < hi, bin_count > 0.
  BinnedHistogram(double lo, double hi, std::size_t bin_count);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  /// Inclusive lower edge of `bin`.
  double bin_lower(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double bin_upper(std::size_t bin) const;

  /// Counts normalised to fractions of the total (empty -> all zeros).
  std::vector<double> normalized() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF of a sample.
class Ecdf {
 public:
  /// Builds from a sample (copied and sorted). Precondition: non-empty.
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of samples <= x.
  double operator()(double x) const;

  /// Smallest sample value v with ECDF(v) >= q; q in (0, 1].
  double inverse(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_sample() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace locpriv::stats
