// Chi-square distribution and Pearson's goodness-of-fit test.
//
// The paper decides His_bin by comparing a histogram built from collected
// locations against the user's profile histogram with a chi-square
// goodness-of-fit test; it tests the *lower* tail (a small statistic means
// the observed histogram fits the profile suspiciously well, i.e. the
// released data exposes the user's habits). Both tails are exposed here so
// the ablation bench can contrast the choices.
#pragma once

#include <cstddef>
#include <vector>

namespace locpriv::stats {

/// CDF of the chi-square distribution with `dof` degrees of freedom,
/// evaluated at `x` (x >= 0, dof > 0). Equals P(dof/2, x/2).
double chi_square_cdf(double x, double dof);

/// Upper-tail probability 1 - CDF.
double chi_square_survival(double x, double dof);

/// Quantile (inverse CDF) via bisection; p in [0, 1), dof > 0.
double chi_square_quantile(double p, double dof);

/// Which tail of the statistic's distribution a test evaluates.
enum class ChiSquareTail {
  kLower,  // p = CDF(stat): small p means "fits better than chance" (paper).
  kUpper,  // p = 1 - CDF(stat): classical goodness-of-fit rejection.
};

/// Result of a Pearson goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;   ///< Pearson X^2 = sum (obs-exp)^2 / exp.
  double dof = 0.0;         ///< Degrees of freedom (bins - 1).
  double p_lower = 0.0;     ///< CDF(statistic) — lower-tail p-value.
  double p_upper = 0.0;     ///< 1 - CDF(statistic) — upper-tail p-value.
  std::size_t bins = 0;     ///< Number of categories that entered the test.

  /// p-value for the requested tail.
  double p_value(ChiSquareTail tail) const {
    return tail == ChiSquareTail::kLower ? p_lower : p_upper;
  }
};

/// Pearson chi-square goodness-of-fit of `observed` counts against
/// `expected` counts.
///
/// The expected counts are rescaled so both vectors have the same total mass
/// (the profile and the collected trace cover different durations, so raw
/// counts are not comparable). Categories with zero expected count after
/// rescaling are skipped; at least two usable categories are required.
///
/// Preconditions: observed.size() == expected.size(), all entries >= 0,
/// both totals > 0.
ChiSquareResult pearson_goodness_of_fit(const std::vector<double>& observed,
                                        const std::vector<double>& expected);

}  // namespace locpriv::stats
