#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace locpriv::stats {

double ks_survival(double lambda) {
  LOCPRIV_EXPECT(lambda >= 0.0);
  if (lambda < 1e-8) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(const std::vector<double>& counts_a,
                       const std::vector<double>& counts_b) {
  LOCPRIV_EXPECT(counts_a.size() == counts_b.size());
  LOCPRIV_EXPECT(counts_a.size() >= 2);
  double total_a = 0.0;
  double total_b = 0.0;
  for (std::size_t i = 0; i < counts_a.size(); ++i) {
    LOCPRIV_EXPECT(counts_a[i] >= 0.0);
    LOCPRIV_EXPECT(counts_b[i] >= 0.0);
    total_a += counts_a[i];
    total_b += counts_b[i];
  }
  LOCPRIV_EXPECT(total_a > 0.0);
  LOCPRIV_EXPECT(total_b > 0.0);

  KsResult result;
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  for (std::size_t i = 0; i < counts_a.size(); ++i) {
    cdf_a += counts_a[i] / total_a;
    cdf_b += counts_b[i] / total_b;
    result.statistic = std::max(result.statistic, std::abs(cdf_a - cdf_b));
  }
  result.effective_n = total_a * total_b / (total_a + total_b);
  const double lambda =
      (std::sqrt(result.effective_n) + 0.12 + 0.11 / std::sqrt(result.effective_n)) *
      result.statistic;
  result.p_value = ks_survival(lambda);
  return result;
}

}  // namespace locpriv::stats
