// Descriptive statistics over double samples: moments, quantiles, min/max.
#pragma once

#include <cstddef>
#include <vector>

namespace locpriv::stats {

/// Summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance; 0 when n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes mean of `values` (0 for empty input).
double mean(const std::vector<double>& values);

/// Unbiased sample variance (0 when fewer than two values).
double variance(const std::vector<double>& values);

/// Quantile with linear interpolation between order statistics.
/// Preconditions: values non-empty, q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Full summary in one pass plus a sort for the median.
Summary summarize(const std::vector<double>& values);

}  // namespace locpriv::stats
