#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace locpriv::stats {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double quantile(std::vector<double> values, double q) {
  LOCPRIV_EXPECT(!values.empty());
  LOCPRIV_EXPECT(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= values.size()) return values.back();
  const double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[lower + 1] * fraction;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.variance = variance(values);
  s.stddev = std::sqrt(s.variance);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.median = quantile(values, 0.5);
  return s;
}

}  // namespace locpriv::stats
