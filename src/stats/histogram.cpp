#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace locpriv::stats {

BinnedHistogram::BinnedHistogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bin_count)), counts_(bin_count, 0) {
  LOCPRIV_EXPECT(lo < hi);
  LOCPRIV_EXPECT(bin_count > 0);
}

void BinnedHistogram::add(double value) {
  double position = (value - lo_) / width_;
  if (position < 0.0) position = 0.0;
  auto bin = static_cast<std::size_t>(position);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

void BinnedHistogram::add_all(const std::vector<double>& values) {
  for (const double v : values) add(v);
}

std::size_t BinnedHistogram::count(std::size_t bin) const {
  LOCPRIV_EXPECT(bin < counts_.size());
  return counts_[bin];
}

double BinnedHistogram::bin_lower(std::size_t bin) const {
  LOCPRIV_EXPECT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double BinnedHistogram::bin_upper(std::size_t bin) const {
  LOCPRIV_EXPECT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::vector<double> BinnedHistogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return out;
}

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  LOCPRIV_EXPECT(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const {
  LOCPRIV_EXPECT(q > 0.0 && q <= 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

}  // namespace locpriv::stats
