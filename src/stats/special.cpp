#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace locpriv::stats {

double log_gamma(double x) { return std::lgamma(x); }

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series representation: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a)_{n+1}.
// Converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double denom = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    denom += 1.0;
    term *= x / denom;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction (modified Lentz): Q(a,x) for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  LOCPRIV_EXPECT(a > 0.0);
  LOCPRIV_EXPECT(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  LOCPRIV_EXPECT(a > 0.0);
  LOCPRIV_EXPECT(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

}  // namespace locpriv::stats
