// Two-sample Kolmogorov-Smirnov test over categorical histograms.
//
// The paper's His_bin uses Pearson's chi-square, which needs enough
// expected mass per category; the KS statistic over the (key-ordered)
// cumulative distributions is the standard sparse-data alternative, so the
// ablation bench contrasts the two matchers.
#pragma once

#include <cstddef>
#include <vector>

namespace locpriv::stats {

/// Result of a two-sample KS test.
struct KsResult {
  double statistic = 0.0;  ///< sup |F1 - F2| over the shared category order.
  double p_value = 0.0;    ///< Asymptotic two-sample p-value.
  double effective_n = 0.0;  ///< n1*n2/(n1+n2) used in the asymptotic formula.
};

/// Asymptotic KS survival function Q(lambda) = 2 sum (-1)^{k-1} e^{-2k^2 lambda^2}.
double ks_survival(double lambda);

/// Two-sample KS over aligned category counts (same index = same category,
/// in a fixed order shared by both samples). Totals are the sample sizes.
/// Preconditions: equal sizes >= 2, entries >= 0, both totals > 0.
KsResult ks_two_sample(const std::vector<double>& counts_a,
                       const std::vector<double>& counts_b);

}  // namespace locpriv::stats
