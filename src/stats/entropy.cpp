#include "stats/entropy.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace locpriv::stats {

double shannon_entropy(const std::vector<double>& probabilities) {
  double total = 0.0;
  for (const double p : probabilities) {
    LOCPRIV_EXPECT(p >= 0.0);
    total += p;
  }
  LOCPRIV_EXPECT(total > 0.0);
  double entropy = 0.0;
  for (const double p : probabilities) {
    if (p <= 0.0) continue;
    const double normalized = p / total;
    entropy -= normalized * std::log2(normalized);
  }
  return entropy;
}

double max_entropy(std::size_t n) {
  LOCPRIV_EXPECT(n >= 1);
  return std::log2(static_cast<double>(n));
}

double degree_of_anonymity(const std::vector<double>& probabilities, std::size_t n) {
  LOCPRIV_EXPECT(n >= 1);
  // With a single candidate profile the adversary has identified the user:
  // the paper defines the degree as zero in that case (and log2(1) = 0 would
  // otherwise make the ratio undefined).
  if (n == 1) return 0.0;
  const double h = shannon_entropy(probabilities);
  const double hm = max_entropy(n);
  const double degree = h / hm;
  return degree < 0.0 ? 0.0 : (degree > 1.0 ? 1.0 : degree);
}

}  // namespace locpriv::stats
