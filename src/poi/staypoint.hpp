// Spatio-Temporal stay-point extraction (the paper's Section IV.B algorithm,
// after Bamis & Savvides, RTSS'10).
//
// Three buffers slide over the fix stream: buf_Entry (the window where the
// user may be entering a place), buf_PoI (all fixes attributed to the stay)
// and buf_Exit (the window where the user may be leaving). Each buffer's
// centroid is the average of its fixes. The user has *entered* a stay when
// the centroid of buf_Entry and the centroid of its trailing half (the
// nascent buf_PoI — the two buffers overlap by half of buf_Entry, as in the
// paper) come closer than the distance threshold; the user has *exited*
// when the centroid of buf_Exit drifts farther than the threshold from the
// centroid of buf_PoI. A completed stay is kept only if it lasted at least
// the visiting-time threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlon.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::poi {

/// One extracted stay.
struct StayPoint {
  geo::LatLon centroid;       ///< Mean position of the stay's fixes.
  std::int64_t enter_s = 0;   ///< Time of the first attributed fix.
  std::int64_t exit_s = 0;    ///< Time of the last attributed fix.
  std::size_t fix_count = 0;  ///< Number of fixes attributed to the stay.

  std::int64_t duration_s() const { return exit_s - enter_s; }
};

/// Extraction parameters (paper Table III uses radius 50/100 m and visiting
/// time 10/20/30 min; parameter set 1 — 50 m / 10 min — is the paper's
/// choice for all later experiments).
struct ExtractionParams {
  double radius_m = 50.0;           ///< Centroid distance threshold.
  std::int64_t min_visit_s = 600;   ///< Minimum stay duration to keep.
  /// Entry/exit buffer length in fixes. Four (the minimum) keeps stays
  /// detectable from sparse, heavily decimated traces; the ablation bench
  /// sweeps larger windows.
  std::size_t window_fixes = 4;
};

/// The paper's Table III parameter grid, in order (set ids 1..6).
std::vector<ExtractionParams> table3_parameter_sets();

/// Extracts stay points from a time-ordered fix stream using the
/// three-buffer Spatio-Temporal algorithm described above.
/// Preconditions: points time-ordered; params.radius_m > 0,
/// params.min_visit_s > 0, params.window_fixes >= 4 and even.
std::vector<StayPoint> extract_stay_points(const std::vector<trace::TracePoint>& points,
                                           const ExtractionParams& params);

/// Baseline extractor (Zheng et al.'s anchor algorithm): anchor a fix,
/// extend while subsequent fixes stay within `radius_m` of the anchor, keep
/// the span if it lasts `min_visit_s`. Used by the ablation bench to compare
/// against the buffered algorithm (which tolerates centroid drift and GPS
/// noise better).
std::vector<StayPoint> extract_stay_points_anchor(
    const std::vector<trace::TracePoint>& points, const ExtractionParams& params);

}  // namespace locpriv::poi
