#include "poi/geojson.hpp"

#include <cstdio>
#include <sstream>

namespace locpriv::poi {

namespace {

// GeoJSON wants [lon, lat] order.
void append_coordinate(std::ostringstream& os, const geo::LatLon& p) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "[%.6f,%.6f]", p.lon_deg, p.lat_deg);
  os << buffer;
}

}  // namespace

std::string trajectory_to_geojson_feature(const trace::Trajectory& trajectory) {
  std::ostringstream os;
  os << R"({"type":"Feature","properties":{"fixes":)" << trajectory.size();
  if (!trajectory.empty())
    os << R"(,"start_s":)" << trajectory.front().timestamp_s << R"(,"end_s":)"
       << trajectory.back().timestamp_s;
  os << R"(},"geometry":{"type":"LineString","coordinates":[)";
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    if (i != 0) os << ',';
    append_coordinate(os, trajectory[i].position);
  }
  os << "]}}";
  return os.str();
}

std::string to_geojson(const trace::UserTrace& user, const std::vector<Poi>& pois) {
  std::ostringstream os;
  os << R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  for (const auto& trajectory : user.trajectories) {
    if (trajectory.empty()) continue;
    if (!first) os << ',';
    first = false;
    os << trajectory_to_geojson_feature(trajectory);
  }
  for (const auto& poi : pois) {
    if (!first) os << ',';
    first = false;
    std::int64_t dwell = 0;
    for (const auto& visit : poi.visits) dwell += visit.duration_s();
    os << R"({"type":"Feature","properties":{"poi":)" << poi.id << R"(,"visits":)"
       << poi.visit_count() << R"(,"dwell_s":)" << dwell
       << R"(},"geometry":{"type":"Point","coordinates":)";
    std::ostringstream coord;
    append_coordinate(coord, poi.centroid);
    os << coord.str() << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace locpriv::poi
