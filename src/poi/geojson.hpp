// GeoJSON export, for inspecting traces and extracted PoIs in any map
// viewer. Emits a FeatureCollection: trajectories as LineStrings, PoIs as
// Points with visit metadata.
#pragma once

#include <string>
#include <vector>

#include "poi/clustering.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::poi {

/// One trajectory as a GeoJSON LineString feature.
std::string trajectory_to_geojson_feature(const trace::Trajectory& trajectory);

/// A full user trace as a FeatureCollection of LineStrings (one per
/// trajectory), optionally with the user's PoIs as Point features carrying
/// `visits` and `dwell_s` properties.
std::string to_geojson(const trace::UserTrace& user, const std::vector<Poi>& pois = {});

}  // namespace locpriv::poi
