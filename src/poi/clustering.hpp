// Clustering of stay points into PoIs.
//
// A stay point is one visit; a PoI is a *place* visited possibly many times
// across days. Stays are clustered greedily in chronological order: a stay
// joins the nearest existing PoI within the merge radius (the PoI centroid
// is the visit-weighted running mean), otherwise it founds a new PoI. The
// paper's PoI_total counts these clusters and PoI_sensitive the rarely
// visited ones.
#pragma once

#include <vector>

#include "poi/staypoint.hpp"

namespace locpriv::poi {

/// A place: a cluster of stays.
struct Poi {
  int id = 0;
  geo::LatLon centroid;
  std::vector<StayPoint> visits;  ///< Chronological.

  std::size_t visit_count() const { return visits.size(); }
};

/// Clusters `stays` (chronological) into PoIs. merge_radius_m > 0.
/// Assignment runs through a geohash cell index over the PoI centroids
/// (O(S log P)); results are identical to cluster_stay_points_scan.
std::vector<Poi> cluster_stay_points(const std::vector<StayPoint>& stays,
                                     double merge_radius_m);

/// The original O(S x P) linear-scan clustering, kept as the equivalence
/// oracle for cluster_stay_points (tests assert identical output) and as the
/// "before" side of the BM_PoiAssignment microbench.
std::vector<Poi> cluster_stay_points_scan(const std::vector<StayPoint>& stays,
                                          double merge_radius_m);

/// PoIs visited at most `max_visits` times — the paper's sensitive PoIs
/// ("users have visited for no more than 3 times", §IV.C).
std::vector<Poi> sensitive_pois(const std::vector<Poi>& pois, std::size_t max_visits);

/// The chronological sequence of PoI ids induced by the stays of `pois`
/// (i.e. the user's path P = p_1, p_2, ... over places). Consecutive
/// duplicates are collapsed, since a repeated id means the user never left.
std::vector<int> visit_sequence(const std::vector<Poi>& pois);

}  // namespace locpriv::poi
