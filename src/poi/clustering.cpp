#include "poi/clustering.hpp"

#include <algorithm>
#include <limits>

#include "geo/geodesy.hpp"
#include "geo/geotree.hpp"
#include "util/expect.hpp"

namespace locpriv::poi {

std::vector<Poi> cluster_stay_points(const std::vector<StayPoint>& stays,
                                     double merge_radius_m) {
  LOCPRIV_EXPECT(merge_radius_m > 0.0);
  std::vector<Poi> pois;
  // Running sums for the visit-weighted centroid of each PoI.
  std::vector<double> lat_sums;
  std::vector<double> lon_sums;
  // Cell index over PoI centroids: assignment probes only the cells a
  // merge-radius disc can reach instead of scanning every PoI, and follows
  // centroids as merges drag them (O(S log P) overall). candidates_within
  // returns an ascending superset of the in-radius ids, so the refine loop
  // below visits ids in the same order as the full scan it replaced and the
  // `d < best_distance` tie-break picks the identical PoI.
  geo::GeoCellIndex index(merge_radius_m);
  std::vector<std::uint32_t> candidates;

  for (const auto& stay : stays) {
    int best = -1;
    double best_distance = std::numeric_limits<double>::max();
    candidates.clear();
    index.candidates_within(stay.centroid, merge_radius_m, candidates);
    for (const std::uint32_t id : candidates) {
      // locpriv-lint: allow(linear-spatial-scan) bounded candidate refine
      const double d = geo::equirectangular_m(pois[id].centroid, stay.centroid);
      if (d <= merge_radius_m && d < best_distance) {
        best = static_cast<int>(id);
        best_distance = d;
      }
    }
    if (best < 0) {
      Poi poi;
      poi.id = static_cast<int>(pois.size());
      poi.centroid = stay.centroid;
      poi.visits.push_back(stay);
      index.insert(static_cast<std::uint32_t>(poi.id), poi.centroid);
      pois.push_back(std::move(poi));
      lat_sums.push_back(stay.centroid.lat_deg);
      lon_sums.push_back(stay.centroid.lon_deg);
    } else {
      const auto b = static_cast<std::size_t>(best);
      pois[b].visits.push_back(stay);
      lat_sums[b] += stay.centroid.lat_deg;
      lon_sums[b] += stay.centroid.lon_deg;
      const auto n = static_cast<double>(pois[b].visits.size());
      pois[b].centroid = {lat_sums[b] / n, lon_sums[b] / n};
      index.move(static_cast<std::uint32_t>(b), pois[b].centroid);
    }
  }
  return pois;
}

std::vector<Poi> cluster_stay_points_scan(const std::vector<StayPoint>& stays,
                                          double merge_radius_m) {
  LOCPRIV_EXPECT(merge_radius_m > 0.0);
  std::vector<Poi> pois;
  std::vector<double> lat_sums;
  std::vector<double> lon_sums;

  for (const auto& stay : stays) {
    int best = -1;
    double best_distance = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < pois.size(); ++i) {
      // locpriv-lint: allow(linear-spatial-scan) reference oracle for the index
      const double d = geo::equirectangular_m(pois[i].centroid, stay.centroid);
      if (d <= merge_radius_m && d < best_distance) {
        best = static_cast<int>(i);
        best_distance = d;
      }
    }
    if (best < 0) {
      Poi poi;
      poi.id = static_cast<int>(pois.size());
      poi.centroid = stay.centroid;
      poi.visits.push_back(stay);
      pois.push_back(std::move(poi));
      lat_sums.push_back(stay.centroid.lat_deg);
      lon_sums.push_back(stay.centroid.lon_deg);
    } else {
      const auto b = static_cast<std::size_t>(best);
      pois[b].visits.push_back(stay);
      lat_sums[b] += stay.centroid.lat_deg;
      lon_sums[b] += stay.centroid.lon_deg;
      const auto n = static_cast<double>(pois[b].visits.size());
      pois[b].centroid = {lat_sums[b] / n, lon_sums[b] / n};
    }
  }
  return pois;
}

std::vector<Poi> sensitive_pois(const std::vector<Poi>& pois, std::size_t max_visits) {
  LOCPRIV_EXPECT(max_visits >= 1);
  std::vector<Poi> out;
  for (const auto& poi : pois)
    if (poi.visit_count() <= max_visits) out.push_back(poi);
  return out;
}

std::vector<int> visit_sequence(const std::vector<Poi>& pois) {
  // Gather (enter time, poi id) pairs and sort chronologically.
  std::vector<std::pair<std::int64_t, int>> events;
  for (const auto& poi : pois)
    for (const auto& visit : poi.visits) events.emplace_back(visit.enter_s, poi.id);
  std::sort(events.begin(), events.end());
  std::vector<int> sequence;
  for (const auto& [time, id] : events) {
    (void)time;
    if (sequence.empty() || sequence.back() != id) sequence.push_back(id);
  }
  return sequence;
}

}  // namespace locpriv::poi
