#include "poi/staypoint.hpp"

#include <deque>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::poi {

std::vector<ExtractionParams> table3_parameter_sets() {
  // Set ids 1..6: visiting time {10,20,30} min crossed with radius {50,100} m
  // in the paper's column order.
  return {
      {50.0, 10 * 60, 4}, {50.0, 20 * 60, 4}, {50.0, 30 * 60, 4},
      {100.0, 10 * 60, 4}, {100.0, 20 * 60, 4}, {100.0, 30 * 60, 4},
  };
}

namespace {

/// Running centroid over a set of fixes (supports add/remove for sliding
/// windows; positions are far from poles/antimeridian so arithmetic means
/// are valid, matching geo::centroid).
class CentroidAccumulator {
 public:
  void add(const geo::LatLon& p) {
    lat_sum_ += p.lat_deg;
    lon_sum_ += p.lon_deg;
    ++count_;
  }
  void remove(const geo::LatLon& p) {
    lat_sum_ -= p.lat_deg;
    lon_sum_ -= p.lon_deg;
    --count_;
  }
  std::size_t count() const { return count_; }
  geo::LatLon centroid() const {
    LOCPRIV_EXPECT(count_ > 0);
    const auto n = static_cast<double>(count_);
    return {lat_sum_ / n, lon_sum_ / n};
  }

 private:
  double lat_sum_ = 0.0;
  double lon_sum_ = 0.0;
  std::size_t count_ = 0;
};

geo::LatLon centroid_of(const std::deque<trace::TracePoint>& window, std::size_t begin,
                        std::size_t end) {
  CentroidAccumulator acc;
  for (std::size_t i = begin; i < end; ++i) acc.add(window[i].position);
  return acc.centroid();
}

}  // namespace

std::vector<StayPoint> extract_stay_points(const std::vector<trace::TracePoint>& points,
                                           const ExtractionParams& params) {
  LOCPRIV_EXPECT(params.radius_m > 0.0);
  LOCPRIV_EXPECT(params.min_visit_s > 0);
  LOCPRIV_EXPECT(params.window_fixes >= 4 && params.window_fixes % 2 == 0);

  const std::size_t window_size = params.window_fixes;
  const std::size_t half = window_size / 2;

  std::vector<StayPoint> stays;

  // OUTSIDE state: candidate entry window. INSIDE state: stay accumulator
  // plus sliding exit window.
  std::deque<trace::TracePoint> window;  // Entry window (outside) or exit window (inside).
  bool inside = false;
  CentroidAccumulator stay_acc;
  std::int64_t enter_s = 0;
  std::int64_t last_attributed_s = 0;

  const auto attribute_to_stay = [&](const trace::TracePoint& point) {
    stay_acc.add(point.position);
    last_attributed_s = point.timestamp_s;
  };

  const auto close_stay = [&](bool consume_overlap) {
    // The leading half of the exit window overlaps the stay (paper: buf_PoI
    // and buf_Exit share an overlapped area); attribute it before closing.
    const std::size_t overlap = consume_overlap ? std::min(half, window.size())
                                                : window.size();
    for (std::size_t i = 0; i < overlap; ++i) {
      attribute_to_stay(window.front());
      window.pop_front();
    }
    const std::int64_t duration = last_attributed_s - enter_s;
    if (duration >= params.min_visit_s && stay_acc.count() > 0)
      stays.push_back(
          {stay_acc.centroid(), enter_s, last_attributed_s, stay_acc.count()});
    stay_acc = CentroidAccumulator();
    inside = false;
    // Remaining exit-window points (the user's departure) seed the next
    // entry window so back-to-back stays are both detected.
  };

  for (const auto& point : points) {
    window.push_back(point);
    if (!inside) {
      if (window.size() > window_size) window.pop_front();
      if (window.size() < window_size) continue;
      // buf_Entry = the full window; the nascent buf_PoI = its trailing
      // half (the two buffers overlap by half of buf_Entry).
      const geo::LatLon entry_centroid = centroid_of(window, 0, window.size());
      const geo::LatLon poi_centroid = centroid_of(window, half, window.size());
      if (geo::equirectangular_m(entry_centroid, poi_centroid) < params.radius_m) {
        // Entered a stay: the trailing half becomes the stay's first fixes.
        inside = true;
        enter_s = window[half].timestamp_s;
        for (std::size_t i = half; i < window.size(); ++i)
          attribute_to_stay(window[i]);
        window.clear();
      }
    } else {
      // Points older than the exit window belong to the stay.
      while (window.size() > window_size) {
        attribute_to_stay(window.front());
        window.pop_front();
      }
      if (window.size() < window_size) continue;
      const geo::LatLon exit_centroid = centroid_of(window, 0, window.size());
      if (geo::equirectangular_m(stay_acc.centroid(), exit_centroid) > params.radius_m)
        close_stay(/*consume_overlap=*/true);
    }
  }

  // End of stream: an open stay absorbs the whole residual window.
  if (inside) close_stay(/*consume_overlap=*/false);
  return stays;
}

std::vector<StayPoint> extract_stay_points_anchor(
    const std::vector<trace::TracePoint>& points, const ExtractionParams& params) {
  LOCPRIV_EXPECT(params.radius_m > 0.0);
  LOCPRIV_EXPECT(params.min_visit_s > 0);

  std::vector<StayPoint> stays;
  std::size_t i = 0;
  while (i < points.size()) {
    std::size_t j = i + 1;
    while (j < points.size() &&
           geo::equirectangular_m(points[i].position, points[j].position) <=
               params.radius_m)
      ++j;
    const std::int64_t span = points[j - 1].timestamp_s - points[i].timestamp_s;
    if (span >= params.min_visit_s) {
      CentroidAccumulator acc;
      for (std::size_t k = i; k < j; ++k) acc.add(points[k].position);
      stays.push_back({acc.centroid(), points[i].timestamp_s, points[j - 1].timestamp_s,
                       j - i});
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

}  // namespace locpriv::poi
