#include "sim/faults/failover.hpp"

namespace locpriv::sim {

std::string_view fused_source_name(FusedSource source) {
  switch (source) {
    case FusedSource::kGps: return "gps";
    case FusedSource::kNetwork: return "network";
    case FusedSource::kLastKnown: return "last-known";
  }
  return "?";
}

namespace {

// Lower rank = better source.
int rank(FusedSource source) {
  switch (source) {
    case FusedSource::kGps: return 0;
    case FusedSource::kNetwork: return 1;
    case FusedSource::kLastKnown: return 2;
  }
  return 3;
}

}  // namespace

FusedFailover::FusedFailover(const FaultSchedule& schedule)
    : schedule_(&schedule) {}

FusedSource FusedFailover::eligible_source(std::int64_t now_s) const {
  const std::int64_t hysteresis = schedule_->config().failover_hysteresis_s;
  if (schedule_->available(android::LocationProvider::kGps, now_s) &&
      schedule_->available_for_s(android::LocationProvider::kGps, now_s) >=
          hysteresis)
    return FusedSource::kGps;
  if (schedule_->available(android::LocationProvider::kNetwork, now_s) &&
      schedule_->available_for_s(android::LocationProvider::kNetwork, now_s) >=
          hysteresis)
    return FusedSource::kNetwork;
  return FusedSource::kLastKnown;
}

FusedSource FusedFailover::select(std::int64_t now_s) {
  const bool gps_ok =
      schedule_->available(android::LocationProvider::kGps, now_s);
  const bool network_ok =
      schedule_->available(android::LocationProvider::kNetwork, now_s);
  const FusedSource best_now = gps_ok      ? FusedSource::kGps
                               : network_ok ? FusedSource::kNetwork
                                            : FusedSource::kLastKnown;
  if (!initialized_) {
    // Boot picks whatever works right now; hysteresis only gates later
    // up-switches.
    initialized_ = true;
    current_ = best_now;
    return current_;
  }

  FusedSource next = current_;
  const bool current_serviceable =
      (current_ == FusedSource::kGps && gps_ok) ||
      (current_ == FusedSource::kNetwork && network_ok) ||
      current_ == FusedSource::kLastKnown;
  if (!current_serviceable) {
    // The hardware under the current source is gone: degrade immediately to
    // the best thing that still answers.
    next = best_now;
  } else {
    // A better source only takes over once it has been continuously healthy
    // for the hysteresis window — short recovery blips do not flap the feed.
    const FusedSource candidate = eligible_source(now_s);
    if (rank(candidate) < rank(current_)) next = candidate;
  }

  if (next != current_) {
    transitions_.push_back({now_s, current_, next});
    current_ = next;
  }
  return current_;
}

}  // namespace locpriv::sim
