// Graceful degradation for the fused provider.
//
// On real devices Play services' fused provider never just stops: when GPS
// dies it silently falls back to network fixes, and when everything is out
// it keeps handing apps the last known location. This class reproduces that
// ladder — gps -> network -> last-known — against a FaultSchedule, with an
// up-switch hysteresis so the source does not flap across short recovery
// blips: a better source is only re-adopted after it has been continuously
// healthy for `failover_hysteresis_s`.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/faults/schedule.hpp"

namespace locpriv::sim {

/// Where a fused fix is actually coming from.
enum class FusedSource { kGps, kNetwork, kLastKnown };

std::string_view fused_source_name(FusedSource source);

/// Stateful source selector. One instance per device; `select` must be
/// called with non-decreasing timestamps.
class FusedFailover {
 public:
  /// `schedule` must outlive the failover.
  explicit FusedFailover(const FaultSchedule& schedule);

  /// The source serving a fused fix at `now_s`. Downgrades take effect
  /// immediately (the hardware is gone); upgrades wait out the hysteresis.
  FusedSource select(std::int64_t now_s);

  /// One source change, for tests and diagnostics.
  struct Transition {
    std::int64_t time_s = 0;
    FusedSource from = FusedSource::kGps;
    FusedSource to = FusedSource::kGps;

    friend bool operator==(const Transition&, const Transition&) = default;
  };

  const std::vector<Transition>& transitions() const { return transitions_; }
  FusedSource current() const { return current_; }

 private:
  /// Best source whose provider is healthy *and* has been healthy long
  /// enough to satisfy the hysteresis (relative to the current source).
  FusedSource eligible_source(std::int64_t now_s) const;

  const FaultSchedule* schedule_;
  FusedSource current_ = FusedSource::kGps;
  bool initialized_ = false;
  std::vector<Transition> transitions_;
};

}  // namespace locpriv::sim
