// FaultInjector: turns a FaultSchedule into live misbehaviour of the
// simulated location stack. Installed on a LocationManager it intercepts
// every fix between scheduling and listener delivery and applies, in order:
//
//   1. provider outages + cold-start TTFF  -> fix withheld, request retries
//   2. fused graceful degradation          -> gps -> network -> last-known
//   3. position noise and random-walk drift-> fix position perturbed
//   4. delivery delay                      -> fix withheld until a due time
//   5. delivery loss                       -> fix dropped, interval consumed
//
// All randomness is drawn from one seeded stream in delivery order, so a
// fixed (seed, config, workload) triple reproduces the exact same delivery
// log. With a zero-rate config the injector never touches a fix and the log
// is byte-identical to an uninstrumented run.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "android/location_manager.hpp"
#include "sim/faults/failover.hpp"
#include "sim/faults/schedule.hpp"

namespace locpriv::sim {

/// What the injector did over a run (bench/diagnostic output).
struct FaultCounters {
  std::size_t delivered = 0;        ///< Fixes that reached listeners.
  std::size_t withheld_outage = 0;  ///< Retried: provider in outage/TTFF.
  std::size_t dropped_loss = 0;     ///< Lost in flight (interval consumed).
  std::size_t delayed = 0;          ///< Fixes that waited out a delay.
  std::size_t degraded_network = 0; ///< Fused fixes served by network.
  std::size_t served_last_known = 0;///< Fused fixes served stale.
};

class FaultInjector {
 public:
  /// Derives the schedule from `seed` over the horizon (see FaultSchedule).
  FaultInjector(const FaultConfig& config, std::uint64_t seed,
                std::int64_t horizon_start_s, std::int64_t horizon_end_s);

  /// Uses a pre-built schedule (tests pin exact outage windows); per-fix
  /// randomness still derives from `seed`.
  FaultInjector(FaultSchedule schedule, std::uint64_t seed);

  // The failover holds a pointer into schedule_, and the installed hook a
  // pointer to *this; neither survives a copy or move.
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs this injector as `manager`'s fault hook. The injector must
  /// outlive the manager's use of the hook.
  void install(android::LocationManager& manager);

  /// The hook body; public so tests can drive it directly.
  android::FaultVerdict on_fix(const android::LocationRequest& request,
                               android::Location& fix);

  const FaultSchedule& schedule() const { return schedule_; }
  const FusedFailover& failover() const { return failover_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  const ProviderFaultConfig& provider_config(
      android::LocationProvider provider) const;
  /// Applies Gaussian per-fix noise plus accumulated random-walk drift.
  void perturb(android::Location& fix, const ProviderFaultConfig& config,
               double& drift_east_m, double& drift_north_m);

  FaultSchedule schedule_;
  FusedFailover failover_;
  stats::Rng rng_;
  FaultCounters counters_;
  double gps_drift_east_m_ = 0.0;
  double gps_drift_north_m_ = 0.0;
  double network_drift_east_m_ = 0.0;
  double network_drift_north_m_ = 0.0;
  bool has_last_fused_ = false;
  android::Location last_fused_{};
  /// (package, provider) -> time before which delivery is held back.
  std::map<std::pair<std::string, android::LocationProvider>, std::int64_t>
      hold_until_;
};

}  // namespace locpriv::sim
