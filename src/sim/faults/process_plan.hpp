// Process-level fault plans: deterministic worker-process misbehaviour for
// exercising the harness Supervisor. Where FaultSchedule/FaultInjector model
// the *measured substrate* failing (GPS outages, dropped fixes), a
// ProcessFaultPlan models the *measurement worker* failing — the segfault,
// runaway allocation, or non-cooperative busy-hang that takes down a sweep
// cell. A plan maps cell keys to a fault kind plus the number of attempts it
// sabotages, so tests can pin "crashes twice, then succeeds" and the bench
// can demonstrate a run surviving every failure mode via
// `bench_fault_degradation --isolate --fault-cells ...`.
//
// trigger() is meant to run inside a supervised child process: kCrash and
// kHang never return, and kAllocBomb throws std::bad_alloc once the
// allocator (usually capped by the supervisor's RLIMIT_AS) refuses growth.
#pragma once

#include <limits>
#include <map>
#include <string>

namespace locpriv::sim {

enum class ProcessFaultKind {
  kCrash,      ///< Raises SIGSEGV: the classic worker segfault.
  kHang,       ///< Ignores SIGTERM and spins: only SIGKILL can reclaim it.
  kAllocBomb,  ///< Allocates and touches memory until the allocator fails.
};

struct ProcessFault {
  ProcessFaultKind kind = ProcessFaultKind::kCrash;
  /// The fault fires while the 1-based attempt number is <= this; a finite
  /// value models a transient failure that retries can ride out.
  int attempts = std::numeric_limits<int>::max();
};

/// Parses and executes a per-cell process fault plan.
class ProcessFaultPlan {
 public:
  ProcessFaultPlan() = default;

  /// Parses a comma-separated spec: `kind[:attempts]@cell`, with kind one of
  /// crash | hang | alloc, e.g. "crash@i0.25_t10,hang:2@i0.50_t60".
  /// Throws std::runtime_error on malformed specs or unknown kinds.
  static ProcessFaultPlan parse(const std::string& spec);

  void add(std::string cell, ProcessFault fault);

  bool empty() const { return faults_.empty(); }
  const std::map<std::string, ProcessFault>& faults() const { return faults_; }

  /// The fault configured for (cell, attempt), or nullptr when the cell is
  /// clean or the attempt is past the fault's sabotage window.
  const ProcessFault* fault_for(const std::string& cell, int attempt) const;

  /// Executes the configured fault for (cell, attempt): kCrash and kHang do
  /// not return; kAllocBomb throws std::bad_alloc. Returns normally when no
  /// fault applies. `bomb_cap_bytes` bounds the alloc bomb so a plan run
  /// without an address-space rlimit self-terminates instead of eating the
  /// host (the cap raises the same std::bad_alloc the rlimit would).
  void trigger(const std::string& cell, int attempt,
               std::size_t bomb_cap_bytes = std::size_t{1} << 30) const;

 private:
  std::map<std::string, ProcessFault> faults_;
};

/// Stable name for a fault kind ("crash", "hang", "alloc").
std::string process_fault_kind_name(ProcessFaultKind kind);

}  // namespace locpriv::sim
