// Deterministic fault schedules for the simulated location substrate.
//
// The paper's measurements come from physical hardware that fails all the
// time — GPS dies indoors, providers cold-start, deliveries get lost — while
// the simulator is perfectly reliable. This module derives a reproducible
// failure plan from a single 64-bit seed: per-provider outage windows
// (Poisson arrivals, exponential durations), cold-start TTFF extensions, and
// the per-fix noise/drop/delay parameters the injector consumes. Same seed
// and config => bit-identical schedule, so every injected failure can be
// replayed exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "android/location.hpp"
#include "stats/rng.hpp"

namespace locpriv::sim {

/// One closed-open unavailability window [start_s, end_s).
struct OutageWindow {
  std::int64_t start_s = 0;
  std::int64_t end_s = 0;

  friend bool operator==(const OutageWindow&, const OutageWindow&) = default;
};

/// Fault model of one provider's hardware path.
struct ProviderFaultConfig {
  double outages_per_hour = 0.0;   ///< Mean outage arrivals per simulated hour.
  double outage_mean_s = 0.0;      ///< Mean outage duration (exponential).
  std::int64_t ttff_s = 0;         ///< Cold-start time-to-first-fix appended to
                                   ///< every outage (and to boot, for GPS).
  double noise_sigma_m = 0.0;      ///< Per-fix Gaussian position noise (1-sigma
                                   ///< per axis).
  double drift_step_m = 0.0;       ///< Random-walk drift step per delivered fix.
  double drop_probability = 0.0;   ///< Per-fix delivery loss.
  double delay_probability = 0.0;  ///< Per-fix delivery delay.
  std::int64_t max_delay_s = 0;    ///< Uniform delay bound when delayed.
};

/// Whole-substrate fault model.
struct FaultConfig {
  ProviderFaultConfig gps;
  ProviderFaultConfig network;
  double passive_drop_probability = 0.0;  ///< Loss on the passive piggyback leg.
  std::int64_t failover_hysteresis_s = 120;  ///< Fused up-switch dwell time.
  bool cold_boot = true;  ///< Apply the GPS TTFF at the start of the horizon.

  /// A canonical profile parameterised by `intensity` in [0, 1]: 0 is the
  /// perfect substrate (all rates zero), 1 is an aggressively degraded one
  /// (frequent multi-minute GPS outages, 30 m noise, 10 % loss). The bench
  /// sweeps this knob; tests pin specific corners.
  static FaultConfig canonical(double intensity);
};

/// Pre-derived failure plan over a fixed horizon. Outage windows already
/// include the TTFF extension: a provider is "available" only when it is
/// outside every window *and* warmed up.
class FaultSchedule {
 public:
  /// Derives the schedule for [horizon_start_s, horizon_end_s) from `seed`.
  /// Precondition: horizon_start_s <= horizon_end_s.
  FaultSchedule(const FaultConfig& config, std::uint64_t seed,
                std::int64_t horizon_start_s, std::int64_t horizon_end_s);

  /// Builds a schedule from explicit windows (tests pin exact scenarios).
  /// Windows need not be sorted; they are normalised on construction.
  FaultSchedule(const FaultConfig& config, std::vector<OutageWindow> gps_windows,
                std::vector<OutageWindow> network_windows);

  const FaultConfig& config() const { return config_; }

  /// True when `provider` is serviceable at `t`. Passive and fused are
  /// always "available" at the schedule level: passive has no hardware of
  /// its own, and fused degrades across the others instead of failing.
  bool available(android::LocationProvider provider, std::int64_t t) const;

  /// Seconds since `provider` last became available at time `t` (how long it
  /// has been continuously healthy). Returns 0 while unavailable; a provider
  /// never covered by a window reports the time since the horizon start.
  std::int64_t available_for_s(android::LocationProvider provider,
                               std::int64_t t) const;

  const std::vector<OutageWindow>& gps_windows() const { return gps_windows_; }
  const std::vector<OutageWindow>& network_windows() const {
    return network_windows_;
  }

 private:
  const std::vector<OutageWindow>* windows_of(
      android::LocationProvider provider) const;

  FaultConfig config_;
  std::int64_t horizon_start_s_ = 0;
  std::vector<OutageWindow> gps_windows_;
  std::vector<OutageWindow> network_windows_;
};

/// Merges overlapping/touching windows and sorts by start time.
std::vector<OutageWindow> normalize_windows(std::vector<OutageWindow> windows);

}  // namespace locpriv::sim
