#include "sim/faults/process_plan.hpp"

#include <csignal>
#include <cstring>
#include <new>
#include <stdexcept>
#include <vector>

namespace locpriv::sim {

namespace {

ProcessFaultKind parse_kind(const std::string& name) {
  if (name == "crash") return ProcessFaultKind::kCrash;
  if (name == "hang") return ProcessFaultKind::kHang;
  if (name == "alloc") return ProcessFaultKind::kAllocBomb;
  throw std::runtime_error("unknown process fault kind '" + name +
                           "' (expected crash | hang | alloc)");
}

}  // namespace

std::string process_fault_kind_name(ProcessFaultKind kind) {
  switch (kind) {
    case ProcessFaultKind::kCrash: return "crash";
    case ProcessFaultKind::kHang: return "hang";
    case ProcessFaultKind::kAllocBomb: return "alloc";
  }
  return "?";
}

ProcessFaultPlan ProcessFaultPlan::parse(const std::string& spec) {
  ProcessFaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at + 1 == entry.size()) {
      throw std::runtime_error("process fault entry '" + entry +
                               "' is not of the form kind[:attempts]@cell");
    }
    std::string head = entry.substr(0, at);
    ProcessFault fault;
    const std::size_t colon = head.find(':');
    if (colon != std::string::npos) {
      const std::string count = head.substr(colon + 1);
      head.resize(colon);
      try {
        fault.attempts = std::stoi(count);
      } catch (const std::exception&) {
        throw std::runtime_error("process fault entry '" + entry +
                                 "' has a non-numeric attempt count");
      }
      if (fault.attempts < 1) {
        throw std::runtime_error("process fault entry '" + entry +
                                 "' must sabotage at least one attempt");
      }
    }
    fault.kind = parse_kind(head);
    plan.add(entry.substr(at + 1), fault);
  }
  return plan;
}

void ProcessFaultPlan::add(std::string cell, ProcessFault fault) {
  faults_[std::move(cell)] = fault;
}

const ProcessFault* ProcessFaultPlan::fault_for(const std::string& cell,
                                                int attempt) const {
  const auto it = faults_.find(cell);
  if (it == faults_.end() || attempt > it->second.attempts) return nullptr;
  return &it->second;
}

void ProcessFaultPlan::trigger(const std::string& cell, int attempt,
                               std::size_t bomb_cap_bytes) const {
  const ProcessFault* fault = fault_for(cell, attempt);
  if (fault == nullptr) return;
  switch (fault->kind) {
    case ProcessFaultKind::kCrash:
      std::raise(SIGSEGV);
      return;  // Unreachable unless SIGSEGV is blocked; fall through safely.
    case ProcessFaultKind::kHang: {
      // A cooperative worker would honour SIGTERM; the point of this fault
      // is to prove the supervisor escalates to SIGKILL, so ignore it.
      std::signal(SIGTERM, SIG_IGN);
      for (;;) {
      }
    }
    case ProcessFaultKind::kAllocBomb: {
      // Grow until the allocator refuses — under the supervisor's RLIMIT_AS
      // that happens quickly; the cap keeps an unsupervised run from
      // exhausting the host before raising the same bad_alloc.
      std::vector<char*> blocks;
      constexpr std::size_t kBlock = std::size_t{16} << 20;
      std::size_t total = 0;
      for (;;) {
        if (total + kBlock > bomb_cap_bytes) {
          for (char* block : blocks) delete[] block;
          throw std::bad_alloc();
        }
        char* block = new char[kBlock];
        // Touch every page so the allocation is backed, not just reserved.
        std::memset(block, 0x5a, kBlock);
        blocks.push_back(block);
        total += kBlock;
      }
    }
  }
}

}  // namespace locpriv::sim
