#include "sim/faults/schedule.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace locpriv::sim {

FaultConfig FaultConfig::canonical(double intensity) {
  LOCPRIV_EXPECT(intensity >= 0.0 && intensity <= 1.0);
  FaultConfig config;
  config.gps.outages_per_hour = 2.0 * intensity;
  config.gps.outage_mean_s = 300.0 * intensity;
  config.gps.ttff_s = static_cast<std::int64_t>(30.0 * intensity);
  config.gps.noise_sigma_m = 30.0 * intensity;
  config.gps.drift_step_m = 2.0 * intensity;
  config.gps.drop_probability = 0.10 * intensity;
  config.gps.delay_probability = 0.10 * intensity;
  config.gps.max_delay_s = static_cast<std::int64_t>(20.0 * intensity);
  // The network path fails less often but is noisier when it does serve.
  config.network.outages_per_hour = 0.5 * intensity;
  config.network.outage_mean_s = 120.0 * intensity;
  config.network.ttff_s = 0;
  config.network.noise_sigma_m = 80.0 * intensity;
  config.network.drop_probability = 0.05 * intensity;
  config.passive_drop_probability = 0.05 * intensity;
  config.cold_boot = intensity > 0.0;
  return config;
}

std::vector<OutageWindow> normalize_windows(std::vector<OutageWindow> windows) {
  std::erase_if(windows,
                [](const OutageWindow& w) { return w.end_s <= w.start_s; });
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start_s < b.start_s;
            });
  std::vector<OutageWindow> merged;
  for (const OutageWindow& window : windows) {
    if (!merged.empty() && window.start_s <= merged.back().end_s)
      merged.back().end_s = std::max(merged.back().end_s, window.end_s);
    else
      merged.push_back(window);
  }
  return merged;
}

namespace {

// Draws the outage plan of one provider as a Poisson arrival process with
// exponential durations; every outage is extended by the cold-start TTFF
// (the receiver has lost its almanac and needs time to reacquire).
std::vector<OutageWindow> draw_windows(const ProviderFaultConfig& provider,
                                       stats::Rng& rng, std::int64_t start_s,
                                       std::int64_t end_s, bool cold_boot) {
  std::vector<OutageWindow> windows;
  if (cold_boot && provider.ttff_s > 0)
    windows.push_back({start_s, start_s + provider.ttff_s});
  if (provider.outages_per_hour <= 0.0 || provider.outage_mean_s <= 0.0)
    return normalize_windows(std::move(windows));
  const double mean_gap_s = 3600.0 / provider.outages_per_hour;
  double t = static_cast<double>(start_s);
  while (true) {
    t += rng.exponential(mean_gap_s);
    if (t >= static_cast<double>(end_s)) break;
    const double duration = rng.exponential(provider.outage_mean_s) +
                            static_cast<double>(provider.ttff_s);
    const auto outage_start = static_cast<std::int64_t>(t);
    windows.push_back({outage_start, outage_start +
                                         std::max<std::int64_t>(
                                             1, static_cast<std::int64_t>(duration))});
    t += duration;
  }
  return normalize_windows(std::move(windows));
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultConfig& config, std::uint64_t seed,
                             std::int64_t horizon_start_s,
                             std::int64_t horizon_end_s)
    : config_(config), horizon_start_s_(horizon_start_s) {
  LOCPRIV_EXPECT(horizon_start_s <= horizon_end_s);
  // Independent streams per provider so changing one provider's parameters
  // never perturbs the other's plan.
  stats::Rng root(seed);
  stats::Rng gps_rng = root.fork();
  stats::Rng network_rng = root.fork();
  gps_windows_ = draw_windows(config.gps, gps_rng, horizon_start_s, horizon_end_s,
                              config.cold_boot);
  network_windows_ = draw_windows(config.network, network_rng, horizon_start_s,
                                  horizon_end_s, /*cold_boot=*/false);
}

FaultSchedule::FaultSchedule(const FaultConfig& config,
                             std::vector<OutageWindow> gps_windows,
                             std::vector<OutageWindow> network_windows)
    : config_(config),
      gps_windows_(normalize_windows(std::move(gps_windows))),
      network_windows_(normalize_windows(std::move(network_windows))) {}

const std::vector<OutageWindow>* FaultSchedule::windows_of(
    android::LocationProvider provider) const {
  switch (provider) {
    case android::LocationProvider::kGps: return &gps_windows_;
    case android::LocationProvider::kNetwork: return &network_windows_;
    case android::LocationProvider::kPassive:
    case android::LocationProvider::kFused: return nullptr;
  }
  return nullptr;
}

bool FaultSchedule::available(android::LocationProvider provider,
                              std::int64_t t) const {
  const auto* windows = windows_of(provider);
  if (windows == nullptr) return true;
  // Windows are sorted and disjoint: find the last one starting at or
  // before t and check containment.
  auto it = std::upper_bound(windows->begin(), windows->end(), t,
                             [](std::int64_t value, const OutageWindow& w) {
                               return value < w.start_s;
                             });
  if (it == windows->begin()) return true;
  --it;
  return t >= it->end_s;
}

std::int64_t FaultSchedule::available_for_s(android::LocationProvider provider,
                                            std::int64_t t) const {
  const auto* windows = windows_of(provider);
  if (windows == nullptr) return std::max<std::int64_t>(0, t - horizon_start_s_);
  auto it = std::upper_bound(windows->begin(), windows->end(), t,
                             [](std::int64_t value, const OutageWindow& w) {
                               return value < w.start_s;
                             });
  if (it == windows->begin())
    return std::max<std::int64_t>(0, t - horizon_start_s_);
  --it;
  if (t < it->end_s) return 0;  // Inside an outage.
  return t - it->end_s;
}

}  // namespace locpriv::sim
