#include "sim/faults/injector.hpp"

#include <cmath>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::sim {

using android::FaultVerdict;
using android::LocationProvider;

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed,
                             std::int64_t horizon_start_s,
                             std::int64_t horizon_end_s)
    : schedule_(config, seed, horizon_start_s, horizon_end_s),
      failover_(schedule_),
      // The schedule consumes its own forks of `seed`; the per-fix stream
      // gets an independent derivation so schedule and noise never alias.
      rng_(stats::Rng(seed).fork()) {}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)),
      failover_(schedule_),
      rng_(stats::Rng(seed).fork()) {}

void FaultInjector::install(android::LocationManager& manager) {
  manager.set_fault_hook(
      [this](const android::LocationRequest& request, android::Location& fix) {
        return on_fix(request, fix);
      });
}

const ProviderFaultConfig& FaultInjector::provider_config(
    LocationProvider provider) const {
  return provider == LocationProvider::kNetwork ? schedule_.config().network
                                                : schedule_.config().gps;
}

void FaultInjector::perturb(android::Location& fix,
                            const ProviderFaultConfig& config,
                            double& drift_east_m, double& drift_north_m) {
  if (config.drift_step_m > 0.0) {
    drift_east_m += rng_.normal(0.0, config.drift_step_m);
    drift_north_m += rng_.normal(0.0, config.drift_step_m);
  }
  double east = drift_east_m;
  double north = drift_north_m;
  if (config.noise_sigma_m > 0.0) {
    east += rng_.normal(0.0, config.noise_sigma_m);
    north += rng_.normal(0.0, config.noise_sigma_m);
  }
  if (east == 0.0 && north == 0.0) return;
  fix.position = geo::destination(fix.position, north >= 0.0 ? 0.0 : 180.0,
                                  std::abs(north));
  fix.position = geo::destination(fix.position, east >= 0.0 ? 90.0 : 270.0,
                                  std::abs(east));
  // The reported accuracy degrades with the injected error scale.
  fix.accuracy_m = std::max(fix.accuracy_m, config.noise_sigma_m);
}

FaultVerdict FaultInjector::on_fix(const android::LocationRequest& request,
                                   android::Location& fix) {
  const std::int64_t now_s = fix.time_s;
  const LocationProvider provider = request.provider;

  // Passive listeners ride on a fix that already survived the source's fault
  // path; only their own delivery leg can fail.
  if (provider == LocationProvider::kPassive) {
    const double p = schedule_.config().passive_drop_probability;
    if (p > 0.0 && rng_.bernoulli(p)) {
      ++counters_.dropped_loss;
      return FaultVerdict::kDropConsume;
    }
    ++counters_.delivered;
    return FaultVerdict::kDeliver;
  }

  const ProviderFaultConfig* leg = nullptr;
  if (provider == LocationProvider::kGps || provider == LocationProvider::kNetwork) {
    if (!schedule_.available(provider, now_s)) {
      ++counters_.withheld_outage;
      return FaultVerdict::kDropRetry;
    }
    leg = &provider_config(provider);
    if (provider == LocationProvider::kGps)
      perturb(fix, *leg, gps_drift_east_m_, gps_drift_north_m_);
    else
      perturb(fix, *leg, network_drift_east_m_, network_drift_north_m_);
  } else {
    // Fused: degrade across sources instead of failing.
    switch (failover_.select(now_s)) {
      case FusedSource::kGps:
        leg = &schedule_.config().gps;
        perturb(fix, *leg, gps_drift_east_m_, gps_drift_north_m_);
        break;
      case FusedSource::kNetwork:
        ++counters_.degraded_network;
        leg = &schedule_.config().network;
        fix.accuracy_m = android::provider_accuracy_m(
            LocationProvider::kNetwork, android::Granularity::kCoarse);
        perturb(fix, *leg, network_drift_east_m_, network_drift_north_m_);
        break;
      case FusedSource::kLastKnown:
        // Nothing answers: hand out the last fix this injector let through,
        // exactly the stale-fix behaviour the failover exists to make
        // explicit. Before any fix exists there is nothing to serve.
        if (!has_last_fused_) {
          ++counters_.withheld_outage;
          return FaultVerdict::kDropRetry;
        }
        ++counters_.served_last_known;
        ++counters_.delivered;
        fix.position = last_fused_.position;
        fix.accuracy_m = last_fused_.accuracy_m;
        return FaultVerdict::kDeliver;
    }
  }

  // Shared delivery leg: a fix already produced can still arrive late or
  // not at all.
  const auto key = std::make_pair(request.package, provider);
  const auto held = hold_until_.find(key);
  if (held != hold_until_.end()) {
    if (now_s < held->second) return FaultVerdict::kDropRetry;
    hold_until_.erase(held);
    ++counters_.delayed;
  } else {
    if (leg->drop_probability > 0.0 && rng_.bernoulli(leg->drop_probability)) {
      ++counters_.dropped_loss;
      return FaultVerdict::kDropConsume;
    }
    if (leg->delay_probability > 0.0 && leg->max_delay_s > 0 &&
        rng_.bernoulli(leg->delay_probability)) {
      hold_until_[key] = now_s + rng_.uniform_int(1, leg->max_delay_s);
      return FaultVerdict::kDropRetry;
    }
  }

  if (provider == LocationProvider::kFused) {
    last_fused_ = fix;
    has_last_fused_ = true;
  }
  ++counters_.delivered;
  return FaultVerdict::kDeliver;
}

}  // namespace locpriv::sim
