#include "service/scrub.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <string_view>

#include "core/harness/atomic_file.hpp"
#include "core/harness/error.hpp"
#include "core/harness/file_ops.hpp"
#include "service/snapshot.hpp"

namespace locpriv::service {

namespace fs = std::filesystem;

namespace {

/// Splits a ledger cell key of the shape "<shard>/snap/<seq>"; false for
/// every other record kind (shed, snapdrop, quarantine, sweep cells).
bool parse_snap_key(const std::string& key, std::string& shard,
                    std::uint64_t& seq) {
  const std::size_t mark = key.find("/snap/");
  if (mark == std::string::npos) return false;
  const std::string tail = key.substr(mark + 6);
  if (tail.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(tail.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) return false;
  shard = key.substr(0, mark);
  seq = value;
  return true;
}

/// The shard index a "shardK" name denotes, or -1 for foreign names (the
/// identity cross-check is skipped for those).
long shard_index_of(const std::string& shard_name) {
  if (shard_name.rfind("shard", 0) != 0) return -1;
  const std::string digits = shard_name.substr(5);
  if (digits.empty()) return -1;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return -1;
  return static_cast<long>(value);
}

/// Verifies one journaled snapshot: file readable, body parses, FNV content
/// checksum matches the ledger record, shard/seq identity matches the key.
SnapshotCheck check_snapshot(const std::string& cell,
                             const std::string& shard_name, std::uint64_t seq,
                             const std::vector<std::string>& fields) {
  SnapshotCheck check;
  check.cell = cell;
  if (fields.size() < 5) {
    check.detail = "ledger record has too few fields";
    return check;
  }
  check.file = fields[0];
  std::string encoded;
  if (!harness::read_file_through_ops(check.file, encoded)) {
    check.detail = "snapshot file missing or unreadable";
    return check;
  }
  if (snapshot_checksum(encoded) != fields[4]) {
    check.detail = "content checksum does not match the journal";
    return check;
  }
  try {
    const ShardSnapshot snapshot = parse_snapshot(encoded);
    const long index = shard_index_of(shard_name);
    if (snapshot.seq != seq ||
        (index >= 0 && snapshot.shard != static_cast<unsigned>(index))) {
      check.detail = "snapshot identity does not match the journal key";
      return check;
    }
  } catch (const Error& e) {
    check.detail = e.message();
    return check;
  }
  check.ok = true;
  check.detail = "ok";
  return check;
}

void truncate_file(const fs::path& path, std::uint64_t size) {
  harness::FileOps& ops = harness::file_ops();
  errno = 0;
  const int fd = ops.open(path.c_str(), O_WRONLY, 0);
  if (fd < 0)
    throw Error(ErrorCode::kIo,
                "cannot open " + path.string() + " for repair" + errno_detail());
  const int rc = ops.ftruncate(fd, static_cast<off_t>(size));
  const int saved = errno;
  // locpriv-lint: allow(unchecked-io) fsync/close failures cannot undo a truncate that already returned
  ops.fsync(fd);
  ops.close(fd);
  if (rc != 0) {
    errno = saved;
    throw Error(ErrorCode::kIo,
                "cannot truncate " + path.string() + errno_detail());
  }
}

}  // namespace

ScrubReport scrub_run_dir(const fs::path& run_dir, bool repair) {
  const fs::path ledger_path = run_dir / "ledger.jsonl";
  if (!fs::exists(ledger_path))
    throw Error(ErrorCode::kUsage,
                run_dir.string() + " holds no ledger.jsonl; not a run directory");

  std::string content;
  errno = 0;
  if (!harness::read_file_through_ops(ledger_path.string(), content))
    throw Error(ErrorCode::kIo,
                "cannot read " + ledger_path.string() + errno_detail());

  ScrubReport report;
  const harness::LedgerReplay replay = harness::replay_ledger(content);
  report.ledger_status = replay.status;
  report.ledger_valid_bytes = replay.valid_bytes;
  report.ledger_bad_line = replay.bad_line;
  report.ledger_records = replay.cells.size();

  if (repair && replay.status != harness::LedgerScan::kClean) {
    truncate_file(ledger_path, replay.valid_bytes);
    // locpriv-lint: allow(unbounded-growth) one note per repair; bounded by the run dir
    report.repairs.push_back(
        "truncated " + ledger_path.string() + " to " +
        std::to_string(replay.valid_bytes) + " bytes (" +
        (replay.status == harness::LedgerScan::kCorrupt
             ? "corrupt record at line " + std::to_string(replay.bad_line)
             : "torn tail") +
        ")");
  }

  // Snapshot verification runs over the intact prefix only — replay stops
  // at the first bad line, so records past it are never trusted whether or
  // not repair physically truncated them. Only the newest-two retention
  // window is checked per shard: older records legitimately point at files
  // the service already reclaimed.
  std::map<std::string, std::map<std::uint64_t, const std::vector<std::string>*>>
      snaps_by_shard;
  for (const auto& [key, fields] : replay.cells) {
    std::string shard;
    std::uint64_t seq = 0;
    if (!parse_snap_key(key, shard, seq)) continue;
    snaps_by_shard[shard][seq] = &fields;
  }
  std::set<std::string> referenced;
  for (const auto& [shard, by_seq] : snaps_by_shard) {
    std::uint64_t newest = 0;
    while (by_seq.count(newest + 1) != 0) ++newest;
    for (std::uint64_t seq = newest; seq > 0 && seq + 2 > newest; --seq) {
      const auto it = by_seq.find(seq);
      if (it == by_seq.end()) continue;
      const std::vector<std::string>& fields = *it->second;
      if (!fields.empty()) referenced.insert(fields[0]);
      // locpriv-lint: allow(unbounded-growth) two checks per shard; bounded by the run dir
      report.snapshots.push_back(check_snapshot(
          shard + "/snap/" + std::to_string(seq), shard, seq, fields));
    }
  }

  if (repair) {
    // Unlink snapshot files the journal no longer vouches for: corrupt
    // ones (their checksum record disagrees with the bytes) and debris not
    // referenced by any intact record (e.g. published after the corruption
    // point the ledger was truncated at). Missing-file records are left as
    // is — there is nothing on disk to remove.
    harness::FileOps& ops = harness::file_ops();
    for (const SnapshotCheck& check : report.snapshots) {
      if (check.ok || check.file.empty() || !fs::exists(check.file)) continue;
      if (ops.unlink(check.file.c_str()) == 0)
        // locpriv-lint: allow(unbounded-growth) one note per repair; bounded by the run dir
        report.repairs.push_back("unlinked corrupt snapshot " + check.file +
                                 " (" + check.detail + ")");
    }
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(run_dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.find(".snap.") == std::string::npos) continue;
      if (referenced.count(entry.path().string()) != 0) continue;
      if (ops.unlink(entry.path().c_str()) == 0)
        // locpriv-lint: allow(unbounded-growth) one note per repair; bounded by the run dir
        report.repairs.push_back("unlinked unreferenced snapshot " +
                                 entry.path().string());
    }
  }

  // Resumability mirrors the service's resume_pointer: per shard, probe the
  // dense snapshot seqs upward, then require a verified snapshot within the
  // newest-two retention window. Shards that never snapshotted resume fresh.
  std::map<std::string, const SnapshotCheck*> checks_by_cell;
  for (const SnapshotCheck& check : report.snapshots)
    checks_by_cell[check.cell] = &check;
  report.resumable = true;
  std::vector<std::string> untrusted_shards;
  for (const auto& [shard, by_seq] : snaps_by_shard) {
    std::uint64_t newest = 0;
    while (by_seq.count(newest + 1) != 0) ++newest;
    if (newest == 0) continue;
    bool loadable = false;
    for (std::uint64_t seq = newest; seq > 0 && seq + 2 > newest; --seq) {
      const auto it =
          checks_by_cell.find(shard + "/snap/" + std::to_string(seq));
      if (it != checks_by_cell.end() && it->second->ok) {
        loadable = true;
        break;
      }
    }
    if (loadable) continue;
    if (repair)
      untrusted_shards.push_back(shard);
    else
      report.resumable = false;
  }

  // A shard whose entire retention window failed verification would make
  // resume refuse (kResume): its journal still claims snapshots that repair
  // just discarded. Drop those records — claims the bytes no longer back —
  // by rewriting the ledger without them, so the shard legitimately resumes
  // fresh. Every surviving line is kept byte for byte (CRCs included).
  if (repair && !untrusted_shards.empty()) {
    std::string kept;
    std::size_t pos = 0;
    const std::string_view intact(content.data(),
                                  static_cast<std::size_t>(replay.valid_bytes));
    while (pos < intact.size()) {
      std::size_t newline = intact.find('\n', pos);
      if (newline == std::string_view::npos) newline = intact.size() - 1;
      const std::string_view line = intact.substr(pos, newline + 1 - pos);
      bool drop = false;
      for (const std::string& shard : untrusted_shards)
        if (line.rfind("{\"cell\":\"" + shard + "/snap/", 0) == 0) drop = true;
      if (!drop) kept.append(line);
      pos = newline + 1;
    }
    harness::AtomicFileWriter writer(ledger_path);
    writer.stream() << kept;
    writer.commit();
    for (const std::string& shard : untrusted_shards)
      // locpriv-lint: allow(unbounded-growth) one note per repair; bounded by the run dir
      report.repairs.push_back("dropped untrusted snapshot records for " +
                               shard + " (no loadable snapshot in the "
                               "retention window; the shard resumes fresh)");
  }
  return report;
}

}  // namespace locpriv::service
