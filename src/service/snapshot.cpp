#include "service/snapshot.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/harness/error.hpp"
#include "core/harness/file_ops.hpp"

namespace locpriv::service {

namespace {

constexpr char kMagic[] = "locprivd-snapshot v1";

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

[[noreturn]] void corrupt(const std::string& why) {
  throw Error(ErrorCode::kResume, "corrupt shard snapshot: " + why);
}

/// Pops the next whitespace-delimited token; empty at end of input.
std::string next_token(std::istringstream& in) {
  std::string token;
  in >> token;
  return token;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  if (token.empty()) corrupt(std::string("missing ") + what);
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    corrupt(std::string("bad ") + what + " '" + token + "'");
  return value;
}

double parse_coord(const std::string& token) {
  if (token.empty()) corrupt("missing coordinate");
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0')
    corrupt("bad coordinate '" + token + "'");
  return value;
}

}  // namespace

std::size_t ShardSnapshot::fix_count() const {
  std::size_t count = 0;
  for (const auto& [user, fixes] : users) count += fixes.size();
  return count;
}

std::string format_coord(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

std::string encode_snapshot(const ShardSnapshot& snapshot) {
  std::string body;
  body += "shard " + std::to_string(snapshot.shard) + " seq " +
          std::to_string(snapshot.seq) + " last_seq " +
          std::to_string(snapshot.last_seq) + " users " +
          std::to_string(snapshot.users.size()) + " fixes " +
          std::to_string(snapshot.fix_count()) + "\n";
  for (const auto& [user, fixes] : snapshot.users) {
    body += "user " + user + " " + std::to_string(fixes.size()) + "\n";
    for (const trace::TracePoint& fix : fixes) {
      body += format_coord(fix.position.lat_deg) + " " +
              format_coord(fix.position.lon_deg) + " " +
              std::to_string(fix.timestamp_s) + "\n";
    }
  }
  return std::string(kMagic) + " checksum " + hex64(fnv1a(body)) + "\n" + body;
}

std::string snapshot_checksum(const std::string& encoded) {
  const std::size_t eol = encoded.find('\n');
  if (eol == std::string::npos) corrupt("no header line");
  return hex64(fnv1a(encoded.substr(eol + 1)));
}

ShardSnapshot parse_snapshot(const std::string& encoded) {
  const std::size_t eol = encoded.find('\n');
  if (eol == std::string::npos) corrupt("no header line");
  const std::string header = encoded.substr(0, eol);
  const std::string expected_prefix = std::string(kMagic) + " checksum ";
  if (header.rfind(expected_prefix, 0) != 0) corrupt("bad magic");
  const std::string recorded = header.substr(expected_prefix.size());
  const std::string body = encoded.substr(eol + 1);
  if (hex64(fnv1a(body)) != recorded) corrupt("checksum mismatch");

  std::istringstream in(body);
  ShardSnapshot snapshot;
  if (next_token(in) != "shard") corrupt("missing shard field");
  snapshot.shard = static_cast<unsigned>(parse_u64(next_token(in), "shard"));
  if (next_token(in) != "seq") corrupt("missing seq field");
  snapshot.seq = parse_u64(next_token(in), "seq");
  if (next_token(in) != "last_seq") corrupt("missing last_seq field");
  snapshot.last_seq = parse_u64(next_token(in), "last_seq");
  if (next_token(in) != "users") corrupt("missing users field");
  const std::uint64_t user_count = parse_u64(next_token(in), "users");
  if (next_token(in) != "fixes") corrupt("missing fixes field");
  const std::uint64_t fix_total = parse_u64(next_token(in), "fixes");

  for (std::uint64_t u = 0; u < user_count; ++u) {
    if (next_token(in) != "user") corrupt("missing user record");
    const std::string user_id = next_token(in);
    if (user_id.empty()) corrupt("missing user id");
    const std::uint64_t count = parse_u64(next_token(in), "user fix count");
    std::vector<trace::TracePoint> fixes;
    fixes.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      trace::TracePoint fix;
      fix.position.lat_deg = parse_coord(next_token(in));
      fix.position.lon_deg = parse_coord(next_token(in));
      fix.timestamp_s =
          static_cast<std::int64_t>(parse_u64(next_token(in), "timestamp"));
      fixes.push_back(fix);
    }
    snapshot.users.emplace(user_id, std::move(fixes));
  }
  if (snapshot.fix_count() != fix_total) corrupt("fix count mismatch");
  if (!next_token(in).empty()) corrupt("trailing data");
  return snapshot;
}

ShardSnapshot load_snapshot(const std::string& path) {
  // Through the injectable FileOps layer, so a read-path fault plan
  // (bit-flips, EIO) exercises the checksum rejection below.
  std::string encoded;
  if (!harness::read_file_through_ops(path, encoded))
    throw Error(ErrorCode::kResume, "cannot open shard snapshot " + path);
  try {
    return parse_snapshot(encoded);
  } catch (Error& e) {
    throw e.add_context("loading " + path);
  }
}

}  // namespace locpriv::service
