// Deterministic synthetic-traffic driver and parity oracle for locprivd.
//
// The traffic schedule is a pure function of (analyzer, TrafficOptions):
// every user's full-rate trace is chunked into fixed-size batches and the
// users are interleaved round-robin, optionally for several rounds with the
// whole corpus time-shifted per round. Because the schedule is canonical,
// a restarted service can simply be fed the same schedule again — the
// service's sequence-number dedupe drops everything a restored snapshot
// already covers — and the batch-pipeline reference for any user is just
// scheduled_fixes() run through PrivacyAnalyzer::evaluate_collected, which
// is what parity_mismatches() checks byte-for-byte.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "service/locprivd.hpp"

namespace locpriv::service {

struct TrafficOptions {
  std::size_t batch_size = 64;  ///< Fixes per submit batch.
  int rounds = 1;               ///< Dataset passes (soak length control).
  /// Gap inserted between rounds on top of the corpus span, so timestamps
  /// stay strictly increasing per user across rounds.
  std::int64_t round_gap_s = 86400;
  /// Sleep between submitted batches (paces a soak over wall-clock time).
  std::chrono::milliseconds pace{0};
  /// Admission mode. false = lossless corpus semantics: submits block for
  /// window credit, and nothing is shed. true = synthetic/soak semantics:
  /// submits never block; the service sheds by its ShedPolicy at the window
  /// edge.
  bool may_shed = false;
  /// With may_shed, drive every Nth user (0-based analyzer index % N == 0)
  /// losslessly anyway. An overload soak uses this to guarantee a non-empty
  /// set of users whose metrics must stay byte-identical to the batch
  /// pipeline while the rest of the population sheds. 0 = nobody.
  std::size_t lossless_every = 0;
};

struct TrafficOutcome {
  std::uint64_t batches = 0;   ///< Batches offered to the service.
  std::uint64_t accepted = 0;  ///< Batches the service accepted.
  std::uint64_t deduped = 0;   ///< Batches dropped by resume dedupe.
  std::uint64_t shed = 0;      ///< Batches the service shed at the window edge.
  std::uint64_t fixes = 0;     ///< Fixes inside accepted batches.
  bool interrupted = false;    ///< should_stop fired before the schedule ended.
};

/// Streams the canonical schedule into the service, ticking it between
/// batches. `should_stop` (optional) is polled per batch; when it returns
/// true the drive stops early with interrupted = true.
TrafficOutcome drive_traffic(LocprivService& service,
                             const core::PrivacyAnalyzer& analyzer,
                             const TrafficOptions& options,
                             const std::function<bool()>& should_stop = {});

/// Exactly the fixes the schedule submits for `user`, in submit order — the
/// input to the batch-pipeline parity reference.
std::vector<trace::TracePoint> scheduled_fixes(
    const core::PrivacyAnalyzer& analyzer, std::size_t user,
    const TrafficOptions& options);

/// The audit-all row layout for one exposure report: user, interval_s,
/// collected_fixes, extracted_pois, poi_total, poi_sensitive, hisbin_visits,
/// hisbin_movements, breach, deg_anonymity_p2. Shared by the shard pipeline
/// and the batch reference so parity is a plain string comparison.
std::vector<std::string> exposure_fields(const std::string& user_id,
                                         std::int64_t interval_s,
                                         const core::ExposureReport& report);

/// The single-pass batch-pipeline rows for the full schedule, analyzer user
/// order, same layout as LocprivService::collect_reports().
std::vector<std::vector<std::string>> batch_reference_rows(
    const core::PrivacyAnalyzer& analyzer, std::int64_t interval_s,
    const TrafficOptions& options);

/// Users whose service row differs from (or is missing against) the batch
/// reference; empty means byte-identical parity. `ignore_users` skips users
/// expected to be absent (quarantined shards).
std::vector<std::string> parity_mismatches(
    const core::PrivacyAnalyzer& analyzer, std::int64_t interval_s,
    const TrafficOptions& options,
    const std::vector<std::vector<std::string>>& service_rows,
    const std::vector<std::string>& ignore_users = {});

}  // namespace locpriv::service
