// Offline integrity scrubber for a locprivd run directory. Verifies the
// run ledger record by record (per-line CRC-32C + syntax) and every
// journaled shard snapshot (FNV-1a content checksum against the ledger
// record, shard/seq identity), and reports whether the directory would
// resume without divergence — each shard must have at least one loadable
// snapshot within its newest-two retention window, mirroring the service's
// own resume fallback.
//
// With `repair`, the scrubber truncates a torn or corrupt ledger back to
// its longest intact prefix, unlinks snapshot files that are corrupt or no
// longer referenced by the (possibly truncated) journal, and — when a
// shard's entire retention window failed verification — drops that shard's
// snapshot records so it legitimately resumes fresh instead of tripping the
// resume refusal. The result is a directory `locpriv serve --resume`
// accepts. Repair never invents data: it only discards what cannot be
// trusted.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/harness/run_ledger.hpp"

namespace locpriv::service {

/// Verdict on one journaled snapshot record.
struct SnapshotCheck {
  std::string cell;    ///< Ledger key, e.g. "shard0/snap/3".
  std::string file;    ///< Snapshot path the record points at.
  bool ok = false;
  std::string detail;  ///< "ok", or why the snapshot cannot be trusted.
};

struct ScrubReport {
  harness::LedgerScan ledger_status = harness::LedgerScan::kClean;
  std::uint64_t ledger_valid_bytes = 0;
  std::size_t ledger_bad_line = 0;     ///< When ledger_status is kCorrupt.
  std::size_t ledger_records = 0;      ///< Intact cell records replayed.
  std::vector<SnapshotCheck> snapshots;
  std::vector<std::string> repairs;    ///< Actions taken (repair mode only).
  /// Every shard with journaled snapshots has a loadable one inside the
  /// newest-two retention window (after repairs, when repair ran).
  bool resumable = false;

  /// Nothing wrong anywhere: ledger clean and every snapshot verified.
  bool clean() const {
    if (ledger_status != harness::LedgerScan::kClean) return false;
    for (const SnapshotCheck& check : snapshots)
      if (!check.ok) return false;
    return true;
  }
};

/// Scrubs `run_dir` (which must hold a ledger.jsonl). All I/O flows through
/// the injectable harness::FileOps layer. Throws Error(kUsage) when the
/// directory holds no ledger and Error(kIo) on filesystem failures.
ScrubReport scrub_run_dir(const std::filesystem::path& run_dir, bool repair);

}  // namespace locpriv::service
