#include "service/locprivd.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>

#include "core/harness/file_ops.hpp"
#include "core/harness/supervisor.hpp"
#include "service/shard_child.hpp"
#include "service/snapshot.hpp"
#include "util/logging.hpp"

namespace locpriv::service {

namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_shutdown = 0;

constexpr std::size_t kOutbufCompactBytes = 1 << 20;
constexpr std::size_t kMaxRecoveryRecords = 4096;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t parse_u64(const std::string& token) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw Error(ErrorCode::kInternal,
                "bad integer in shard response: " + token);
  return value;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

std::string signal_name(int signal) {
  switch (signal) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    default: return "signal " + std::to_string(signal);
  }
}

std::string describe_status(int status) {
  if (WIFSIGNALED(status))
    return "killed by " + signal_name(WTERMSIG(status));
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  return "wait status " + std::to_string(status);
}

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             to - from)
      .count();
}

}  // namespace

/// Everything the parent tracks about one shard across its incarnations.
struct LocprivService::Shard {
  enum class State {
    kIdle,         ///< Constructed, not yet spawned.
    kRunning,      ///< Child alive and believed healthy.
    kTerminating,  ///< SIGTERM sent; SIGKILL when the grace expires.
    kDead,         ///< Reaped; respawn scheduled at `respawn_at`.
    kDrained,      ///< Final snapshot journaled; child exiting/exited.
    kQuarantined,  ///< Flapped past the respawn budget; dropped from service.
  };

  unsigned index = 0;
  std::string name;
  State state = State::kIdle;
  pid_t pid = -1;
  int incarnation = 0;  ///< Spawn count; the fault plan's attempt window.
  int deaths = 0;
  int cmd_fd = -1;   ///< Parent write end (nonblocking).
  int resp_fd = -1;  ///< Parent read end (nonblocking).
  int err_fd = -1;   ///< Parent read end of captured stderr (nonblocking).

  std::string outbuf;  ///< Encoded commands awaiting pipe capacity.
  std::size_t out_off = 0;
  wire::FrameDecoder decoder;
  RollingTail stderr_tail;
  std::deque<PendingOp> pending;
  std::deque<RetainedBatch> retained;  ///< Accepted but not yet snapshotted.

  /// Last consumed submit sequence. Every non-blocked offer consumes one —
  /// shed offers included — so the offer-to-seq mapping is a pure function
  /// of the deterministic schedule and survives resume (see submit()).
  std::uint64_t submit_seq = 0;
  std::uint64_t acked_seq = 0;        ///< Highest submit seq the child acked.
  std::uint64_t sent_seq = 0;         ///< Highest submit seq encoded for the
                                      ///< current incarnation (credit cursor).
  std::size_t retained_bytes = 0;     ///< Frame bytes held in `retained`.
  /// (seq, encode time) per in-flight batch, for the turnaround EWMA.
  /// Bounded by the credit window: pushed on encode, popped on ack, cleared
  /// on death.
  std::deque<std::pair<std::uint64_t, Clock::time_point>> sent_times;
  double ewma_ms = 0.0;               ///< Batch-turnaround EWMA.
  bool ewma_init = false;
  bool degraded = false;              ///< Inside a degraded-EWMA episode.
  /// Inside a storage-degraded episode: snapshots are shedding because the
  /// child cannot publish them. Survives respawn — the disk, not the
  /// incarnation, is what is broken. Cleared when a publish lands.
  bool storage_degraded = false;
  int drain_snapfails = 0;            ///< Consecutive failed drain publishes.
  std::uint64_t offered = 0;          ///< Batches offered to this shard.
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t restored_seq = 0;     ///< Watermark restored at startup.
  std::uint64_t snap_seq = 0;         ///< Last *journaled* snapshot seq.
  std::uint64_t snap_last_seq = 0;    ///< Watermark of that snapshot.
  std::uint64_t queued_snap_seq = 0;  ///< Highest snapshot seq handed out.
  std::string restore_file;           ///< Snapshot a respawn restores from.
  std::uint64_t restore_expect_seq = 0;

  std::uint64_t ingested = 0;    ///< Child-reported applied fixes.
  std::size_t state_bytes = 0;   ///< Child-reported resident state estimate.
  std::string last_failure;
  bool recovering = false;       ///< A death is awaiting its recovery pong.
  bool death_clock_running = false;
  Clock::time_point death_time{};
  Clock::time_point respawn_at{};
  Clock::time_point term_deadline{};
  Clock::time_point last_ping_sent{};
  Clock::time_point next_snapshot_at{};

  std::vector<std::vector<std::string>> report_rows;
  bool report_ready = false;

  Shard(unsigned index, std::size_t tail_cap)
      : index(index), name(shard_name(index)), stderr_tail(tail_cap) {}

  bool alive() const {
    return state == State::kRunning || state == State::kTerminating;
  }

  bool has_pending(const char* response_verb) const {
    for (const PendingOp& op : pending)
      if (op.verb == response_verb) return true;
    return false;
  }

  void push_op(const char* response_verb, std::uint64_t token,
               std::chrono::milliseconds budget) {
    PendingOp op;
    op.verb = response_verb;
    op.token = token;
    op.budget = budget;
    if (pending.empty()) op.deadline = Clock::now() + budget;
    pending.push_back(std::move(op));
  }

  void pop_op() {
    pending.pop_front();
    if (!pending.empty())
      pending.front().deadline = Clock::now() + pending.front().budget;
  }
};

LocprivService::LocprivService(ServiceOptions options,
                               const core::PrivacyAnalyzer& analyzer,
                               std::filesystem::path run_dir, bool resume)
    : options_(std::move(options)),
      analyzer_(analyzer),
      run_dir_(std::move(run_dir)) {
  if (options_.shards == 0)
    throw Error(ErrorCode::kUsage, "locprivd needs at least one shard");
  // A dead shard's pipe must not kill the whole service with SIGPIPE; the
  // write's EPIPE is handled and the reaper classifies the death.
  ::signal(SIGPIPE, SIG_IGN);
  std::error_code ec;
  std::filesystem::create_directories(run_dir_, ec);

  // The ledger header pins seed, scale, AND shard topology: resuming a
  // run directory journaled under a different shard count would scatter the
  // user->shard mapping across snapshots, so it is refused (exit 6).
  const harness::RunInfo info{"locprivd", options_.seed, options_.scale,
                              "serve-s" + std::to_string(options_.shards)};
  if (!resume && std::filesystem::exists(run_dir_ / "ledger.jsonl"))
    throw Error(ErrorCode::kResume,
                run_dir_.string() +
                    " already holds a ledger; pass resume to continue that "
                    "run or choose a fresh run directory");
  ledger_ = std::make_unique<harness::RunLedger>(run_dir_, info);

  for (unsigned k = 0; k < options_.shards; ++k)
    // One Shard per configured shard, fixed for the service lifetime.
    // locpriv-lint: allow(unbounded-growth)
    shards_.push_back(
        std::make_unique<Shard>(k, options_.stderr_tail_cap));
  if (resume)
    for (auto& shard : shards_) resume_pointer(*shard);
  for (auto& shard : shards_) spawn(*shard);
}

LocprivService::~LocprivService() {
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.pid > 0) {
      ::kill(shard.pid, SIGKILL);
      int status = 0;
      while (::waitpid(shard.pid, &status, 0) < 0 && errno == EINTR) {}
      shard.pid = -1;
    }
    close_fd(shard.cmd_fd);
    close_fd(shard.resp_fd);
    close_fd(shard.err_fd);
  }
}

std::string LocprivService::shard_name(unsigned shard) {
  return "shard" + std::to_string(shard);
}

unsigned LocprivService::shard_of(const std::string& user_id) const {
  const auto it = user_shard_.find(user_id);
  if (it != user_shard_.end()) return it->second;
  const auto shard =
      static_cast<unsigned>(fnv1a(user_id) % options_.shards);
  user_shard_.emplace(user_id, shard);
  return shard;
}

void LocprivService::resume_pointer(Shard& shard) {
  // Snapshot seqs are dense (1, 2, ...) per shard, so the newest journaled
  // snapshot is found by probing upward from the last known seq.
  std::uint64_t newest = 0;
  while (ledger_->completed(shard.name + "/snap/" +
                            std::to_string(newest + 1)))
    ++newest;
  if (newest == 0) return;  // Shard never snapshotted; resumes fresh.

  // Validate before trusting: the newest snapshot file, falling back to the
  // previous one (the service keeps two on disk) if the newest is missing
  // or corrupt. The ledger-recorded checksum ties the file to the journal.
  for (std::uint64_t seq = newest; seq > 0 && seq + 2 > newest; --seq) {
    const std::vector<std::string>* fields =
        ledger_->fields(shard.name + "/snap/" + std::to_string(seq));
    if (fields == nullptr || fields->size() < 5) continue;
    const std::string& file = (*fields)[0];
    // Through the FileOps layer, so read-path fault plans (bit-flips, EIO)
    // exercise the newest-two fallback below.
    std::string encoded;
    if (!harness::read_file_through_ops(file, encoded)) continue;
    try {
      const ShardSnapshot snapshot = parse_snapshot(encoded);
      if (snapshot.shard != shard.index || snapshot.seq != seq ||
          snapshot_checksum(encoded) != (*fields)[4])
        continue;
    } catch (const Error&) {
      continue;
    }
    shard.restore_file = file;
    shard.restore_expect_seq = seq;
    shard.restored_seq = parse_u64((*fields)[1]);
    shard.snap_seq = newest;
    shard.queued_snap_seq = newest;
    shard.snap_last_seq = shard.restored_seq;
    return;
  }
  throw Error(ErrorCode::kResume,
              shard.name + ": no journaled snapshot is loadable; the run "
                           "directory cannot be resumed without divergence");
}

void LocprivService::spawn(Shard& shard) {
  int cmd[2] = {-1, -1};
  int resp[2] = {-1, -1};
  int err[2] = {-1, -1};
  if (::pipe(cmd) != 0 || ::pipe(resp) != 0 || ::pipe(err) != 0) {
    for (int* pair : {cmd, resp, err})
      for (int i = 0; i < 2; ++i)
        if (pair[i] >= 0) ::close(pair[i]);
    throw Error(ErrorCode::kIo,
                "cannot create pipes for " + shard.name + errno_detail());
  }

  ShardChildConfig config;
  config.shard = shard.index;
  config.name = shard.name;
  config.incarnation = shard.incarnation + 1;
  config.cmd_fd = cmd[0];
  config.resp_fd = resp[1];
  config.err_fd = err[1];

  pid_t pid = -1;
  {
    // Fork-safety bracket: no other thread may be mid-log-emission at the
    // instant of the fork, or the child inherits the sink mutex locked.
    // Every spawn goes through here, so the *respawn* path is as fork-safe
    // as the initial one.
    util::LogForkGuard guard;
    pid = ::fork();
  }
  if (pid < 0) {
    for (int* pair : {cmd, resp, err})
      for (int i = 0; i < 2; ++i) ::close(pair[i]);
    throw Error(ErrorCode::kInternal,
                "cannot fork " + shard.name + errno_detail());
  }
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(resp[0]);
    ::close(err[0]);
    shard_child_main(config, analyzer_, options_);  // [[noreturn]]
  }
  ::close(cmd[0]);
  ::close(resp[1]);
  ::close(err[1]);
  set_nonblocking(cmd[1]);
  set_nonblocking(resp[0]);
  set_nonblocking(err[0]);

  shard.pid = pid;
  shard.cmd_fd = cmd[1];
  shard.resp_fd = resp[0];
  shard.err_fd = err[0];
  ++shard.incarnation;
  if (shard.incarnation > 1) ++stats_.respawns;
  shard.state = Shard::State::kRunning;
  shard.decoder = wire::FrameDecoder();
  shard.outbuf.clear();
  shard.out_off = 0;
  shard.pending.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.queued_snap_seq = shard.snap_seq;
  // The new incarnation's memory is exactly the snapshot it restores: the
  // credit cursors rewind to the snapshot watermark so the retained suffix
  // is replayed through the same windowed path as live traffic.
  shard.sent_seq = shard.snap_last_seq;
  shard.acked_seq = shard.snap_last_seq;
  shard.sent_times.clear();
  shard.ewma_ms = 0.0;
  shard.ewma_init = false;
  shard.degraded = false;
  const auto now = Clock::now();
  shard.last_ping_sent = now;
  shard.next_snapshot_at = now + options_.snapshot_interval;

  // Recovery protocol: restore the latest journaled snapshot, replay the
  // retained suffix (everything accepted past the snapshot watermark) under
  // the credit window, then ping — the pong marks the shard recovered.
  if (shard.restore_expect_seq > 0) {
    send(shard, {wire::kCmdRestore, shard.restore_file,
                 std::to_string(shard.restore_expect_seq)});
    shard.push_op(wire::kRspRestored, 0, options_.op_timeout);
  }
  pump_submits(shard);
  queue_ping(shard);
  LOCPRIV_LOG(kInfo, "locprivd")
      << shard.name << " incarnation " << shard.incarnation << " pid " << pid
      << (shard.restore_expect_seq > 0
              ? " restoring snapshot " +
                    std::to_string(shard.restore_expect_seq) + ", replaying " +
                    std::to_string(shard.retained.size()) + " batches"
              : " fresh");
}

void LocprivService::send(Shard& shard, const std::vector<std::string>& fields) {
  shard.outbuf += wire::encode_message(fields);
}

bool LocprivService::window_full(const Shard& shard) const {
  if (options_.max_retained_bytes > 0 &&
      shard.retained_bytes >= options_.max_retained_bytes)
    return true;
  if (options_.max_inflight_batches == 0) return false;
  // Unacked window: retained batches past the child's ack watermark. The
  // deque is seq-sorted, so the boundary is a binary search.
  const auto first_unacked = std::lower_bound(
      shard.retained.begin(), shard.retained.end(), shard.acked_seq,
      [](const RetainedBatch& batch, std::uint64_t acked) {
        return batch.seq <= acked;
      });
  const auto unacked =
      static_cast<std::size_t>(shard.retained.end() - first_unacked);
  return unacked >= options_.max_inflight_batches;
}

void LocprivService::account_shed(Shard& shard, const std::string& user,
                                  std::size_t fixes, ShedCause cause) {
  ++stats_.batches_shed;
  stats_.fixes_shed += fixes;
  switch (cause) {
    case ShedCause::kRejectNew: ++stats_.shed_reject_new; break;
    case ShedCause::kDropOldest: ++stats_.shed_drop_oldest; break;
    case ShedCause::kQuarantined: ++stats_.shed_quarantined; break;
  }
  ++shard.shed;
  UserLoad& load = user_loads_[user];
  ++load.batches_shed;
  load.fixes_shed += fixes;
}

Admission LocprivService::submit(const std::string& user_id,
                                 const std::vector<trace::TracePoint>& fixes,
                                 bool may_shed,
                                 const std::function<bool()>& abort) {
  Shard& shard = *shards_[shard_of(user_id)];
  if (shard.state != Shard::State::kQuarantined &&
      shard.submit_seq + 1 <= shard.restored_seq) {
    // Resume dedupe: the deterministic schedule re-offers batches a restored
    // snapshot already covers; they are dropped without touching the shard
    // (and without consuming window credit). A batch shed in the original
    // run consumed its seq too, so it lands here counted as dropped — never
    // applied in either run, exactly as it would have been.
    ++shard.submit_seq;
    ++stats_.batches_offered;
    ++shard.offered;
    ++user_loads_[user_id].batches_offered;
    ++stats_.batches_dropped;
    return Admission::kDeduped;
  }

  if (!may_shed && shard.state != Shard::State::kQuarantined &&
      window_full(shard)) {
    // Lossless backpressure: the corpus path waits for window credit,
    // pumping the event loop so acks, snapshots, and respawns progress.
    // Aborting here leaves the batch unaccounted — no sequence number was
    // consumed and it never entered the system, so a resumed run re-offers
    // it as the same offer ordinal.
    ++stats_.blocked_waits;
    while (window_full(shard) && shard.state != Shard::State::kQuarantined) {
      if (shutdown_requested() || (abort && abort()))
        return Admission::kBlocked;
      tick(std::chrono::milliseconds(5));
    }
  }

  // Past this point every offer — shed or accepted — consumes exactly one
  // submit seq. Shedding is timing-dependent, so if shed offers skipped
  // seqs, a resumed run's offer-to-seq mapping would shift against the
  // restored watermark: earlier offers would be silently deduped and later
  // ones re-applied on top of the snapshot that already covers them.
  // Consuming the seq keeps the mapping a pure function of the offer
  // schedule; the child tolerates the resulting seq gaps (it tracks the
  // highest applied seq, not contiguity).
  const std::uint64_t seq = ++shard.submit_seq;
  ++stats_.batches_offered;
  ++shard.offered;
  ++user_loads_[user_id].batches_offered;

  if (shard.state == Shard::State::kQuarantined) {
    account_shed(shard, user_id, fixes.size(), ShedCause::kQuarantined);
    return Admission::kShed;
  }

  if (may_shed && window_full(shard)) {
    if (options_.shed_policy == ShedPolicy::kDropOldest) {
      // Drop-oldest can only evict a batch that is not yet on the wire (a
      // consumed frame cannot be unsent). One eviction may free fewer bytes
      // than the incoming frame needs, so keep evicting until the window —
      // count and byte cap both — actually reopens; if everything retained
      // is already in flight the incoming batch is rejected instead.
      while (window_full(shard)) {
        const auto oldest_unsent = std::lower_bound(
            shard.retained.begin(), shard.retained.end(), shard.sent_seq,
            [](const RetainedBatch& batch, std::uint64_t sent) {
              return batch.seq <= sent;
            });
        if (oldest_unsent == shard.retained.end()) break;
        // Reclassify the evicted batch from submitted to shed so
        // `offered == submitted + dropped + shed` keeps reconciling.
        --stats_.batches_submitted;
        stats_.fixes_submitted -= oldest_unsent->fixes;
        --shard.accepted;
        --user_loads_[oldest_unsent->user].batches_accepted;
        account_shed(shard, oldest_unsent->user, oldest_unsent->fixes,
                     ShedCause::kDropOldest);
        shard.retained_bytes -= oldest_unsent->frame.size();
        shard.retained.erase(oldest_unsent);
      }
    }
    if (window_full(shard)) {
      account_shed(shard, user_id, fixes.size(), ShedCause::kRejectNew);
      return Admission::kShed;
    }
  }

  std::vector<std::string> fields;
  fields.reserve(4 + fixes.size() * 3);
  fields.push_back(wire::kCmdSubmit);
  fields.push_back(std::to_string(seq));
  fields.push_back(user_id);
  fields.push_back(std::to_string(fixes.size()));
  for (const trace::TracePoint& fix : fixes) {
    fields.push_back(format_coord(fix.position.lat_deg));
    fields.push_back(format_coord(fix.position.lon_deg));
    fields.push_back(std::to_string(fix.timestamp_s));
  }
  RetainedBatch batch;
  batch.seq = seq;
  batch.frame = wire::encode_message(fields);
  batch.fixes = fixes.size();
  batch.user = user_id;
  shard.retained_bytes += batch.frame.size();
  stats_.retained_bytes_peak =
      std::max(stats_.retained_bytes_peak, shard.retained_bytes);
  // Admission closed above at the window edge, so this append is bounded by
  // max_inflight_batches + max_retained_bytes. locpriv-lint: allow(unbounded-growth)
  shard.retained.push_back(std::move(batch));
  ++stats_.batches_submitted;
  stats_.fixes_submitted += fixes.size();
  ++shard.accepted;
  ++user_loads_[user_id].batches_accepted;
  // Encode immediately if the shard is running and credit allows; a dead
  // shard's batch waits in `retained` for the respawn replay.
  pump_submits(shard);
  return Admission::kAccepted;
}

void LocprivService::pump_submits(Shard& shard) {
  if (shard.state != Shard::State::kRunning) return;
  const auto first_unsent = std::lower_bound(
      shard.retained.begin(), shard.retained.end(), shard.sent_seq,
      [](const RetainedBatch& batch, std::uint64_t sent) {
        return batch.seq <= sent;
      });
  for (auto it = first_unsent; it != shard.retained.end(); ++it) {
    // Gate on the count of actually sent-but-unacked batches (sent_times is
    // pushed on encode, popped on ack), not sent_seq - acked_seq: shed and
    // drop-oldest-evicted offers leave seq holes above acked_seq that were
    // never sent, and the subtraction would count them as in flight.
    if (options_.max_inflight_batches > 0 &&
        shard.sent_times.size() >= options_.max_inflight_batches)
      break;  // Window edge: encoding resumes as acks arrive.
    shard.outbuf += it->frame;
    shard.sent_seq = it->seq;
    // Every encoded submit carries an in-order ack obligation with the
    // heartbeat budget: a wedged shard is detected by its oldest unacked
    // batch exactly like a missed ping, so a full pipe cannot stall
    // drain/shutdown. Bounded by the credit window.
    // locpriv-lint: allow(unbounded-growth)
    shard.sent_times.emplace_back(it->seq, Clock::now());
    shard.push_op(wire::kRspAck, it->seq, options_.ping_timeout);
  }
  stats_.pending_ops_peak =
      std::max(stats_.pending_ops_peak, shard.pending.size());
  stats_.outbuf_bytes_peak =
      std::max(stats_.outbuf_bytes_peak, shard.outbuf.size() - shard.out_off);
}

void LocprivService::tick(std::chrono::milliseconds budget) {
  const auto start = Clock::now();
  auto remaining = budget;
  for (;;) {
    pump(std::min(remaining, std::chrono::milliseconds(20)));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - start);
    if (elapsed >= budget) break;
    remaining = budget - elapsed;
  }
}

void LocprivService::pump(std::chrono::milliseconds timeout) {
  const auto now = Clock::now();

  // 1. Encode window-credited submits, then push queued commands down the
  // (nonblocking) pipes.
  for (auto& owned : shards_) {
    pump_submits(*owned);
    if (owned->alive()) flush_out(*owned);
  }

  // 2. Wait for responses / stderr, bounded by the caller's budget.
  std::vector<pollfd> fds;
  std::vector<std::pair<Shard*, bool>> owners;  ///< (shard, is_resp).
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.resp_fd >= 0) {
      fds.push_back({shard.resp_fd, POLLIN, 0});
      owners.emplace_back(&shard, true);
    }
    if (shard.err_fd >= 0) {
      fds.push_back({shard.err_fd, POLLIN, 0});
      owners.emplace_back(&shard, false);
    }
  }
  if (!fds.empty()) {
    int n = 0;
    for (;;) {
      n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                 static_cast<int>(timeout.count()));
      if (n >= 0 || errno != EINTR) break;
    }
    if (n > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Shard& shard = *owners[i].first;
        char chunk[65536];
        for (;;) {
          const ssize_t got = ::read(fds[i].fd, chunk, sizeof(chunk));
          if (got > 0) {
            if (owners[i].second)
              shard.decoder.feed(chunk, static_cast<std::size_t>(got));
            else
              shard.stderr_tail.append(chunk, static_cast<std::size_t>(got));
            continue;
          }
          if (got < 0 && errno == EINTR) continue;
          break;  // EAGAIN (drained) or EOF (child gone; the reaper acts).
        }
        if (owners[i].second) {
          std::vector<std::string> fields;
          while (shard.decoder.next(fields)) dispatch_response(shard, fields);
          if (shard.decoder.corrupt() && shard.alive()) {
            shard.last_failure = "corrupt response stream";
            ::kill(shard.pid, SIGKILL);
          }
        }
      }
    }
  } else if (timeout.count() > 0) {
    // Nothing to watch (all shards dead or quarantined): honour the budget
    // so respawn backoff timers still make progress without spinning. The
    // budget is <= 20ms, so finishing the sleep after EINTR is harmless.
    while (::poll(nullptr, 0, static_cast<int>(timeout.count())) < 0 &&
           errno == EINTR) {}
  }

  // 3. Reap exits.
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.pid <= 0) continue;
    int status = 0;
    const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
    if (reaped == shard.pid) handle_death(shard, status);
  }

  // 4. Health: escalate unresponsive shards, finish overdue terminations.
  for (auto& owned : shards_) health_check(*owned);

  // 5. Respawn dead shards whose backoff has elapsed.
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state == Shard::State::kDead && now >= shard.respawn_at)
      spawn(shard);
  }

  // 6. Cadences: heartbeat pings, periodic snapshots, and forced early
  // snapshots when retained replay bytes cross the cap (the snapshot's
  // journaled watermark truncates `retained`, reopening admission).
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state != Shard::State::kRunning) continue;
    if (now - shard.last_ping_sent >= options_.heartbeat &&
        !shard.has_pending(wire::kRspPong))
      queue_ping(shard);
    const bool snapshot_in_flight = shard.has_pending(wire::kRspSnapped) ||
                                    shard.has_pending(wire::kRspDrained);
    if (options_.snapshot_interval.count() > 0 &&
        now >= shard.next_snapshot_at && !snapshot_in_flight) {
      queue_snapshot(shard, wire::kCmdSnapshot);
    } else if (options_.max_retained_bytes > 0 &&
               shard.retained_bytes >= options_.max_retained_bytes &&
               shard.acked_seq > shard.snap_last_seq && !snapshot_in_flight &&
               !shard.storage_degraded) {
      // Only force when the snapshot can advance the watermark (the child
      // acked past the last one), else the snapshot would truncate nothing
      // and the cadence would spin. A storage-degraded shard is also
      // excluded: its publishes are failing, so forcing here would retry in
      // a tight loop instead of on the snapshot cadence — retained stays
      // capped anyway because admission holds at the byte cap.
      ++stats_.forced_snapshots;
      queue_snapshot(shard, wire::kCmdSnapshot);
    }
  }
}

void LocprivService::flush_out(Shard& shard) {
  while (shard.out_off < shard.outbuf.size()) {
    const ssize_t n =
        ::write(shard.cmd_fd, shard.outbuf.data() + shard.out_off,
                shard.outbuf.size() - shard.out_off);
    if (n > 0) {
      shard.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (pipe full) or EPIPE (child dead; the reaper acts).
  }
  if (shard.out_off == shard.outbuf.size()) {
    shard.outbuf.clear();
    shard.out_off = 0;
  } else if (shard.out_off > kOutbufCompactBytes) {
    shard.outbuf.erase(0, shard.out_off);
    shard.out_off = 0;
  }
}

void LocprivService::health_check(Shard& shard) {
  const auto now = Clock::now();
  if (shard.state == Shard::State::kTerminating) {
    // SIGTERM was delivered; a shard that ignores it (busy-hang) is
    // reclaimed by SIGKILL once the grace expires.
    if (now >= shard.term_deadline) ::kill(shard.pid, SIGKILL);
    return;
  }
  if (shard.state != Shard::State::kRunning) return;
  if (shard.pending.empty()) return;
  const PendingOp& front = shard.pending.front();
  if (now < front.deadline) return;
  shard.last_failure = "unresponsive: no " + front.verb + " within " +
                       std::to_string(front.budget.count()) + "ms";
  shard.state = Shard::State::kTerminating;
  shard.term_deadline = now + options_.term_grace;
  shard.death_clock_running = true;
  shard.death_time = now;  // Recovery latency counts from *detection*.
  ::kill(shard.pid, SIGTERM);
}

void LocprivService::handle_death(Shard& shard, int status) {
  // Salvage what the child fully wrote before dying: complete response
  // frames (a snapshot published just before a crash is valid — the file
  // was committed atomically before the response) and the stderr tail.
  for (const bool is_resp : {true, false}) {
    const int fd = is_resp ? shard.resp_fd : shard.err_fd;
    if (fd < 0) continue;
    char chunk[65536];
    for (;;) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got > 0) {
        if (is_resp)
          shard.decoder.feed(chunk, static_cast<std::size_t>(got));
        else
          shard.stderr_tail.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      break;
    }
  }
  std::vector<std::string> fields;
  while (shard.decoder.next(fields)) dispatch_response(shard, fields);

  shard.pid = -1;
  close_fd(shard.cmd_fd);
  close_fd(shard.resp_fd);
  close_fd(shard.err_fd);

  if (shard.state == Shard::State::kDrained ||
      shard.state == Shard::State::kQuarantined)
    return;  // Expected exit after drain, or already written off.

  ++stats_.shard_deaths;
  ++shard.deaths;
  const std::string cause = describe_status(status);
  shard.last_failure =
      shard.last_failure.empty() ? cause : shard.last_failure + "; " + cause;
  shard.pending.clear();
  // The dead child's unsnapshotted memory is gone: rewind the credit
  // cursors to the snapshot watermark so window accounting reflects what
  // the *next* incarnation still has to apply.
  shard.acked_seq = shard.snap_last_seq;
  shard.sent_seq = shard.snap_last_seq;
  shard.sent_times.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.recovering = true;
  if (!shard.death_clock_running) {
    shard.death_clock_running = true;
    shard.death_time = Clock::now();
  }
  LOCPRIV_LOG(kWarn, "locprivd")
      << shard.name << " died (" << cause << "), death " << shard.deaths
      << "/" << options_.max_respawns + 1;

  if (shard.deaths > options_.max_respawns) {
    quarantine(shard, "flapping: " + std::to_string(shard.deaths) +
                          " deaths exceeded the respawn budget of " +
                          std::to_string(options_.max_respawns));
    return;
  }
  // Deterministic backoff, same jitter derivation as supervised cells.
  harness::SupervisorOptions backoff;
  backoff.backoff_base = options_.backoff_base;
  backoff.backoff_seed = options_.backoff_seed;
  shard.state = Shard::State::kDead;
  shard.respawn_at = Clock::now() +
                     harness::backoff_delay(backoff, shard.name,
                                            shard.deaths + 1);
}

void LocprivService::quarantine(Shard& shard, std::string reason) {
  if (shard.pid > 0) {
    ::kill(shard.pid, SIGKILL);
    int status = 0;
    while (::waitpid(shard.pid, &status, 0) < 0 && errno == EINTR) {}
    shard.pid = -1;
  }
  close_fd(shard.cmd_fd);
  close_fd(shard.resp_fd);
  close_fd(shard.err_fd);
  std::vector<std::string> details;
  details.push_back(std::move(reason));
  if (!shard.last_failure.empty())
    details.push_back("last failure: " + shard.last_failure);
  const std::string tail = shard.stderr_tail.one_line();
  if (!tail.empty()) details.push_back("stderr: " + tail);
  ledger_->record_quarantine(shard.name, details);
  shard.state = Shard::State::kQuarantined;
  shard.pending.clear();
  // Unsnapshotted retained batches die with the quarantined shard: shed
  // them deterministically (reclassified from submitted) instead of
  // silently dropping, so the reconciliation identity survives quarantine.
  for (const RetainedBatch& batch : shard.retained) {
    --stats_.batches_submitted;
    stats_.fixes_submitted -= batch.fixes;
    --shard.accepted;
    --user_loads_[batch.user].batches_accepted;
    account_shed(shard, batch.user, batch.fixes, ShedCause::kQuarantined);
  }
  shard.retained.clear();
  shard.retained_bytes = 0;
  shard.sent_times.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.recovering = false;
  LOCPRIV_LOG(kError, "locprivd") << shard.name << " quarantined";
}

void LocprivService::dispatch_response(Shard& shard,
                                       const std::vector<std::string>& fields) {
  if (fields.empty()) return;
  const std::string& verb = fields[0];
  if (!shard.pending.empty() && shard.pending.front().verb == verb)
    shard.pop_op();

  if (verb == wire::kRspAck && fields.size() >= 3) {
    const std::uint64_t seq = parse_u64(fields[1]);
    if (seq > shard.acked_seq) shard.acked_seq = seq;
    // Turnaround sample: encode-to-ack latency of this batch. Acks arrive
    // in order; anything older without a sample was reset by a respawn.
    while (!shard.sent_times.empty() && shard.sent_times.front().first < seq)
      shard.sent_times.pop_front();
    if (!shard.sent_times.empty() && shard.sent_times.front().first == seq) {
      const double sample =
          ms_between(shard.sent_times.front().second, Clock::now());
      shard.sent_times.pop_front();
      note_turnaround(shard, sample);
    }
    // The freed credit encodes the next unsent retained batch immediately.
    pump_submits(shard);
    return;
  }

  if (verb == wire::kRspPong && fields.size() >= 4) {
    shard.ingested = parse_u64(fields[2]);
    shard.state_bytes = static_cast<std::size_t>(parse_u64(fields[3]));
    std::size_t total = 0;
    for (const auto& owned : shards_) total += owned->state_bytes;
    stats_.state_bytes = total;
    if (shard.recovering) {
      RecoveryRecord record;
      record.shard = shard.index;
      record.incarnation = shard.incarnation;
      record.latency_ms = ms_between(shard.death_time, Clock::now());
      // An always-on service accumulates recoveries forever; keep the
      // newest window (benches read recent latency, not ancient history).
      if (stats_.recoveries.size() >= kMaxRecoveryRecords)
        stats_.recoveries.erase(stats_.recoveries.begin());
      stats_.recoveries.push_back(record);
      shard.recovering = false;
      shard.death_clock_running = false;
      shard.last_failure.clear();
      LOCPRIV_LOG(kInfo, "locprivd")
          << shard.name << " recovered in "
          << static_cast<long>(record.latency_ms) << "ms";
    }
  } else if (verb == wire::kRspRestored && fields.size() >= 4) {
    if (fields[3] != "ok")
      quarantine(shard, "snapshot restore failed: " + fields[3]);
  } else if ((verb == wire::kRspSnapped || verb == wire::kRspDrained) &&
             fields.size() >= 6) {
    record_snapshot(shard, fields);
    if (verb == wire::kRspDrained) shard.state = Shard::State::kDrained;
  } else if (verb == wire::kRspSnapfail && fields.size() >= 3) {
    // The failed publish's pending op was queued under its *success* verb
    // (kRspSnapped/kRspDrained), so the auto-pop above did not fire; pop it
    // explicitly or the shard would be falsely escalated as unresponsive
    // once the op deadline lapses.
    bool was_drain = false;
    if (!shard.pending.empty() &&
        (shard.pending.front().verb == wire::kRspSnapped ||
         shard.pending.front().verb == wire::kRspDrained)) {
      was_drain = shard.pending.front().verb == wire::kRspDrained;
      shard.pop_op();
    }
    handle_snapshot_failure(shard, fields[2], was_drain);
  } else if (verb == wire::kRspReports && fields.size() >= 4) {
    const std::size_t rows = static_cast<std::size_t>(parse_u64(fields[2]));
    const std::size_t cols = static_cast<std::size_t>(parse_u64(fields[3]));
    shard.report_rows.clear();
    if (fields.size() >= 4 + rows * cols) {
      for (std::size_t r = 0; r < rows; ++r)
        shard.report_rows.emplace_back(
            fields.begin() + static_cast<std::ptrdiff_t>(4 + r * cols),
            fields.begin() + static_cast<std::ptrdiff_t>(4 + (r + 1) * cols));
      shard.report_ready = true;
    }
  }
}

void LocprivService::handle_snapshot_failure(Shard& shard,
                                             const std::string& error,
                                             bool was_drain) {
  ++stats_.snapshots_shed;
  // Rewind the handed-out seq so the retry reuses it: journaled snapshot
  // seqs must stay dense (1, 2, ...) per shard or resume_pointer's upward
  // probe would stop short of snapshots journaled after a failure.
  shard.queued_snap_seq = shard.snap_seq;
  // Retry on the normal cadence; the successful publish re-arms the shard.
  shard.next_snapshot_at = Clock::now() + options_.snapshot_interval;
  if (!shard.storage_degraded) {
    shard.storage_degraded = true;
    ++stats_.storage_degraded_events;
    // One journal line per degraded episode (probe-upward key, like the
    // shed records), so an offline audit of the run directory can count
    // snapshot-shedding episodes and see what the disk said. If the ledger
    // itself cannot append (same full disk), the Error propagates and the
    // service exits with the I/O taxonomy code — degraded mode trades
    // snapshot durability, never journal integrity.
    std::uint64_t n = 1;
    while (ledger_->completed(shard.name + "/snapdrop/" + std::to_string(n)))
      ++n;
    ledger_->record(shard.name + "/snapdrop/" + std::to_string(n),
                    {std::to_string(shard.snap_seq + 1), error});
    LOCPRIV_LOG(kWarn, "locprivd")
        << shard.name << " snapshot publish failed (" << error
        << "); shedding snapshots, serving from memory";
  }
  if (was_drain) {
    // A drain retries through the drain() loop; a disk that never accepts
    // the final snapshot must not hang shutdown forever.
    ++shard.drain_snapfails;
    if (shard.drain_snapfails >= 3)
      throw Error(ErrorCode::kIo,
                  shard.name + ": final drain snapshot failed " +
                      std::to_string(shard.drain_snapfails) +
                      " times: " + error);
  }
}

std::filesystem::path LocprivService::snapshot_path(
    const Shard& shard, std::uint64_t snap_seq) const {
  return run_dir_ /
         (shard.name + ".snap." + std::to_string(snap_seq) + ".dat");
}

void LocprivService::queue_snapshot(Shard& shard, const char* verb) {
  const std::uint64_t snap_seq =
      std::max(shard.snap_seq, shard.queued_snap_seq) + 1;
  shard.queued_snap_seq = snap_seq;
  send(shard, {verb, std::to_string(snap_seq),
               snapshot_path(shard, snap_seq).string()});
  shard.push_op(std::string(verb) == wire::kCmdDrain ? wire::kRspDrained
                                                     : wire::kRspSnapped,
                0, options_.op_timeout);
}

void LocprivService::queue_ping(Shard& shard) {
  const std::uint64_t token = ++next_token_;
  send(shard, {wire::kCmdPing, std::to_string(token)});
  shard.push_op(wire::kRspPong, token, options_.ping_timeout);
  shard.last_ping_sent = Clock::now();
}

void LocprivService::record_snapshot(Shard& shard,
                                     const std::vector<std::string>& fields) {
  const std::uint64_t snap_seq = parse_u64(fields[1]);
  const std::uint64_t last_seq = parse_u64(fields[2]);
  const std::string file = snapshot_path(shard, snap_seq).string();
  // Key per seq — the ledger refuses duplicate cells, which is exactly the
  // invariant: one journal line per published snapshot.
  ledger_->record(shard.name + "/snap/" + std::to_string(snap_seq),
                  {file, fields[2], fields[3], fields[4], fields[5]});
  ++stats_.snapshots;
  if (shard.storage_degraded) {
    // The publish landed: storage recovered. Re-arm normal snapshotting.
    shard.storage_degraded = false;
    shard.drain_snapfails = 0;
    LOCPRIV_LOG(kInfo, "locprivd")
        << shard.name << " snapshot " << snap_seq
        << " published; storage recovered, snapshots re-armed";
  }
  shard.snap_seq = snap_seq;
  shard.snap_last_seq = last_seq;
  shard.restore_file = file;
  shard.restore_expect_seq = snap_seq;
  shard.next_snapshot_at = Clock::now() + options_.snapshot_interval;
  // The journaled snapshot now covers every batch up to last_seq: the
  // parent's retention obligation ends there. The snapshot also proves the
  // child applied through last_seq, so the credit cursors floor there even
  // if individual acks were lost to a pipe race.
  while (!shard.retained.empty() && shard.retained.front().seq <= last_seq) {
    shard.retained_bytes -= shard.retained.front().frame.size();
    shard.retained.pop_front();
  }
  shard.acked_seq = std::max(shard.acked_seq, last_seq);
  shard.sent_seq = std::max(shard.sent_seq, last_seq);
  // The floored watermark covers these in-flight entries too: drop them so
  // sent_times stays an exact count of sent-but-unacked batches (the
  // encoding gate in pump_submits) even when individual acks were lost.
  while (!shard.sent_times.empty() &&
         shard.sent_times.front().first <= last_seq)
    shard.sent_times.pop_front();
  // Keep the previous snapshot as the resume fallback; reclaim older ones.
  if (snap_seq >= 3) {
    std::error_code ec;
    std::filesystem::remove(snapshot_path(shard, snap_seq - 2), ec);
  }
}

std::vector<std::vector<std::string>> LocprivService::collect_reports() {
  for (auto& owned : shards_) {
    owned->report_ready = false;
    owned->report_rows.clear();
  }
  // A shard may die mid-report and be respawned (restore + replay) several
  // times; the overall budget covers the full respawn allowance.
  const auto deadline =
      Clock::now() + options_.op_timeout * (options_.max_respawns + 1);
  for (;;) {
    bool all_ready = true;
    for (auto& owned : shards_) {
      Shard& shard = *owned;
      if (shard.state == Shard::State::kQuarantined) continue;
      if (shard.report_ready) continue;
      all_ready = false;
      // Commands are applied in order, so the report must be encoded after
      // every admitted batch — window-blocked (unsent) retained batches
      // would otherwise be invisible to it.
      const bool all_sent = shard.retained.empty() ||
                            shard.retained.back().seq <= shard.sent_seq;
      if (shard.state == Shard::State::kRunning && all_sent &&
          !shard.has_pending(wire::kRspReports)) {
        const std::uint64_t token = ++next_token_;
        send(shard, {wire::kCmdReport, std::to_string(token)});
        shard.push_op(wire::kRspReports, token, options_.op_timeout);
      }
    }
    if (all_ready) break;
    if (Clock::now() >= deadline)
      throw Error(ErrorCode::kDeadline,
                  "shard reports did not complete within the respawn budget");
    tick(std::chrono::milliseconds(20));
  }

  std::map<std::string, const std::vector<std::string>*> by_user;
  for (const auto& owned : shards_)
    for (const auto& row : owned->report_rows)
      if (!row.empty()) by_user[row.front()] = &row;
  std::vector<std::vector<std::string>> rows;
  rows.reserve(by_user.size());
  for (std::size_t i = 0; i < analyzer_.user_count(); ++i) {
    const auto it = by_user.find(analyzer_.reference(i).user_id);
    if (it != by_user.end()) rows.push_back(*it->second);
  }
  return rows;
}

void LocprivService::snapshot_now() {
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state == Shard::State::kRunning &&
        !shard.has_pending(wire::kRspSnapped) &&
        !shard.has_pending(wire::kRspDrained))
      queue_snapshot(shard, wire::kCmdSnapshot);
  }
}

void LocprivService::drain() {
  if (drained_) return;
  const auto deadline =
      Clock::now() + options_.op_timeout * (options_.max_respawns + 2);
  for (;;) {
    bool all_done = true;
    for (auto& owned : shards_) {
      Shard& shard = *owned;
      if (shard.state == Shard::State::kQuarantined) continue;
      if (shard.state == Shard::State::kDrained && shard.pid <= 0) continue;
      all_done = false;
      // Dead shards are respawned by the pump (restore + replay) and then
      // drained, so their retained batches reach a final snapshot too. The
      // drain frame must follow every admitted batch down the pipe, so a
      // window-blocked shard keeps pumping until its retained suffix is
      // fully encoded before the drain is queued.
      const bool all_sent = shard.retained.empty() ||
                            shard.retained.back().seq <= shard.sent_seq;
      if (shard.state == Shard::State::kRunning && all_sent &&
          !shard.has_pending(wire::kRspDrained))
        queue_snapshot(shard, wire::kCmdDrain);
    }
    if (all_done) break;
    if (Clock::now() >= deadline)
      throw Error(ErrorCode::kDeadline,
                  "drain did not complete within the respawn budget");
    tick(std::chrono::milliseconds(20));
  }
  // Journal per-shard shed accounting so an audit of the run directory can
  // reconcile offered == accepted + shed without the process alive. The key
  // probes upward (like snapshot seqs) so resumed runs append new records.
  for (const auto& owned : shards_) {
    const Shard& shard = *owned;
    if (shard.shed == 0) continue;  // Lossless runs keep the old ledger shape.
    std::uint64_t n = 1;
    while (ledger_->completed(shard.name + "/shed/" + std::to_string(n))) ++n;
    ledger_->record(shard.name + "/shed/" + std::to_string(n),
                    {std::to_string(shard.offered),
                     std::to_string(shard.accepted),
                     std::to_string(shard.shed)});
  }
  ledger_->sync();
  drained_ = true;
  LOCPRIV_LOG(kInfo, "locprivd")
      << "drained: " << stats_.snapshots << " snapshots journaled, run "
      << "directory resumable";
}

void LocprivService::note_turnaround(Shard& shard, double sample_ms) {
  shard.ewma_ms = ewma_update(shard.ewma_ms, sample_ms, options_.ewma_alpha,
                              shard.ewma_init);
  shard.ewma_init = true;
  if (options_.slow_restart_ms.count() > 0 &&
      shard.ewma_ms >= static_cast<double>(options_.slow_restart_ms.count()) &&
      shard.state == Shard::State::kRunning) {
    // A shard this slow is indistinguishable from one about to wedge: give
    // it the same SIGTERM -> grace -> SIGKILL respawn a missed ping earns.
    // The respawn replays the retained suffix, so nothing is lost.
    ++stats_.slow_restarts;
    shard.last_failure = "slow: turnaround EWMA " +
                         std::to_string(static_cast<long>(shard.ewma_ms)) +
                         "ms exceeded restart threshold";
    shard.state = Shard::State::kTerminating;
    shard.term_deadline = Clock::now() + options_.term_grace;
    shard.death_clock_running = true;
    shard.death_time = Clock::now();
    ::kill(shard.pid, SIGTERM);
    return;
  }
  if (options_.degraded_ms.count() > 0) {
    const double threshold = static_cast<double>(options_.degraded_ms.count());
    if (!shard.degraded && shard.ewma_ms >= threshold) {
      // Entering a degraded episode: snapshot out of band while the shard
      // still answers, shrinking the replay a later death would need.
      shard.degraded = true;
      ++stats_.degraded_events;
      if (shard.state == Shard::State::kRunning &&
          !shard.has_pending(wire::kRspSnapped) &&
          !shard.has_pending(wire::kRspDrained))
        queue_snapshot(shard, wire::kCmdSnapshot);
    } else if (shard.degraded && shard.ewma_ms < 0.5 * threshold) {
      shard.degraded = false;  // Hysteresis: recovered well clear of it.
    }
  }
}

void LocprivService::inject_turnaround_sample_for_testing(unsigned shard,
                                                          double ms) {
  note_turnaround(*shards_.at(shard), ms);
}

ShardLoad LocprivService::shard_load(unsigned shard) const {
  const Shard& s = *shards_.at(shard);
  ShardLoad load;
  load.offered = s.offered;
  load.accepted = s.accepted;
  load.shed = s.shed;
  load.acked_seq = s.acked_seq;
  load.submit_seq = s.submit_seq;
  load.retained_batches = s.retained.size();
  load.retained_bytes = s.retained_bytes;
  load.ewma_ms = s.ewma_init ? s.ewma_ms : 0.0;
  load.degraded = s.degraded;
  load.storage_degraded = s.storage_degraded;
  load.quarantined = s.state == Shard::State::kQuarantined;
  return load;
}

std::vector<std::string> LocprivService::shed_users() const {
  std::vector<std::string> users;
  for (const auto& [user, load] : user_loads_)
    if (load.batches_shed > 0) users.push_back(user);
  return users;
}

std::vector<std::string> LocprivService::quarantined_shards() const {
  std::vector<std::string> names;
  for (const auto& owned : shards_)
    if (owned->state == Shard::State::kQuarantined)
      names.push_back(owned->name);
  return names;
}

std::uint64_t LocprivService::restored_seq(unsigned shard) const {
  return shards_.at(shard)->restored_seq;
}

void LocprivService::request_shutdown(int /*signal*/) { g_shutdown = 1; }

bool LocprivService::shutdown_requested() { return g_shutdown != 0; }

void LocprivService::clear_shutdown() { g_shutdown = 0; }

}  // namespace locpriv::service
