#include "service/locprivd.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/harness/supervisor.hpp"
#include "service/shard_child.hpp"
#include "service/snapshot.hpp"
#include "util/logging.hpp"

namespace locpriv::service {

namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_shutdown = 0;

constexpr std::size_t kOutbufCompactBytes = 1 << 20;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t parse_u64(const std::string& token) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw Error(ErrorCode::kInternal,
                "bad integer in shard response: " + token);
  return value;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

std::string signal_name(int signal) {
  switch (signal) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    default: return "signal " + std::to_string(signal);
  }
}

std::string describe_status(int status) {
  if (WIFSIGNALED(status))
    return "killed by " + signal_name(WTERMSIG(status));
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  return "wait status " + std::to_string(status);
}

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             to - from)
      .count();
}

}  // namespace

/// Everything the parent tracks about one shard across its incarnations.
struct LocprivService::Shard {
  enum class State {
    kIdle,         ///< Constructed, not yet spawned.
    kRunning,      ///< Child alive and believed healthy.
    kTerminating,  ///< SIGTERM sent; SIGKILL when the grace expires.
    kDead,         ///< Reaped; respawn scheduled at `respawn_at`.
    kDrained,      ///< Final snapshot journaled; child exiting/exited.
    kQuarantined,  ///< Flapped past the respawn budget; dropped from service.
  };

  unsigned index = 0;
  std::string name;
  State state = State::kIdle;
  pid_t pid = -1;
  int incarnation = 0;  ///< Spawn count; the fault plan's attempt window.
  int deaths = 0;
  int cmd_fd = -1;   ///< Parent write end (nonblocking).
  int resp_fd = -1;  ///< Parent read end (nonblocking).
  int err_fd = -1;   ///< Parent read end of captured stderr (nonblocking).

  std::string outbuf;  ///< Encoded commands awaiting pipe capacity.
  std::size_t out_off = 0;
  wire::FrameDecoder decoder;
  RollingTail stderr_tail;
  std::deque<PendingOp> pending;
  std::deque<RetainedBatch> retained;  ///< Accepted but not yet snapshotted.

  std::uint64_t submit_seq = 0;       ///< Last assigned submit sequence.
  std::uint64_t restored_seq = 0;     ///< Watermark restored at startup.
  std::uint64_t snap_seq = 0;         ///< Last *journaled* snapshot seq.
  std::uint64_t snap_last_seq = 0;    ///< Watermark of that snapshot.
  std::uint64_t queued_snap_seq = 0;  ///< Highest snapshot seq handed out.
  std::string restore_file;           ///< Snapshot a respawn restores from.
  std::uint64_t restore_expect_seq = 0;

  std::uint64_t ingested = 0;    ///< Child-reported applied fixes.
  std::size_t state_bytes = 0;   ///< Child-reported resident state estimate.
  std::string last_failure;
  bool recovering = false;       ///< A death is awaiting its recovery pong.
  bool death_clock_running = false;
  Clock::time_point death_time{};
  Clock::time_point respawn_at{};
  Clock::time_point term_deadline{};
  Clock::time_point last_ping_sent{};
  Clock::time_point next_snapshot_at{};

  std::vector<std::vector<std::string>> report_rows;
  bool report_ready = false;

  Shard(unsigned index, std::size_t tail_cap)
      : index(index), name(shard_name(index)), stderr_tail(tail_cap) {}

  bool alive() const {
    return state == State::kRunning || state == State::kTerminating;
  }

  bool has_pending(const char* response_verb) const {
    for (const PendingOp& op : pending)
      if (op.verb == response_verb) return true;
    return false;
  }

  void push_op(const char* response_verb, std::uint64_t token,
               std::chrono::milliseconds budget) {
    PendingOp op;
    op.verb = response_verb;
    op.token = token;
    op.budget = budget;
    if (pending.empty()) op.deadline = Clock::now() + budget;
    pending.push_back(std::move(op));
  }

  void pop_op() {
    pending.pop_front();
    if (!pending.empty())
      pending.front().deadline = Clock::now() + pending.front().budget;
  }
};

LocprivService::LocprivService(ServiceOptions options,
                               const core::PrivacyAnalyzer& analyzer,
                               std::filesystem::path run_dir, bool resume)
    : options_(std::move(options)),
      analyzer_(analyzer),
      run_dir_(std::move(run_dir)) {
  if (options_.shards == 0)
    throw Error(ErrorCode::kUsage, "locprivd needs at least one shard");
  // A dead shard's pipe must not kill the whole service with SIGPIPE; the
  // write's EPIPE is handled and the reaper classifies the death.
  ::signal(SIGPIPE, SIG_IGN);
  std::error_code ec;
  std::filesystem::create_directories(run_dir_, ec);

  // The ledger header pins seed, scale, AND shard topology: resuming a
  // run directory journaled under a different shard count would scatter the
  // user->shard mapping across snapshots, so it is refused (exit 6).
  const harness::RunInfo info{"locprivd", options_.seed, options_.scale,
                              "serve-s" + std::to_string(options_.shards)};
  if (!resume && std::filesystem::exists(run_dir_ / "ledger.jsonl"))
    throw Error(ErrorCode::kResume,
                run_dir_.string() +
                    " already holds a ledger; pass resume to continue that "
                    "run or choose a fresh run directory");
  ledger_ = std::make_unique<harness::RunLedger>(run_dir_, info);

  for (unsigned k = 0; k < options_.shards; ++k)
    shards_.push_back(
        std::make_unique<Shard>(k, options_.stderr_tail_cap));
  if (resume)
    for (auto& shard : shards_) resume_pointer(*shard);
  for (auto& shard : shards_) spawn(*shard);
}

LocprivService::~LocprivService() {
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.pid > 0) {
      ::kill(shard.pid, SIGKILL);
      int status = 0;
      ::waitpid(shard.pid, &status, 0);
      shard.pid = -1;
    }
    close_fd(shard.cmd_fd);
    close_fd(shard.resp_fd);
    close_fd(shard.err_fd);
  }
}

std::string LocprivService::shard_name(unsigned shard) {
  return "shard" + std::to_string(shard);
}

unsigned LocprivService::shard_of(const std::string& user_id) const {
  const auto it = user_shard_.find(user_id);
  if (it != user_shard_.end()) return it->second;
  const auto shard =
      static_cast<unsigned>(fnv1a(user_id) % options_.shards);
  user_shard_.emplace(user_id, shard);
  return shard;
}

void LocprivService::resume_pointer(Shard& shard) {
  // Snapshot seqs are dense (1, 2, ...) per shard, so the newest journaled
  // snapshot is found by probing upward from the last known seq.
  std::uint64_t newest = 0;
  while (ledger_->completed(shard.name + "/snap/" +
                            std::to_string(newest + 1)))
    ++newest;
  if (newest == 0) return;  // Shard never snapshotted; resumes fresh.

  // Validate before trusting: the newest snapshot file, falling back to the
  // previous one (the service keeps two on disk) if the newest is missing
  // or corrupt. The ledger-recorded checksum ties the file to the journal.
  for (std::uint64_t seq = newest; seq > 0 && seq + 2 > newest; --seq) {
    const std::vector<std::string>* fields =
        ledger_->fields(shard.name + "/snap/" + std::to_string(seq));
    if (fields == nullptr || fields->size() < 5) continue;
    const std::string& file = (*fields)[0];
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    const std::string encoded = content.str();
    try {
      const ShardSnapshot snapshot = parse_snapshot(encoded);
      if (snapshot.shard != shard.index || snapshot.seq != seq ||
          snapshot_checksum(encoded) != (*fields)[4])
        continue;
    } catch (const Error&) {
      continue;
    }
    shard.restore_file = file;
    shard.restore_expect_seq = seq;
    shard.restored_seq = parse_u64((*fields)[1]);
    shard.snap_seq = newest;
    shard.queued_snap_seq = newest;
    shard.snap_last_seq = shard.restored_seq;
    return;
  }
  throw Error(ErrorCode::kResume,
              shard.name + ": no journaled snapshot is loadable; the run "
                           "directory cannot be resumed without divergence");
}

void LocprivService::spawn(Shard& shard) {
  int cmd[2] = {-1, -1};
  int resp[2] = {-1, -1};
  int err[2] = {-1, -1};
  if (::pipe(cmd) != 0 || ::pipe(resp) != 0 || ::pipe(err) != 0) {
    for (int* pair : {cmd, resp, err})
      for (int i = 0; i < 2; ++i)
        if (pair[i] >= 0) ::close(pair[i]);
    throw Error(ErrorCode::kIo,
                "cannot create pipes for " + shard.name + errno_detail());
  }

  ShardChildConfig config;
  config.shard = shard.index;
  config.name = shard.name;
  config.incarnation = shard.incarnation + 1;
  config.cmd_fd = cmd[0];
  config.resp_fd = resp[1];
  config.err_fd = err[1];

  pid_t pid = -1;
  {
    // Fork-safety bracket: no other thread may be mid-log-emission at the
    // instant of the fork, or the child inherits the sink mutex locked.
    // Every spawn goes through here, so the *respawn* path is as fork-safe
    // as the initial one.
    util::LogForkGuard guard;
    pid = ::fork();
  }
  if (pid < 0) {
    for (int* pair : {cmd, resp, err})
      for (int i = 0; i < 2; ++i) ::close(pair[i]);
    throw Error(ErrorCode::kInternal,
                "cannot fork " + shard.name + errno_detail());
  }
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(resp[0]);
    ::close(err[0]);
    shard_child_main(config, analyzer_, options_);  // [[noreturn]]
  }
  ::close(cmd[0]);
  ::close(resp[1]);
  ::close(err[1]);
  set_nonblocking(cmd[1]);
  set_nonblocking(resp[0]);
  set_nonblocking(err[0]);

  shard.pid = pid;
  shard.cmd_fd = cmd[1];
  shard.resp_fd = resp[0];
  shard.err_fd = err[0];
  ++shard.incarnation;
  if (shard.incarnation > 1) ++stats_.respawns;
  shard.state = Shard::State::kRunning;
  shard.decoder = wire::FrameDecoder();
  shard.outbuf.clear();
  shard.out_off = 0;
  shard.pending.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.queued_snap_seq = shard.snap_seq;
  const auto now = Clock::now();
  shard.last_ping_sent = now;
  shard.next_snapshot_at = now + options_.snapshot_interval;

  // Recovery protocol: restore the latest journaled snapshot, replay the
  // retained suffix (everything accepted past the snapshot watermark), then
  // ping — the pong marks the shard recovered.
  if (shard.restore_expect_seq > 0) {
    send(shard, {wire::kCmdRestore, shard.restore_file,
                 std::to_string(shard.restore_expect_seq)});
    shard.push_op(wire::kRspRestored, 0, options_.op_timeout);
  }
  for (const RetainedBatch& batch : shard.retained) {
    shard.outbuf += batch.frame;
  }
  queue_ping(shard);
  LOCPRIV_LOG(kInfo, "locprivd")
      << shard.name << " incarnation " << shard.incarnation << " pid " << pid
      << (shard.restore_expect_seq > 0
              ? " restoring snapshot " +
                    std::to_string(shard.restore_expect_seq) + ", replaying " +
                    std::to_string(shard.retained.size()) + " batches"
              : " fresh");
}

void LocprivService::send(Shard& shard, const std::vector<std::string>& fields) {
  shard.outbuf += wire::encode_message(fields);
}

bool LocprivService::submit(const std::string& user_id,
                            const std::vector<trace::TracePoint>& fixes) {
  Shard& shard = *shards_[shard_of(user_id)];
  if (shard.state == Shard::State::kQuarantined) {
    ++stats_.batches_dropped;
    return false;
  }
  const std::uint64_t seq = ++shard.submit_seq;
  if (seq <= shard.restored_seq) {
    // Resume dedupe: the deterministic schedule re-offers batches a restored
    // snapshot already covers; they are dropped without touching the shard.
    ++stats_.batches_dropped;
    return false;
  }
  std::vector<std::string> fields;
  fields.reserve(4 + fixes.size() * 3);
  fields.push_back(wire::kCmdSubmit);
  fields.push_back(std::to_string(seq));
  fields.push_back(user_id);
  fields.push_back(std::to_string(fixes.size()));
  for (const trace::TracePoint& fix : fixes) {
    fields.push_back(format_coord(fix.position.lat_deg));
    fields.push_back(format_coord(fix.position.lon_deg));
    fields.push_back(std::to_string(fix.timestamp_s));
  }
  RetainedBatch batch;
  batch.seq = seq;
  batch.frame = wire::encode_message(fields);
  batch.fixes = fixes.size();
  if (shard.alive()) shard.outbuf += batch.frame;
  // Dead shards get the batch at respawn via the retained replay.
  shard.retained.push_back(std::move(batch));
  ++stats_.batches_submitted;
  stats_.fixes_submitted += fixes.size();
  return true;
}

void LocprivService::tick(std::chrono::milliseconds budget) {
  const auto start = Clock::now();
  auto remaining = budget;
  for (;;) {
    pump(std::min(remaining, std::chrono::milliseconds(20)));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - start);
    if (elapsed >= budget) break;
    remaining = budget - elapsed;
  }
}

void LocprivService::pump(std::chrono::milliseconds timeout) {
  const auto now = Clock::now();

  // 1. Push queued commands down the (nonblocking) pipes.
  for (auto& owned : shards_)
    if (owned->alive()) flush_out(*owned);

  // 2. Wait for responses / stderr, bounded by the caller's budget.
  std::vector<pollfd> fds;
  std::vector<std::pair<Shard*, bool>> owners;  ///< (shard, is_resp).
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.resp_fd >= 0) {
      fds.push_back({shard.resp_fd, POLLIN, 0});
      owners.emplace_back(&shard, true);
    }
    if (shard.err_fd >= 0) {
      fds.push_back({shard.err_fd, POLLIN, 0});
      owners.emplace_back(&shard, false);
    }
  }
  if (!fds.empty()) {
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                         static_cast<int>(timeout.count()));
    if (n > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Shard& shard = *owners[i].first;
        char chunk[65536];
        for (;;) {
          const ssize_t got = ::read(fds[i].fd, chunk, sizeof(chunk));
          if (got > 0) {
            if (owners[i].second)
              shard.decoder.feed(chunk, static_cast<std::size_t>(got));
            else
              shard.stderr_tail.append(chunk, static_cast<std::size_t>(got));
            continue;
          }
          if (got < 0 && errno == EINTR) continue;
          break;  // EAGAIN (drained) or EOF (child gone; the reaper acts).
        }
        if (owners[i].second) {
          std::vector<std::string> fields;
          while (shard.decoder.next(fields)) dispatch_response(shard, fields);
          if (shard.decoder.corrupt() && shard.alive()) {
            shard.last_failure = "corrupt response stream";
            ::kill(shard.pid, SIGKILL);
          }
        }
      }
    }
  } else if (timeout.count() > 0) {
    // Nothing to watch (all shards dead or quarantined): honour the budget
    // so respawn backoff timers still make progress without spinning.
    ::poll(nullptr, 0, static_cast<int>(timeout.count()));
  }

  // 3. Reap exits.
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.pid <= 0) continue;
    int status = 0;
    const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
    if (reaped == shard.pid) handle_death(shard, status);
  }

  // 4. Health: escalate unresponsive shards, finish overdue terminations.
  for (auto& owned : shards_) health_check(*owned);

  // 5. Respawn dead shards whose backoff has elapsed.
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state == Shard::State::kDead && now >= shard.respawn_at)
      spawn(shard);
  }

  // 6. Cadences: heartbeat pings and periodic snapshots.
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state != Shard::State::kRunning) continue;
    if (now - shard.last_ping_sent >= options_.heartbeat &&
        !shard.has_pending(wire::kRspPong))
      queue_ping(shard);
    if (options_.snapshot_interval.count() > 0 &&
        now >= shard.next_snapshot_at &&
        !shard.has_pending(wire::kRspSnapped) &&
        !shard.has_pending(wire::kRspDrained))
      queue_snapshot(shard, wire::kCmdSnapshot);
  }
}

void LocprivService::flush_out(Shard& shard) {
  while (shard.out_off < shard.outbuf.size()) {
    const ssize_t n =
        ::write(shard.cmd_fd, shard.outbuf.data() + shard.out_off,
                shard.outbuf.size() - shard.out_off);
    if (n > 0) {
      shard.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (pipe full) or EPIPE (child dead; the reaper acts).
  }
  if (shard.out_off == shard.outbuf.size()) {
    shard.outbuf.clear();
    shard.out_off = 0;
  } else if (shard.out_off > kOutbufCompactBytes) {
    shard.outbuf.erase(0, shard.out_off);
    shard.out_off = 0;
  }
}

void LocprivService::health_check(Shard& shard) {
  const auto now = Clock::now();
  if (shard.state == Shard::State::kTerminating) {
    // SIGTERM was delivered; a shard that ignores it (busy-hang) is
    // reclaimed by SIGKILL once the grace expires.
    if (now >= shard.term_deadline) ::kill(shard.pid, SIGKILL);
    return;
  }
  if (shard.state != Shard::State::kRunning) return;
  if (shard.pending.empty()) return;
  const PendingOp& front = shard.pending.front();
  if (now < front.deadline) return;
  shard.last_failure = "unresponsive: no " + front.verb + " within " +
                       std::to_string(front.budget.count()) + "ms";
  shard.state = Shard::State::kTerminating;
  shard.term_deadline = now + options_.term_grace;
  shard.death_clock_running = true;
  shard.death_time = now;  // Recovery latency counts from *detection*.
  ::kill(shard.pid, SIGTERM);
}

void LocprivService::handle_death(Shard& shard, int status) {
  // Salvage what the child fully wrote before dying: complete response
  // frames (a snapshot published just before a crash is valid — the file
  // was committed atomically before the response) and the stderr tail.
  for (const bool is_resp : {true, false}) {
    const int fd = is_resp ? shard.resp_fd : shard.err_fd;
    if (fd < 0) continue;
    char chunk[65536];
    for (;;) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got > 0) {
        if (is_resp)
          shard.decoder.feed(chunk, static_cast<std::size_t>(got));
        else
          shard.stderr_tail.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      break;
    }
  }
  std::vector<std::string> fields;
  while (shard.decoder.next(fields)) dispatch_response(shard, fields);

  shard.pid = -1;
  close_fd(shard.cmd_fd);
  close_fd(shard.resp_fd);
  close_fd(shard.err_fd);

  if (shard.state == Shard::State::kDrained ||
      shard.state == Shard::State::kQuarantined)
    return;  // Expected exit after drain, or already written off.

  ++stats_.shard_deaths;
  ++shard.deaths;
  const std::string cause = describe_status(status);
  shard.last_failure =
      shard.last_failure.empty() ? cause : shard.last_failure + "; " + cause;
  shard.pending.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.recovering = true;
  if (!shard.death_clock_running) {
    shard.death_clock_running = true;
    shard.death_time = Clock::now();
  }
  LOCPRIV_LOG(kWarn, "locprivd")
      << shard.name << " died (" << cause << "), death " << shard.deaths
      << "/" << options_.max_respawns + 1;

  if (shard.deaths > options_.max_respawns) {
    quarantine(shard, "flapping: " + std::to_string(shard.deaths) +
                          " deaths exceeded the respawn budget of " +
                          std::to_string(options_.max_respawns));
    return;
  }
  // Deterministic backoff, same jitter derivation as supervised cells.
  harness::SupervisorOptions backoff;
  backoff.backoff_base = options_.backoff_base;
  backoff.backoff_seed = options_.backoff_seed;
  shard.state = Shard::State::kDead;
  shard.respawn_at = Clock::now() +
                     harness::backoff_delay(backoff, shard.name,
                                            shard.deaths + 1);
}

void LocprivService::quarantine(Shard& shard, std::string reason) {
  if (shard.pid > 0) {
    ::kill(shard.pid, SIGKILL);
    int status = 0;
    ::waitpid(shard.pid, &status, 0);
    shard.pid = -1;
  }
  close_fd(shard.cmd_fd);
  close_fd(shard.resp_fd);
  close_fd(shard.err_fd);
  std::vector<std::string> details;
  details.push_back(std::move(reason));
  if (!shard.last_failure.empty())
    details.push_back("last failure: " + shard.last_failure);
  const std::string tail = shard.stderr_tail.one_line();
  if (!tail.empty()) details.push_back("stderr: " + tail);
  ledger_->record_quarantine(shard.name, details);
  shard.state = Shard::State::kQuarantined;
  shard.pending.clear();
  shard.retained.clear();
  shard.report_ready = false;
  shard.report_rows.clear();
  shard.recovering = false;
  LOCPRIV_LOG(kError, "locprivd") << shard.name << " quarantined";
}

void LocprivService::dispatch_response(Shard& shard,
                                       const std::vector<std::string>& fields) {
  if (fields.empty()) return;
  const std::string& verb = fields[0];
  if (!shard.pending.empty() && shard.pending.front().verb == verb)
    shard.pop_op();

  if (verb == wire::kRspPong && fields.size() >= 4) {
    shard.ingested = parse_u64(fields[2]);
    shard.state_bytes = static_cast<std::size_t>(parse_u64(fields[3]));
    std::size_t total = 0;
    for (const auto& owned : shards_) total += owned->state_bytes;
    stats_.state_bytes = total;
    if (shard.recovering) {
      RecoveryRecord record;
      record.shard = shard.index;
      record.incarnation = shard.incarnation;
      record.latency_ms = ms_between(shard.death_time, Clock::now());
      stats_.recoveries.push_back(record);
      shard.recovering = false;
      shard.death_clock_running = false;
      shard.last_failure.clear();
      LOCPRIV_LOG(kInfo, "locprivd")
          << shard.name << " recovered in "
          << static_cast<long>(record.latency_ms) << "ms";
    }
  } else if (verb == wire::kRspRestored && fields.size() >= 4) {
    if (fields[3] != "ok")
      quarantine(shard, "snapshot restore failed: " + fields[3]);
  } else if ((verb == wire::kRspSnapped || verb == wire::kRspDrained) &&
             fields.size() >= 6) {
    record_snapshot(shard, fields);
    if (verb == wire::kRspDrained) shard.state = Shard::State::kDrained;
  } else if (verb == wire::kRspReports && fields.size() >= 4) {
    const std::size_t rows = static_cast<std::size_t>(parse_u64(fields[2]));
    const std::size_t cols = static_cast<std::size_t>(parse_u64(fields[3]));
    shard.report_rows.clear();
    if (fields.size() >= 4 + rows * cols) {
      for (std::size_t r = 0; r < rows; ++r)
        shard.report_rows.emplace_back(
            fields.begin() + static_cast<std::ptrdiff_t>(4 + r * cols),
            fields.begin() + static_cast<std::ptrdiff_t>(4 + (r + 1) * cols));
      shard.report_ready = true;
    }
  }
}

std::filesystem::path LocprivService::snapshot_path(
    const Shard& shard, std::uint64_t snap_seq) const {
  return run_dir_ /
         (shard.name + ".snap." + std::to_string(snap_seq) + ".dat");
}

void LocprivService::queue_snapshot(Shard& shard, const char* verb) {
  const std::uint64_t snap_seq =
      std::max(shard.snap_seq, shard.queued_snap_seq) + 1;
  shard.queued_snap_seq = snap_seq;
  send(shard, {verb, std::to_string(snap_seq),
               snapshot_path(shard, snap_seq).string()});
  shard.push_op(std::string(verb) == wire::kCmdDrain ? wire::kRspDrained
                                                     : wire::kRspSnapped,
                0, options_.op_timeout);
}

void LocprivService::queue_ping(Shard& shard) {
  const std::uint64_t token = ++next_token_;
  send(shard, {wire::kCmdPing, std::to_string(token)});
  shard.push_op(wire::kRspPong, token, options_.ping_timeout);
  shard.last_ping_sent = Clock::now();
}

void LocprivService::record_snapshot(Shard& shard,
                                     const std::vector<std::string>& fields) {
  const std::uint64_t snap_seq = parse_u64(fields[1]);
  const std::uint64_t last_seq = parse_u64(fields[2]);
  const std::string file = snapshot_path(shard, snap_seq).string();
  // Key per seq — the ledger refuses duplicate cells, which is exactly the
  // invariant: one journal line per published snapshot.
  ledger_->record(shard.name + "/snap/" + std::to_string(snap_seq),
                  {file, fields[2], fields[3], fields[4], fields[5]});
  ++stats_.snapshots;
  shard.snap_seq = snap_seq;
  shard.snap_last_seq = last_seq;
  shard.restore_file = file;
  shard.restore_expect_seq = snap_seq;
  shard.next_snapshot_at = Clock::now() + options_.snapshot_interval;
  // The journaled snapshot now covers every batch up to last_seq: the
  // parent's retention obligation ends there.
  while (!shard.retained.empty() && shard.retained.front().seq <= last_seq)
    shard.retained.pop_front();
  // Keep the previous snapshot as the resume fallback; reclaim older ones.
  if (snap_seq >= 3) {
    std::error_code ec;
    std::filesystem::remove(snapshot_path(shard, snap_seq - 2), ec);
  }
}

std::vector<std::vector<std::string>> LocprivService::collect_reports() {
  for (auto& owned : shards_) {
    owned->report_ready = false;
    owned->report_rows.clear();
  }
  // A shard may die mid-report and be respawned (restore + replay) several
  // times; the overall budget covers the full respawn allowance.
  const auto deadline =
      Clock::now() + options_.op_timeout * (options_.max_respawns + 1);
  for (;;) {
    bool all_ready = true;
    for (auto& owned : shards_) {
      Shard& shard = *owned;
      if (shard.state == Shard::State::kQuarantined) continue;
      if (shard.report_ready) continue;
      all_ready = false;
      if (shard.state == Shard::State::kRunning &&
          !shard.has_pending(wire::kRspReports)) {
        const std::uint64_t token = ++next_token_;
        send(shard, {wire::kCmdReport, std::to_string(token)});
        shard.push_op(wire::kRspReports, token, options_.op_timeout);
      }
    }
    if (all_ready) break;
    if (Clock::now() >= deadline)
      throw Error(ErrorCode::kDeadline,
                  "shard reports did not complete within the respawn budget");
    tick(std::chrono::milliseconds(20));
  }

  std::map<std::string, const std::vector<std::string>*> by_user;
  for (const auto& owned : shards_)
    for (const auto& row : owned->report_rows)
      if (!row.empty()) by_user[row.front()] = &row;
  std::vector<std::vector<std::string>> rows;
  rows.reserve(by_user.size());
  for (std::size_t i = 0; i < analyzer_.user_count(); ++i) {
    const auto it = by_user.find(analyzer_.reference(i).user_id);
    if (it != by_user.end()) rows.push_back(*it->second);
  }
  return rows;
}

void LocprivService::snapshot_now() {
  for (auto& owned : shards_) {
    Shard& shard = *owned;
    if (shard.state == Shard::State::kRunning &&
        !shard.has_pending(wire::kRspSnapped) &&
        !shard.has_pending(wire::kRspDrained))
      queue_snapshot(shard, wire::kCmdSnapshot);
  }
}

void LocprivService::drain() {
  if (drained_) return;
  const auto deadline =
      Clock::now() + options_.op_timeout * (options_.max_respawns + 2);
  for (;;) {
    bool all_done = true;
    for (auto& owned : shards_) {
      Shard& shard = *owned;
      if (shard.state == Shard::State::kQuarantined) continue;
      if (shard.state == Shard::State::kDrained && shard.pid <= 0) continue;
      all_done = false;
      // Dead shards are respawned by the pump (restore + replay) and then
      // drained, so their retained batches reach a final snapshot too.
      if (shard.state == Shard::State::kRunning &&
          !shard.has_pending(wire::kRspDrained))
        queue_snapshot(shard, wire::kCmdDrain);
    }
    if (all_done) break;
    if (Clock::now() >= deadline)
      throw Error(ErrorCode::kDeadline,
                  "drain did not complete within the respawn budget");
    tick(std::chrono::milliseconds(20));
  }
  ledger_->sync();
  drained_ = true;
  LOCPRIV_LOG(kInfo, "locprivd")
      << "drained: " << stats_.snapshots << " snapshots journaled, run "
      << "directory resumable";
}

std::vector<std::string> LocprivService::quarantined_shards() const {
  std::vector<std::string> names;
  for (const auto& owned : shards_)
    if (owned->state == Shard::State::kQuarantined)
      names.push_back(owned->name);
  return names;
}

std::uint64_t LocprivService::restored_seq(unsigned shard) const {
  return shards_.at(shard)->restored_seq;
}

void LocprivService::request_shutdown(int /*signal*/) { g_shutdown = 1; }

bool LocprivService::shutdown_requested() { return g_shutdown != 0; }

void LocprivService::clear_shutdown() { g_shutdown = 0; }

}  // namespace locpriv::service
