// Shard snapshot codec. A snapshot is the complete per-user collected-fix
// state of one shard at a submit-sequence watermark, serialized to text with
// hexfloat coordinates (exact double round-trip, so a restored shard's
// metrics are byte-identical to an uninterrupted one's) and guarded by an
// FNV-1a checksum over the body. Snapshots are published through
// AtomicFileWriter, so a crash mid-write leaves the previous complete
// version; the checksum catches the remaining corruption class (a stale or
// hand-edited file), and parse failures surface as Error(kResume) so the
// caller can fall back or refuse loudly instead of diverging silently.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trajectory.hpp"

namespace locpriv::service {

struct ShardSnapshot {
  unsigned shard = 0;          ///< Owning shard index.
  std::uint64_t seq = 0;       ///< Snapshot sequence number (1-based).
  std::uint64_t last_seq = 0;  ///< Highest applied submit-batch sequence.
  /// Collected fixes per user, keyed by user id (std::map: serialization
  /// order must be deterministic).
  std::map<std::string, std::vector<trace::TracePoint>> users;

  std::size_t fix_count() const;
};

/// Exact-round-trip text for a coordinate ("%a" hexfloat).
std::string format_coord(double value);

/// Serializes a snapshot, checksum header included.
std::string encode_snapshot(const ShardSnapshot& snapshot);

/// Checksum of an encoded snapshot's body, as recorded in the run ledger.
std::string snapshot_checksum(const std::string& encoded);

/// Parses an encoded snapshot. Throws Error(kResume) on a bad header,
/// checksum mismatch, or truncated body — a snapshot either loads exactly
/// or not at all.
ShardSnapshot parse_snapshot(const std::string& encoded);

/// Reads and parses a snapshot file. Throws Error(kResume) when the file is
/// missing, unreadable, or fails parse_snapshot().
ShardSnapshot load_snapshot(const std::string& path);

}  // namespace locpriv::service
