// The shard worker body. Runs inside a process fork(2)ed by LocprivService:
// a blocking command loop over the shard's pipe pair that applies submit
// batches to per-user fix state, answers heartbeat pings, writes snapshots,
// runs the audit pipeline for reports, and exits on drain. Never returns —
// all exits are _exit(2), so the cloned parent stack is never unwound.
#pragma once

#include "core/analyzer.hpp"
#include "service/locprivd.hpp"

namespace locpriv::service {

struct ShardChildConfig {
  unsigned shard = 0;
  std::string name;     ///< "shard<k>", the fault-plan key.
  int incarnation = 1;  ///< 1-based spawn count, the fault attempt window.
  int cmd_fd = -1;      ///< Read end: commands from the parent.
  int resp_fd = -1;     ///< Write end: responses to the parent.
  int err_fd = -1;      ///< Write end: captured stderr.
};

[[noreturn]] void shard_child_main(const ShardChildConfig& config,
                                   const core::PrivacyAnalyzer& analyzer,
                                   const ServiceOptions& options);

}  // namespace locpriv::service
