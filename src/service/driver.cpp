#include "service/driver.hpp"

#include <algorithm>
#include <map>
#include <thread>

#include "util/strings.hpp"

namespace locpriv::service {

namespace {

/// Per-round timestamp offset: rounds replay the corpus shifted so each
/// user's stream stays strictly increasing (evaluate_collected requires
/// non-decreasing time order).
std::int64_t round_offset(const core::PrivacyAnalyzer& analyzer, int round,
                          std::int64_t gap_s) {
  if (round == 0) return 0;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
  bool first = true;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
    const auto& points = analyzer.reference(i).points;
    if (points.empty()) continue;
    if (first || points.front().timestamp_s < min_ts)
      min_ts = points.front().timestamp_s;
    if (first || points.back().timestamp_s > max_ts)
      max_ts = points.back().timestamp_s;
    first = false;
  }
  const std::int64_t span = (max_ts - min_ts) + gap_s;
  return static_cast<std::int64_t>(round) * span;
}

}  // namespace

TrafficOutcome drive_traffic(LocprivService& service,
                             const core::PrivacyAnalyzer& analyzer,
                             const TrafficOptions& options,
                             const std::function<bool()>& should_stop) {
  TrafficOutcome outcome;
  const std::size_t batch = std::max<std::size_t>(options.batch_size, 1);
  for (int round = 0; round < options.rounds; ++round) {
    const std::int64_t offset =
        round_offset(analyzer, round, options.round_gap_s);
    // Round-robin across users: cursor[i] is the next unsent fix of user i.
    std::vector<std::size_t> cursor(analyzer.user_count(), 0);
    bool pending = true;
    while (pending) {
      pending = false;
      for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
        const auto& reference = analyzer.reference(i);
        if (cursor[i] >= reference.points.size()) continue;
        pending = true;
        if (should_stop && should_stop()) {
          outcome.interrupted = true;
          return outcome;
        }
        const std::size_t take =
            std::min(batch, reference.points.size() - cursor[i]);
        std::vector<trace::TracePoint> fixes(
            reference.points.begin() +
                static_cast<std::ptrdiff_t>(cursor[i]),
            reference.points.begin() +
                static_cast<std::ptrdiff_t>(cursor[i] + take));
        for (trace::TracePoint& fix : fixes) fix.timestamp_s += offset;
        cursor[i] += take;
        ++outcome.batches;
        const bool lossless =
            !options.may_shed ||
            (options.lossless_every > 0 && i % options.lossless_every == 0);
        const Admission admission =
            service.submit(reference.user_id, fixes, !lossless, should_stop);
        switch (admission) {
          case Admission::kAccepted:
            ++outcome.accepted;
            outcome.fixes += take;
            break;
          case Admission::kDeduped:
            ++outcome.deduped;
            break;
          case Admission::kShed:
            ++outcome.shed;
            break;
          case Admission::kBlocked:
            // The abort predicate fired while waiting for window credit;
            // the batch never entered the system and a resumed run
            // re-offers it. Uncount the offer to keep the tallies honest.
            --outcome.batches;
            outcome.interrupted = true;
            return outcome;
        }
        service.tick(std::chrono::milliseconds(0));
        if (options.pace.count() > 0)
          std::this_thread::sleep_for(options.pace);
      }
    }
  }
  return outcome;
}

std::vector<trace::TracePoint> scheduled_fixes(
    const core::PrivacyAnalyzer& analyzer, std::size_t user,
    const TrafficOptions& options) {
  const auto& points = analyzer.reference(user).points;
  std::vector<trace::TracePoint> fixes;
  fixes.reserve(points.size() * static_cast<std::size_t>(options.rounds));
  for (int round = 0; round < options.rounds; ++round) {
    const std::int64_t offset =
        round_offset(analyzer, round, options.round_gap_s);
    for (trace::TracePoint fix : points) {
      fix.timestamp_s += offset;
      fixes.push_back(fix);
    }
  }
  return fixes;
}

std::vector<std::string> exposure_fields(const std::string& user_id,
                                         std::int64_t interval_s,
                                         const core::ExposureReport& report) {
  return {user_id,
          std::to_string(interval_s),
          std::to_string(report.collected_fixes),
          std::to_string(report.extracted_pois),
          util::format_fixed(report.poi_total.fraction(), 4),
          util::format_fixed(report.poi_sensitive.fraction(), 4),
          report.hisbin_visits ? "1" : "0",
          report.hisbin_movements ? "1" : "0",
          report.breach_detected() ? "1" : "0",
          util::format_fixed(report.anonymity_movements, 4)};
}

std::vector<std::vector<std::string>> batch_reference_rows(
    const core::PrivacyAnalyzer& analyzer, std::int64_t interval_s,
    const TrafficOptions& options) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(analyzer.user_count());
  for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
    const std::string& user_id = analyzer.reference(i).user_id;
    const core::ExposureReport report = analyzer.evaluate_collected(
        i, interval_s, scheduled_fixes(analyzer, i, options));
    rows.push_back(exposure_fields(user_id, interval_s, report));
  }
  return rows;
}

std::vector<std::string> parity_mismatches(
    const core::PrivacyAnalyzer& analyzer, std::int64_t interval_s,
    const TrafficOptions& options,
    const std::vector<std::vector<std::string>>& service_rows,
    const std::vector<std::string>& ignore_users) {
  std::map<std::string, const std::vector<std::string>*> by_user;
  for (const auto& row : service_rows)
    if (!row.empty()) by_user[row.front()] = &row;

  std::vector<std::string> mismatched;
  for (const auto& expected :
       batch_reference_rows(analyzer, interval_s, options)) {
    const std::string& user_id = expected.front();
    if (std::find(ignore_users.begin(), ignore_users.end(), user_id) !=
        ignore_users.end())
      continue;
    const auto it = by_user.find(user_id);
    if (it == by_user.end() || *it->second != expected)
      mismatched.push_back(user_id);
  }
  return mismatched;
}

}  // namespace locpriv::service
