// Wire format for the locprivd shard pipes. Messages are framed as
// u32 payload length, then a payload of u32 field count followed by
// (u32 length, bytes) per field — the supervisor's one-shot result-frame
// layout generalized to a *stream*: a pipe carries many messages, partial
// reads are the norm, and the decoder reassembles them incrementally.
// Everything is process-local (parent and its forked shards share byte
// order), so fields travel verbatim with no escaping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace locpriv::service::wire {

// Command verbs (parent -> shard). Fields after the verb are positional.
inline constexpr char kCmdRestore[] = "restore";   ///< file, expect_seq
inline constexpr char kCmdSubmit[] = "submit";     ///< seq, user, n, (lat lon ts)*n
inline constexpr char kCmdPing[] = "ping";         ///< token
inline constexpr char kCmdSnapshot[] = "snapshot"; ///< snap_seq, file
inline constexpr char kCmdReport[] = "report";     ///< token
inline constexpr char kCmdDrain[] = "drain";       ///< snap_seq, file

// Response verbs (shard -> parent).
inline constexpr char kRspRestored[] = "restored"; ///< last_seq, fixes, status
inline constexpr char kRspAck[] = "ack";           ///< seq, applied (1) / deduped (0)
inline constexpr char kRspPong[] = "pong";         ///< token, ingested, state_bytes
inline constexpr char kRspSnapped[] = "snapped";   ///< snap_seq, last_seq, users, fixes, checksum
inline constexpr char kRspReports[] = "reports";   ///< token, rows, cols, fields...
inline constexpr char kRspDrained[] = "drained";   ///< snap_seq, last_seq, users, fixes, checksum
/// A snapshot/drain publish failed in the child (ENOSPC, EIO). The shard
/// stays alive and authoritative in memory; the parent sheds the snapshot
/// and enters storage-degraded mode for that shard.
inline constexpr char kRspSnapfail[] = "snapfail"; ///< snap_seq, error

// Stream sanity caps: a single message past 64 MiB or 1M fields is
// corruption, not data (a whole-dataset shard report stays far below both).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
inline constexpr std::uint32_t kMaxFieldCount = 1u << 20;

/// Serializes one message: outer u32 payload length, inner field frame.
std::string encode_message(const std::vector<std::string>& fields);

/// Incremental decoder over a pipe byte stream. Feed whatever arrived;
/// next() pops complete messages in order. A malformed length or field
/// structure latches corrupt() — the stream cannot be trusted past that.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete message into `fields`; false when the
  /// buffer holds no complete message (or the stream is corrupt).
  bool next(std::vector<std::string>& fields);

  bool corrupt() const { return corrupt_; }
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace locpriv::service::wire
