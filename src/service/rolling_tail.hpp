// Bounded rolling capture of a shard's stderr. A crash-looping shard can
// emit unbounded diagnostics across its respawns; the service keeps only the
// last `cap` bytes per shard *lifetime* (all incarnations share one tail),
// so captured stderr can never grow service memory past shards x cap.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace locpriv::service {

class RollingTail {
 public:
  explicit RollingTail(std::size_t cap) : cap_(cap) {}

  void append(const char* data, std::size_t size) {
    total_ += size;
    if (cap_ == 0) return;
    if (size >= cap_) {
      buffer_.assign(data + (size - cap_), cap_);
      return;
    }
    buffer_.append(data, size);
    if (buffer_.size() > cap_) buffer_.erase(0, buffer_.size() - cap_);
  }

  /// The retained tail, newlines flattened to spaces so it can live inside
  /// one-line ledger records.
  std::string one_line() const {
    std::string flat = buffer_;
    std::replace(flat.begin(), flat.end(), '\n', ' ');
    while (!flat.empty() && flat.back() == ' ') flat.pop_back();
    return flat;
  }

  const std::string& text() const { return buffer_; }
  std::size_t capacity() const { return cap_; }
  std::size_t retained() const { return buffer_.size(); }
  std::size_t total_seen() const { return total_; }

 private:
  std::size_t cap_;
  std::string buffer_;
  std::size_t total_ = 0;
};

}  // namespace locpriv::service
