#include "service/wire.hpp"

#include <cstring>

namespace locpriv::service::wire {

namespace {

void append_u32(std::string& out, std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(bytes));
}

std::uint32_t read_u32(const char* data) {
  std::uint32_t value = 0;
  std::memcpy(&value, data, sizeof(value));
  return value;
}

}  // namespace

std::string encode_message(const std::vector<std::string>& fields) {
  std::string payload;
  append_u32(payload, static_cast<std::uint32_t>(fields.size()));
  for (const std::string& field : fields) {
    append_u32(payload, static_cast<std::uint32_t>(field.size()));
    payload += field;
  }
  std::string message;
  message.reserve(payload.size() + 4);
  append_u32(message, static_cast<std::uint32_t>(payload.size()));
  message += payload;
  return message;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool FrameDecoder::next(std::vector<std::string>& fields) {
  if (corrupt_) return false;
  // Compact lazily: drop consumed bytes once they dominate the buffer, so
  // a long-lived stream does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint32_t payload_size = read_u32(buffer_.data() + consumed_);
  if (payload_size > kMaxPayloadBytes || payload_size < 4) {
    corrupt_ = true;
    return false;
  }
  if (available < 4 + static_cast<std::size_t>(payload_size)) return false;

  const char* payload = buffer_.data() + consumed_ + 4;
  std::size_t offset = 0;
  const std::uint32_t count = read_u32(payload);
  offset += 4;
  if (count > kMaxFieldCount) {
    corrupt_ = true;
    return false;
  }
  fields.clear();
  fields.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload_size - offset < 4) {
      corrupt_ = true;
      return false;
    }
    const std::uint32_t field_size = read_u32(payload + offset);
    offset += 4;
    if (payload_size - offset < field_size) {
      corrupt_ = true;
      return false;
    }
    fields.emplace_back(payload + offset, field_size);
    offset += field_size;
  }
  if (offset != payload_size) {
    corrupt_ = true;
    return false;
  }
  consumed_ += 4 + payload_size;
  return true;
}

}  // namespace locpriv::service::wire
