// locprivd: the always-on sharded audit service. Users are sharded by id
// hash across fork(2)ed worker processes; the parent is a single-threaded
// event loop that feeds batched fix submissions down length-prefixed pipes,
// supervises shard health with heartbeat pings (SIGTERM -> grace -> SIGKILL
// escalation on a miss), respawns dead shards with deterministic seeded
// backoff, quarantines a shard that flaps past its respawn budget, and
// checkpoints each shard's state with periodic snapshots (AtomicFileWriter
// publish + RunLedger journal), so a respawned shard — or a whole restarted
// service — resumes from its last snapshot with no metric divergence.
//
// Delivery contract: every accepted submit batch carries a per-shard
// sequence number and is retained in the parent until a snapshot covering
// it is journaled. A respawned shard restores the latest journaled snapshot
// and has the retained suffix replayed; the shard applies a batch exactly
// once (sequence-number dedupe), so its per-user fix streams — and
// therefore the PoI/pattern/metric pipeline outputs — are byte-identical
// to an unfailing run's. SIGINT/SIGTERM drain snapshots every shard and
// leave the run directory resumable (exit 7); a resume under a different
// shard count is refused (exit 6) because the user->shard mapping would
// scatter the journaled state.
//
// Storage-degraded mode: when a shard's snapshot publish fails (ENOSPC,
// EIO), the shard stays alive and the parent sheds the snapshot — journaled
// once per episode as `<shard>/snapdrop/<n>` — keeps serving from memory
// under the retained-byte caps, and retries on the snapshot cadence; the
// first successful publish re-arms normal operation. Only a drain whose
// final snapshot keeps failing gives up, with the taxonomy's exit 4 (kIo).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/harness/run_ledger.hpp"
#include "service/rolling_tail.hpp"
#include "service/wire.hpp"
#include "sim/faults/process_plan.hpp"

namespace locpriv::service {

/// What to do with a shed-eligible submit when the owning shard's credit
/// window is full. kRejectNew sheds the incoming batch; kDropOldest evicts
/// the oldest *unsent* retained batch to admit the new one (falling back to
/// reject-new when everything retained is already in flight).
enum class ShedPolicy { kRejectNew, kDropOldest };

/// Outcome of one submit() offer. kBlocked is only returned for lossless
/// admission when the caller's abort predicate (or a drain request) fired
/// while waiting for window credit — the batch was neither applied nor
/// shed, so a resumed run re-offers it.
enum class Admission { kAccepted, kDeduped, kShed, kBlocked };

/// One step of an exponentially weighted moving average. Exposed as a free
/// function so the slow-shard detector's arithmetic is unit-testable
/// without standing up a service.
inline double ewma_update(double prev, double sample, double alpha,
                          bool initialized) {
  if (!initialized) return sample;
  return alpha * sample + (1.0 - alpha) * prev;
}

struct ServiceOptions {
  unsigned shards = 2;
  /// Audit interval (seconds) the shard pipeline reports at.
  std::int64_t interval_s = 60;
  /// Dataset seed + scale, pinned into the run-ledger identity.
  std::uint64_t seed = 0;
  std::string scale;
  /// Heartbeat ping cadence per shard.
  std::chrono::milliseconds heartbeat{1000};
  /// An unanswered ping older than this marks the shard unhealthy.
  std::chrono::milliseconds ping_timeout{5000};
  /// Deadline for restore/snapshot/report/drain round trips (these may run
  /// the full metric pipeline, so the budget is separate from pings).
  std::chrono::milliseconds op_timeout{120000};
  /// SIGTERM -> SIGKILL grace for unhealthy or draining shards.
  std::chrono::milliseconds term_grace{2000};
  /// Snapshot cadence per shard; 0 snapshots only on drain/snapshot_now().
  std::chrono::milliseconds snapshot_interval{10000};
  /// Respawns a shard may consume before it is quarantined as flapping.
  int max_respawns = 5;
  /// Base + seed of the deterministic respawn backoff (supervisor's
  /// backoff_delay over the shard name and incarnation).
  std::chrono::milliseconds backoff_base{100};
  std::uint64_t backoff_seed = 0;
  /// RLIMIT_AS (MiB) / RLIMIT_CPU (s) applied inside each shard; 0 = off.
  std::size_t shard_rlimit_mb = 0;
  unsigned shard_cpu_s = 0;
  /// Rolling stderr bytes retained per shard lifetime (all incarnations).
  std::size_t stderr_tail_cap = 4096;
  /// Deterministic shard misbehaviour for failover rehearsal: plan keys are
  /// shard names ("shard0"), the attempt window counts incarnations.
  sim::ProcessFaultPlan fault_plan;
  /// Submit batches into the sabotaged incarnation before the fault fires.
  int fault_after_batches = 3;
  /// Credit window: unacked submit batches a shard may hold in flight
  /// (encoded or retained past its ack watermark) before admission closes.
  /// 0 disables the count-based window.
  std::size_t max_inflight_batches = 64;
  /// Retained-replay byte cap per shard. Crossing it forces an early
  /// snapshot (which truncates retained to the snapshot watermark) and
  /// closes admission until the snapshot lands. 0 disables the byte cap.
  std::size_t max_retained_bytes = 0;
  /// Shedding policy for shed-eligible (synthetic/soak) admission.
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Smoothing factor for the per-shard batch-turnaround EWMA.
  double ewma_alpha = 0.2;
  /// Turnaround EWMA above this marks the shard degraded and triggers one
  /// out-of-band snapshot per degraded episode. 0 disables.
  std::chrono::milliseconds degraded_ms{0};
  /// Turnaround EWMA above this sends the shard down the existing
  /// SIGTERM -> grace -> SIGKILL respawn path. 0 disables.
  std::chrono::milliseconds slow_restart_ms{0};
};

/// One recovered shard failure, for the bench's recovery-latency metric.
struct RecoveryRecord {
  unsigned shard = 0;
  int incarnation = 0;  ///< The incarnation that replaced the dead one.
  double latency_ms = 0.0;
};

struct ServiceStats {
  /// Every batch offered to submit(), whatever its fate. The reconciliation
  /// identity `offered == submitted + dropped + shed` holds exactly
  /// (kBlocked offers are not counted: the batch never entered the system).
  std::uint64_t batches_offered = 0;
  std::uint64_t batches_submitted = 0;  ///< Accepted into a shard stream.
  std::uint64_t batches_dropped = 0;    ///< Resume-dedupe only.
  std::uint64_t batches_shed = 0;       ///< Shed by policy or quarantine.
  std::uint64_t fixes_submitted = 0;
  std::uint64_t fixes_shed = 0;
  std::uint64_t shed_reject_new = 0;    ///< Incoming batch rejected at the window edge.
  std::uint64_t shed_drop_oldest = 0;   ///< Oldest unsent retained batch evicted.
  std::uint64_t shed_quarantined = 0;   ///< Offered to a quarantined shard.
  std::uint64_t snapshots = 0;
  std::uint64_t forced_snapshots = 0;   ///< Early snapshots from the retained-byte cap.
  std::uint64_t snapshots_shed = 0;     ///< Snapshot publishes that failed (ENOSPC/EIO).
  std::uint64_t storage_degraded_events = 0;  ///< Storage-degraded episodes entered.
  std::uint64_t degraded_events = 0;    ///< Degraded-EWMA episodes entered.
  std::uint64_t slow_restarts = 0;      ///< Respawns triggered by the slow-EWMA threshold.
  std::uint64_t blocked_waits = 0;      ///< Lossless submits that waited for window credit.
  int shard_deaths = 0;
  int respawns = 0;
  std::vector<RecoveryRecord> recoveries;
  /// Latest shard-reported resident state bytes, summed over live shards.
  std::size_t state_bytes = 0;
  /// High-water marks proving the flow-control caps held.
  std::size_t retained_bytes_peak = 0;  ///< Max retained replay bytes, any shard.
  std::size_t pending_ops_peak = 0;     ///< Max pending-op deque depth, any shard.
  std::size_t outbuf_bytes_peak = 0;    ///< Max unflushed command bytes, any shard.
};

/// Per-shard flow-control state, for benches and shed reconciliation.
struct ShardLoad {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t acked_seq = 0;        ///< Highest batch seq acked by the child.
  /// Highest batch seq consumed by the parent. Shed offers consume seqs too
  /// (leaving gaps the child tolerates), so this can exceed the accepted
  /// count; see submit().
  std::uint64_t submit_seq = 0;
  std::size_t retained_batches = 0;
  std::size_t retained_bytes = 0;
  double ewma_ms = 0.0;               ///< Batch-turnaround EWMA (0 until first sample).
  bool degraded = false;
  bool storage_degraded = false;      ///< Shedding snapshots after a publish failure.
  bool quarantined = false;
};

/// Per-user offered/accepted/shed accounting, for the parity CSV. Users a
/// run never offered to do not appear.
struct UserLoad {
  std::uint64_t batches_offered = 0;
  std::uint64_t batches_accepted = 0;
  std::uint64_t batches_shed = 0;
  std::uint64_t fixes_shed = 0;
};

class LocprivService {
 public:
  /// Spawns the shards. `resume` re-opens an existing run directory and
  /// restores each shard from its latest journaled snapshot; the ledger
  /// header pins seed, scale, and shard topology, so a mismatched resume
  /// throws Error(kResume) (exit 6). The analyzer must outlive the service
  /// (shards inherit it copy-on-write through fork).
  LocprivService(ServiceOptions options, const core::PrivacyAnalyzer& analyzer,
                 std::filesystem::path run_dir, bool resume);

  /// SIGKILLs any still-running shards (a drained service has none).
  ~LocprivService();

  LocprivService(const LocprivService&) = delete;
  LocprivService& operator=(const LocprivService&) = delete;

  static std::string shard_name(unsigned shard);
  unsigned shard_of(const std::string& user_id) const;

  /// Routes one batch of fixes (non-decreasing timestamps, appended after
  /// everything previously submitted for the user) to the owning shard.
  ///
  /// Admission is governed by the shard's credit window (max_inflight
  /// unacked batches, max_retained replay bytes). Lossless callers
  /// (may_shed = false, the corpus path) block inside submit — ticking the
  /// event loop — until credit opens; they return kBlocked only when the
  /// abort predicate or a drain request fires first, and the batch is then
  /// neither applied nor counted shed, so a resumed run re-offers it.
  /// Shed-eligible callers (may_shed = true, the synthetic/soak path) never
  /// block: at the window edge the configured ShedPolicy either sheds the
  /// incoming batch or evicts the oldest unsent one. Offers to a
  /// quarantined shard shed deterministically. kDeduped means the sequence
  /// number is already covered by a restored snapshot (resume dedupe);
  /// deterministic resubmission of the same schedule therefore converges to
  /// exactly-once application. Every outcome except kBlocked consumes one
  /// per-shard sequence number — shed offers included — so the Nth offer
  /// maps to the same seq in every run and the resume watermark comparison
  /// stays aligned even though shedding itself is timing-dependent.
  Admission submit(const std::string& user_id,
                   const std::vector<trace::TracePoint>& fixes,
                   bool may_shed = false,
                   const std::function<bool()>& abort = {});

  /// Pumps the event loop once: flushes queued commands, drains shard
  /// responses and stderr, reaps deaths, escalates unhealthy shards,
  /// respawns (with backoff) or quarantines dead ones, and triggers
  /// snapshot cadence. Blocks at most `budget`.
  void tick(std::chrono::milliseconds budget = std::chrono::milliseconds(20));

  /// Queues an immediate snapshot round on every healthy shard.
  void snapshot_now();

  /// Runs the audit pipeline in every shard and returns one row per user in
  /// analyzer order (users owned by quarantined shards are omitted). Rows
  /// are the audit-all field layout. Drives tick() internally; survives
  /// shard deaths mid-report by re-asking after recovery. Throws
  /// Error(kDeadline) if a shard cannot produce a report within its respawn
  /// budget.
  std::vector<std::vector<std::string>> collect_reports();

  /// Graceful drain: final snapshot on every shard, clean child exits,
  /// ledger sync. The run directory is left resumable. Idempotent.
  void drain();

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }
  std::vector<std::string> quarantined_shards() const;

  /// Flow-control snapshot of one shard (offered/accepted/shed, ack and
  /// submit watermarks, retained footprint, turnaround EWMA).
  ShardLoad shard_load(unsigned shard) const;

  /// Per-user offered/accepted/shed accounting, keyed by user id. Only
  /// users this run offered batches for appear.
  const std::map<std::string, UserLoad>& user_loads() const {
    return user_loads_;
  }

  /// User ids with at least one shed batch, sorted. The parity set a bench
  /// must exclude — everyone else's metrics stay byte-identical.
  std::vector<std::string> shed_users() const;

  /// Feeds one synthetic turnaround sample (ms) through the same EWMA +
  /// threshold path a real ack drives. Deterministic hook for tests; the
  /// thresholds' side effects (out-of-band snapshot, respawn escalation)
  /// fire exactly as they would under real latency.
  void inject_turnaround_sample_for_testing(unsigned shard, double ms);

  /// Submit-batch watermark a shard restored from its snapshot at startup
  /// (0 = fresh). Exposed for resume-aware drivers and tests.
  std::uint64_t restored_seq(unsigned shard) const;

  /// Async-signal-safe drain request, installable as a SIGINT/SIGTERM
  /// handler by the serve front end. Checked by drivers between batches.
  static void request_shutdown(int signal);
  static bool shutdown_requested();
  static void clear_shutdown();

 private:
  struct PendingOp {
    std::string verb;  ///< Expected *response* verb.
    std::uint64_t token = 0;
    /// Per-op response budget. The deadline only starts ticking when the op
    /// reaches the front of the queue (shards answer strictly in order), so
    /// a ping queued behind a slow report is not falsely timed out.
    std::chrono::milliseconds budget{0};
    std::chrono::steady_clock::time_point deadline;
  };

  struct RetainedBatch {
    std::uint64_t seq = 0;
    std::string frame;  ///< Encoded submit message, replayed verbatim.
    std::size_t fixes = 0;
    std::string user;   ///< Owner, for shed accounting on drop-oldest.
  };

  struct Shard;

  void spawn(Shard& shard);
  void send(Shard& shard, const std::vector<std::string>& fields);
  void pump(std::chrono::milliseconds timeout);
  /// Encodes retained batches into the shard's outbuf up to the credit
  /// window (the sent_seq cursor tracks what is already encoded). Called
  /// from pump() and after every admission, so acks open the window and the
  /// next unsent batch goes out on the same tick.
  void pump_submits(Shard& shard);
  bool window_full(const Shard& shard) const;
  enum class ShedCause { kRejectNew, kDropOldest, kQuarantined };
  void account_shed(Shard& shard, const std::string& user, std::size_t fixes,
                    ShedCause cause);
  void note_turnaround(Shard& shard, double sample_ms);
  void resume_pointer(Shard& shard);
  void handle_death(Shard& shard, int status);
  void quarantine(Shard& shard, std::string reason);
  void dispatch_response(Shard& shard, const std::vector<std::string>& fields);
  /// A child reported a failed snapshot/drain publish (kRspSnapfail): shed
  /// the snapshot, enter the shard's storage-degraded episode (journaled
  /// once as `<shard>/snapdrop/<n>`), and keep serving from memory under
  /// the retained-byte caps. Repeated *drain* failures exhaust a small
  /// retry budget and throw Error(kIo) — shutdown must not hang on a disk
  /// that will never accept the final snapshot.
  void handle_snapshot_failure(Shard& shard, const std::string& error,
                               bool was_drain);
  void queue_snapshot(Shard& shard, const char* verb);
  void queue_ping(Shard& shard);
  void flush_out(Shard& shard);
  void health_check(Shard& shard);
  void record_snapshot(Shard& shard, const std::vector<std::string>& fields);
  std::filesystem::path snapshot_path(const Shard& shard,
                                      std::uint64_t snap_seq) const;

  ServiceOptions options_;
  const core::PrivacyAnalyzer& analyzer_;
  std::filesystem::path run_dir_;
  std::unique_ptr<harness::RunLedger> ledger_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::map<std::string, unsigned> user_shard_;  ///< Routing cache.
  std::map<std::string, UserLoad> user_loads_;
  ServiceStats stats_;
  std::uint64_t next_token_ = 0;
  bool drained_ = false;
};

}  // namespace locpriv::service
