#include "service/shard_child.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/harness/atomic_file.hpp"
#include "core/harness/error.hpp"
#include "service/driver.hpp"
#include "service/snapshot.hpp"
#include "util/logging.hpp"

namespace locpriv::service {

namespace {

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(1);  // Parent gone; nothing left to report to.
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

void respond(int fd, const std::vector<std::string>& fields) {
  const std::string message = wire::encode_message(fields);
  write_all(fd, message.data(), message.size());
}

void note(const std::string& text) {
  const std::string line = text + "\n";
  write_all(STDERR_FILENO, line.data(), line.size());
}

double parse_coord(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0')
    throw Error(ErrorCode::kInternal, "bad coordinate on submit: " + token);
  return value;
}

std::int64_t parse_i64(const std::string& token) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw Error(ErrorCode::kInternal, "bad integer on command: " + token);
  return value;
}

/// The shard's in-memory state plus the handlers the command loop calls.
struct ShardState {
  const ShardChildConfig& config;
  const core::PrivacyAnalyzer& analyzer;
  const ServiceOptions& options;

  std::map<std::string, std::vector<trace::TracePoint>> users;
  std::map<std::string, std::size_t> index_of;  ///< user id -> analyzer index.
  std::uint64_t last_seq = 0;   ///< Highest applied submit-batch sequence.
  std::uint64_t ingested = 0;   ///< Fixes applied this lifetime of state.
  int batches_this_incarnation = 0;

  ShardState(const ShardChildConfig& config,
             const core::PrivacyAnalyzer& analyzer,
             const ServiceOptions& options)
      : config(config), analyzer(analyzer), options(options) {
    for (std::size_t i = 0; i < analyzer.user_count(); ++i)
      index_of.emplace(analyzer.reference(i).user_id, i);
  }

  std::size_t state_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [user, fixes] : users)
      bytes += user.size() + 64 + fixes.capacity() * sizeof(trace::TracePoint);
    return bytes;
  }

  void handle_restore(const std::vector<std::string>& cmd) {
    try {
      const ShardSnapshot snapshot = load_snapshot(cmd[1]);
      const auto expect_seq = static_cast<std::uint64_t>(parse_i64(cmd[2]));
      if (snapshot.shard != config.shard || snapshot.seq != expect_seq)
        throw Error(ErrorCode::kResume,
                    "snapshot identity mismatch: file is shard " +
                        std::to_string(snapshot.shard) + " seq " +
                        std::to_string(snapshot.seq));
      users = snapshot.users;
      last_seq = snapshot.last_seq;
      ingested = 0;
      for (const auto& [user, fixes] : users) ingested += fixes.size();
      respond(config.resp_fd,
              {wire::kRspRestored, std::to_string(last_seq),
               std::to_string(ingested), "ok"});
    } catch (const Error& e) {
      respond(config.resp_fd, {wire::kRspRestored, "0", "0", e.what()});
    }
  }

  void handle_submit(const std::vector<std::string>& cmd) {
    const auto seq = static_cast<std::uint64_t>(parse_i64(cmd[1]));
    if (seq <= last_seq) {
      // Replayed batch already in a snapshot. Still acked: the parent's
      // credit window counts every consumed frame, applied or deduped.
      respond(config.resp_fd, {wire::kRspAck, cmd[1], "0"});
      return;
    }
    ++batches_this_incarnation;
    if (options.fault_plan.fault_for(config.name, config.incarnation) !=
            nullptr &&
        batches_this_incarnation == options.fault_after_batches) {
      // Fires *before* the batch is applied: the parent retains it, so the
      // respawned incarnation replays it and no fix is lost.
      options.fault_plan.trigger(config.name, config.incarnation);
    }
    const std::string& user_id = cmd[2];
    const auto count = static_cast<std::size_t>(parse_i64(cmd[3]));
    std::vector<trace::TracePoint>& fixes = users[user_id];
    fixes.reserve(fixes.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      trace::TracePoint fix;
      fix.position.lat_deg = parse_coord(cmd[4 + 3 * i]);
      fix.position.lon_deg = parse_coord(cmd[5 + 3 * i]);
      fix.timestamp_s = parse_i64(cmd[6 + 3 * i]);
      fixes.push_back(fix);
    }
    last_seq = seq;
    ingested += count;
    // The ack is the flow-control credit: it is sent only after the batch
    // is applied, so a crash loses at most the unacked in-flight window and
    // the parent's retained replay covers exactly that suffix.
    respond(config.resp_fd, {wire::kRspAck, cmd[1], "1"});
  }

  bool write_snapshot(const std::vector<std::string>& cmd, const char* verb) {
    const auto snap_seq = static_cast<std::uint64_t>(parse_i64(cmd[1]));
    const std::string& path = cmd[2];
    ShardSnapshot snapshot;
    snapshot.shard = config.shard;
    snapshot.seq = snap_seq;
    snapshot.last_seq = last_seq;
    snapshot.users = users;
    const std::string encoded = encode_snapshot(snapshot);
    try {
      harness::AtomicFileWriter writer(path);
      writer.stream() << encoded;
      writer.commit();
    } catch (const Error& e) {
      // Report the failure instead of dying: the in-memory state is still
      // authoritative and AtomicFileWriter left the previous snapshot
      // intact. The parent sheds the snapshot, keeps the retained suffix,
      // and retries later (disk-full degraded mode).
      respond(config.resp_fd,
              {wire::kRspSnapfail, std::to_string(snap_seq), e.what()});
      return false;
    }
    respond(config.resp_fd,
            {verb, std::to_string(snap_seq), std::to_string(last_seq),
             std::to_string(users.size()),
             std::to_string(snapshot.fix_count()),
             snapshot_checksum(encoded)});
    return true;
  }

  void handle_report(const std::vector<std::string>& cmd) {
    std::vector<std::string> out = {wire::kRspReports, cmd[1], "", ""};
    std::size_t rows = 0;
    std::size_t cols = 0;
    for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
      const std::string& user_id = analyzer.reference(i).user_id;
      const auto it = users.find(user_id);
      if (it == users.end()) continue;
      const core::ExposureReport report =
          analyzer.evaluate_collected(i, options.interval_s, it->second);
      const std::vector<std::string> fields =
          exposure_fields(user_id, options.interval_s, report);
      cols = fields.size();
      out.insert(out.end(), fields.begin(), fields.end());
      ++rows;
    }
    out[2] = std::to_string(rows);
    out[3] = std::to_string(cols);
    respond(config.resp_fd, out);
  }
};

void apply_shard_rlimits(const ServiceOptions& options) {
  if (options.shard_rlimit_mb > 0) {
    struct rlimit limit {};
    limit.rlim_cur = limit.rlim_max =
        static_cast<rlim_t>(options.shard_rlimit_mb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &limit);
  }
  if (options.shard_cpu_s > 0) {
    struct rlimit limit {};
    limit.rlim_cur = limit.rlim_max = options.shard_cpu_s;
    ::setrlimit(RLIMIT_CPU, &limit);
  }
}

}  // namespace

void shard_child_main(const ShardChildConfig& config,
                      const core::PrivacyAnalyzer& analyzer,
                      const ServiceOptions& options) {
  // Same fork discipline as the supervisor children: silence the cloned
  // logger before anything can log, route stderr into the capture pipe,
  // restore default signal dispositions so SIGTERM terminates us, then cap
  // the process. The parent holds LogForkGuard across the fork itself.
  util::set_log_level(util::LogLevel::kOff);
  ::dup2(config.err_fd, STDERR_FILENO);
  if (config.err_fd != STDERR_FILENO) ::close(config.err_fd);
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(SIGINT, &dfl, nullptr);
  ::sigaction(SIGTERM, &dfl, nullptr);
  apply_shard_rlimits(options);

  try {
    ShardState state(config, analyzer, options);
    wire::FrameDecoder decoder;
    std::vector<std::string> cmd;
    char chunk[4096];
    for (;;) {
      while (decoder.next(cmd)) {
        if (cmd.empty()) continue;
        const std::string& verb = cmd[0];
        if (verb == wire::kCmdSubmit) {
          state.handle_submit(cmd);
        } else if (verb == wire::kCmdPing) {
          respond(config.resp_fd,
                  {wire::kRspPong, cmd[1], std::to_string(state.ingested),
                   std::to_string(state.state_bytes())});
        } else if (verb == wire::kCmdRestore) {
          state.handle_restore(cmd);
        } else if (verb == wire::kCmdSnapshot) {
          state.write_snapshot(cmd, wire::kRspSnapped);
        } else if (verb == wire::kCmdReport) {
          state.handle_report(cmd);
        } else if (verb == wire::kCmdDrain) {
          // Only exit once the final snapshot actually published; a failed
          // drain keeps the shard alive so the parent can retry (or give up
          // with a taxonomy exit) without losing the in-memory state.
          if (state.write_snapshot(cmd, wire::kRspDrained)) ::_exit(0);
        } else {
          note("shard " + config.name + ": unknown command " + verb);
          ::_exit(exit_code(ErrorCode::kInternal));
        }
      }
      if (decoder.corrupt()) {
        note("shard " + config.name + ": corrupt command stream");
        ::_exit(exit_code(ErrorCode::kInternal));
      }
      const ssize_t n = ::read(config.cmd_fd, chunk, sizeof(chunk));
      if (n > 0) {
        decoder.feed(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      ::_exit(0);  // EOF: the parent closed the pipe (or died); clean stop.
    }
  } catch (const Error& e) {
    note(e.what());
    ::_exit(e.exit_code());
  } catch (const std::exception& e) {
    note(e.what());
    ::_exit(exit_code(ErrorCode::kInternal));
    // The child must never unwind into the cloned parent stack; the
    // non-zero _exit IS the report. locpriv-lint: allow(swallowed-catch)
  } catch (...) {
    note("non-std exception in shard worker");
    ::_exit(exit_code(ErrorCode::kInternal));
  }
}

}  // namespace locpriv::service
