// Synthetic city: a Manhattan road grid with a pool of PoI sites scattered
// near intersections. Trips between PoIs are routed along the grid, giving
// traces the rectilinear look of real urban GPS data.
#pragma once

#include <vector>

#include "geo/latlon.hpp"
#include "geo/projection.hpp"
#include "mobility/poi_site.hpp"
#include "stats/rng.hpp"

namespace locpriv::mobility {

/// City generation parameters. Defaults produce a ~12x12 km downtown
/// anchored at Beijing (matching Geolife's dominant region).
struct CityConfig {
  geo::LatLon anchor{39.9042, 116.4074};  ///< Grid origin (south-west corner).
  int blocks_x = 24;          ///< Grid blocks east-west.
  int blocks_y = 24;          ///< Grid blocks north-south.
  double block_m = 500.0;     ///< Block edge length in meters.
  int poi_count = 400;        ///< Size of the shared PoI pool.
  double poi_jitter_m = 60.0; ///< How far PoIs sit from their intersection.
};

/// The generated city. Immutable after construction; shared by all users so
/// their PoI sets overlap (which is what makes the identification experiments
/// non-trivial — distinct users visit intersecting place sets).
class CityModel {
 public:
  /// Generates the road grid and PoI pool deterministically from `rng`.
  CityModel(const CityConfig& config, stats::Rng& rng);

  const CityConfig& config() const { return config_; }
  const std::vector<PoiSite>& pois() const { return pois_; }
  const geo::LocalProjection& projection() const { return projection_; }

  /// The site with the given id. Precondition: 0 <= id < poi_count.
  const PoiSite& poi(int id) const;

  /// Ids of all sites with the given category.
  std::vector<int> pois_of_category(PoiCategory category) const;

  /// Plans a route between two positions along the road grid: walk to the
  /// nearest intersection, staircase path through the grid (randomised
  /// east/north interleaving), walk to the destination. Returns a polyline
  /// including both endpoints; at least two points unless from == to.
  std::vector<geo::LatLon> plan_route(const geo::LatLon& from, const geo::LatLon& to,
                                      stats::Rng& rng) const;

  /// Nearest grid intersection to `p` (clamped to the grid extent).
  geo::LatLon nearest_intersection(const geo::LatLon& p) const;

 private:
  CityConfig config_;
  geo::LocalProjection projection_;
  std::vector<PoiSite> pois_;
};

}  // namespace locpriv::mobility
