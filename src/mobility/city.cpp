#include "mobility/city.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace locpriv::mobility {

std::string_view poi_category_name(PoiCategory category) {
  switch (category) {
    case PoiCategory::kHome: return "home";
    case PoiCategory::kWork: return "work";
    case PoiCategory::kRestaurant: return "restaurant";
    case PoiCategory::kShop: return "shop";
    case PoiCategory::kGym: return "gym";
    case PoiCategory::kPark: return "park";
    case PoiCategory::kSchool: return "school";
    case PoiCategory::kHospital: return "hospital";
    case PoiCategory::kEntertainment: return "entertainment";
    case PoiCategory::kTransit: return "transit";
  }
  return "?";
}

namespace {

// Relative frequency of each category in the city pool. Homes dominate
// (every user needs a distinct one), then workplaces, then amenities.
constexpr double kCategoryWeights[kPoiCategoryCount] = {
    0.38,  // home
    0.16,  // work
    0.10,  // restaurant
    0.10,  // shop
    0.05,  // gym
    0.06,  // park
    0.04,  // school
    0.03,  // hospital
    0.05,  // entertainment
    0.03,  // transit
};

}  // namespace

CityModel::CityModel(const CityConfig& config, stats::Rng& rng)
    : config_(config), projection_(config.anchor) {
  LOCPRIV_EXPECT(config.blocks_x >= 2 && config.blocks_y >= 2);
  LOCPRIV_EXPECT(config.block_m > 0.0);
  LOCPRIV_EXPECT(config.poi_count > kPoiCategoryCount);

  const std::vector<double> weights(std::begin(kCategoryWeights), std::end(kCategoryWeights));
  pois_.reserve(static_cast<std::size_t>(config.poi_count));
  for (int id = 0; id < config.poi_count; ++id) {
    PoiSite site;
    site.id = id;
    // Guarantee at least one site per category, then sample by weight.
    site.category = id < kPoiCategoryCount
                        ? static_cast<PoiCategory>(id)
                        : static_cast<PoiCategory>(rng.weighted_index(weights));
    const auto ix = static_cast<double>(rng.uniform_int(0, config.blocks_x));
    const auto iy = static_cast<double>(rng.uniform_int(0, config.blocks_y));
    const double east = ix * config.block_m + rng.normal(0.0, config.poi_jitter_m);
    const double north = iy * config.block_m + rng.normal(0.0, config.poi_jitter_m);
    site.position = projection_.to_geo({east, north});
    pois_.push_back(site);
  }
}

const PoiSite& CityModel::poi(int id) const {
  LOCPRIV_EXPECT(id >= 0 && static_cast<std::size_t>(id) < pois_.size());
  return pois_[static_cast<std::size_t>(id)];
}

std::vector<int> CityModel::pois_of_category(PoiCategory category) const {
  std::vector<int> ids;
  for (const auto& site : pois_)
    if (site.category == category) ids.push_back(site.id);
  return ids;
}

geo::LatLon CityModel::nearest_intersection(const geo::LatLon& p) const {
  const geo::EastNorth plane = projection_.to_plane(p);
  const double max_east = static_cast<double>(config_.blocks_x) * config_.block_m;
  const double max_north = static_cast<double>(config_.blocks_y) * config_.block_m;
  const double east =
      std::clamp(std::round(plane.east_m / config_.block_m) * config_.block_m, 0.0, max_east);
  const double north =
      std::clamp(std::round(plane.north_m / config_.block_m) * config_.block_m, 0.0, max_north);
  return projection_.to_geo({east, north});
}

std::vector<geo::LatLon> CityModel::plan_route(const geo::LatLon& from,
                                               const geo::LatLon& to,
                                               stats::Rng& rng) const {
  std::vector<geo::LatLon> route;
  route.push_back(from);
  if (from == to) return route;

  const geo::EastNorth start = projection_.to_plane(nearest_intersection(from));
  const geo::EastNorth goal = projection_.to_plane(nearest_intersection(to));

  // Staircase path: consume the east and north displacement block by block,
  // choosing the axis at random (biased toward the longer remaining leg) so
  // different trips between the same places take slightly different streets.
  double east = start.east_m;
  double north = start.north_m;
  route.push_back(projection_.to_geo({east, north}));
  const double step = config_.block_m;
  int guard = 4 * (config_.blocks_x + config_.blocks_y);
  while ((std::abs(goal.east_m - east) > step / 2.0 ||
          std::abs(goal.north_m - north) > step / 2.0) &&
         guard-- > 0) {
    const double east_remaining = std::abs(goal.east_m - east);
    const double north_remaining = std::abs(goal.north_m - north);
    const bool move_east =
        north_remaining <= step / 2.0 ||
        (east_remaining > step / 2.0 &&
         rng.uniform01() < east_remaining / (east_remaining + north_remaining));
    if (move_east) {
      east += (goal.east_m > east) ? step : -step;
    } else {
      north += (goal.north_m > north) ? step : -step;
    }
    route.push_back(projection_.to_geo({east, north}));
  }
  route.push_back(projection_.to_geo(goal));
  route.push_back(to);
  return route;
}

}  // namespace locpriv::mobility
