#include "mobility/profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace locpriv::mobility {

DwellModel dwell_model(PoiCategory category) {
  // Lognormal parameters chosen so the 10-minute PoI-extraction threshold
  // passes for most stays while 20/30-minute thresholds prune progressively
  // more (reproducing the monotone drop in the paper's Figure 2).
  switch (category) {
    case PoiCategory::kHome: return {std::log(4.0 * 3600.0), 0.5};
    case PoiCategory::kWork: return {std::log(3.5 * 3600.0), 0.4};
    case PoiCategory::kRestaurant: return {std::log(45.0 * 60.0), 0.5};
    case PoiCategory::kShop: return {std::log(25.0 * 60.0), 0.6};
    case PoiCategory::kGym: return {std::log(60.0 * 60.0), 0.4};
    case PoiCategory::kPark: return {std::log(35.0 * 60.0), 0.7};
    case PoiCategory::kSchool: return {std::log(50.0 * 60.0), 0.4};
    case PoiCategory::kHospital: return {std::log(55.0 * 60.0), 0.5};
    case PoiCategory::kEntertainment: return {std::log(90.0 * 60.0), 0.5};
    case PoiCategory::kTransit: return {std::log(12.0 * 60.0), 0.5};
  }
  return {std::log(30.0 * 60.0), 0.5};
}

namespace {

// How attractive each category is as a weekday transition target.
double weekday_affinity(PoiCategory category) {
  switch (category) {
    case PoiCategory::kHome: return 1.6;
    case PoiCategory::kWork: return 2.2;
    case PoiCategory::kRestaurant: return 1.0;
    case PoiCategory::kShop: return 0.7;
    case PoiCategory::kGym: return 0.6;
    case PoiCategory::kPark: return 0.4;
    case PoiCategory::kSchool: return 0.5;
    case PoiCategory::kHospital: return 0.2;
    case PoiCategory::kEntertainment: return 0.4;
    case PoiCategory::kTransit: return 0.5;
  }
  return 0.5;
}

double weekend_affinity(PoiCategory category) {
  switch (category) {
    case PoiCategory::kHome: return 1.8;
    case PoiCategory::kWork: return 0.2;
    case PoiCategory::kRestaurant: return 1.2;
    case PoiCategory::kShop: return 1.4;
    case PoiCategory::kGym: return 0.8;
    case PoiCategory::kPark: return 1.2;
    case PoiCategory::kSchool: return 0.1;
    case PoiCategory::kHospital: return 0.2;
    case PoiCategory::kEntertainment: return 1.5;
    case PoiCategory::kTransit: return 0.6;
  }
  return 0.5;
}

// Draws one row of a transition matrix: category affinity modulated by a
// per-user random habit factor, zero self-transition, normalised to 1.
std::vector<double> draw_transition_row(const CityModel& city,
                                        const std::vector<int>& poi_ids,
                                        std::size_t from_index, bool weekend,
                                        double concentration, stats::Rng& rng) {
  std::vector<double> row(poi_ids.size(), 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < poi_ids.size(); ++j) {
    if (j == from_index) continue;  // A "transition" always changes place.
    const PoiCategory category = city.poi(poi_ids[j]).category;
    const double affinity = weekend ? weekend_affinity(category) : weekday_affinity(category);
    // Gamma-like habit factor: exp of a scaled normal gives a heavy-ish tail,
    // so each user ends up with a few strongly preferred edges — the
    // idiosyncrasy the chi-square identification exploits.
    const double habit = std::exp(rng.normal(0.0, 1.0) * std::log1p(concentration) / 3.0);
    row[j] = affinity * habit;
    total += row[j];
  }
  LOCPRIV_EXPECT(total > 0.0);
  for (double& value : row) value /= total;
  return row;
}

}  // namespace

UserProfile build_user_profile(const CityModel& city, const std::string& user_id,
                               int home_poi, const ProfileConfig& config,
                               stats::Rng& rng) {
  LOCPRIV_EXPECT(config.min_amenities >= 1);
  LOCPRIV_EXPECT(config.max_amenities >= config.min_amenities);
  LOCPRIV_EXPECT(city.poi(home_poi).category == PoiCategory::kHome);

  UserProfile profile;
  profile.user_id = user_id;
  profile.poi_ids.push_back(home_poi);

  // Workplace: any kWork site; shared across users by construction.
  const auto work_sites = city.pois_of_category(PoiCategory::kWork);
  LOCPRIV_EXPECT(!work_sites.empty());
  profile.poi_ids.push_back(
      work_sites[static_cast<std::size_t>(rng.next_below(work_sites.size()))]);

  // Amenities: distinct non-home sites from the shared pool.
  const int amenity_count =
      static_cast<int>(rng.uniform_int(config.min_amenities, config.max_amenities));
  int guard = 1000;
  while (static_cast<int>(profile.poi_ids.size()) < 2 + amenity_count && guard-- > 0) {
    const int candidate =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(city.pois().size())));
    if (city.poi(candidate).category == PoiCategory::kHome) continue;
    if (std::find(profile.poi_ids.begin(), profile.poi_ids.end(), candidate) !=
        profile.poi_ids.end())
      continue;
    profile.poi_ids.push_back(candidate);
  }
  LOCPRIV_EXPECT(profile.poi_ids.size() >= 3);

  for (std::size_t i = 0; i < profile.poi_ids.size(); ++i) {
    profile.weekday_transition.push_back(draw_transition_row(
        city, profile.poi_ids, i, /*weekend=*/false, config.habit_concentration, rng));
    profile.weekend_transition.push_back(draw_transition_row(
        city, profile.poi_ids, i, /*weekend=*/true, config.habit_concentration, rng));
    const DwellModel dwell = dwell_model(city.poi(profile.poi_ids[i]).category);
    profile.mean_dwell_s.push_back(std::exp(dwell.mu_log_s + rng.normal(0.0, 0.15)));
  }
  return profile;
}

}  // namespace locpriv::mobility
