// Per-user behavioural profile: which places a user frequents and the
// Markov transition habits between them.
//
// Identifiability in the paper's experiments rests on users having
// *distinct* movement patterns over *overlapping* place sets; the profile
// generator therefore assigns each user a unique home, a workplace shared
// with a few others, and a handful of amenities sampled from the shared city
// pool, then draws an individual transition matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mobility/city.hpp"

namespace locpriv::mobility {

/// Profile generation parameters.
struct ProfileConfig {
  int min_amenities = 4;   ///< Non-home/work places in the routine.
  int max_amenities = 8;
  double habit_concentration = 6.0;  ///< Dirichlet-like skew of transitions:
                                     ///< larger -> more idiosyncratic habits.
};

/// A user's behavioural profile.
struct UserProfile {
  std::string user_id;
  std::vector<int> poi_ids;  ///< [0] = home, [1] = work, rest = amenities.
  /// Row-stochastic transition matrix over poi_ids (weekday behaviour):
  /// transition[i][j] = P(next place = poi_ids[j] | at poi_ids[i]).
  std::vector<std::vector<double>> weekday_transition;
  /// Weekend behaviour: leisure categories boosted, work suppressed.
  std::vector<std::vector<double>> weekend_transition;
  /// Mean dwell in seconds at each place in poi_ids.
  std::vector<double> mean_dwell_s;

  std::size_t place_count() const { return poi_ids.size(); }
  int home_poi() const { return poi_ids.front(); }
  int work_poi() const { return poi_ids[1]; }
};

/// Draws a profile for one user. `home_poi` must be a kHome site unique to
/// this user (the dataset generator partitions homes); the rest of the
/// routine is sampled from the city pool.
UserProfile build_user_profile(const CityModel& city, const std::string& user_id,
                               int home_poi, const ProfileConfig& config,
                               stats::Rng& rng);

/// Typical dwell duration parameters for one stay at a site of `category`:
/// lognormal with the returned (mu, sigma) of log-seconds.
struct DwellModel {
  double mu_log_s = 0.0;
  double sigma_log_s = 0.0;
};
DwellModel dwell_model(PoiCategory category);

}  // namespace locpriv::mobility
