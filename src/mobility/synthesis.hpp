// Trip synthesis: turns a user profile into a Geolife-like GPS trace.
//
// Recording model (mirrors how Geolife loggers behave): the trace covers the
// user's waking day — continuous 1-5 s fixes while moving, and periodic
// short bursts of fixes while dwelling at a place (so stays are visible to
// stay-point extraction while the inter-fix interval distribution stays
// dominated by 1-5 s gaps, matching the dataset's reported ~91 %).
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/city.hpp"
#include "mobility/profile.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::mobility {

/// Trip/trace synthesis parameters.
struct SynthesisConfig {
  int days = 12;                      ///< Simulated days per user.
  std::int64_t start_unix_s = 1212278400;  ///< 2008-06-01, inside Geolife's span.
  double gps_noise_sigma_m = 4.0;     ///< Per-fix Gaussian position error.
  int move_sample_min_s = 2;          ///< Fix spacing while moving (uniform).
  int move_sample_max_s = 4;
  int dwell_burst_gap_min_s = 180;    ///< Gap between fix bursts while dwelling.
  int dwell_burst_gap_max_s = 300;
  int dwell_burst_fixes = 8;          ///< Fixes per dwell burst, ~2 s apart.
  double dwell_wander_sigma_m = 8.0;  ///< Indoor position wander during a stay.
};

/// Output of simulating one user.
struct SimulatedUser {
  trace::UserTrace trace;        ///< One trajectory per simulated day.
  UserGroundTruth ground_truth;  ///< True visits behind the trace.
};

/// Simulates `config.days` days of movement for `profile`.
SimulatedUser simulate_user(const CityModel& city, const UserProfile& profile,
                            const SynthesisConfig& config, stats::Rng& rng);

/// Full synthetic dataset: the shared city, each user's profile, trace and
/// ground truth.
struct SyntheticDataset {
  CityConfig city_config;
  std::vector<PoiSite> poi_sites;  ///< The city's PoI pool (id-indexed).
  std::vector<UserProfile> profiles;
  std::vector<trace::UserTrace> users;
  std::vector<UserGroundTruth> ground_truths;

  /// Position of a city PoI by id. Precondition: valid id.
  const geo::LatLon& poi_position(int id) const;
};

/// Dataset generation parameters. Defaults approximate the Geolife corpus
/// the paper uses: 182 users, high-frequency sampling, multi-week span.
struct DatasetConfig {
  std::uint64_t seed = 20170605;  ///< ICDCS'17 — printed by every bench.
  int user_count = 182;
  /// Users sharing one home building. 1 (default) gives every user a
  /// distinct home; larger values model co-located populations (dorms,
  /// campus housing — much of the real Geolife cohort), which enlarges
  /// pattern-1 anonymity sets and stresses identification.
  int users_per_home = 1;
  CityConfig city;       ///< city.poi_count must allow the needed homes.
  ProfileConfig profile;
  SynthesisConfig synthesis;

  DatasetConfig() { city.poi_count = 700; }
};

/// Generates the whole dataset deterministically from `config.seed`.
/// Throws ContractViolation if the city has fewer kHome sites than users.
SyntheticDataset generate_dataset(const DatasetConfig& config);

}  // namespace locpriv::mobility
