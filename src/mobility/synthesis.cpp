#include "mobility/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace locpriv::mobility {

namespace {

constexpr std::int64_t kSecondsPerDay = 86400;

// Travel speed in m/s by trip length: walk, e-bike, car/bus.
double travel_speed_mps(double distance_m, stats::Rng& rng) {
  if (distance_m < 1500.0) return rng.uniform(1.2, 1.6);
  if (distance_m < 5000.0) return rng.uniform(3.5, 5.5);
  return rng.uniform(7.0, 11.0);
}

// True for Saturday/Sunday given a Unix timestamp (epoch was a Thursday).
bool is_weekend(std::int64_t unix_s) {
  const std::int64_t day_index = unix_s / kSecondsPerDay;
  const int weekday = static_cast<int>((day_index + 4) % 7);  // 0 = Sunday.
  return weekday == 0 || weekday == 6;
}

// Applies GPS noise to a true position.
geo::LatLon noisy(const geo::LatLon& position, double sigma_m, stats::Rng& rng) {
  if (sigma_m <= 0.0) return position;
  const double east = rng.normal(0.0, sigma_m);
  const double north = rng.normal(0.0, sigma_m);
  const double distance = std::sqrt(east * east + north * north);
  if (distance == 0.0) return position;
  return geo::destination(position, geo::rad_to_deg(std::atan2(east, north)), distance);
}

// Emits fixes along `route` starting at `time_s`; returns the arrival time.
std::int64_t emit_travel(const std::vector<geo::LatLon>& route, std::int64_t time_s,
                         const SynthesisConfig& config, stats::Rng& rng,
                         trace::Trajectory& out) {
  const double total_m = geo::polyline_length_m(route);
  if (total_m <= 0.0 || route.size() < 2) return time_s;
  const double speed = travel_speed_mps(total_m, rng);

  // Precompute cumulative segment lengths for interpolation.
  std::vector<double> cumulative(route.size(), 0.0);
  for (std::size_t i = 1; i < route.size(); ++i)
    cumulative[i] = cumulative[i - 1] + geo::haversine_m(route[i - 1], route[i]);

  double traveled = 0.0;
  std::int64_t now = time_s;
  std::size_t segment = 1;
  while (traveled < total_m) {
    const auto step_s = rng.uniform_int(config.move_sample_min_s, config.move_sample_max_s);
    now += step_s;
    traveled = std::min(total_m, traveled + speed * static_cast<double>(step_s));
    while (segment + 1 < route.size() && cumulative[segment] < traveled) ++segment;
    const double seg_len = cumulative[segment] - cumulative[segment - 1];
    const double within = seg_len <= 0.0
                              ? 0.0
                              : (traveled - cumulative[segment - 1]) / seg_len;
    const double bearing = geo::bearing_deg(route[segment - 1], route[segment]);
    const geo::LatLon position =
        geo::destination(route[segment - 1], bearing, within * seg_len);
    out.append({noisy(position, config.gps_noise_sigma_m, rng), now});
  }
  return now;
}

// Emits burst fixes at a dwell location from `enter_s` to `exit_s`.
void emit_dwell(const geo::LatLon& site, std::int64_t enter_s, std::int64_t exit_s,
                const SynthesisConfig& config, stats::Rng& rng, trace::Trajectory& out) {
  std::int64_t now = enter_s;
  while (now < exit_s) {
    // One burst of closely spaced fixes.
    for (int i = 0; i < config.dwell_burst_fixes && now < exit_s; ++i) {
      out.append({noisy(site, config.dwell_wander_sigma_m, rng), now});
      now += rng.uniform_int(1, 3);
    }
    now += rng.uniform_int(config.dwell_burst_gap_min_s, config.dwell_burst_gap_max_s);
  }
}

// Draws the dwell duration for one stay at profile place `index`.
std::int64_t draw_dwell_s(const CityModel& city, const UserProfile& profile,
                          std::size_t index, stats::Rng& rng) {
  const DwellModel model = dwell_model(city.poi(profile.poi_ids[index]).category);
  const double dwell =
      profile.mean_dwell_s[index] * std::exp(rng.normal(0.0, model.sigma_log_s));
  // Clamp: at least 6 minutes (so most stays clear the 10-minute extraction
  // threshold only when genuinely typical), at most 5 hours.
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(dwell), 360, 5 * 3600);
}

}  // namespace

SimulatedUser simulate_user(const CityModel& city, const UserProfile& profile,
                            const SynthesisConfig& config, stats::Rng& rng) {
  LOCPRIV_EXPECT(config.days > 0);
  LOCPRIV_EXPECT(config.move_sample_min_s >= 1);
  LOCPRIV_EXPECT(config.move_sample_max_s >= config.move_sample_min_s);
  LOCPRIV_EXPECT(config.dwell_burst_gap_min_s >= 1);
  LOCPRIV_EXPECT(config.dwell_burst_gap_max_s >= config.dwell_burst_gap_min_s);

  SimulatedUser result;
  result.trace.user_id = profile.user_id;
  result.ground_truth.user_id = profile.user_id;
  result.ground_truth.poi_ids = profile.poi_ids;

  for (int day = 0; day < config.days; ++day) {
    const std::int64_t day_base = config.start_unix_s + day * kSecondsPerDay;
    const bool weekend = is_weekend(day_base);
    const auto& transition =
        weekend ? profile.weekend_transition : profile.weekday_transition;

    trace::Trajectory trajectory;
    std::size_t at = 0;  // Index into profile.poi_ids; day starts at home.
    // Logger turns on shortly before the first departure.
    std::int64_t now = day_base + rng.uniform_int(6 * 3600 + 1800, 8 * 3600);
    const std::int64_t day_end = day_base + rng.uniform_int(20 * 3600, 22 * 3600);

    // Morning stay at home: ~12-20 recorded minutes before leaving.
    {
      const std::int64_t leave = now + rng.uniform_int(12 * 60, 20 * 60);
      emit_dwell(city.poi(profile.poi_ids[at]).position, now, leave, config, rng,
                 trajectory);
      result.ground_truth.visits.push_back({profile.poi_ids[at], now, leave});
      now = leave;
    }

    while (now < day_end) {
      // Next place by habit; force a return home at the end of the day.
      std::size_t next = rng.weighted_index(transition[at]);
      std::int64_t dwell = draw_dwell_s(city, profile, next, rng);
      if (now + dwell > day_end) {
        next = 0;  // Go home.
        if (next == at) break;
        dwell = rng.uniform_int(12 * 60, 20 * 60);  // Recorded tail at home.
      }
      const auto route = city.plan_route(city.poi(profile.poi_ids[at]).position,
                                         city.poi(profile.poi_ids[next]).position, rng);
      now = emit_travel(route, now, config, rng, trajectory);
      const std::int64_t exit = now + dwell;
      emit_dwell(city.poi(profile.poi_ids[next]).position, now, exit, config, rng,
                 trajectory);
      result.ground_truth.visits.push_back({profile.poi_ids[next], now, exit});
      now = exit;
      at = next;
      if (next == 0 && now >= day_end - 1800) break;  // Home for the night.
    }

    if (!trajectory.empty()) result.trace.trajectories.push_back(std::move(trajectory));
  }
  return result;
}

const geo::LatLon& SyntheticDataset::poi_position(int id) const {
  LOCPRIV_EXPECT(id >= 0 && static_cast<std::size_t>(id) < poi_sites.size());
  return poi_sites[static_cast<std::size_t>(id)].position;
}

SyntheticDataset generate_dataset(const DatasetConfig& config) {
  LOCPRIV_EXPECT(config.user_count > 0);
  stats::Rng root(config.seed);

  stats::Rng city_rng = root.fork();
  const CityModel city(config.city, city_rng);

  LOCPRIV_EXPECT(config.users_per_home >= 1);
  auto homes = city.pois_of_category(PoiCategory::kHome);
  const int homes_needed =
      (config.user_count + config.users_per_home - 1) / config.users_per_home;
  LOCPRIV_EXPECT(static_cast<int>(homes.size()) >= homes_needed);
  stats::Rng shuffle_rng = root.fork();
  shuffle_rng.shuffle(homes);

  SyntheticDataset dataset;
  dataset.city_config = config.city;
  dataset.poi_sites = city.pois();
  const auto user_count = static_cast<std::size_t>(config.user_count);
  dataset.profiles.resize(user_count);
  dataset.users.resize(user_count);
  dataset.ground_truths.resize(user_count);

  // Fork one generator per user sequentially (the fork order defines the
  // corpus), then simulate users in parallel into their slots.
  std::vector<stats::Rng> user_rngs;
  user_rngs.reserve(user_count);
  for (std::size_t i = 0; i < user_count; ++i) user_rngs.push_back(root.fork());

  util::parallel_for(user_count, [&](std::size_t i) {
    char id[16];
    std::snprintf(id, sizeof(id), "%03zu", i);
    const std::size_t home_index = i / static_cast<std::size_t>(config.users_per_home);
    UserProfile profile = build_user_profile(city, id, homes[home_index],
                                             config.profile, user_rngs[i]);
    SimulatedUser simulated =
        simulate_user(city, profile, config.synthesis, user_rngs[i]);
    dataset.profiles[i] = std::move(profile);
    dataset.users[i] = std::move(simulated.trace);
    dataset.ground_truths[i] = std::move(simulated.ground_truth);
  });
  LOCPRIV_LOG(kInfo, "mobility") << "generated dataset: " << dataset.users.size()
                                 << " users, seed=" << config.seed;
  return dataset;
}

}  // namespace locpriv::mobility
