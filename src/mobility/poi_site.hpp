// Ground-truth places of a synthetic city and the visit events users make
// to them. These are the *true* PoIs the privacy pipeline tries to recover
// from GPS traces; tests compare recovered PoIs against them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlon.hpp"

namespace locpriv::mobility {

/// Functional category of a place; drives dwell-time models and how often
/// profiles include a place of that kind.
enum class PoiCategory {
  kHome,
  kWork,
  kRestaurant,
  kShop,
  kGym,
  kPark,
  kSchool,
  kHospital,
  kEntertainment,
  kTransit,
};

inline constexpr int kPoiCategoryCount = 10;

/// Human-readable category name ("home", "work", ...).
std::string_view poi_category_name(PoiCategory category);

/// One place in the city.
struct PoiSite {
  int id = 0;
  PoiCategory category = PoiCategory::kHome;
  geo::LatLon position;
};

/// One ground-truth visit: the user was at `poi_id` from `enter_s` to
/// `exit_s` (Unix seconds).
struct VisitEvent {
  int poi_id = 0;
  std::int64_t enter_s = 0;
  std::int64_t exit_s = 0;

  std::int64_t dwell_s() const { return exit_s - enter_s; }
};

/// Full ground truth for one synthetic user.
struct UserGroundTruth {
  std::string user_id;
  std::vector<int> poi_ids;        ///< Places in this user's routine.
  std::vector<VisitEvent> visits;  ///< Chronological visit log.
};

}  // namespace locpriv::mobility
