#include "core/defense_eval.hpp"

#include <algorithm>

#include "geo/geodesy.hpp"
#include "poi/clustering.hpp"
#include "privacy/metrics.hpp"
#include "trace/sampling.hpp"
#include "util/expect.hpp"

namespace locpriv::core {

DefenseOutcome evaluate_defense(const PrivacyAnalyzer& analyzer,
                                const lppm::Defense& defense,
                                std::int64_t interval_s, std::uint64_t seed) {
  LOCPRIV_EXPECT(interval_s >= 1);
  DefenseOutcome outcome;
  outcome.defense = defense.name();
  outcome.interval_s = interval_s;

  const double radius = analyzer.config().extraction.radius_m;
  std::size_t reference_total = 0;
  std::size_t recovered_total = 0;
  std::size_t sensitive_reference = 0;
  std::size_t sensitive_recovered = 0;
  std::size_t requested_fixes = 0;
  std::size_t released_fixes = 0;
  double error_sum = 0.0;
  std::size_t error_count = 0;

  stats::Rng rng(seed);
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    const UserReference& reference = analyzer.reference(u);
    const auto requested = interval_s <= 1
                               ? reference.points
                               : trace::decimate(reference.points, interval_s);
    stats::Rng user_rng = rng.fork();
    const auto released = defense.release(requested, user_rng);
    requested_fixes += requested.size();
    released_fixes += released.size();

    // Utility: positional error of released fixes vs the true fix at the
    // same timestamp. Defenses never reorder time, so walk both streams.
    {
      std::size_t true_index = 0;
      for (const auto& fix : released) {
        while (true_index < requested.size() &&
               requested[true_index].timestamp_s < fix.timestamp_s)
          ++true_index;
        if (true_index < requested.size() &&
            requested[true_index].timestamp_s == fix.timestamp_s) {
          error_sum += geo::haversine_m(requested[true_index].position, fix.position);
          ++error_count;
        }
      }
    }

    // Privacy: rerun the attack on the released stream.
    const auto stays =
        poi::extract_stay_points(released, analyzer.config().extraction);
    const auto pois = poi::cluster_stay_points(stays, radius);
    const auto total = privacy::poi_recovery(reference.pois, pois, radius);
    const auto sensitive =
        privacy::sensitive_poi_recovery(reference.pois, pois, radius, 3);
    reference_total += total.reference_count;
    recovered_total += total.recovered_count;
    sensitive_reference += sensitive.reference_count;
    sensitive_recovered += sensitive.recovered_count;

    double anonymity = 1.0;
    const auto observed = privacy::build_histogram(privacy::Pattern::kMovements, pois,
                                                   analyzer.grid());
    if (!observed.empty()) {
      const auto result = analyzer.adversary().identify(
          observed, privacy::Pattern::kMovements, analyzer.config().match);
      anonymity = result.degree_of_anonymity;
      if (result.matched.size() == 1 && result.matched.front() == u)
        ++outcome.users_identified;
    }
    outcome.mean_anonymity += anonymity;
  }

  const auto users = static_cast<double>(analyzer.user_count());
  outcome.mean_anonymity /= users;
  outcome.poi_total_fraction =
      reference_total == 0
          ? 1.0
          : static_cast<double>(recovered_total) / static_cast<double>(reference_total);
  outcome.poi_sensitive_fraction =
      sensitive_reference == 0 ? 1.0
                               : static_cast<double>(sensitive_recovered) /
                                     static_cast<double>(sensitive_reference);
  outcome.mean_position_error_m =
      error_count == 0 ? 0.0 : error_sum / static_cast<double>(error_count);
  outcome.release_ratio =
      requested_fixes == 0
          ? 0.0
          : static_cast<double>(released_fixes) / static_cast<double>(requested_fixes);
  return outcome;
}

}  // namespace locpriv::core
