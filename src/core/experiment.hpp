// Shared experiment plumbing for the bench binaries: the canonical access-
// interval ladder, a process-wide lazily built dataset + analyzer (several
// benches sweep the same corpus; generating it once keeps the full bench
// suite fast), and the standard seeds printed in every bench header.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analyzer.hpp"
#include "mobility/synthesis.hpp"

namespace locpriv::core {

/// Canonical seed for the Geolife-like dataset (also the default in
/// mobility::DatasetConfig); printed by every bench for reproducibility.
inline constexpr std::uint64_t kDatasetSeed = 20170605;

/// Canonical seed for the market catalog.
inline constexpr std::uint64_t kCatalogSeed = 20170301;

/// The access-interval ladder swept by Figures 3-5 (seconds between two
/// location requests, from the paper's 1 s to its 7,200 s maximum).
std::vector<std::int64_t> access_interval_ladder();

/// Scale of the shared experiment corpus. The default matches the paper's
/// Geolife corpus (182 users); set LOCPRIV_REDUCED_SCALE=1 for a 60-user,
/// 8-day corpus (same generator, same seed) when iterating.
struct ExperimentScale {
  int user_count = 0;
  int days = 0;
};

/// Reads LOCPRIV_REDUCED_SCALE; full scale = 182 users x 12 days, reduced =
/// 60 users x 8 days.
ExperimentScale experiment_scale();

/// Dataset config at the chosen scale.
mobility::DatasetConfig experiment_dataset_config();

/// Analyzer config used by all paper experiments (Table III set 1,
/// 250 m cells, alpha = 0.05).
AnalyzerConfig experiment_analyzer_config();

/// Process-wide dataset (generated on first use).
const mobility::SyntheticDataset& shared_dataset();

/// Process-wide analyzer over shared_dataset() (built on first use).
const PrivacyAnalyzer& shared_analyzer();

}  // namespace locpriv::core
