// Privacy-vs-utility evaluation of LPPM defenses against the paper's
// background-app threat: apply a defense to the stream a fast background
// app would collect, rerun the whole attack pipeline (PoI extraction,
// His_bin, identification, Deg_anonymity), and score utility as the
// positional error and volume the defended release still offers the app.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "lppm/defense.hpp"

namespace locpriv::core {

/// Aggregate outcome of one defense across all users of an analyzer.
struct DefenseOutcome {
  std::string defense;
  std::int64_t interval_s = 0;

  // Privacy axes (lower = better defense).
  double poi_total_fraction = 0.0;      ///< Reference PoIs still recovered.
  double poi_sensitive_fraction = 0.0;  ///< Sensitive (<=3 visits) PoIs recovered.
  int users_identified = 0;             ///< Unique pattern-2 identifications.
  double mean_anonymity = 0.0;          ///< Mean Deg_anonymity (1 = hidden).

  // Utility axes (lower error / higher ratio = better for the app).
  double mean_position_error_m = 0.0;   ///< Error of released vs true fixes.
  double release_ratio = 0.0;           ///< Fixes released / fixes requested.
};

/// Evaluates `defense` against every user at the given app interval.
/// `seed` drives any randomness inside the defense.
DefenseOutcome evaluate_defense(const PrivacyAnalyzer& analyzer,
                                const lppm::Defense& defense,
                                std::int64_t interval_s, std::uint64_t seed);

}  // namespace locpriv::core
