// PrivacyAnalyzer: the library's public façade.
//
// Wraps the full paper pipeline — ground-truth traces, reference PoI
// extraction, profile histograms, His_bin matching, adversary
// identification — behind one object, so applications can ask questions
// like "what does an app polling location every N seconds in background
// learn about user U?" in a few lines (see examples/quickstart.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/synthesis.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "privacy/adversary.hpp"
#include "privacy/detection.hpp"
#include "privacy/matching.hpp"
#include "privacy/metrics.hpp"
#include "privacy/region.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::core {

/// Analyzer configuration.
struct AnalyzerConfig {
  poi::ExtractionParams extraction{};   ///< Paper's parameter set 1 by default.
  double region_cell_m = 250.0;         ///< Key space for pattern histograms.
  privacy::MatchParams match{};         ///< His_bin parameters (alpha = 0.05).
};

/// Everything derived from one user's full-rate trace.
struct UserReference {
  std::string user_id;
  std::vector<trace::TracePoint> points;  ///< Flattened full-rate trace.
  std::vector<poi::Poi> pois;             ///< Reference PoIs.
  privacy::PatternHistogram visits;       ///< Pattern-1 profile.
  privacy::PatternHistogram movements;    ///< Pattern-2 profile.
};

/// What an app observing one user at a fixed interval learns.
struct ExposureReport {
  std::int64_t interval_s = 0;
  std::size_t collected_fixes = 0;
  std::size_t extracted_pois = 0;
  privacy::PoiRecovery poi_total;        ///< vs the reference PoIs.
  privacy::PoiRecovery poi_sensitive;    ///< visits <= 3 (paper's headline).
  bool hisbin_visits = false;            ///< Pattern 1 His_bin.
  bool hisbin_movements = false;         ///< Pattern 2 His_bin.
  double anonymity_visits = 1.0;         ///< Deg_anonymity via pattern 1.
  double anonymity_movements = 1.0;      ///< Deg_anonymity via pattern 2.

  /// The paper's combined detector: breach if either pattern matched.
  bool breach_detected() const { return hisbin_visits || hisbin_movements; }
};

/// The analyzer. Construction precomputes every user's reference PoIs and
/// profile histograms; queries are then read-only and cheap to parallelise.
class PrivacyAnalyzer {
 public:
  /// Builds from arbitrary user traces (e.g. a real Geolife load). The
  /// region grid is anchored at the dataset's bounding-box centre.
  /// Precondition: users non-empty, each with at least one fix.
  PrivacyAnalyzer(AnalyzerConfig config, std::vector<trace::UserTrace> users);

  /// Convenience: generates the synthetic Geolife-like dataset and builds
  /// the analyzer over it.
  static PrivacyAnalyzer from_synthetic(const AnalyzerConfig& config,
                                        const mobility::DatasetConfig& dataset);

  std::size_t user_count() const { return references_.size(); }
  const UserReference& reference(std::size_t user) const;
  const privacy::RegionGrid& grid() const { return *grid_; }
  const AnalyzerConfig& config() const { return config_; }

  /// The adversary holding every user's profile (both patterns).
  const privacy::Adversary& adversary() const { return *adversary_; }

  /// Evaluates the exposure of user `user` to an app polling every
  /// `interval_s` seconds from the start of the trace.
  ExposureReport evaluate_exposure(std::size_t user, std::int64_t interval_s) const;

  /// Evaluates exposure from an externally collected observation of `user`
  /// (e.g. fixes delivered through the simulated framework under fault
  /// injection) instead of the analytical decimation model. `collected` may
  /// be sparse, gappy, or empty — an unreliable substrate can deliver
  /// nothing at all, which scores as zero exposure rather than erroring.
  /// Precondition: `collected` in non-decreasing time order.
  ExposureReport evaluate_collected(std::size_t user, std::int64_t interval_s,
                                    const std::vector<trace::TracePoint>& collected) const;

  /// Earliest prefix fraction at which His_bin fires against the user's own
  /// profile (paper Figure 4(a)); `pattern` selects the representation.
  privacy::DetectionOutcome earliest_detection(std::size_t user,
                                               privacy::Pattern pattern,
                                               std::int64_t interval_s) const;

  /// Earliest prefix fraction at which the adversary uniquely identifies
  /// `user` among all stored profiles (paper Figure 4's risk detection).
  privacy::DetectionOutcome earliest_identification(std::size_t user,
                                                    privacy::Pattern pattern,
                                                    std::int64_t interval_s) const;

  /// The PoIs an app collecting at `interval_s` extracts for `user`.
  std::vector<poi::Poi> collected_pois(std::size_t user, std::int64_t interval_s) const;

 private:
  AnalyzerConfig config_;
  std::vector<UserReference> references_;
  std::unique_ptr<privacy::RegionGrid> grid_;
  std::unique_ptr<privacy::Adversary> adversary_;
};

}  // namespace locpriv::core
