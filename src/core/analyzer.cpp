#include "core/analyzer.hpp"

#include "trace/sampling.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace locpriv::core {

PrivacyAnalyzer::PrivacyAnalyzer(AnalyzerConfig config,
                                 std::vector<trace::UserTrace> users)
    : config_(config) {
  LOCPRIV_EXPECT(!users.empty());

  // Anchor the shared region grid at the dataset's bounding-box centre so
  // cell ids are small and identical for every user.
  geo::GeoBounds bounds;
  for (const auto& user : users)
    for (const auto& trajectory : user.trajectories)
      for (const auto& point : trajectory) bounds.extend(point.position);
  LOCPRIV_EXPECT(!bounds.empty());
  grid_ = std::make_unique<privacy::RegionGrid>(bounds.center(), config_.region_cell_m);

  // Per-user reference extraction is independent; run it data-parallel
  // into index-keyed slots (deterministic regardless of thread count).
  references_.resize(users.size());
  util::parallel_for(users.size(), [&](std::size_t u) {
    UserReference reference;
    reference.user_id = users[u].user_id;
    reference.points = users[u].flattened();
    LOCPRIV_EXPECT(!reference.points.empty());
    const auto stays = poi::extract_stay_points(reference.points, config_.extraction);
    reference.pois = poi::cluster_stay_points(stays, config_.extraction.radius_m);
    reference.visits = privacy::visit_histogram(reference.pois, *grid_);
    reference.movements = privacy::movement_histogram(reference.pois, *grid_);
    references_[u] = std::move(reference);
  });

  std::vector<privacy::UserProfileHistograms> profiles;
  profiles.reserve(users.size());
  for (const UserReference& reference : references_) {
    privacy::UserProfileHistograms profile;
    profile.user_id = reference.user_id;
    profile.visits = reference.visits;
    profile.movements = reference.movements;
    profiles.push_back(std::move(profile));
  }
  adversary_ = std::make_unique<privacy::Adversary>(std::move(profiles));
  LOCPRIV_LOG(kInfo, "core") << "analyzer ready: " << references_.size() << " users";
}

PrivacyAnalyzer PrivacyAnalyzer::from_synthetic(const AnalyzerConfig& config,
                                                const mobility::DatasetConfig& dataset) {
  mobility::SyntheticDataset synthetic = mobility::generate_dataset(dataset);
  return PrivacyAnalyzer(config, std::move(synthetic.users));
}

const UserReference& PrivacyAnalyzer::reference(std::size_t user) const {
  LOCPRIV_EXPECT(user < references_.size());
  return references_[user];
}

std::vector<poi::Poi> PrivacyAnalyzer::collected_pois(std::size_t user,
                                                      std::int64_t interval_s) const {
  const UserReference& reference = this->reference(user);
  const auto collected = interval_s <= 1
                             ? reference.points
                             : trace::decimate(reference.points, interval_s);
  const auto stays = poi::extract_stay_points(collected, config_.extraction);
  return poi::cluster_stay_points(stays, config_.extraction.radius_m);
}

ExposureReport PrivacyAnalyzer::evaluate_exposure(std::size_t user,
                                                  std::int64_t interval_s) const {
  const UserReference& reference = this->reference(user);
  const auto collected = interval_s <= 1
                             ? reference.points
                             : trace::decimate(reference.points, interval_s);
  return evaluate_collected(user, interval_s, collected);
}

ExposureReport PrivacyAnalyzer::evaluate_collected(
    std::size_t user, std::int64_t interval_s,
    const std::vector<trace::TracePoint>& collected) const {
  const UserReference& reference = this->reference(user);
  ExposureReport report;
  report.interval_s = interval_s;
  report.collected_fixes = collected.size();
  if (collected.empty()) {
    // A fully degraded substrate observed nothing: every recovery metric is
    // zero and no histogram test is attempted.
    report.poi_total.reference_count = reference.pois.size();
    for (const auto& poi : reference.pois)
      if (poi.visit_count() <= 3) ++report.poi_sensitive.reference_count;
    return report;
  }
  const auto stays = poi::extract_stay_points(collected, config_.extraction);
  const auto pois = poi::cluster_stay_points(stays, config_.extraction.radius_m);
  report.extracted_pois = pois.size();

  report.poi_total =
      privacy::poi_recovery(reference.pois, pois, config_.extraction.radius_m);
  report.poi_sensitive = privacy::sensitive_poi_recovery(
      reference.pois, pois, config_.extraction.radius_m, /*max_visits=*/3);

  const privacy::PatternHistogram observed_visits =
      privacy::visit_histogram(pois, *grid_);
  const privacy::PatternHistogram observed_movements =
      privacy::movement_histogram(pois, *grid_);

  const privacy::MatchResult visits_match =
      privacy::match_histograms(observed_visits, reference.visits, config_.match);
  const privacy::MatchResult movements_match =
      privacy::match_histograms(observed_movements, reference.movements, config_.match);
  report.hisbin_visits = visits_match.attempted && visits_match.matches;
  report.hisbin_movements = movements_match.attempted && movements_match.matches;

  if (!observed_visits.empty()) {
    report.anonymity_visits =
        adversary_
            ->identify(observed_visits, privacy::Pattern::kVisits, config_.match)
            .degree_of_anonymity;
  }
  if (!observed_movements.empty()) {
    report.anonymity_movements =
        adversary_
            ->identify(observed_movements, privacy::Pattern::kMovements, config_.match)
            .degree_of_anonymity;
  }
  return report;
}

privacy::DetectionOutcome PrivacyAnalyzer::earliest_detection(
    std::size_t user, privacy::Pattern pattern, std::int64_t interval_s) const {
  const UserReference& reference = this->reference(user);
  privacy::DetectionConfig detection(*grid_);
  detection.extraction = config_.extraction;
  detection.match = config_.match;
  detection.interval_s = interval_s;
  const privacy::PatternHistogram& profile =
      pattern == privacy::Pattern::kVisits ? reference.visits : reference.movements;
  return privacy::earliest_detection(reference.points, profile, pattern, detection);
}

privacy::DetectionOutcome PrivacyAnalyzer::earliest_identification(
    std::size_t user, privacy::Pattern pattern, std::int64_t interval_s) const {
  const UserReference& reference = this->reference(user);
  privacy::DetectionConfig detection(*grid_);
  detection.extraction = config_.extraction;
  detection.match = config_.match;
  detection.interval_s = interval_s;
  return privacy::earliest_identification(reference.points, *adversary_, user, pattern,
                                          detection);
}

}  // namespace locpriv::core
