#include "core/harness/file_ops.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/strings.hpp"

namespace locpriv::harness {

// ---------------------------------------------------------------------------
// RealFileOps: the passthrough every process starts with.
// ---------------------------------------------------------------------------

int RealFileOps::open(const char* path, int flags, ::mode_t mode) {
  return ::open(path, flags, mode);
}

::ssize_t RealFileOps::read(int fd, void* buf, std::size_t count) {
  // locpriv-lint: allow(eintr-retry) passthrough; callers own the retry loop
  return ::read(fd, buf, count);
}

::ssize_t RealFileOps::write(int fd, const void* buf, std::size_t count) {
  // locpriv-lint: allow(eintr-retry) passthrough; callers own the retry loop
  return ::write(fd, buf, count);
}

int RealFileOps::fsync(int fd) { return ::fsync(fd); }

int RealFileOps::fdatasync(int fd) { return ::fdatasync(fd); }

int RealFileOps::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int RealFileOps::unlink(const char* path) { return ::unlink(path); }

int RealFileOps::ftruncate(int fd, ::off_t length) {
  return ::ftruncate(fd, length);
}

int RealFileOps::close(int fd) { return ::close(fd); }

// ---------------------------------------------------------------------------
// StorageFaultPlan: spec round-trip.
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_spec(const std::string& why) {
  throw Error(ErrorCode::kUsage, "bad storage fault spec: " + why);
}

std::uint64_t spec_u64(const std::string& key, const std::string& value) {
  long long parsed = 0;
  if (!util::parse_int64(value, parsed) || parsed < 0)
    bad_spec(key + " needs a non-negative integer, got '" + value + "'");
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

std::string StorageFaultPlan::spec() const {
  std::string out = "seed=" + std::to_string(seed);
  if (!path_filter.empty()) out += ",path=" + path_filter;
  if (eio_at_op != 0) out += ",eio=" + std::to_string(eio_at_op);
  if (enospc_at_op != 0) out += ",enospc=" + std::to_string(enospc_at_op);
  if (enospc_recover_after != 0)
    out += ",recover=" + std::to_string(enospc_recover_after);
  if (short_write_prob > 0.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", short_write_prob);
    out += ",short=" + std::string(buffer);
  }
  if (drop_tail_at_fsync != 0)
    out += ",dropsync=" + std::to_string(drop_tail_at_fsync);
  if (rename_fail_at != 0) out += ",rename=" + std::to_string(rename_fail_at);
  if (flip_read) out += ",flip=" + std::to_string(flip_offset);
  return out;
}

StorageFaultPlan StorageFaultPlan::parse(const std::string& spec) {
  StorageFaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) bad_spec("entry '" + entry + "' has no '='");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed = spec_u64(key, value);
    } else if (key == "path") {
      plan.path_filter = value;
    } else if (key == "eio") {
      plan.eio_at_op = spec_u64(key, value);
    } else if (key == "enospc") {
      plan.enospc_at_op = spec_u64(key, value);
    } else if (key == "recover") {
      plan.enospc_recover_after = spec_u64(key, value);
    } else if (key == "short") {
      char* parse_end = nullptr;
      plan.short_write_prob = std::strtod(value.c_str(), &parse_end);
      if (parse_end == nullptr || *parse_end != '\0' ||
          plan.short_write_prob < 0.0 || plan.short_write_prob > 1.0)
        bad_spec("short needs a probability in [0,1], got '" + value + "'");
    } else if (key == "dropsync") {
      plan.drop_tail_at_fsync = spec_u64(key, value);
    } else if (key == "rename") {
      plan.rename_fail_at = spec_u64(key, value);
    } else if (key == "flip") {
      plan.flip_read = true;
      plan.flip_offset = spec_u64(key, value);
    } else {
      bad_spec("unknown key '" + key + "'");
    }
    if (end == spec.size()) break;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// FaultyFileOps.
// ---------------------------------------------------------------------------

FaultyFileOps::FaultyFileOps(StorageFaultPlan plan, FileOps* base)
    : plan_(std::move(plan)), base_(base) {
  static RealFileOps real;
  if (base_ == nullptr) base_ = &real;
  rng_state_ = plan_.seed == 0 ? 1 : plan_.seed;
}

bool FaultyFileOps::matches(const std::string& path) const {
  return plan_.path_filter.empty() ||
         path.find(plan_.path_filter) != std::string::npos;
}

std::uint64_t FaultyFileOps::next_random() {
  // xorshift64: tiny, seeded, and good enough to scatter short writes.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

bool FaultyFileOps::inject_eio() {
  ++op_count_;
  if (plan_.eio_at_op != 0 && op_count_ == plan_.eio_at_op) {
    ++injected_.eio;
    errno = EIO;
    return true;
  }
  return false;
}

int FaultyFileOps::open(const char* path, int flags, ::mode_t mode) {
  const int fd = base_->open(path, flags, mode);
  if (fd < 0) return fd;
  std::lock_guard<std::mutex> lock(mutex_);
  if (matches(path)) {
    TrackedFd tracked;
    tracked.path = path;
    struct ::stat st {};
    if (::fstat(fd, &st) == 0) tracked.synced_size = st.st_size;
    if ((flags & O_TRUNC) != 0) tracked.synced_size = 0;
    fds_[fd] = std::move(tracked);
  }
  return fd;
}

::ssize_t FaultyFileOps::read(int fd, void* buf, std::size_t count) {
  bool tracked = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracked = fds_.count(fd) != 0;
  }
  if (!tracked || !plan_.flip_read) return base_->read(fd, buf, count);
  const ::off_t before = ::lseek(fd, 0, SEEK_CUR);
  const ::ssize_t n = base_->read(fd, buf, count);
  if (n > 0 && before >= 0) {
    const auto offset = static_cast<std::uint64_t>(before);
    if (plan_.flip_offset >= offset &&
        plan_.flip_offset < offset + static_cast<std::uint64_t>(n)) {
      // Persistent single-bit rot: every read of that offset sees the flip,
      // like a bad sector, so retries cannot paper over it.
      static_cast<unsigned char*>(buf)[plan_.flip_offset - offset] ^= 0x01u;
      std::lock_guard<std::mutex> lock(mutex_);
      ++injected_.bit_flips;
    }
  }
  return n;
}

::ssize_t FaultyFileOps::write(int fd, const void* buf, std::size_t count) {
  std::size_t effective = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fds_.count(fd) != 0) {
      if (inject_eio()) return -1;
      ++write_count_;
      if (plan_.enospc_at_op != 0 && write_count_ >= plan_.enospc_at_op) {
        const bool sticky = plan_.enospc_recover_after == 0;
        if (sticky || enospc_failures_ < plan_.enospc_recover_after) {
          ++enospc_failures_;
          ++injected_.enospc;
          errno = ENOSPC;
          return -1;
        }
      }
      if (plan_.short_write_prob > 0.0 && count > 1) {
        const double roll =
            static_cast<double>(next_random() % 1000000) / 1000000.0;
        if (roll < plan_.short_write_prob) {
          effective = 1 + static_cast<std::size_t>(next_random() % (count - 1));
          ++injected_.short_writes;
        }
      }
    }
  }
  return base_->write(fd, buf, effective);
}

int FaultyFileOps::sync_common(int fd, bool data_only) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fds_.find(fd);
    if (it != fds_.end()) {
      if (inject_eio()) return -1;
      ++fsync_count_;
      if (plan_.drop_tail_at_fsync != 0 &&
          fsync_count_ == plan_.drop_tail_at_fsync) {
        // The lie: report success without syncing. The unsynced tail is
        // dropped when the descriptor closes — the moment the simulated
        // power loss becomes visible.
        it->second.lying = true;
        ++injected_.dropped_tails;
        return 0;
      }
    }
  }
  const int rc = data_only ? base_->fdatasync(fd) : base_->fsync(fd);
  if (rc == 0 && plan_.drop_tail_at_fsync != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fds_.find(fd);
    if (it != fds_.end() && !it->second.lying) {
      struct ::stat st {};
      if (::fstat(fd, &st) == 0) it->second.synced_size = st.st_size;
    }
  }
  return rc;
}

int FaultyFileOps::fsync(int fd) { return sync_common(fd, false); }

int FaultyFileOps::fdatasync(int fd) { return sync_common(fd, true); }

int FaultyFileOps::rename(const char* from, const char* to) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (matches(from) || matches(to)) {
      if (inject_eio()) return -1;
      ++rename_count_;
      if (plan_.rename_fail_at != 0 && rename_count_ == plan_.rename_fail_at) {
        ++injected_.rename_failures;
        errno = EIO;
        return -1;
      }
    }
  }
  return base_->rename(from, to);
}

int FaultyFileOps::unlink(const char* path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (matches(path) && inject_eio()) return -1;
  }
  return base_->unlink(path);
}

int FaultyFileOps::ftruncate(int fd, ::off_t length) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fds_.count(fd) != 0 && inject_eio()) return -1;
  }
  return base_->ftruncate(fd, length);
}

int FaultyFileOps::close(int fd) {
  ::off_t truncate_to = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fds_.find(fd);
    if (it != fds_.end()) {
      if (it->second.lying) truncate_to = it->second.synced_size;
      fds_.erase(it);
    }
  }
  if (truncate_to >= 0) base_->ftruncate(fd, truncate_to);
  return base_->close(fd);
}

InjectedFaults FaultyFileOps::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

// ---------------------------------------------------------------------------
// The process-global hook.
// ---------------------------------------------------------------------------

namespace {

std::atomic<FileOps*> g_file_ops{nullptr};

RealFileOps& real_file_ops() {
  static RealFileOps real;
  return real;
}

/// One-time env-var activation. Returns true (the value is unused; the
/// static init is the "once").
bool install_env_file_ops() {
  const char* spec = std::getenv("LOCPRIV_STORAGE_FAULTS");
  if (spec == nullptr || *spec == '\0') return true;
  try {
    // Leaked by design: the override must outlive every consumer,
    // including static destructors.
    auto* faulty = new FaultyFileOps(StorageFaultPlan::parse(spec));
    FileOps* expected = nullptr;
    g_file_ops.compare_exchange_strong(expected, faulty);
  } catch (const Error& e) {
    std::fprintf(stderr,
                 "locpriv: ignoring LOCPRIV_STORAGE_FAULTS (%s)\n", e.what());
  }
  return true;
}

}  // namespace

FileOps& file_ops() {
  static const bool bootstrapped = install_env_file_ops();
  (void)bootstrapped;
  FileOps* ops = g_file_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : real_file_ops();
}

FileOps* set_file_ops(FileOps* ops) {
  return g_file_ops.exchange(ops, std::memory_order_acq_rel);
}

bool read_file_through_ops(const std::string& path, std::string& out) {
  FileOps& ops = file_ops();
  const int fd = ops.open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  out.clear();
  char chunk[65536];
  for (;;) {
    const ::ssize_t n = ops.read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    const int saved = errno;
    ops.close(fd);
    errno = saved;
    return false;
  }
  ops.close(fd);
  return true;
}

}  // namespace locpriv::harness
