// Structured error taxonomy for the run harness and the binaries built on
// it. Each failure class maps to a distinct process exit code so campaign
// scripts (and CI) can tell "disk full" from "deadline blown" from "resumed
// the wrong run" without parsing stderr. Context frames added while an
// Error propagates keep the original cause visible ("sweep cell i0.50_t60:
// cannot rename ...").
#pragma once

#include <exception>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv {

/// Failure classes the binaries distinguish. Enumerator values ARE the
/// process exit codes (kQuarantined mirrors the pre-existing lenient-ingest
/// exit 3 so the taxonomy stays consistent with shipped behaviour).
enum class ErrorCode : int {
  kInternal = 1,     ///< Unexpected failure (catch-all for std::exception).
  kUsage = 2,        ///< Bad command line.
  kQuarantined = 3,  ///< Lenient ingest / sweep cells quarantined (results partial).
  kIo = 4,           ///< Artifact / ledger I/O failure (ENOSPC, EPERM, ...).
  kDeadline = 5,     ///< A stage exceeded its hard deadline.
  kResume = 6,       ///< Resume mismatch or unloadable run state.
  kInterrupted = 7,  ///< SIGINT/SIGTERM: run stopped cleanly, resumable.
  /// Mid-file ledger corruption (a CRC-failed or unparsable interior
  /// record): the journal's history cannot be trusted, as opposed to a torn
  /// tail (truncated silently) or a resume mismatch (kResume). Recoverable
  /// with `locpriv scrub --repair`.
  kLedgerCorrupt = 8,
};

/// Short stable tag for a code ("io_error", "deadline_exceeded", ...).
std::string_view error_code_name(ErrorCode code);

/// The process exit code for a failure class.
constexpr int exit_code(ErrorCode code) { return static_cast<int>(code); }

/// Exception carrying a failure class plus a chain of context frames.
/// what() renders as "<code-name>: <outer frame>: ...: <message>".
class Error : public std::exception {
 public:
  Error(ErrorCode code, std::string message);

  ErrorCode code() const noexcept { return code_; }
  int exit_code() const noexcept { return static_cast<int>(code_); }
  const std::string& message() const noexcept { return message_; }

  /// Context frames, innermost first (the order they were added while the
  /// error propagated outward).
  const std::vector<std::string>& context() const noexcept { return context_; }

  /// Adds an enclosing context frame; returns *this for rethrow chaining:
  ///   catch (Error& e) { throw e.add_context("while writing artifacts"); }
  Error& add_context(std::string frame);

  const char* what() const noexcept override { return what_.c_str(); }

 private:
  void rebuild_what();

  ErrorCode code_;
  std::string message_;
  std::vector<std::string> context_;
  std::string what_;
};

/// " (Text for the current errno)" suffix for I/O error messages, or an
/// empty string when errno is 0.
std::string errno_detail();

}  // namespace locpriv
