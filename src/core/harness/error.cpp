#include "core/harness/error.hpp"

#include <cerrno>
#include <cstring>

namespace locpriv {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return "internal_error";
    case ErrorCode::kUsage: return "usage_error";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kIo: return "io_error";
    case ErrorCode::kDeadline: return "deadline_exceeded";
    case ErrorCode::kResume: return "resume_error";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kLedgerCorrupt: return "ledger_corrupt";
  }
  return "unknown_error";
}

Error::Error(ErrorCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  rebuild_what();
}

Error& Error::add_context(std::string frame) {
  // One frame per enclosing catch site — bounded by unwind depth.
  // locpriv-lint: allow(unbounded-growth)
  context_.push_back(std::move(frame));
  rebuild_what();
  return *this;
}

void Error::rebuild_what() {
  what_ = std::string(error_code_name(code_));
  what_ += ": ";
  // Outermost frame first: the last-added context encloses everything else.
  for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
    what_ += *it;
    what_ += ": ";
  }
  what_ += message_;
}

std::string errno_detail() {
  if (errno == 0) return {};
  return std::string(" (") + std::strerror(errno) + ")";
}

}  // namespace locpriv
