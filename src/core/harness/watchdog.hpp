// Stage supervision: progress heartbeats plus soft/hard deadlines for the
// long sweep stages of the bench binaries. The hard deadline is enforced
// cooperatively — worker loops call checkpoint() once per unit of work and
// get Error(kDeadline) thrown at them when time is up, which propagates
// through parallel_for's existing exception aggregation instead of leaving
// detached threads or a hung process. A background thread only does the
// talking (heartbeat logs, the soft-deadline warning, the hard-deadline
// announcement); expiry itself is computed from the monotonic clock, so it
// does not depend on that thread being scheduled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "core/harness/error.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace locpriv::harness {

struct StageOptions {
  std::string name = "stage";
  /// Cadence of "still alive, N/M units done" info logs; zero disables.
  std::chrono::milliseconds heartbeat{std::chrono::seconds(30)};
  /// Past this, one warning is logged; the stage keeps running. Zero = none.
  std::chrono::milliseconds soft_deadline{0};
  /// Past this, checkpoint() throws Error(kDeadline). Zero = none.
  std::chrono::milliseconds hard_deadline{0};
};

class StageWatchdog {
 public:
  explicit StageWatchdog(StageOptions options);
  ~StageWatchdog();

  StageWatchdog(const StageWatchdog&) = delete;
  StageWatchdog& operator=(const StageWatchdog&) = delete;

  /// Total work units, for heartbeat "done/total" rendering (0 = unknown).
  void set_total(std::uint64_t units) { total_.store(units); }

  /// Thread-safe progress bump, called from worker loops.
  void add_progress(std::uint64_t units = 1) { done_.fetch_add(units); }

  std::uint64_t progress() const { return done_.load(); }

  /// True once the hard deadline has passed.
  bool expired() const;

  /// Cooperative cancellation point: throws Error(kDeadline) naming the
  /// stage once the hard deadline has passed, otherwise returns. Safe to
  /// call concurrently from parallel_for bodies.
  void checkpoint() const;

  std::chrono::milliseconds elapsed() const;

 private:
  void watch();

  // options_ and start_ are written once in the constructor (before the
  // logging thread exists) and read-only afterwards; done_/total_ are
  // atomics. Only the stop flag needs the mutex, and the annotation makes
  // an unlocked access a compile error under -Wthread-safety.
  StageOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> total_{0};
  util::Mutex mutex_;
  util::CondVar cv_;
  bool stop_ LOCPRIV_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace locpriv::harness
