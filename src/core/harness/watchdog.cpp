#include "core/harness/watchdog.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace locpriv::harness {

namespace {

using Clock = std::chrono::steady_clock;

std::string seconds_text(std::chrono::milliseconds ms) {
  return util::format_fixed(static_cast<double>(ms.count()) / 1000.0, 1);
}

}  // namespace

StageWatchdog::StageWatchdog(StageOptions options)
    : options_(std::move(options)), start_(Clock::now()) {
  // The thread exists only to log; expiry is clock-derived in checkpoint().
  if (options_.heartbeat.count() > 0 || options_.soft_deadline.count() > 0 ||
      options_.hard_deadline.count() > 0)
    thread_ = std::thread([this] { watch(); });
}

StageWatchdog::~StageWatchdog() {
  if (!thread_.joinable()) return;
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::chrono::milliseconds StageWatchdog::elapsed() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start_);
}

bool StageWatchdog::expired() const {
  return options_.hard_deadline.count() > 0 && elapsed() >= options_.hard_deadline;
}

void StageWatchdog::checkpoint() const {
  if (!expired()) return;
  throw Error(ErrorCode::kDeadline,
              "stage '" + options_.name + "' exceeded its hard deadline of " +
                  seconds_text(options_.hard_deadline) + " s (elapsed " +
                  seconds_text(elapsed()) + " s)");
}

void StageWatchdog::watch() {
  // Scoped lock for the whole loop; the condition-variable waits release it
  // atomically. Predicates are re-checked in the loop head instead of being
  // passed as lambdas, so every stop_ access is visibly under mutex_ for
  // the thread-safety analysis.
  const util::MutexLock lock(mutex_);
  auto next_heartbeat = options_.heartbeat.count() > 0
                            ? start_ + options_.heartbeat
                            : Clock::time_point::max();
  auto soft_at = options_.soft_deadline.count() > 0
                     ? start_ + options_.soft_deadline
                     : Clock::time_point::max();
  auto hard_at = options_.hard_deadline.count() > 0
                     ? start_ + options_.hard_deadline
                     : Clock::time_point::max();
  while (!stop_) {
    const auto wake = std::min({next_heartbeat, soft_at, hard_at});
    if (wake == Clock::time_point::max()) {
      // Nothing left to announce; sleep until the destructor stops us.
      cv_.wait(mutex_);
      continue;
    }
    cv_.wait_until(mutex_, wake);
    if (stop_) break;
    const auto now = Clock::now();
    if (now >= hard_at) {
      LOCPRIV_LOG(kError, "harness")
          << "stage '" << options_.name << "' blew its hard deadline ("
          << seconds_text(options_.hard_deadline)
          << " s); aborting at the next checkpoint";
      hard_at = Clock::time_point::max();
      continue;
    }
    if (now >= soft_at) {
      LOCPRIV_LOG(kWarn, "harness")
          << "stage '" << options_.name << "' passed its soft deadline ("
          << seconds_text(options_.soft_deadline) << " s); still running";
      soft_at = Clock::time_point::max();
      continue;
    }
    if (now >= next_heartbeat) {
      const std::uint64_t done = done_.load();
      const std::uint64_t total = total_.load();
      auto message = LOCPRIV_LOG(kInfo, "harness");
      message << "stage '" << options_.name << "': " << done;
      if (total > 0) message << "/" << total;
      message << " units done, " << seconds_text(elapsed()) << " s elapsed";
      next_heartbeat = now + options_.heartbeat;
    }
  }
}

}  // namespace locpriv::harness
