// Atomic artifact writer. Content is streamed into a sibling temp file and
// published with flush -> fsync -> rename(2), so the destination path only
// ever holds (a) nothing, (b) the complete previous version, or (c) the
// complete new version — never a torn file that looks like data. Every
// stream operation is checked; failures raise Error(kIo) with the path and
// errno text, and leave the destination untouched.
//
// All I/O flows through the injectable harness::FileOps layer (file_ops.hpp),
// so a FaultyFileOps plan can hit every stage of the publish protocol —
// short writes, ENOSPC, lying fsyncs, failed renames — and the torn-write
// invariant is provable under the full storage-fault menu.
#pragma once

#include <filesystem>
#include <ostream>
#include <streambuf>
#include <string_view>
#include <vector>

#include "core/harness/error.hpp"

namespace locpriv::harness {

/// Legacy one-shot fault injection points inside AtomicFileWriter::commit().
/// Deprecated: new tests should install a FaultyFileOps (file_ops.hpp) via
/// ScopedFileOps instead — it covers the full fault menu, is seeded, and
/// scopes cleanly. This enum survives for the original torn-write tests.
enum class WriteFault {
  kNone,
  kFlush,   ///< The flush of buffered content fails (simulated ENOSPC).
  kRename,  ///< The final rename fails (simulated ENOSPC on the directory).
};

/// Arms a one-shot fault for the next commit() in this process. The armed
/// state is a std::atomic, so concurrent writer tests stay TSan-clean.
/// Deprecated in favor of FaultyFileOps; see WriteFault.
void set_write_fault_for_testing(WriteFault fault);

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>.<seq>` for writing. Throws Error(kIo) when the
  /// temp file cannot be created (unwritable or missing directory), so
  /// artifact problems surface before minutes of compute, not after.
  explicit AtomicFileWriter(std::filesystem::path path);

  /// Discards the temp file if commit() never ran (or failed): an abandoned
  /// writer leaves no debris and no partial destination.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write content through. Errors are latched by the stream
  /// and checked at commit().
  std::ostream& stream() { return out_; }

  const std::filesystem::path& path() const { return path_; }
  bool committed() const { return committed_; }

  /// Publishes the temp file at the destination: flush, check the stream,
  /// fsync the temp, rename over `path`, then fsync the directory (best
  /// effort) so the new name survives a crash. Throws Error(kIo) on any
  /// failure after removing the temp; the destination keeps its previous
  /// content. Precondition: not yet committed.
  void commit();

 private:
  /// std::streambuf over a FileOps descriptor: buffered writes with EINTR
  /// and short-write retry; the first hard error latches and poisons the
  /// ostream (badbit), checked at commit().
  class FdStreamBuf : public std::streambuf {
   public:
    FdStreamBuf();
    void attach(int fd);
    bool failed() const { return failed_; }
    int saved_errno() const { return errno_; }

   protected:
    int_type overflow(int_type c) override;
    std::streamsize xsputn(const char* data, std::streamsize count) override;
    int sync() override;

   private:
    bool flush_buffer();
    bool write_all(const char* data, std::size_t size);

    int fd_ = -1;
    std::vector<char> buffer_;
    bool failed_ = false;
    int errno_ = 0;
  };

  [[noreturn]] void fail(const std::string& action);
  void discard();

  std::filesystem::path path_;
  std::filesystem::path temp_path_;
  int fd_ = -1;
  FdStreamBuf buf_;
  std::ostream out_;
  bool committed_ = false;
};

/// One-shot convenience for whole-buffer artifacts: write + commit.
void write_file_atomic(const std::filesystem::path& path, std::string_view content);

}  // namespace locpriv::harness
