// Atomic artifact writer. Content is streamed into a sibling temp file and
// published with flush -> fsync -> rename(2), so the destination path only
// ever holds (a) nothing, (b) the complete previous version, or (c) the
// complete new version — never a torn file that looks like data. Every
// stream operation is checked; failures raise Error(kIo) with the path and
// errno text, and leave the destination untouched.
#pragma once

#include <filesystem>
#include <fstream>
#include <string_view>

#include "core/harness/error.hpp"

namespace locpriv::harness {

/// Test-only fault injection points inside AtomicFileWriter::commit().
enum class WriteFault {
  kNone,
  kFlush,   ///< The flush of buffered content fails (simulated ENOSPC).
  kRename,  ///< The final rename fails (simulated ENOSPC on the directory).
};

/// Arms a one-shot fault for the next commit() in this process. The torn-
/// write tests use this to prove a failed publish cannot corrupt the
/// destination.
void set_write_fault_for_testing(WriteFault fault);

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>.<seq>` for writing. Throws Error(kIo) when the
  /// temp file cannot be created (unwritable or missing directory), so
  /// artifact problems surface before minutes of compute, not after.
  explicit AtomicFileWriter(std::filesystem::path path);

  /// Discards the temp file if commit() never ran (or failed): an abandoned
  /// writer leaves no debris and no partial destination.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write content through. Errors are latched by the stream
  /// and checked at commit().
  std::ostream& stream() { return out_; }

  const std::filesystem::path& path() const { return path_; }
  bool committed() const { return committed_; }

  /// Publishes the temp file at the destination: flush, check the stream,
  /// fsync the temp, rename over `path`, then fsync the directory (best
  /// effort) so the new name survives a crash. Throws Error(kIo) on any
  /// failure after removing the temp; the destination keeps its previous
  /// content. Precondition: not yet committed.
  void commit();

 private:
  [[noreturn]] void fail(const std::string& action);

  std::filesystem::path path_;
  std::filesystem::path temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// One-shot convenience for whole-buffer artifacts: write + commit.
void write_file_atomic(const std::filesystem::path& path, std::string_view content);

}  // namespace locpriv::harness
