// RAII owner of one POSIX file descriptor. The lint fd-guard rule flags
// function-local descriptors that can leak on an early return or a throw;
// constructing the guard directly from the creator call —
//   FdGuard fd(::open(path, O_RDONLY));
// — leaves no window in which the raw int is the only owner.
#pragma once

#include <unistd.h>

#include <utility>

namespace locpriv::harness {

class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  /// The owned descriptor, or -1.
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Gives up ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the current descriptor (if any) and adopts `fd`. close(2) is
  /// deliberately not retried on EINTR: on Linux the descriptor is released
  /// either way, and a retry could close an unrelated recycled fd.
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace locpriv::harness
