#include "core/harness/crc32c.hpp"

#include <array>
#include <cstdio>

namespace locpriv::harness {

namespace {

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = build_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data)
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32c_hex(std::string_view data) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc32c(data));
  return buffer;
}

}  // namespace locpriv::harness
