// Journaled checkpoint manifest for long sweep runs. The ledger is one
// append-only JSONL file (`<run-dir>/ledger.jsonl`): a header line naming
// the experiment, seed, and scale, then one line per completed sweep cell
// carrying the cell's serialized result fields. Every append is written in
// a single write(2) and fsync'd, so after a crash (SIGKILL, OOM-kill,
// power loss) at most the final line is torn — and a torn tail is detected
// and truncated on the next open. Reruns that open the same ledger skip
// completed cells and replay their recorded fields, reproducing the final
// artifact of an uninterrupted run byte for byte.
//
// Every line additionally carries a CRC-32C of itself (a trailing
// `,"crc":"xxxxxxxx"` member computed over the line with that member
// removed), so replay can tell the two damage classes apart: a torn tail
// (no terminator — truncated silently, by design) versus mid-file bit-rot
// (a terminated line whose CRC or syntax fails — refused with
// kLedgerCorrupt; `locpriv scrub --repair` truncates to the last intact
// record). Pre-CRC ledgers replay unchanged. All I/O flows through the
// injectable harness::FileOps layer.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness/error.hpp"

namespace locpriv::harness {

/// Identity of a run. A ledger written under one identity refuses to resume
/// under another (different bench, seed, corpus scale, or execution mode),
/// so stale run directories cannot silently contaminate a new campaign and
/// a resume cannot silently switch between isolated and in-process
/// execution or a different worker count.
struct RunInfo {
  std::string experiment;  ///< e.g. "bench_fault_degradation".
  std::uint64_t seed = 0;  ///< The seed every cell derives from.
  std::string scale;       ///< Free-form corpus descriptor, e.g. "8u3d".
  /// Execution mode descriptor, e.g. "inproc-w1" or "isolate-w4". Ledgers
  /// written before mode pinning existed replay as "inproc-w1".
  std::string mode = "inproc-w1";
};

/// What a raw ledger image scan concluded.
enum class LedgerScan {
  kClean,    ///< Every line intact and parsed.
  kTorn,     ///< The final append was cut short; valid_bytes excludes it.
  kCorrupt,  ///< An interior record failed its CRC or cannot be parsed.
};

/// The result of replaying raw ledger bytes: the latest-state view of every
/// record, the scan status, and the longest intact prefix (what a repair
/// truncates to).
struct LedgerReplay {
  LedgerScan status = LedgerScan::kClean;
  bool has_header = false;  ///< Line 1 parsed as a run header.
  RunInfo header;
  std::map<std::string, std::vector<std::string>> cells;
  std::map<std::string, std::vector<std::string>> quarantine;
  std::uint64_t valid_bytes = 0;  ///< Bytes covered by intact records.
  std::size_t bad_line = 0;       ///< 1-based first bad line, when kCorrupt.
  std::size_t lines = 0;          ///< Terminated lines scanned.
};

/// Pure replay over raw ledger bytes. Touches no filesystem state and never
/// throws on damage (the status field reports it) — shared by RunLedger,
/// the scrubber, and the fuzz harness. CRC-suffixed lines are verified;
/// lines without a CRC (pre-CRC ledgers) are accepted on syntax alone.
LedgerReplay replay_ledger(std::string_view content);

class RunLedger {
 public:
  /// Opens (creating if needed) `run_dir/ledger.jsonl`. An existing ledger
  /// is replayed: the header must match `info` (Error kResume otherwise),
  /// completed cells are loaded, and a torn trailing line is truncated
  /// away. A CRC-failed or unparsable interior record throws
  /// Error(kLedgerCorrupt). Throws Error(kIo) on filesystem failures.
  RunLedger(std::filesystem::path run_dir, const RunInfo& info);
  ~RunLedger();

  RunLedger(const RunLedger&) = delete;
  RunLedger& operator=(const RunLedger&) = delete;

  bool completed(const std::string& cell) const;

  /// The recorded result fields of a completed cell, or nullptr.
  const std::vector<std::string>* fields(const std::string& cell) const;

  /// Journals a completed cell with its result fields: single write(2) of
  /// the full line, then fsync. Throws Error(kIo) on failure and
  /// Error(kResume) if the cell was already recorded (a harness bug).
  /// A completed cell supersedes any earlier quarantine record for it.
  void record(const std::string& cell, const std::vector<std::string>& fields);

  /// Journals a structured failure record for a cell the supervisor gave up
  /// on (same fsync'd single-write discipline). `details` carries one entry
  /// per attempt ("signal 11 (SIGSEGV): ...", "exit 1: ..."). Re-recording
  /// the same cell overwrites the in-memory entry (a resumed run may try —
  /// and fail — again); replay keeps the latest line.
  void record_quarantine(const std::string& cell,
                         const std::vector<std::string>& details);

  /// True when the cell's latest state is "quarantined" (a later completed
  /// record supersedes quarantine).
  bool quarantined(const std::string& cell) const;

  /// The journaled failure details of a quarantined cell, or nullptr.
  const std::vector<std::string>* quarantine_details(const std::string& cell) const;

  std::size_t completed_count() const { return cells_.size(); }

  /// Quarantined cells (latest-state view), sorted by key.
  std::vector<std::string> quarantined_cells() const;

  /// Forces the journal to stable storage. Every append already fsyncs;
  /// this exists so a graceful-shutdown path can make the guarantee
  /// explicit before the process exits. Throws Error(kIo) on failure.
  void sync();

  const std::filesystem::path& path() const { return path_; }

 private:
  void append_line(const std::string& line);

  std::filesystem::path path_;
  std::map<std::string, std::vector<std::string>> cells_;
  std::map<std::string, std::vector<std::string>> quarantine_;
  int fd_ = -1;  ///< Closed through the FileOps layer, not FdGuard.
};

}  // namespace locpriv::harness
