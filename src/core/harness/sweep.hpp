// Front end tying the harness together for the bench binaries: the shared
// run-supervision command line, and the policy for opening a run ledger.
//
//   --run-dir DIR       checkpointed run; artifacts + ledger land in DIR
//   --resume DIR        continue a previous run, skipping completed cells
//   --heartbeat S       progress log cadence in seconds (default 30, 0 = off)
//   --soft-deadline S   warn when the sweep stage runs longer than S seconds
//   --hard-deadline S   abort with exit 5 when the stage exceeds S seconds
#pragma once

#include <filesystem>
#include <memory>
#include <string>

#include "core/harness/run_ledger.hpp"
#include "core/harness/watchdog.hpp"

namespace locpriv::harness {

struct RunOptions {
  std::filesystem::path run_dir;  ///< Empty = unsupervised legacy run.
  bool resume = false;
  StageOptions stage;

  /// True when a run directory (fresh or resumed) was requested.
  bool active() const { return !run_dir.empty(); }
};

/// Parses the standard harness flags (and nothing else) from a bench
/// command line. Throws Error(kUsage) on unknown flags or bad values.
RunOptions parse_run_options(int argc, const char* const* argv,
                             std::string stage_name);

/// Opens the ledger for a supervised run, or returns nullptr when no run
/// dir was requested. A fresh `--run-dir` refuses to reuse a directory that
/// already holds a ledger (Error kResume: pass `--resume` to continue it);
/// `--resume` accepts both an existing ledger (header must match `info`)
/// and an empty directory (starts from scratch).
std::unique_ptr<RunLedger> open_ledger(const RunOptions& options,
                                       const RunInfo& info);

}  // namespace locpriv::harness
