// Front end tying the harness together for the bench binaries: the shared
// run-supervision command line, and the policy for opening a run ledger.
//
//   --run-dir DIR       checkpointed run; artifacts + ledger land in DIR
//   --resume DIR        continue a previous run, skipping completed cells
//   --heartbeat S       progress log cadence in seconds (default 30, 0 = off)
//   --soft-deadline S   warn when the sweep stage runs longer than S seconds
//   --hard-deadline S   abort with exit 5 when the stage exceeds S seconds
//   --isolate           fork one child per sweep-cell attempt (crash isolation)
//   --workers N         concurrent cells (children or threads; default 1)
//   --cell-rlimit-mb N  RLIMIT_AS per isolated cell, MiB (0 = off)
//   --cell-cpu-s N      RLIMIT_CPU per isolated cell, seconds (0 = off)
//   --cell-deadline S   per-attempt wall deadline, seconds (0 = off; isolate)
//   --cell-grace S      SIGTERM->SIGKILL grace, seconds (default 2)
//   --cell-retries N    attempts per cell before quarantine (default 3)
//   --cell-backoff-ms N retry backoff base in milliseconds (default 100)
#pragma once

#include <filesystem>
#include <memory>
#include <string>

#include "core/harness/run_ledger.hpp"
#include "core/harness/supervisor.hpp"
#include "core/harness/watchdog.hpp"
#include "util/args.hpp"

namespace locpriv::harness {

struct RunOptions {
  std::filesystem::path run_dir;  ///< Empty = unsupervised legacy run.
  bool resume = false;
  StageOptions stage;
  SupervisorOptions supervisor;

  /// True when a run directory (fresh or resumed) was requested.
  bool active() const { return !run_dir.empty(); }

  /// Execution-mode descriptor pinned into the RunLedger header (e.g.
  /// "isolate-w4", "inproc-w1"): a resume under a different mode or worker
  /// count is refused, because dispatch differences could change which
  /// cells were attempted and make "byte-identical resume" unfalsifiable.
  std::string mode_string() const;
};

/// Declares the standard harness flags on a caller-owned parser, so bench
/// binaries can mix them with their own experiment flags in one command
/// line. Pair with run_options_from() after args.parse().
void declare_run_flags(util::Args& args);

/// Extracts and validates RunOptions from a parsed command line that
/// declared the flags via declare_run_flags(). Throws Error(kUsage) on bad
/// values (negative deadlines, zero workers, ...).
RunOptions run_options_from(const util::Args& args, std::string stage_name);

/// Parses the standard harness flags (and nothing else) from a bench
/// command line. Throws Error(kUsage) on unknown flags or bad values.
RunOptions parse_run_options(int argc, const char* const* argv,
                             std::string stage_name);

/// Opens the ledger for a supervised run, or returns nullptr when no run
/// dir was requested. A fresh `--run-dir` refuses to reuse a directory that
/// already holds a ledger (Error kResume: pass `--resume` to continue it);
/// `--resume` accepts both an existing ledger (header must match `info`)
/// and an empty directory (starts from scratch).
std::unique_ptr<RunLedger> open_ledger(const RunOptions& options,
                                       const RunInfo& info);

}  // namespace locpriv::harness
