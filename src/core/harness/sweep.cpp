#include "core/harness/sweep.hpp"

#include <stdexcept>

#include "util/args.hpp"

namespace locpriv::harness {

RunOptions parse_run_options(int argc, const char* const* argv,
                             std::string stage_name) {
  util::Args args;
  args.declare("--run-dir", "");
  args.declare("--resume", "");
  args.declare("--heartbeat", "30");
  args.declare("--soft-deadline", "0");
  args.declare("--hard-deadline", "0");
  RunOptions options;
  try {
    args.parse(argc, argv, 1);
    options.stage.heartbeat = std::chrono::seconds(args.get_int("--heartbeat"));
    options.stage.soft_deadline =
        std::chrono::seconds(args.get_int("--soft-deadline"));
    options.stage.hard_deadline =
        std::chrono::seconds(args.get_int("--hard-deadline"));
  } catch (const std::runtime_error& error) {
    throw Error(ErrorCode::kUsage, error.what());
  }
  if (!args.get("--run-dir").empty() && !args.get("--resume").empty())
    throw Error(ErrorCode::kUsage, "--run-dir and --resume are mutually exclusive");
  if (options.stage.heartbeat.count() < 0 ||
      options.stage.soft_deadline.count() < 0 ||
      options.stage.hard_deadline.count() < 0)
    throw Error(ErrorCode::kUsage, "deadlines and heartbeat must be >= 0 seconds");
  options.stage.name = std::move(stage_name);
  if (!args.get("--resume").empty()) {
    options.run_dir = args.get("--resume");
    options.resume = true;
  } else {
    options.run_dir = args.get("--run-dir");
  }
  return options;
}

std::unique_ptr<RunLedger> open_ledger(const RunOptions& options,
                                       const RunInfo& info) {
  if (!options.active()) return nullptr;
  const auto ledger_path = options.run_dir / "ledger.jsonl";
  if (!options.resume && std::filesystem::exists(ledger_path))
    throw Error(ErrorCode::kResume,
                options.run_dir.string() +
                    " already holds a ledger; pass --resume to continue that "
                    "run or choose a fresh --run-dir");
  return std::make_unique<RunLedger>(options.run_dir, info);
}

}  // namespace locpriv::harness
