#include "core/harness/sweep.hpp"

#include <stdexcept>

namespace locpriv::harness {

std::string RunOptions::mode_string() const {
  return (supervisor.isolate ? "isolate-w" : "inproc-w") +
         std::to_string(supervisor.workers);
}

void declare_run_flags(util::Args& args) {
  args.declare("--run-dir", "");
  args.declare("--resume", "");
  args.declare("--heartbeat", "30");
  args.declare("--soft-deadline", "0");
  args.declare("--hard-deadline", "0");
  args.declare_bool("--isolate");
  args.declare("--workers", "1");
  args.declare("--cell-rlimit-mb", "0");
  args.declare("--cell-cpu-s", "0");
  args.declare("--cell-deadline", "0");
  args.declare("--cell-grace", "2");
  args.declare("--cell-retries", "3");
  args.declare("--cell-backoff-ms", "100");
}

RunOptions run_options_from(const util::Args& args, std::string stage_name) {
  RunOptions options;
  try {
    options.stage.heartbeat = std::chrono::seconds(args.get_int("--heartbeat"));
    options.stage.soft_deadline =
        std::chrono::seconds(args.get_int("--soft-deadline"));
    options.stage.hard_deadline =
        std::chrono::seconds(args.get_int("--hard-deadline"));
    options.supervisor.isolate = args.get_bool("--isolate");
    options.supervisor.workers =
        static_cast<unsigned>(args.get_int("--workers"));
    options.supervisor.cell_rlimit_mb =
        static_cast<std::size_t>(args.get_int("--cell-rlimit-mb"));
    options.supervisor.cell_cpu_s =
        static_cast<unsigned>(args.get_int("--cell-cpu-s"));
    options.supervisor.cell_deadline = std::chrono::milliseconds(
        static_cast<long long>(args.get_double("--cell-deadline") * 1000.0));
    options.supervisor.term_grace = std::chrono::milliseconds(
        static_cast<long long>(args.get_double("--cell-grace") * 1000.0));
    options.supervisor.max_attempts =
        static_cast<int>(args.get_int("--cell-retries"));
    options.supervisor.backoff_base =
        std::chrono::milliseconds(args.get_int("--cell-backoff-ms"));
  } catch (const std::runtime_error& error) {
    throw Error(ErrorCode::kUsage, error.what());
  }
  if (!args.get("--run-dir").empty() && !args.get("--resume").empty())
    throw Error(ErrorCode::kUsage, "--run-dir and --resume are mutually exclusive");
  if (options.stage.heartbeat.count() < 0 ||
      options.stage.soft_deadline.count() < 0 ||
      options.stage.hard_deadline.count() < 0)
    throw Error(ErrorCode::kUsage, "deadlines and heartbeat must be >= 0 seconds");
  if (args.get_int("--workers") < 1)
    throw Error(ErrorCode::kUsage, "--workers must be >= 1");
  if (args.get_int("--cell-retries") < 1)
    throw Error(ErrorCode::kUsage, "--cell-retries must be >= 1");
  if (args.get_int("--cell-rlimit-mb") < 0 || args.get_int("--cell-cpu-s") < 0 ||
      args.get_double("--cell-deadline") < 0 ||
      args.get_double("--cell-grace") < 0 ||
      args.get_int("--cell-backoff-ms") < 0)
    throw Error(ErrorCode::kUsage, "cell limits must be >= 0");
  options.stage.name = std::move(stage_name);
  if (!args.get("--resume").empty()) {
    options.run_dir = args.get("--resume");
    options.resume = true;
  } else {
    options.run_dir = args.get("--run-dir");
  }
  return options;
}

RunOptions parse_run_options(int argc, const char* const* argv,
                             std::string stage_name) {
  util::Args args;
  declare_run_flags(args);
  try {
    args.parse(argc, argv, 1);
  } catch (const std::runtime_error& error) {
    throw Error(ErrorCode::kUsage, error.what());
  }
  return run_options_from(args, std::move(stage_name));
}

std::unique_ptr<RunLedger> open_ledger(const RunOptions& options,
                                       const RunInfo& info) {
  if (!options.active()) return nullptr;
  const auto ledger_path = options.run_dir / "ledger.jsonl";
  if (!options.resume && std::filesystem::exists(ledger_path))
    throw Error(ErrorCode::kResume,
                options.run_dir.string() +
                    " already holds a ledger; pass --resume to continue that "
                    "run or choose a fresh --run-dir");
  return std::make_unique<RunLedger>(options.run_dir, info);
}

}  // namespace locpriv::harness
