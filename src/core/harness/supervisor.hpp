// Process-isolated supervised execution of sweep cells. A Supervisor runs
// each cell either in-process (the historical path, now with work-stealing
// dispatch and retry/quarantine bookkeeping) or — under --isolate — in a
// forked child per attempt, so a segfault, runaway allocation, or busy-hang
// in one cell cannot take down the run. Children are capped with
// setrlimit(2) (RLIMIT_AS, RLIMIT_CPU) and a preemptive wall-clock deadline
// (SIGTERM, a grace period, then SIGKILL); results travel back over a pipe
// as length-prefixed field frames and land in the same RunLedger /
// AtomicFileWriter path as in-process runs, so isolated, resumed, and
// in-process executions of the same sweep produce byte-identical artifacts.
//
// Failed attempts retry with deterministic exponential backoff (jitter is
// derived from the run seed and cell key, never from wall-clock entropy).
// A cell that exhausts its attempts is *quarantined*: a structured failure
// record (signal, exit code, rlimit/deadline classification, stderr tail
// per attempt) is journaled to the ledger, the rest of the sweep proceeds,
// and the run completes with ErrorCode::kQuarantined (exit 3).
//
// SIGINT/SIGTERM trigger a graceful shutdown: dispatch stops, running
// children are terminated and reaped, the ledger is fsync'd, and run()
// throws Error(kInterrupted) (exit 7) — the run directory is left in a
// clean resumable state.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/harness/error.hpp"
#include "core/harness/run_ledger.hpp"
#include "core/harness/watchdog.hpp"

namespace locpriv::harness {

struct SupervisorOptions {
  /// Concurrent cells (forked children under isolate, threads otherwise).
  unsigned workers = 1;
  /// Fork one child per cell attempt instead of running in-process.
  bool isolate = false;
  /// RLIMIT_AS for each child, in MiB; 0 leaves the limit untouched.
  /// Ignored in-process (rlimits are per-process, not per-thread).
  std::size_t cell_rlimit_mb = 0;
  /// RLIMIT_CPU (seconds of CPU time) for each child; 0 leaves it untouched.
  unsigned cell_cpu_s = 0;
  /// Preemptive wall-clock deadline per attempt; past it the child gets
  /// SIGTERM, then SIGKILL after `term_grace`. 0 disables. Isolate only —
  /// threads cannot be preempted safely.
  std::chrono::milliseconds cell_deadline{0};
  /// How long a SIGTERM'd child may linger before SIGKILL.
  std::chrono::milliseconds term_grace{2000};
  /// Attempts per cell before quarantine (>= 1).
  int max_attempts = 3;
  /// Base of the exponential backoff between attempts; retry attempt k
  /// (k >= 2) waits base * 2^(k-2) plus deterministic jitter in [0, base).
  std::chrono::milliseconds backoff_base{100};
  /// Seed for the backoff jitter, normally the run seed: identical runs
  /// schedule identical retries.
  std::uint64_t backoff_seed = 0;
  /// Bytes of each attempt's captured stderr kept in the quarantine record.
  std::size_t stderr_tail = 512;
};

/// Computes one cell attempt and returns its serialized result fields (the
/// exact strings RunLedger journals and the artifact writers consume).
/// Under isolate the call runs in a forked child. Throwing std::exception
/// marks the attempt failed (retry, then quarantine); throwing Error is
/// treated the same way except in-process, where harness-level codes
/// (kDeadline, kIo, ...) propagate and abort the run.
using CellFn = std::function<std::vector<std::string>(
    std::size_t index, const std::string& key, int attempt)>;

struct SupervisorOutcome {
  /// Cells computed this run (resumed cells replayed from the ledger are
  /// not counted).
  std::size_t computed = 0;
  /// Cells quarantined this run, in sweep order.
  std::vector<std::string> quarantined;
};

/// The deterministic retry delay before attempt `attempt` (2-based: the
/// first retry) of `cell`: exponential in the attempt number with jitter
/// derived from (backoff_seed, cell, attempt) via splitmix64. Exposed for
/// tests; no wall-clock or hardware entropy is involved.
std::chrono::milliseconds backoff_delay(const SupervisorOptions& options,
                                        const std::string& cell, int attempt);

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);

  /// Runs every not-yet-completed cell of `cells` through `fn`, journaling
  /// successes and quarantines to `ledger`. Cells already completed in the
  /// ledger are skipped (resume); previously quarantined cells are retried.
  /// `watchdog`, when given, receives progress ticks and its hard deadline
  /// is enforced even over non-cooperative children (they are SIGKILLed and
  /// Error(kDeadline) is thrown). Throws Error(kInterrupted) after a clean
  /// shutdown on SIGINT/SIGTERM. Installs its own SIGINT/SIGTERM handlers
  /// for the duration of the call and restores the previous ones on exit.
  SupervisorOutcome run(const std::vector<std::string>& cells, const CellFn& fn,
                        RunLedger& ledger, StageWatchdog* watchdog = nullptr);

  /// Async-signal-safe shutdown request; the signal-number argument makes it
  /// directly installable as a handler. Tests may call it to simulate ^C.
  static void request_shutdown(int signal);

  /// True once a shutdown has been requested (cleared at the top of run()).
  static bool shutdown_requested();

  const SupervisorOptions& options() const { return options_; }

 private:
  SupervisorOutcome run_isolated(const std::vector<std::string>& cells,
                                 const CellFn& fn, RunLedger& ledger,
                                 StageWatchdog* watchdog);
  SupervisorOutcome run_in_process(const std::vector<std::string>& cells,
                                   const CellFn& fn, RunLedger& ledger,
                                   StageWatchdog* watchdog);

  SupervisorOptions options_;
};

}  // namespace locpriv::harness
