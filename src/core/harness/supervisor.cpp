#include "core/harness/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace locpriv::harness {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Shutdown flag. A plain lock-free atomic written from the signal handler;
// cleared at the top of every run() so a stale ^C from a previous stage
// cannot abort a fresh one.
// ---------------------------------------------------------------------------

std::atomic<int> g_shutdown_signal{0};

extern "C" void locpriv_supervisor_on_signal(int signal) {
  Supervisor::request_shutdown(signal);
}

/// Installs the shutdown handler for SIGINT/SIGTERM and restores whatever
/// was there before on destruction, so a Supervisor::run() nested inside a
/// larger program does not permanently hijack its signal disposition.
class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers() {
    struct sigaction action {};
    action.sa_handler = &locpriv_supervisor_on_signal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedSignalHandlers() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// ---------------------------------------------------------------------------
// Deterministic backoff jitter. splitmix64 over (seed ^ cell-hash ^ attempt)
// — pure arithmetic, no clock or hardware entropy, so two executions of the
// same run schedule byte-identical retries.
// ---------------------------------------------------------------------------

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Child-side plumbing. Everything after fork() runs with logging off and
// reports only through the result pipe / inherited stderr; errors are
// written with raw ::write because stdio buffers were cloned from the
// parent and must not be flushed twice.
// ---------------------------------------------------------------------------

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Nothing sane left to do in a dying child.
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

void append_u32(std::string& out, std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(bytes));
}

/// Serializes result fields as: u32 count, then per field u32 length + bytes.
std::string encode_frame(const std::vector<std::string>& fields) {
  std::string frame;
  append_u32(frame, static_cast<std::uint32_t>(fields.size()));
  for (const std::string& field : fields) {
    append_u32(frame, static_cast<std::uint32_t>(field.size()));
    frame += field;
  }
  return frame;
}

/// Parses a complete frame; false on truncation, trailing bytes, or an
/// implausible field length (corrupt stream).
bool decode_frame(const std::string& frame, std::vector<std::string>& fields) {
  constexpr std::uint32_t kMaxField = 1u << 24;
  std::size_t offset = 0;
  auto read_u32 = [&](std::uint32_t& value) {
    if (frame.size() - offset < sizeof(value)) return false;
    std::memcpy(&value, frame.data() + offset, sizeof(value));
    offset += sizeof(value);
    return true;
  };
  std::uint32_t count = 0;
  if (!read_u32(count) || count > kMaxField) return false;
  fields.clear();
  fields.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t size = 0;
    if (!read_u32(size) || size > kMaxField || frame.size() - offset < size)
      return false;
    fields.emplace_back(frame, offset, size);
    offset += size;
  }
  return offset == frame.size();
}

void apply_rlimits(const SupervisorOptions& options) {
  if (options.cell_rlimit_mb > 0) {
    struct rlimit limit {};
    limit.rlim_cur = limit.rlim_max =
        static_cast<rlim_t>(options.cell_rlimit_mb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &limit);
  }
  if (options.cell_cpu_s > 0) {
    struct rlimit limit {};
    limit.rlim_cur = limit.rlim_max = options.cell_cpu_s;
    ::setrlimit(RLIMIT_CPU, &limit);
  }
}

[[noreturn]] void run_child_and_exit(const CellFn& fn, std::size_t index,
                                     const std::string& key, int attempt,
                                     int result_fd, int err_fd,
                                     const SupervisorOptions& options) {
  // Order matters: silence the logger before anything can log (the parent's
  // sink mutex state was cloned by fork; kOff short-circuits log_line before
  // it would touch the mutex), then route stderr into the capture pipe, then
  // drop the parent's shutdown handlers so SIGTERM actually terminates us.
  util::set_log_level(util::LogLevel::kOff);
  ::dup2(err_fd, STDERR_FILENO);
  if (err_fd != STDERR_FILENO) ::close(err_fd);
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(SIGINT, &dfl, nullptr);
  ::sigaction(SIGTERM, &dfl, nullptr);
  apply_rlimits(options);
  try {
    const std::vector<std::string> fields = fn(index, key, attempt);
    const std::string frame = encode_frame(fields);
    write_all(result_fd, frame.data(), frame.size());
    ::_exit(0);
  } catch (const Error& e) {
    const std::string what = std::string(e.what()) + "\n";
    write_all(STDERR_FILENO, what.data(), what.size());
    ::_exit(e.exit_code());
  } catch (const std::exception& e) {
    const std::string what = std::string(e.what()) + "\n";
    write_all(STDERR_FILENO, what.data(), what.size());
    ::_exit(exit_code(ErrorCode::kInternal));
    // A child must never unwind back into the cloned parent stack; the
    // non-zero _exit IS the report. locpriv-lint: allow(swallowed-catch)
  } catch (...) {
    constexpr char kMessage[] = "non-std exception in supervised cell\n";
    write_all(STDERR_FILENO, kMessage, sizeof(kMessage) - 1);
    ::_exit(exit_code(ErrorCode::kInternal));
  }
}

// ---------------------------------------------------------------------------
// Parent-side bookkeeping.
// ---------------------------------------------------------------------------

struct PendingCell {
  std::size_t index = 0;
  std::string key;
  int attempt = 1;
  Clock::time_point eligible;  ///< Earliest dispatch time (backoff).
};

struct ChildProc {
  pid_t pid = -1;
  std::size_t index = 0;
  std::string key;
  int attempt = 1;
  bool has_deadline = false;
  bool term_sent = false;
  bool kill_sent = false;
  bool deadline_hit = false;
  Clock::time_point deadline;
  Clock::time_point kill_at;
  int result_fd = -1;
  int err_fd = -1;
  std::string result_buf;
  std::string err_buf;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Drains whatever is ready on `fd` into `buf`; returns false once the pipe
/// reports EOF (write end closed — the child exited or closed it).
bool read_available(int fd, std::string& buf) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return true;  // EAGAIN: drained for now.
  }
}

void close_child_fds(ChildProc& child) {
  if (child.result_fd >= 0) {
    read_available(child.result_fd, child.result_buf);
    ::close(child.result_fd);
    child.result_fd = -1;
  }
  if (child.err_fd >= 0) {
    read_available(child.err_fd, child.err_buf);
    ::close(child.err_fd);
    child.err_fd = -1;
  }
}

std::string signal_name(int signal) {
  switch (signal) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    default: return "signal " + std::to_string(signal);
  }
}

/// Last `limit` bytes of the child's captured stderr, newlines flattened so
/// the ledger record stays a readable one-liner.
std::string stderr_tail(const std::string& captured, std::size_t limit) {
  std::string tail = captured.size() > limit
                         ? captured.substr(captured.size() - limit)
                         : captured;
  std::replace(tail.begin(), tail.end(), '\n', ' ');
  while (!tail.empty() && tail.back() == ' ') tail.pop_back();
  return tail;
}

/// One structured line describing a failed attempt: what killed the child
/// (signal / exit code / deadline / rlimit) plus its final stderr bytes.
std::string describe_failure(const ChildProc& child, int status,
                             bool frame_ok, const SupervisorOptions& options) {
  std::string detail = "attempt " + std::to_string(child.attempt) + ": ";
  if (child.deadline_hit) {
    detail += "deadline " + std::to_string(options.cell_deadline.count()) +
              "ms exceeded (SIGTERM" +
              (child.kill_sent ? std::string(", escalated to SIGKILL)")
                               : std::string(")"));
  } else if (WIFSIGNALED(status)) {
    const int signal = WTERMSIG(status);
    detail += "killed by " + signal_name(signal);
    if (signal == SIGXCPU || signal == SIGKILL)
      detail += " (rlimit candidate: cpu=" + std::to_string(options.cell_cpu_s) +
                "s as=" + std::to_string(options.cell_rlimit_mb) + "MiB)";
  } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    detail += "exit " + std::to_string(WEXITSTATUS(status));
  } else if (!frame_ok) {
    detail += "exit 0 but the result frame was truncated or corrupt";
  } else {
    detail += "unknown wait status " + std::to_string(status);
  }
  const std::string tail = stderr_tail(child.err_buf, options.stderr_tail);
  if (!tail.empty()) detail += "; stderr: " + tail;
  return detail;
}

void kill_and_reap(std::vector<ChildProc>& running, int signal) {
  for (ChildProc& child : running)
    if (child.pid > 0) ::kill(child.pid, signal);
  for (ChildProc& child : running) {
    if (child.pid > 0) {
      int status = 0;
      while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {}
      child.pid = -1;
    }
    close_child_fds(child);
  }
  running.clear();
}

std::chrono::milliseconds clamp_to_ms(Clock::duration d) {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(d);
  return ms.count() < 0 ? std::chrono::milliseconds(0) : ms;
}

}  // namespace

std::chrono::milliseconds backoff_delay(const SupervisorOptions& options,
                                        const std::string& cell, int attempt) {
  if (attempt <= 1 || options.backoff_base.count() <= 0)
    return std::chrono::milliseconds(0);
  // Exponential in the retry number, capped so the shift cannot overflow.
  const int exponent = std::min(attempt - 2, 20);
  const std::int64_t base = options.backoff_base.count();
  const std::int64_t scaled = base << exponent;
  const std::uint64_t jitter = splitmix64(options.backoff_seed ^ fnv1a(cell) ^
                                          static_cast<std::uint64_t>(attempt)) %
                               static_cast<std::uint64_t>(base);
  return std::chrono::milliseconds(scaled + static_cast<std::int64_t>(jitter));
}

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  if (options_.workers < 1)
    throw Error(ErrorCode::kUsage, "supervisor requires at least one worker");
  if (options_.max_attempts < 1)
    throw Error(ErrorCode::kUsage,
                "supervisor requires at least one attempt per cell");
}

void Supervisor::request_shutdown(int signal) {
  g_shutdown_signal.store(signal == 0 ? SIGTERM : signal,
                          std::memory_order_relaxed);
}

bool Supervisor::shutdown_requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

SupervisorOutcome Supervisor::run(const std::vector<std::string>& cells,
                                  const CellFn& fn, RunLedger& ledger,
                                  StageWatchdog* watchdog) {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
  const ScopedSignalHandlers handlers;
  return options_.isolate ? run_isolated(cells, fn, ledger, watchdog)
                          : run_in_process(cells, fn, ledger, watchdog);
}

SupervisorOutcome Supervisor::run_isolated(const std::vector<std::string>& cells,
                                           const CellFn& fn, RunLedger& ledger,
                                           StageWatchdog* watchdog) {
  SupervisorOutcome outcome;
  std::deque<PendingCell> queue;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (!ledger.completed(cells[i]))
      queue.push_back({i, cells[i], 1, start});

  // Per-cell log of every failed attempt; becomes the quarantine record.
  std::map<std::string, std::vector<std::string>> failure_log;
  std::vector<std::pair<std::size_t, std::string>> quarantined;
  std::vector<ChildProc> running;
  bool interrupted = false;

  auto spawn = [&](PendingCell cell) {
    int result_pipe[2];
    int err_pipe[2];
    if (::pipe(result_pipe) != 0)
      throw Error(ErrorCode::kIo, "cannot create result pipe" + errno_detail());
    if (::pipe(err_pipe) != 0) {
      ::close(result_pipe[0]);
      ::close(result_pipe[1]);
      throw Error(ErrorCode::kIo, "cannot create stderr pipe" + errno_detail());
    }
    pid_t pid = -1;
    {
      // Hold the logging sink across fork(2) so the child cannot inherit it
      // mid-emission from some other thread (e.g. the watchdog heartbeat).
      const util::LogForkGuard guard;
      pid = ::fork();
      if (pid == 0) {
        ::close(result_pipe[0]);
        ::close(err_pipe[0]);
        run_child_and_exit(fn, cell.index, cell.key, cell.attempt,
                           result_pipe[1], err_pipe[1], options_);
      }
    }
    ::close(result_pipe[1]);
    ::close(err_pipe[1]);
    if (pid < 0) {
      ::close(result_pipe[0]);
      ::close(err_pipe[0]);
      throw Error(ErrorCode::kIo, "fork failed" + errno_detail());
    }
    set_nonblocking(result_pipe[0]);
    set_nonblocking(err_pipe[0]);
    ChildProc child;
    child.pid = pid;
    child.index = cell.index;
    child.key = std::move(cell.key);
    child.attempt = cell.attempt;
    child.result_fd = result_pipe[0];
    child.err_fd = err_pipe[0];
    if (options_.cell_deadline.count() > 0) {
      child.has_deadline = true;
      child.deadline = Clock::now() + options_.cell_deadline;
    }
    running.push_back(std::move(child));
  };

  try {
    while (!queue.empty() || !running.empty()) {
      if (shutdown_requested()) {
        interrupted = true;
        break;
      }
      if (watchdog != nullptr && watchdog->expired()) {
        // Children may be non-cooperative (that is the point of isolation);
        // the stage deadline is enforced on them from out here.
        kill_and_reap(running, SIGKILL);
        watchdog->checkpoint();  // Throws Error(kDeadline).
      }

      auto now = Clock::now();
      // Dispatch every eligible pending cell into free worker slots, in
      // queue order (original sweep order, retries at the back).
      while (running.size() < options_.workers) {
        auto eligible = std::find_if(
            queue.begin(), queue.end(),
            [&](const PendingCell& cell) { return cell.eligible <= now; });
        if (eligible == queue.end()) break;
        PendingCell cell = std::move(*eligible);
        queue.erase(eligible);
        spawn(std::move(cell));
      }

      if (running.empty()) {
        // Everything pending is backing off; nap until the earliest retry.
        auto earliest = Clock::time_point::max();
        for (const PendingCell& cell : queue)
          earliest = std::min(earliest, cell.eligible);
        const auto nap =
            std::min(clamp_to_ms(earliest - now), std::chrono::milliseconds(50));
        std::this_thread::sleep_for(std::max(nap, std::chrono::milliseconds(1)));
        continue;
      }

      // Poll the children's pipes; wake early for the nearest deadline so a
      // SIGTERM/SIGKILL escalation never waits on quiet pipes.
      std::vector<pollfd> fds;
      auto timeout = std::chrono::milliseconds(50);
      for (const ChildProc& child : running) {
        if (child.result_fd >= 0)
          fds.push_back({child.result_fd, POLLIN, 0});
        if (child.err_fd >= 0) fds.push_back({child.err_fd, POLLIN, 0});
        if (child.has_deadline && !child.term_sent)
          timeout = std::min(timeout, clamp_to_ms(child.deadline - now));
        if (child.term_sent && !child.kill_sent)
          timeout = std::min(timeout, clamp_to_ms(child.kill_at - now));
      }
      while (::poll(fds.empty() ? nullptr : fds.data(),
                    static_cast<nfds_t>(fds.size()),
                    static_cast<int>(std::max<std::int64_t>(
                        timeout.count(), 1))) < 0 &&
             errno == EINTR) {}

      for (ChildProc& child : running) {
        if (child.result_fd >= 0 &&
            !read_available(child.result_fd, child.result_buf)) {
          ::close(child.result_fd);
          child.result_fd = -1;
        }
        if (child.err_fd >= 0 && !read_available(child.err_fd, child.err_buf)) {
          ::close(child.err_fd);
          child.err_fd = -1;
        }
      }

      // Preemptive per-cell deadline: SIGTERM, a grace period, SIGKILL.
      now = Clock::now();
      for (ChildProc& child : running) {
        if (!child.has_deadline) continue;
        if (!child.term_sent && now >= child.deadline) {
          child.term_sent = true;
          child.deadline_hit = true;
          child.kill_at = now + options_.term_grace;
          ::kill(child.pid, SIGTERM);
          LOCPRIV_LOG(kWarn, "supervisor")
              << "cell " << child.key << " attempt " << child.attempt
              << " blew its " << options_.cell_deadline.count()
              << "ms deadline; SIGTERM sent";
        } else if (child.term_sent && !child.kill_sent && now >= child.kill_at) {
          child.kill_sent = true;
          ::kill(child.pid, SIGKILL);
          LOCPRIV_LOG(kWarn, "supervisor")
              << "cell " << child.key << " ignored SIGTERM for "
              << options_.term_grace.count() << "ms; SIGKILL sent";
        }
      }

      // Reap exited children and classify each outcome.
      for (std::size_t i = 0; i < running.size();) {
        ChildProc& child = running[i];
        int status = 0;
        const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
        if (reaped != child.pid) {
          ++i;
          continue;
        }
        child.pid = -1;
        close_child_fds(child);

        std::vector<std::string> fields;
        const bool frame_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                              !child.deadline_hit &&
                              decode_frame(child.result_buf, fields);
        if (frame_ok) {
          ledger.record(child.key, fields);
          ++outcome.computed;
          if (watchdog != nullptr) watchdog->add_progress();
        } else {
          const std::string detail =
              describe_failure(child, status, WIFEXITED(status) &&
                                                  WEXITSTATUS(status) == 0,
                               options_);
          failure_log[child.key].push_back(detail);
          if (child.attempt < options_.max_attempts) {
            const auto delay =
                backoff_delay(options_, child.key, child.attempt + 1);
            LOCPRIV_LOG(kWarn, "supervisor")
                << "cell " << child.key << " failed (" << detail
                << "); retrying in " << delay.count() << "ms";
            queue.push_back({child.index, child.key, child.attempt + 1,
                             Clock::now() + delay});
          } else {
            ledger.record_quarantine(child.key, failure_log[child.key]);
            quarantined.emplace_back(child.index, child.key);
            LOCPRIV_LOG(kError, "supervisor")
                << "cell " << child.key << " quarantined after "
                << options_.max_attempts << " attempts (" << detail << ")";
          }
        }
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  } catch (...) {
    kill_and_reap(running, SIGKILL);
    throw;
  }

  if (interrupted) {
    // Graceful shutdown: stop dispatching, give children the TERM+grace
    // treatment, make the journal durable, and report exit 7. The run
    // directory stays resumable.
    for (const ChildProc& child : running)
      if (child.pid > 0) ::kill(child.pid, SIGTERM);
    const auto deadline = Clock::now() + options_.term_grace;
    while (Clock::now() < deadline) {
      bool alive = false;
      for (ChildProc& child : running) {
        if (child.pid <= 0) continue;
        int status = 0;
        if (::waitpid(child.pid, &status, WNOHANG) == child.pid)
          child.pid = -1;
        else
          alive = true;
      }
      if (!alive) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill_and_reap(running, SIGKILL);
    ledger.sync();
    throw Error(ErrorCode::kInterrupted,
                "run interrupted by signal after " +
                    std::to_string(outcome.computed) +
                    " cells; ledger is durable, resume with the same "
                    "--run-dir");
  }

  std::sort(quarantined.begin(), quarantined.end());
  for (auto& [index, key] : quarantined)
    // One entry per quarantined cell, bounded by the sweep plan.
    // locpriv-lint: allow(unbounded-growth)
    outcome.quarantined.push_back(std::move(key));
  return outcome;
}

SupervisorOutcome Supervisor::run_in_process(
    const std::vector<std::string>& cells, const CellFn& fn, RunLedger& ledger,
    StageWatchdog* watchdog) {
  std::vector<std::pair<std::size_t, std::string>> todo;
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (!ledger.completed(cells[i])) todo.emplace_back(i, cells[i]);

  SupervisorOutcome outcome;
  std::vector<std::pair<std::size_t, std::string>> quarantined;
  util::Mutex mutex;  // Guards ledger appends and the outcome counters.

  util::parallel_for_dynamic(
      todo.size(),
      [&](std::size_t i) {
        // A requested shutdown skips cells rather than aborting mid-cell;
        // skipped cells stay uncomputed in the ledger, i.e. resumable.
        if (shutdown_requested()) return;
        const std::size_t index = todo[i].first;
        const std::string& key = todo[i].second;
        std::vector<std::string> details;
        for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
          if (watchdog != nullptr) watchdog->checkpoint();
          if (attempt > 1)
            std::this_thread::sleep_for(backoff_delay(options_, key, attempt));
          if (shutdown_requested()) return;
          try {
            const std::vector<std::string> fields = fn(index, key, attempt);
            const util::MutexLock lock(mutex);
            ledger.record(key, fields);
            ++outcome.computed;
            if (watchdog != nullptr) watchdog->add_progress();
            return;
          } catch (const Error&) {
            // Harness-level failures (deadline, I/O, resume) are run
            // failures, not cell failures: no retry, no quarantine.
            throw;
          } catch (const std::exception& e) {
            details.push_back("attempt " + std::to_string(attempt) +
                              ": exception: " + e.what());
            LOCPRIV_LOG(kWarn, "supervisor")
                << "cell " << key << " attempt " << attempt
                << " failed in-process: " << e.what();
          }
        }
        const util::MutexLock lock(mutex);
        ledger.record_quarantine(key, details);
        quarantined.emplace_back(index, key);
        LOCPRIV_LOG(kError, "supervisor")
            << "cell " << key << " quarantined after " << options_.max_attempts
            << " attempts";
      },
      options_.workers);

  if (shutdown_requested()) {
    ledger.sync();
    throw Error(ErrorCode::kInterrupted,
                "run interrupted by signal after " +
                    std::to_string(outcome.computed) +
                    " cells; ledger is durable, resume with the same "
                    "--run-dir");
  }

  std::sort(quarantined.begin(), quarantined.end());
  for (auto& [index, key] : quarantined)
    // One entry per quarantined cell, bounded by the sweep plan.
    // locpriv-lint: allow(unbounded-growth)
    outcome.quarantined.push_back(std::move(key));
  return outcome;
}

}  // namespace locpriv::harness
