// Injectable syscall layer for every durable read/write in the repo. The
// harness consumers (AtomicFileWriter, RunLedger, the service snapshot
// codec, SeriesCsv/export_table) route open/read/write/fsync/rename/...
// through the process-global FileOps instead of calling the libc wrappers
// directly, so tests and the storage-torture bench can swap in a
// deterministic FaultyFileOps and prove each consumer survives EIO, ENOSPC,
// short writes, lying fsyncs, rename failures, and read-path bit-rot — the
// storage analogue of src/sim/faults' process-fault plans.
//
// The default is a zero-overhead passthrough (RealFileOps). The global is a
// single atomic pointer inherited across fork(2), so shard children forked
// by locprivd see the same fault plan as the parent. Setting the
// LOCPRIV_STORAGE_FAULTS environment variable to a StorageFaultPlan spec
// installs a FaultyFileOps lazily on first use, which is how CI injects
// faults into unmodified test binaries.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/harness/error.hpp"

namespace locpriv::harness {

/// Virtual dispatch over the POSIX file primitives the repo's durable paths
/// use. Every method has raw syscall semantics: -1 + errno on failure, no
/// EINTR retry (callers keep their own retry loops).
class FileOps {
 public:
  virtual ~FileOps() = default;
  virtual int open(const char* path, int flags, ::mode_t mode) = 0;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  virtual ::ssize_t read(int fd, void* buf, std::size_t count) = 0;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  virtual ::ssize_t write(int fd, const void* buf, std::size_t count) = 0;
  virtual int fsync(int fd) = 0;
  virtual int fdatasync(int fd) = 0;
  virtual int rename(const char* from, const char* to) = 0;
  virtual int unlink(const char* path) = 0;
  virtual int ftruncate(int fd, ::off_t length) = 0;
  virtual int close(int fd) = 0;
};

/// Straight passthrough to the libc wrappers.
class RealFileOps : public FileOps {
 public:
  int open(const char* path, int flags, ::mode_t mode) override;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  ::ssize_t read(int fd, void* buf, std::size_t count) override;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  ::ssize_t write(int fd, const void* buf, std::size_t count) override;
  int fsync(int fd) override;
  int fdatasync(int fd) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;
  int ftruncate(int fd, ::off_t length) override;
  int close(int fd) override;
};

/// Deterministic storage-fault menu. All counters are 1-based and count
/// only operations on paths matching `path_filter` (substring; empty
/// matches everything), so a plan can target e.g. only snapshot files
/// (`path=.snap.`) while the ledger stays healthy. The same (plan, call
/// sequence) always injects the same faults — seeded, like the
/// sim::FaultSchedule plans this is modeled on.
struct StorageFaultPlan {
  std::uint64_t seed = 1;      ///< Seeds the short-write byte counts.
  std::string path_filter;     ///< Substring of affected paths; empty = all.
  std::uint64_t eio_at_op = 0; ///< Nth mutating op fails EIO. 0 = off.
  /// From the Nth write onward, writes fail ENOSPC. 0 = off.
  std::uint64_t enospc_at_op = 0;
  /// With enospc_at_op: number of writes that fail before the "space was
  /// freed" recovery. 0 = sticky (the disk never recovers).
  std::uint64_t enospc_recover_after = 0;
  double short_write_prob = 0.0;  ///< Chance a write is cut short (0..1).
  /// The Nth fsync lies: reports success but the unsynced tail is dropped
  /// when the descriptor closes (power-loss simulation). 0 = off.
  std::uint64_t drop_tail_at_fsync = 0;
  std::uint64_t rename_fail_at = 0;  ///< Nth rename fails EIO. 0 = off.
  bool flip_read = false;        ///< Enable read-path bit-rot.
  std::uint64_t flip_offset = 0; ///< File offset whose reads are bit-flipped.

  /// Round-trippable spec string, e.g. "seed=7,path=.snap.,enospc=3,
  /// recover=2". parse(spec()).spec() == spec().
  std::string spec() const;

  /// Parses a spec produced by spec() (or written by hand / CI). Throws
  /// Error(kUsage) on an unknown key or malformed value.
  static StorageFaultPlan parse(const std::string& spec);
};

/// How often each fault class actually fired — the torture bench asserts
/// plans were exercised, not just configured.
struct InjectedFaults {
  std::uint64_t eio = 0;
  std::uint64_t enospc = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t dropped_tails = 0;
  std::uint64_t rename_failures = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t total() const {
    return eio + enospc + short_writes + dropped_tails + rename_failures +
           bit_flips;
  }
};

/// Wraps a base FileOps and injects the plan's faults deterministically.
/// Thread-safe: all mutable state is behind one mutex (the durable paths
/// are not hot enough for contention to matter).
class FaultyFileOps : public FileOps {
 public:
  explicit FaultyFileOps(StorageFaultPlan plan, FileOps* base = nullptr);

  int open(const char* path, int flags, ::mode_t mode) override;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  ::ssize_t read(int fd, void* buf, std::size_t count) override;
  // locpriv-lint: allow(eintr-retry) raw syscall contract; callers own the retry loop
  ::ssize_t write(int fd, const void* buf, std::size_t count) override;
  int fsync(int fd) override;
  int fdatasync(int fd) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;
  int ftruncate(int fd, ::off_t length) override;
  int close(int fd) override;

  const StorageFaultPlan& plan() const { return plan_; }
  InjectedFaults injected() const;

 private:
  struct TrackedFd {
    std::string path;
    ::off_t synced_size = 0;  ///< File size covered by the last real fsync.
    bool lying = false;       ///< A lying fsync armed tail-drop at close.
  };

  bool matches(const std::string& path) const;
  int sync_common(int fd, bool data_only);
  /// Injects EIO if this (1-based) mutating op is the planned one.
  bool inject_eio();
  std::uint64_t next_random();

  const StorageFaultPlan plan_;
  FileOps* base_;
  mutable std::mutex mutex_;
  std::map<int, TrackedFd> fds_;
  std::uint64_t op_count_ = 0;
  std::uint64_t write_count_ = 0;
  std::uint64_t fsync_count_ = 0;
  std::uint64_t rename_count_ = 0;
  std::uint64_t enospc_failures_ = 0;
  std::uint64_t rng_state_;
  InjectedFaults injected_;
};

/// The process-global FileOps every durable path uses. Defaults to a
/// RealFileOps singleton; on the very first call, a set
/// LOCPRIV_STORAGE_FAULTS environment variable installs a FaultyFileOps
/// built from its spec (a malformed spec is reported on stderr and
/// ignored — CI fault injection must never turn into silent passthrough of
/// a *crash*). The returned reference is valid for the process lifetime.
FileOps& file_ops();

/// Replaces the global FileOps; returns the previous override (nullptr if
/// the default RealFileOps was active). Passing nullptr restores the
/// default. The caller keeps ownership of `ops` and must keep it alive
/// until restored.
FileOps* set_file_ops(FileOps* ops);

/// RAII override for tests and benches: installs `ops` on construction and
/// restores the previous global on destruction.
class ScopedFileOps {
 public:
  explicit ScopedFileOps(FileOps* ops) : previous_(set_file_ops(ops)) {}
  ~ScopedFileOps() { set_file_ops(previous_); }
  ScopedFileOps(const ScopedFileOps&) = delete;
  ScopedFileOps& operator=(const ScopedFileOps&) = delete;

 private:
  FileOps* previous_;
};

/// Reads the whole file through the global FileOps (so injected read faults
/// and bit-flips apply). Returns false with errno set when the file cannot
/// be opened or read.
bool read_file_through_ops(const std::string& path, std::string& out);

}  // namespace locpriv::harness
