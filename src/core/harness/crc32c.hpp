// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum the
// run ledger appends to every JSONL record so replay can tell bit-rot from
// a torn tail. Software table implementation: the harness never checksums
// enough bytes per record for SSE4.2 to matter, and a portable table keeps
// the build dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace locpriv::harness {

/// CRC-32C of `data` (initial value 0, standard final xor).
std::uint32_t crc32c(std::string_view data);

/// The CRC as fixed-width lowercase hex ("%08x") — the on-disk form.
std::string crc32c_hex(std::string_view data);

}  // namespace locpriv::harness
