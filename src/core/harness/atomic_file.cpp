#include "core/harness/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>

#include "core/harness/fd_guard.hpp"
#include "util/expect.hpp"

namespace locpriv::harness {

namespace fs = std::filesystem;

namespace {

std::atomic<WriteFault> g_write_fault{WriteFault::kNone};

/// fsyncs the file at `path` through a fresh descriptor (the ofstream API
/// exposes no fd). Returns false on open/fsync failure with errno set.
bool fsync_file(const fs::path& path) {
  const FdGuard fd(::open(path.c_str(), O_WRONLY));
  if (!fd.valid()) return false;
  return ::fsync(fd.get()) == 0;
}

}  // namespace

void set_write_fault_for_testing(WriteFault fault) { g_write_fault.store(fault); }

AtomicFileWriter::AtomicFileWriter(fs::path path) : path_(std::move(path)) {
  // pid + sequence keep concurrent writers (processes or threads) aimed at
  // the same destination from clobbering each other's temp file; the last
  // rename wins, which is the usual last-writer-wins file semantics.
  static std::atomic<unsigned> sequence{0};
  temp_path_ = path_;
  temp_path_ += ".tmp." + std::to_string(::getpid()) + "." +
                std::to_string(sequence.fetch_add(1));
  errno = 0;
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw Error(ErrorCode::kIo,
                "cannot create " + temp_path_.string() + errno_detail());
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  out_.close();
  std::error_code ignored;
  fs::remove(temp_path_, ignored);
}

void AtomicFileWriter::fail(const std::string& action) {
  const std::string detail = errno_detail();
  out_.close();
  std::error_code ignored;
  fs::remove(temp_path_, ignored);
  throw Error(ErrorCode::kIo, action + " " + path_.string() + detail);
}

void AtomicFileWriter::commit() {
  LOCPRIV_EXPECT(!committed_);
  const WriteFault fault = g_write_fault.exchange(WriteFault::kNone);
  errno = 0;
  out_.flush();
  if (fault == WriteFault::kFlush) {
    out_.setstate(std::ios::badbit);
    errno = ENOSPC;
  }
  if (!out_.good()) fail("cannot write");
  out_.close();
  if (out_.fail()) fail("cannot write");
  // The bytes must be durable before the rename publishes the name: rename
  // is atomic in the namespace, but only fsync makes the content crash-safe.
  if (!fsync_file(temp_path_)) fail("cannot fsync");
  if (fault == WriteFault::kRename) {
    errno = ENOSPC;
    fail("cannot rename temp file to");
  }
  errno = 0;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0)
    fail("cannot rename temp file to");
  committed_ = true;
  // Best effort: persist the directory entry so the new name survives a
  // crash. Failure here is not torn data — the rename already happened.
  const fs::path dir = path_.has_parent_path() ? path_.parent_path() : fs::path(".");
  const FdGuard dfd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
  if (dfd.valid()) ::fsync(dfd.get());
}

void write_file_atomic(const fs::path& path, std::string_view content) {
  AtomicFileWriter writer(path);
  writer.stream().write(content.data(),
                        static_cast<std::streamsize>(content.size()));
  writer.commit();
}

}  // namespace locpriv::harness
