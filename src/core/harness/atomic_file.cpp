#include "core/harness/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "core/harness/file_ops.hpp"
#include "util/expect.hpp"

namespace locpriv::harness {

namespace fs = std::filesystem;

namespace {

std::atomic<WriteFault> g_write_fault{WriteFault::kNone};

}  // namespace

void set_write_fault_for_testing(WriteFault fault) { g_write_fault.store(fault); }

// ---------------------------------------------------------------------------
// FdStreamBuf.
// ---------------------------------------------------------------------------

AtomicFileWriter::FdStreamBuf::FdStreamBuf() : buffer_(1 << 16) {
  setp(buffer_.data(), buffer_.data() + buffer_.size());
}

void AtomicFileWriter::FdStreamBuf::attach(int fd) { fd_ = fd; }

bool AtomicFileWriter::FdStreamBuf::write_all(const char* data,
                                              std::size_t size) {
  if (failed_) return false;
  FileOps& ops = file_ops();
  while (size > 0) {
    errno = 0;
    const ::ssize_t n = ops.write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      errno_ = errno;
      return false;
    }
    // A short write is not an error at this layer; keep pushing the rest.
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool AtomicFileWriter::FdStreamBuf::flush_buffer() {
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  if (pending > 0 && !write_all(pbase(), pending)) return false;
  setp(buffer_.data(), buffer_.data() + buffer_.size());
  return true;
}

AtomicFileWriter::FdStreamBuf::int_type AtomicFileWriter::FdStreamBuf::overflow(
    int_type c) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(c, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(c);
    pbump(1);
  }
  return traits_type::not_eof(c);
}

std::streamsize AtomicFileWriter::FdStreamBuf::xsputn(const char* data,
                                                      std::streamsize count) {
  const auto size = static_cast<std::size_t>(count);
  const auto room = static_cast<std::size_t>(epptr() - pptr());
  if (size <= room) {
    std::memcpy(pptr(), data, size);
    pbump(static_cast<int>(size));
    return count;
  }
  // Large chunk: drain the buffer, then bypass it entirely.
  if (!flush_buffer() || !write_all(data, size)) return 0;
  return count;
}

int AtomicFileWriter::FdStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

// ---------------------------------------------------------------------------
// AtomicFileWriter.
// ---------------------------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(fs::path path)
    : path_(std::move(path)), out_(&buf_) {
  // pid + sequence keep concurrent writers (processes or threads) aimed at
  // the same destination from clobbering each other's temp file; the last
  // rename wins, which is the usual last-writer-wins file semantics.
  static std::atomic<unsigned> sequence{0};
  temp_path_ = path_;
  temp_path_ += ".tmp." + std::to_string(::getpid()) + "." +
                std::to_string(sequence.fetch_add(1));
  errno = 0;
  fd_ = file_ops().open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0)
    throw Error(ErrorCode::kIo,
                "cannot create " + temp_path_.string() + errno_detail());
  buf_.attach(fd_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  discard();
}

void AtomicFileWriter::discard() {
  FileOps& ops = file_ops();
  if (fd_ >= 0) {
    ops.close(fd_);
    fd_ = -1;
  }
  // Best effort; a failed unlink of a temp file is debris, not corruption.
  // locpriv-lint: allow(unchecked-io) cleanup on the failure path must not mask the original error
  ops.unlink(temp_path_.c_str());
}

void AtomicFileWriter::fail(const std::string& action) {
  const std::string detail = errno_detail();
  discard();
  throw Error(ErrorCode::kIo, action + " " + path_.string() + detail);
}

void AtomicFileWriter::commit() {
  LOCPRIV_EXPECT(!committed_);
  FileOps& ops = file_ops();
  const WriteFault fault = g_write_fault.exchange(WriteFault::kNone);
  errno = 0;
  out_.flush();
  if (fault == WriteFault::kFlush) {
    out_.setstate(std::ios::badbit);
    errno = ENOSPC;
  }
  if (!out_.good() || buf_.failed()) {
    if (buf_.saved_errno() != 0) errno = buf_.saved_errno();
    fail("cannot write");
  }
  // The bytes must be durable before the rename publishes the name: rename
  // is atomic in the namespace, but only fsync makes the content crash-safe.
  errno = 0;
  if (ops.fsync(fd_) != 0) fail("cannot fsync");
  errno = 0;
  const int close_rc = ops.close(fd_);
  fd_ = -1;
  if (close_rc != 0) fail("cannot write");
  if (fault == WriteFault::kRename) {
    errno = ENOSPC;
    fail("cannot rename temp file to");
  }
  errno = 0;
  if (ops.rename(temp_path_.c_str(), path_.c_str()) != 0)
    fail("cannot rename temp file to");
  committed_ = true;
  // Best effort: persist the directory entry so the new name survives a
  // crash. Failure here is not torn data — the rename already happened.
  const fs::path dir = path_.has_parent_path() ? path_.parent_path() : fs::path(".");
  const int dfd = ops.open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (dfd >= 0) {
    // locpriv-lint: allow(unchecked-io) directory fsync is advisory; the rename above already published
    ops.fsync(dfd);
    ops.close(dfd);
  }
}

void write_file_atomic(const fs::path& path, std::string_view content) {
  AtomicFileWriter writer(path);
  writer.stream().write(content.data(),
                        static_cast<std::streamsize>(content.size()));
  writer.commit();
}

}  // namespace locpriv::harness
