#include "core/harness/run_ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace locpriv::harness {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kLedgerName = "ledger.jsonl";

/// Cursor-based reader for the two line shapes the ledger writes. This is
/// not a general JSON parser (the library deliberately has none); it
/// understands exactly the documents json_escape/JsonWriter produce here.
class LineReader {
 public:
  explicit LineReader(std::string_view line) : line_(line) {}

  bool literal(std::string_view expected) {
    if (line_.substr(pos_, expected.size()) != expected) return false;
    pos_ += expected.size();
    return true;
  }

  /// Parses a quoted JSON string (cursor on the opening quote), undoing the
  /// escapes json_escape produces.
  bool quoted(std::string& out) {
    if (!literal("\"")) return false;
    out.clear();
    while (pos_ < line_.size()) {
      const char c = line_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) return false;
      const char escape = line_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // json_escape only emits \u for control bytes < 0x20.
          out += static_cast<char>(value);
          break;
        }
        default: return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool unsigned_number(std::uint64_t& out) {
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] >= '0' && line_[pos_] <= '9') ++pos_;
    if (pos_ == start) return false;
    long long value = 0;
    if (!util::parse_int64(line_.substr(start, pos_ - start), value)) return false;
    out = static_cast<std::uint64_t>(value);
    return true;
  }

  bool at_end() const { return pos_ == line_.size(); }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

std::string header_line(const RunInfo& info) {
  util::JsonWriter json;
  json.begin_object();
  json.member("experiment", info.experiment);
  json.member("seed", info.seed);
  json.member("scale", info.scale);
  json.member("mode", info.mode);
  json.end_object();
  return json.str();
}

bool parse_header(std::string_view line, RunInfo& out) {
  LineReader reader(line);
  if (!(reader.literal("{\"experiment\":") && reader.quoted(out.experiment) &&
        reader.literal(",\"seed\":") && reader.unsigned_number(out.seed) &&
        reader.literal(",\"scale\":") && reader.quoted(out.scale)))
    return false;
  // Ledgers from before mode pinning end right after the scale; they were
  // all written by the single-threaded in-process path.
  if (reader.literal(",\"mode\":")) {
    if (!reader.quoted(out.mode)) return false;
  } else {
    out.mode = "inproc-w1";
  }
  return reader.literal("}") && reader.at_end();
}

/// Parses the cell-shaped body shared by completed and quarantine lines:
/// `"<key>","fields":[...]}` after the opening `{"cell":` / `{"quarantine":`.
bool parse_keyed_fields(LineReader& reader, std::string& cell,
                        std::vector<std::string>& fields) {
  if (!reader.quoted(cell) || !reader.literal(",\"fields\":[")) return false;
  fields.clear();
  if (!reader.literal("]")) {
    while (true) {
      std::string field;
      if (!reader.quoted(field)) return false;
      fields.push_back(std::move(field));
      if (reader.literal("]")) break;
      if (!reader.literal(",")) return false;
    }
  }
  return reader.literal("}") && reader.at_end();
}

bool parse_cell(std::string_view line, std::string& cell,
                std::vector<std::string>& fields) {
  LineReader reader(line);
  return reader.literal("{\"cell\":") && parse_keyed_fields(reader, cell, fields);
}

bool parse_quarantine(std::string_view line, std::string& cell,
                      std::vector<std::string>& fields) {
  LineReader reader(line);
  return reader.literal("{\"quarantine\":") &&
         parse_keyed_fields(reader, cell, fields);
}

std::string keyed_fields_line(std::string_view kind, const std::string& cell,
                              const std::vector<std::string>& fields) {
  util::JsonWriter json;
  json.begin_object();
  json.member(kind, cell);
  json.key("fields");
  json.begin_array();
  for (const std::string& field : fields) json.value(field);
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace

RunLedger::RunLedger(fs::path run_dir, const RunInfo& info) {
  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec)
    throw Error(ErrorCode::kIo,
                "cannot create run dir " + run_dir.string() + " (" + ec.message() + ")");
  path_ = run_dir / kLedgerName;

  std::uint64_t valid_bytes = 0;
  bool fresh = true;
  if (fs::exists(path_)) {
    std::ifstream in(path_, std::ios::binary);
    if (!in)
      throw Error(ErrorCode::kIo, "cannot read ledger " + path_.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    replay(buffer.str(), info, valid_bytes);
    // A ledger whose very first append (the header) was torn truncates to
    // zero bytes and restarts as a fresh run.
    fresh = valid_bytes == 0;
  }

  errno = 0;
  fd_.reset(::open(path_.c_str(), O_WRONLY | O_CREAT, 0644));
  if (!fd_.valid())
    throw Error(ErrorCode::kIo,
                "cannot open ledger " + path_.string() + errno_detail());
  // Drop any torn tail a crash left behind, then continue appending after
  // the last intact record. The guard closes the fd on the throw path.
  if (::ftruncate(fd_.get(), static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_.get(), static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    const Error error(ErrorCode::kIo,
                      "cannot truncate ledger " + path_.string() + errno_detail());
    fd_.reset();
    throw error;
  }
  if (fresh) append_line(header_line(info));
}

RunLedger::~RunLedger() = default;

void RunLedger::replay(const std::string& content, const RunInfo& info,
                       std::uint64_t& valid_bytes) {
  valid_bytes = 0;
  std::size_t pos = 0;
  std::size_t line_number = 0;
  bool torn = false;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) {
      // No terminator: the process died inside the final append. Everything
      // before this line is intact; the tail is truncated by the caller.
      torn = true;
      break;
    }
    const std::string_view line(content.data() + pos, newline - pos);
    ++line_number;
    if (line_number == 1) {
      RunInfo header;
      if (!parse_header(line, header))
        throw Error(ErrorCode::kResume,
                    "ledger " + path_.string() + " has an unreadable header");
      if (header.experiment != info.experiment || header.seed != info.seed ||
          header.scale != info.scale)
        throw Error(ErrorCode::kResume,
                    "ledger " + path_.string() + " belongs to " +
                        header.experiment + " seed " + std::to_string(header.seed) +
                        " scale " + header.scale + ", not " + info.experiment +
                        " seed " + std::to_string(info.seed) + " scale " + info.scale);
      if (header.mode != info.mode)
        throw Error(ErrorCode::kResume,
                    "ledger " + path_.string() + " was written by execution mode " +
                        header.mode + ", not " + info.mode +
                        "; rerun with the original --isolate/--workers settings "
                        "or start a fresh --run-dir");
    } else if (!line.empty()) {
      std::string cell;
      std::vector<std::string> fields;
      if (parse_cell(line, cell, fields)) {
        quarantine_.erase(cell);
        cells_[cell] = std::move(fields);
      } else if (parse_quarantine(line, cell, fields)) {
        quarantine_[cell] = std::move(fields);
      } else {
        // A malformed line with more intact data after it is real
        // corruption, not a crash artifact — refuse to guess.
        if (content.find_first_not_of(" \t\r\n", newline + 1) != std::string::npos)
          throw Error(ErrorCode::kResume,
                      "ledger " + path_.string() + " is corrupt at line " +
                          std::to_string(line_number));
        torn = true;
        break;
      }
    }
    pos = newline + 1;
    valid_bytes = pos;
  }
  if (!torn) valid_bytes = content.size();
}

bool RunLedger::completed(const std::string& cell) const {
  return cells_.count(cell) != 0;
}

const std::vector<std::string>* RunLedger::fields(const std::string& cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

void RunLedger::record(const std::string& cell,
                       const std::vector<std::string>& fields) {
  if (completed(cell))
    throw Error(ErrorCode::kResume, "cell recorded twice in ledger: " + cell);
  append_line(keyed_fields_line("cell", cell, fields));
  quarantine_.erase(cell);
  cells_[cell] = fields;
}

void RunLedger::record_quarantine(const std::string& cell,
                                  const std::vector<std::string>& details) {
  if (completed(cell))
    throw Error(ErrorCode::kResume,
                "cell quarantined after completion in ledger: " + cell);
  append_line(keyed_fields_line("quarantine", cell, details));
  quarantine_[cell] = details;
}

bool RunLedger::quarantined(const std::string& cell) const {
  return cells_.count(cell) == 0 && quarantine_.count(cell) != 0;
}

const std::vector<std::string>* RunLedger::quarantine_details(
    const std::string& cell) const {
  if (!quarantined(cell)) return nullptr;
  return &quarantine_.at(cell);
}

std::vector<std::string> RunLedger::quarantined_cells() const {
  std::vector<std::string> cells;
  for (const auto& [cell, details] : quarantine_)
    if (cells_.count(cell) == 0) cells.push_back(cell);
  return cells;
}

void RunLedger::sync() {
  errno = 0;
  if (fd_.valid() && ::fsync(fd_.get()) != 0)
    throw Error(ErrorCode::kIo,
                "cannot fsync ledger " + path_.string() + errno_detail());
}

void RunLedger::append_line(const std::string& line) {
  std::string buffer = line;
  buffer += '\n';
  // One write(2) per record: a SIGKILL cannot interleave two records, so
  // the only possible damage is a short tail, which replay() truncates.
  std::size_t written = 0;
  while (written < buffer.size()) {
    errno = 0;
    const ssize_t n =
        ::write(fd_.get(), buffer.data() + written, buffer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kIo,
                  "cannot append to ledger " + path_.string() + errno_detail());
    }
    written += static_cast<std::size_t>(n);
  }
  errno = 0;
  if (::fsync(fd_.get()) != 0)
    throw Error(ErrorCode::kIo,
                "cannot fsync ledger " + path_.string() + errno_detail());
}

}  // namespace locpriv::harness
