#include "core/harness/run_ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "core/harness/crc32c.hpp"
#include "core/harness/file_ops.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace locpriv::harness {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kLedgerName = "ledger.jsonl";

/// Cursor-based reader for the two line shapes the ledger writes. This is
/// not a general JSON parser (the library deliberately has none); it
/// understands exactly the documents json_escape/JsonWriter produce here.
class LineReader {
 public:
  explicit LineReader(std::string_view line) : line_(line) {}

  bool literal(std::string_view expected) {
    if (line_.substr(pos_, expected.size()) != expected) return false;
    pos_ += expected.size();
    return true;
  }

  /// Parses a quoted JSON string (cursor on the opening quote), undoing the
  /// escapes json_escape produces.
  bool quoted(std::string& out) {
    if (!literal("\"")) return false;
    out.clear();
    while (pos_ < line_.size()) {
      const char c = line_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) return false;
      const char escape = line_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // json_escape only emits \u for control bytes < 0x20.
          out += static_cast<char>(value);
          break;
        }
        default: return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool unsigned_number(std::uint64_t& out) {
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] >= '0' && line_[pos_] <= '9') ++pos_;
    if (pos_ == start) return false;
    long long value = 0;
    if (!util::parse_int64(line_.substr(start, pos_ - start), value)) return false;
    out = static_cast<std::uint64_t>(value);
    return true;
  }

  bool at_end() const { return pos_ == line_.size(); }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

std::string header_line(const RunInfo& info) {
  util::JsonWriter json;
  json.begin_object();
  json.member("experiment", info.experiment);
  json.member("seed", info.seed);
  json.member("scale", info.scale);
  json.member("mode", info.mode);
  json.end_object();
  return json.str();
}

bool parse_header(std::string_view line, RunInfo& out) {
  LineReader reader(line);
  if (!(reader.literal("{\"experiment\":") && reader.quoted(out.experiment) &&
        reader.literal(",\"seed\":") && reader.unsigned_number(out.seed) &&
        reader.literal(",\"scale\":") && reader.quoted(out.scale)))
    return false;
  // Ledgers from before mode pinning end right after the scale; they were
  // all written by the single-threaded in-process path.
  if (reader.literal(",\"mode\":")) {
    if (!reader.quoted(out.mode)) return false;
  } else {
    out.mode = "inproc-w1";
  }
  return reader.literal("}") && reader.at_end();
}

/// Parses the cell-shaped body shared by completed and quarantine lines:
/// `"<key>","fields":[...]}` after the opening `{"cell":` / `{"quarantine":`.
bool parse_keyed_fields(LineReader& reader, std::string& cell,
                        std::vector<std::string>& fields) {
  if (!reader.quoted(cell) || !reader.literal(",\"fields\":[")) return false;
  fields.clear();
  if (!reader.literal("]")) {
    while (true) {
      std::string field;
      if (!reader.quoted(field)) return false;
      fields.push_back(std::move(field));
      if (reader.literal("]")) break;
      if (!reader.literal(",")) return false;
    }
  }
  return reader.literal("}") && reader.at_end();
}

bool parse_cell(std::string_view line, std::string& cell,
                std::vector<std::string>& fields) {
  LineReader reader(line);
  return reader.literal("{\"cell\":") && parse_keyed_fields(reader, cell, fields);
}

bool parse_quarantine(std::string_view line, std::string& cell,
                      std::vector<std::string>& fields) {
  LineReader reader(line);
  return reader.literal("{\"quarantine\":") &&
         parse_keyed_fields(reader, cell, fields);
}

std::string keyed_fields_line(std::string_view kind, const std::string& cell,
                              const std::vector<std::string>& fields) {
  util::JsonWriter json;
  json.begin_object();
  json.member(kind, cell);
  json.key("fields");
  json.begin_array();
  for (const std::string& field : fields) json.value(field);
  json.end_array();
  json.end_object();
  return json.str();
}

/// Appends the self-checksum member to a finished line:
/// `{...}` -> `{...,"crc":"xxxxxxxx"}`, CRC-32C computed over the original.
std::string with_crc(const std::string& line) {
  std::string out = line.substr(0, line.size() - 1);
  out += ",\"crc\":\"";
  out += crc32c_hex(line);
  out += "\"}";
  return out;
}

bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Detects and verifies the trailing `,"crc":"xxxxxxxx"}` member. `base`
/// receives the line as it was checksummed (member stripped, `}` restored)
/// or the line verbatim when no member is present. Returns 0 for no CRC
/// member (a pre-CRC ledger line), 1 for a matching CRC, -1 for a mismatch.
int check_line_crc(std::string_view line, std::string& base) {
  constexpr std::string_view kKey = ",\"crc\":\"";
  constexpr std::size_t kSuffix = kKey.size() + 8 + 2;  // key + hex + `"}`.
  const auto plain = [&] {
    base.assign(line);
    return 0;
  };
  if (line.size() < kSuffix + 1 || line.substr(line.size() - 2) != "\"}")
    return plain();
  const std::size_t key_pos = line.size() - kSuffix;
  if (line.substr(key_pos, kKey.size()) != kKey) return plain();
  const std::string_view hex = line.substr(key_pos + kKey.size(), 8);
  for (const char c : hex)
    if (!is_hex_digit(c)) return plain();
  base.assign(line.substr(0, key_pos));
  base += '}';
  return crc32c_hex(base) == hex ? 1 : -1;
}

}  // namespace

LedgerReplay replay_ledger(std::string_view content) {
  LedgerReplay out;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    if (newline == std::string_view::npos) {
      // No terminator: the process died inside the final append. Everything
      // before this line is intact; the tail is truncated on reopen.
      out.status = LedgerScan::kTorn;
      return out;
    }
    const std::string_view raw(content.data() + pos, newline - pos);
    const std::size_t line_number = out.lines + 1;
    const auto corrupt_here = [&] {
      out.status = LedgerScan::kCorrupt;
      out.bad_line = line_number;
      return out;
    };
    std::string base;
    const int crc = check_line_crc(raw, base);
    if (crc < 0) return corrupt_here();
    if (line_number == 1) {
      // Line 1 must be the run header. Appends are single-write, so a
      // terminated-but-unparsable header is damage, not a crash artifact.
      if (!parse_header(base, out.header)) return corrupt_here();
      out.has_header = true;
    } else if (!base.empty()) {
      std::string cell;
      std::vector<std::string> fields;
      if (parse_cell(base, cell, fields)) {
        out.quarantine.erase(cell);
        out.cells[cell] = std::move(fields);
      } else if (parse_quarantine(base, cell, fields)) {
        out.quarantine[cell] = std::move(fields);
      } else if (crc == 0 &&
                 content.find_first_not_of(" \t\r\n", newline + 1) ==
                     std::string_view::npos) {
        // A malformed final line from a pre-CRC writer is indistinguishable
        // from a torn append that happened to include a newline in its
        // payload-free tail: truncate, don't refuse. A CRC-verified line
        // that fails to parse is writer corruption regardless of position.
        out.status = LedgerScan::kTorn;
        return out;
      } else {
        // A malformed line with more intact data after it is real
        // corruption, not a crash artifact — refuse to guess.
        return corrupt_here();
      }
    }
    ++out.lines;
    pos = newline + 1;
    out.valid_bytes = pos;
  }
  return out;
}

RunLedger::RunLedger(fs::path run_dir, const RunInfo& info) {
  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec)
    throw Error(ErrorCode::kIo,
                "cannot create run dir " + run_dir.string() + " (" + ec.message() + ")");
  path_ = run_dir / kLedgerName;
  FileOps& ops = file_ops();

  std::uint64_t valid_bytes = 0;
  bool fresh = true;
  if (fs::exists(path_)) {
    std::string content;
    errno = 0;
    if (!read_file_through_ops(path_.string(), content))
      throw Error(ErrorCode::kIo,
                  "cannot read ledger " + path_.string() + errno_detail());
    LedgerReplay replay = replay_ledger(content);
    if (replay.status == LedgerScan::kCorrupt)
      throw Error(ErrorCode::kLedgerCorrupt,
                  "ledger " + path_.string() + " is corrupt at line " +
                      std::to_string(replay.bad_line) +
                      "; run `locpriv scrub --repair` to truncate to the last "
                      "intact record");
    if (replay.has_header) {
      const RunInfo& header = replay.header;
      if (header.experiment != info.experiment || header.seed != info.seed ||
          header.scale != info.scale)
        throw Error(ErrorCode::kResume,
                    "ledger " + path_.string() + " belongs to " +
                        header.experiment + " seed " + std::to_string(header.seed) +
                        " scale " + header.scale + ", not " + info.experiment +
                        " seed " + std::to_string(info.seed) + " scale " + info.scale);
      if (header.mode != info.mode)
        throw Error(ErrorCode::kResume,
                    "ledger " + path_.string() + " was written by execution mode " +
                        header.mode + ", not " + info.mode +
                        "; rerun with the original --isolate/--workers settings "
                        "or start a fresh --run-dir");
    }
    cells_ = std::move(replay.cells);
    quarantine_ = std::move(replay.quarantine);
    valid_bytes = replay.valid_bytes;
    // A ledger whose very first append (the header) was torn truncates to
    // zero bytes and restarts as a fresh run.
    fresh = !replay.has_header;
  }

  errno = 0;
  fd_ = ops.open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0)
    throw Error(ErrorCode::kIo,
                "cannot open ledger " + path_.string() + errno_detail());
  // Drop any torn tail a crash left behind, then continue appending after
  // the last intact record.
  errno = 0;
  if (ops.ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    const Error error(ErrorCode::kIo,
                      "cannot truncate ledger " + path_.string() + errno_detail());
    ops.close(fd_);
    fd_ = -1;
    throw error;
  }
  if (fresh) append_line(header_line(info));
}

RunLedger::~RunLedger() {
  if (fd_ >= 0) file_ops().close(fd_);
}

bool RunLedger::completed(const std::string& cell) const {
  return cells_.count(cell) != 0;
}

const std::vector<std::string>* RunLedger::fields(const std::string& cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

void RunLedger::record(const std::string& cell,
                       const std::vector<std::string>& fields) {
  if (completed(cell))
    throw Error(ErrorCode::kResume, "cell recorded twice in ledger: " + cell);
  append_line(keyed_fields_line("cell", cell, fields));
  quarantine_.erase(cell);
  cells_[cell] = fields;
}

void RunLedger::record_quarantine(const std::string& cell,
                                  const std::vector<std::string>& details) {
  if (completed(cell))
    throw Error(ErrorCode::kResume,
                "cell quarantined after completion in ledger: " + cell);
  append_line(keyed_fields_line("quarantine", cell, details));
  quarantine_[cell] = details;
}

bool RunLedger::quarantined(const std::string& cell) const {
  return cells_.count(cell) == 0 && quarantine_.count(cell) != 0;
}

const std::vector<std::string>* RunLedger::quarantine_details(
    const std::string& cell) const {
  if (!quarantined(cell)) return nullptr;
  return &quarantine_.at(cell);
}

std::vector<std::string> RunLedger::quarantined_cells() const {
  std::vector<std::string> cells;
  for (const auto& [cell, details] : quarantine_)
    if (cells_.count(cell) == 0) cells.push_back(cell);
  return cells;
}

void RunLedger::sync() {
  errno = 0;
  if (fd_ >= 0 && file_ops().fsync(fd_) != 0)
    throw Error(ErrorCode::kIo,
                "cannot fsync ledger " + path_.string() + errno_detail());
}

void RunLedger::append_line(const std::string& line) {
  FileOps& ops = file_ops();
  std::string buffer = with_crc(line);
  buffer += '\n';
  // One write(2) per record: a SIGKILL cannot interleave two records, so
  // the only possible damage is a short tail, which replay truncates. The
  // CRC member rides inside the same write.
  const off_t start = ::lseek(fd_, 0, SEEK_CUR);
  std::size_t written = 0;
  while (written < buffer.size()) {
    errno = 0;
    const ::ssize_t n =
        ops.write(fd_, buffer.data() + written, buffer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Error error(ErrorCode::kIo, "cannot append to ledger " +
                                            path_.string() + errno_detail());
      // Roll back to the record boundary so a caller that survives the
      // error (e.g. ENOSPC that later clears) cannot interleave a partial
      // record with the next append. Best effort on an already-failing fd.
      if (start >= 0) {
        // locpriv-lint: allow(unchecked-io) rollback on the failure path must not mask the original error
        ops.ftruncate(fd_, start);
        ::lseek(fd_, start, SEEK_SET);
      }
      throw error;
    }
    written += static_cast<std::size_t>(n);
  }
  errno = 0;
  if (ops.fsync(fd_) != 0)
    throw Error(ErrorCode::kIo,
                "cannot fsync ledger " + path_.string() + errno_detail());
}

}  // namespace locpriv::harness
