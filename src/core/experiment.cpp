#include "core/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>

#include "util/logging.hpp"

namespace locpriv::core {

std::vector<std::int64_t> access_interval_ladder() {
  return {1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200};
}

ExperimentScale experiment_scale() {
  const char* flag = std::getenv("LOCPRIV_REDUCED_SCALE");
  if (flag != nullptr && std::strcmp(flag, "1") == 0) return {60, 8};
  return {182, 12};
}

mobility::DatasetConfig experiment_dataset_config() {
  mobility::DatasetConfig config;
  config.seed = kDatasetSeed;
  const ExperimentScale scale = experiment_scale();
  config.user_count = scale.user_count;
  config.synthesis.days = scale.days;
  return config;
}

AnalyzerConfig experiment_analyzer_config() {
  AnalyzerConfig config;
  config.extraction = poi::table3_parameter_sets()[0];  // 50 m / 10 min.
  config.region_cell_m = 250.0;
  config.match.alpha = 0.05;
  return config;
}

namespace {
std::once_flag g_dataset_once;
std::optional<mobility::SyntheticDataset> g_dataset;
std::once_flag g_analyzer_once;
std::optional<PrivacyAnalyzer> g_analyzer;
}  // namespace

const mobility::SyntheticDataset& shared_dataset() {
  std::call_once(g_dataset_once, [] {
    LOCPRIV_LOG(kInfo, "experiment") << "generating shared dataset";
    g_dataset = mobility::generate_dataset(experiment_dataset_config());
  });
  return *g_dataset;
}

const PrivacyAnalyzer& shared_analyzer() {
  std::call_once(g_analyzer_once, [] {
    const mobility::SyntheticDataset& dataset = shared_dataset();
    auto users = dataset.users;  // Copy: the analyzer consumes the traces.
    g_analyzer.emplace(experiment_analyzer_config(), std::move(users));
  });
  return *g_analyzer;
}

}  // namespace locpriv::core
